//! # uavdc — UAV data collection for IoT sensor networks
//!
//! A Rust implementation of *"Data Collection of IoT Devices Using an
//! Energy-Constrained UAV"* (Li, Liang, Xu, Jia — IPPS 2020): plan closed
//! tours for a battery-limited UAV that hovers over grid locations and
//! collects stored sensory data from every IoT device within its coverage
//! disc simultaneously, maximising the volume brought home.
//!
//! This facade crate re-exports the workspace:
//!
//! | Crate | What it provides |
//! |---|---|
//! | [`geom`] | points, grids, discs, spatial index |
//! | [`graph`] | MST, blossom matching, Euler tours, Christofides, TSP heuristics |
//! | [`orienteering`] | exact/greedy/GRASP orienteering solvers |
//! | [`net`] | units, radio model, UAV spec, scenarios, generators |
//! | [`core`] | the planners: Algorithms 1–3 and the benchmark |
//! | [`sim`] | discrete-event mission simulator |
//!
//! # Quickstart
//!
//! ```
//! use uavdc::prelude::*;
//!
//! // A scaled-down version of the paper's setting (25 devices).
//! let params = ScenarioParams::default().scaled(0.05);
//! let scenario = uniform(&params, 42);
//!
//! // Plan with the overlap-aware greedy (the paper's Algorithm 2)...
//! let plan = Alg2Planner::default().plan(&scenario);
//! plan.validate(&scenario).unwrap();
//!
//! // ...and fly it in the discrete-event simulator.
//! let outcome = simulate(&scenario, &plan, &SimConfig::default());
//! assert!(outcome.completed);
//! assert!(outcome.agrees_with_plan(&plan, &scenario));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use uavdc_core as core;
pub use uavdc_geom as geom;
pub use uavdc_graph as graph;
pub use uavdc_net as net;
pub use uavdc_orienteering as orienteering;
pub use uavdc_sim as sim;

pub mod viz;

/// The most common imports, for `use uavdc::prelude::*`.
pub mod prelude {
    pub use uavdc_core::{
        Alg1Config, Alg1Planner, Alg2Config, Alg2Planner, Alg3Config, Alg3Planner,
        BenchmarkPlanner, CollectionPlan, FleetConfig, FleetPartition, FleetPlan, HoverStop,
        MultiUavPlanner, PlanError, Planner,
    };
    pub use uavdc_geom::Point2;
    pub use uavdc_net::generator::{clustered, paper_default, two_tier, uniform, ScenarioParams};
    pub use uavdc_net::units::{
        megabytes_as_gb, Joules, MegaBytes, MegaBytesPerSecond, Meters, MetersPerSecond, Seconds,
        Watts,
    };
    pub use uavdc_net::{DeviceId, IotDevice, RadioModel, Scenario, UavSpec};
    pub use uavdc_sim::{simulate, CollectionPolicy, SimConfig, SimOutcome, WindModel};
}
