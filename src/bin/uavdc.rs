//! `uavdc` — command-line front end for the planners and simulator.
//!
//! ```text
//! uavdc plan      --alg alg2 --devices 100 --seed 7 [--delta 10] [--k 2]
//!                 [--capacity 3e5] [--deployment uniform|clustered|grid]
//!                 [--report] [--trace FILE.csv]
//! uavdc fleet     --uavs 3 [--partition sectors|kmeans] [...plan flags]
//! uavdc compare   [...plan flags]        # all four algorithms side by side
//! ```

use std::path::PathBuf;
use std::process::exit;
use uavdc::net::generator::{self, ScenarioParams};
use uavdc::prelude::*;
use uavdc::sim::MissionReport;

struct Args {
    alg: String,
    devices: usize,
    side: f64,
    seed: u64,
    delta: f64,
    k: usize,
    capacity: Option<f64>,
    deployment: String,
    uavs: usize,
    partition: String,
    report: bool,
    trace: Option<PathBuf>,
    svg: Option<PathBuf>,
    save: Option<PathBuf>,
    load: Option<PathBuf>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            alg: "alg2".into(),
            devices: 100,
            side: 450.0,
            seed: 1,
            delta: 10.0,
            k: 2,
            capacity: None,
            deployment: "uniform".into(),
            uavs: 2,
            partition: "sectors".into(),
            report: false,
            trace: None,
            svg: None,
            save: None,
            load: None,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: uavdc <plan|fleet|compare> [--alg alg1|alg2|alg3|benchmark] \
         [--devices N] [--side M] [--seed K] [--delta D] [--k K] [--capacity J] \
         [--deployment uniform|clustered|grid] [--uavs M] [--partition sectors|kmeans] \
         [--report] [--trace FILE.csv] [--svg FILE.svg] [--save FILE] [--load FILE]"
    );
    exit(2);
}

fn parse_args(rest: &[String]) -> Args {
    let mut a = Args::default();
    let mut i = 0;
    macro_rules! val {
        () => {{
            i += 1;
            rest.get(i).unwrap_or_else(|| usage()).clone()
        }};
    }
    while i < rest.len() {
        match rest[i].as_str() {
            "--alg" => a.alg = val!(),
            "--devices" => a.devices = val!().parse().unwrap_or_else(|_| usage()),
            "--side" => a.side = val!().parse().unwrap_or_else(|_| usage()),
            "--seed" => a.seed = val!().parse().unwrap_or_else(|_| usage()),
            "--delta" => a.delta = val!().parse().unwrap_or_else(|_| usage()),
            "--k" => a.k = val!().parse().unwrap_or_else(|_| usage()),
            "--capacity" => a.capacity = Some(val!().parse().unwrap_or_else(|_| usage())),
            "--deployment" => a.deployment = val!(),
            "--uavs" => a.uavs = val!().parse().unwrap_or_else(|_| usage()),
            "--partition" => a.partition = val!(),
            "--report" => a.report = true,
            "--trace" => a.trace = Some(PathBuf::from(val!())),
            "--svg" => a.svg = Some(PathBuf::from(val!())),
            "--save" => a.save = Some(PathBuf::from(val!())),
            "--load" => a.load = Some(PathBuf::from(val!())),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
        i += 1;
    }
    a
}

fn build_scenario(a: &Args) -> Scenario {
    if let Some(path) = &a.load {
        let scenario = uavdc::net::io::read_scenario(path)
            .unwrap_or_else(|e| panic!("failed to load {}: {e}", path.display()));
        return scenario;
    }
    let mut params = ScenarioParams {
        num_devices: a.devices,
        region_side: a.side,
        ..ScenarioParams::default()
    };
    if let Some(e) = a.capacity {
        params.uav.capacity = Joules(e);
    }
    let scenario = match a.deployment.as_str() {
        "uniform" => generator::uniform(&params, a.seed),
        "clustered" => generator::clustered(&params, 5, a.side / 12.0, a.seed),
        "grid" => generator::grid_deployment(&params, a.side / 50.0, a.seed),
        other => {
            eprintln!("unknown deployment: {other}");
            usage();
        }
    };
    scenario
        .validate()
        .expect("generated scenario must be valid");
    if let Some(path) = &a.save {
        uavdc::net::io::write_scenario(path, &scenario)
            .unwrap_or_else(|e| panic!("failed to save {}: {e}", path.display()));
        eprintln!("scenario saved to {}", path.display());
    }
    scenario
}

fn make_planner(a: &Args) -> Box<dyn Planner> {
    match a.alg.as_str() {
        "alg1" => Box::new(Alg1Planner::new(Alg1Config {
            delta: a.delta,
            ..Alg1Config::default()
        })),
        "alg2" => Box::new(Alg2Planner::new(Alg2Config {
            delta: a.delta,
            ..Alg2Config::default()
        })),
        "alg3" => Box::new(Alg3Planner::new(Alg3Config {
            delta: a.delta,
            k: a.k,
            ..Alg3Config::default()
        })),
        "benchmark" => Box::new(BenchmarkPlanner),
        other => {
            eprintln!("unknown algorithm: {other}");
            usage();
        }
    }
}

fn describe(scenario: &Scenario) {
    println!(
        "scenario: {} devices in {:.0} m x {:.0} m, {:.2} GB stored, battery {:.0} J, R0 {:.0} m",
        scenario.num_devices(),
        scenario.region.width(),
        scenario.region.height(),
        megabytes_as_gb(scenario.total_data()),
        scenario.uav.capacity.value(),
        scenario.coverage_radius().value(),
    );
}

fn run_plan(a: &Args) {
    let scenario = build_scenario(a);
    describe(&scenario);
    let planner = make_planner(a);
    let started = std::time::Instant::now();
    let plan = planner.plan(&scenario);
    let dt = started.elapsed();
    plan.validate(&scenario)
        .expect("planner must produce a valid plan");
    println!(
        "\n{}: {:.2} GB at {} stops, {:.0} J ({:.0} travel / {:.0} hover), planned in {:.1} ms",
        planner.name(),
        megabytes_as_gb(plan.collected_volume()),
        plan.stops.len(),
        plan.total_energy(&scenario).value(),
        plan.travel_energy(&scenario).value(),
        plan.hover_energy(&scenario).value(),
        dt.as_secs_f64() * 1e3,
    );
    if let Some(path) = &a.svg {
        uavdc::viz::write_svg(path, &uavdc::viz::render_plan_svg(&scenario, &plan))
            .expect("write SVG");
        println!("SVG written to {}", path.display());
    }
    if a.report || a.trace.is_some() {
        let outcome = simulate(&scenario, &plan, &SimConfig::default());
        if a.report {
            println!("\n{}", MissionReport::new(&outcome, &scenario));
        }
        if let Some(path) = &a.trace {
            uavdc::sim::write_trace_csv(path, &outcome).expect("write trace CSV");
            println!("trace written to {}", path.display());
        }
    }
}

fn run_fleet(a: &Args) {
    let scenario = build_scenario(a);
    describe(&scenario);
    let partition = match a.partition.as_str() {
        "sectors" => FleetPartition::Sectors,
        "kmeans" => FleetPartition::KMeans,
        other => {
            eprintln!("unknown partition: {other}");
            usage();
        }
    };
    let fleet = MultiUavPlanner::new(
        Alg2Planner::new(Alg2Config {
            delta: a.delta,
            ..Alg2Config::default()
        }),
        FleetConfig {
            fleet_size: a.uavs,
            partition,
        },
    )
    .plan_fleet(&scenario);
    fleet.validate(&scenario).expect("fleet plan must validate");
    println!(
        "\nfleet of {}: {:.2} GB total, busiest UAV {:.0} J",
        a.uavs,
        megabytes_as_gb(fleet.collected_volume()),
        fleet.max_energy(&scenario).value(),
    );
    for (u, plan) in fleet.plans.iter().enumerate() {
        println!(
            "  UAV {u}: {:.2} GB at {} stops ({:.0} J)",
            megabytes_as_gb(plan.collected_volume()),
            plan.stops.len(),
            plan.total_energy(&scenario).value(),
        );
    }
}

fn run_compare(a: &Args) {
    let scenario = build_scenario(a);
    describe(&scenario);
    println!(
        "\n{:<36} {:>10} {:>8} {:>12} {:>10}",
        "planner", "GB", "stops", "energy (J)", "ms"
    );
    for alg in ["alg1", "alg2", "alg3", "benchmark"] {
        let planner = make_planner(&Args {
            alg: alg.into(),
            ..clone_args(a)
        });
        let started = std::time::Instant::now();
        let plan = planner.plan(&scenario);
        let dt = started.elapsed();
        plan.validate(&scenario).expect("valid plan");
        println!(
            "{:<36} {:>10.2} {:>8} {:>12.0} {:>10.1}",
            planner.name(),
            megabytes_as_gb(plan.collected_volume()),
            plan.stops.len(),
            plan.total_energy(&scenario).value(),
            dt.as_secs_f64() * 1e3,
        );
    }
}

fn clone_args(a: &Args) -> Args {
    Args {
        alg: a.alg.clone(),
        deployment: a.deployment.clone(),
        partition: a.partition.clone(),
        trace: a.trace.clone(),
        svg: a.svg.clone(),
        save: a.save.clone(),
        load: a.load.clone(),
        ..*a
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else { usage() };
    let args = parse_args(&argv[1..]);
    match cmd.as_str() {
        "plan" => run_plan(&args),
        "fleet" => run_fleet(&args),
        "compare" => run_compare(&args),
        _ => usage(),
    }
}
