//! SVG rendering of scenarios and plans.
//!
//! Pure-string SVG generation (no dependencies): devices as dots sized by
//! stored volume, the depot as a square, the tour as a polyline, hovering
//! stops with their coverage discs. Useful for eyeballing planner output:
//!
//! ```
//! use uavdc::prelude::*;
//! use uavdc::viz::render_plan_svg;
//!
//! let scenario = uniform(&ScenarioParams::default().scaled(0.05), 1);
//! let plan = Alg2Planner::default().plan(&scenario);
//! let svg = render_plan_svg(&scenario, &plan);
//! assert!(svg.starts_with("<svg"));
//! ```

use uavdc_core::CollectionPlan;
use uavdc_net::Scenario;

/// Canvas size of the rendered SVG in pixels (square).
const CANVAS: f64 = 800.0;
/// Margin around the region, pixels.
const MARGIN: f64 = 30.0;

struct Mapper {
    min_x: f64,
    min_y: f64,
    scale: f64,
}

impl Mapper {
    fn new(scenario: &Scenario) -> Self {
        let r = &scenario.region;
        let span = r.width().max(r.height()).max(1e-9);
        Mapper {
            min_x: r.min.x,
            min_y: r.min.y,
            scale: (CANVAS - 2.0 * MARGIN) / span,
        }
    }

    fn x(&self, wx: f64) -> f64 {
        MARGIN + (wx - self.min_x) * self.scale
    }

    /// SVG y grows downward; world y grows upward.
    fn y(&self, wy: f64) -> f64 {
        CANVAS - MARGIN - (wy - self.min_y) * self.scale
    }

    fn d(&self, meters: f64) -> f64 {
        meters * self.scale
    }
}

/// Renders the scenario alone (devices + depot).
pub fn render_scenario_svg(scenario: &Scenario) -> String {
    let mut svg = header();
    draw_scenario(&mut svg, scenario, &Mapper::new(scenario), &[]);
    svg.push_str("</svg>\n");
    svg
}

/// Renders the scenario with a plan overlaid: the closed tour, each stop's
/// coverage disc, and collected devices highlighted.
pub fn render_plan_svg(scenario: &Scenario, plan: &CollectionPlan) -> String {
    let m = Mapper::new(scenario);
    let mut svg = header();

    // Collected-device set for coloring.
    let mut collected = vec![false; scenario.num_devices()];
    for stop in &plan.stops {
        for &(dev, _) in &stop.collected {
            collected[dev.index()] = true;
        }
    }

    // Coverage discs under everything else.
    let r0 = m.d(scenario.coverage_radius().value());
    for stop in &plan.stops {
        svg.push_str(&format!(
            "  <circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"{:.1}\" fill=\"#4c78a8\" fill-opacity=\"0.10\" stroke=\"#4c78a8\" stroke-opacity=\"0.35\"/>\n",
            m.x(stop.pos.x),
            m.y(stop.pos.y),
            r0,
        ));
    }

    // Tour polyline depot -> stops -> depot.
    let mut points = format!("{:.1},{:.1}", m.x(scenario.depot.x), m.y(scenario.depot.y));
    for stop in &plan.stops {
        points.push_str(&format!(" {:.1},{:.1}", m.x(stop.pos.x), m.y(stop.pos.y)));
    }
    points.push_str(&format!(
        " {:.1},{:.1}",
        m.x(scenario.depot.x),
        m.y(scenario.depot.y)
    ));
    svg.push_str(&format!(
        "  <polyline points=\"{points}\" fill=\"none\" stroke=\"#e45756\" stroke-width=\"1.5\"/>\n"
    ));

    draw_scenario(&mut svg, scenario, &m, &collected);

    // Stops on top.
    for (i, stop) in plan.stops.iter().enumerate() {
        svg.push_str(&format!(
            "  <circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"3.2\" fill=\"#e45756\"><title>stop {} — {:.1} s</title></circle>\n",
            m.x(stop.pos.x),
            m.y(stop.pos.y),
            i,
            stop.sojourn.value(),
        ));
    }
    svg.push_str("</svg>\n");
    svg
}

/// Writes an SVG string to a file, creating parent directories.
pub fn write_svg(path: &std::path::Path, svg: &str) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, svg)
}

fn header() -> String {
    format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{c}\" height=\"{c}\" viewBox=\"0 0 {c} {c}\">\n  <rect width=\"{c}\" height=\"{c}\" fill=\"#fdfdfc\"/>\n",
        c = CANVAS
    )
}

fn draw_scenario(svg: &mut String, scenario: &Scenario, m: &Mapper, collected: &[bool]) {
    // Region outline.
    let r = &scenario.region;
    svg.push_str(&format!(
        "  <rect x=\"{:.1}\" y=\"{:.1}\" width=\"{:.1}\" height=\"{:.1}\" fill=\"none\" stroke=\"#bbb\"/>\n",
        m.x(r.min.x),
        m.y(r.max.y),
        m.d(r.width()),
        m.d(r.height()),
    ));
    // Devices: radius scaled by sqrt(volume), colored by collection state.
    let max_vol = scenario
        .devices
        .iter()
        .map(|d| d.data.value())
        .fold(1.0f64, f64::max);
    for (i, dev) in scenario.devices.iter().enumerate() {
        let rr = 1.5 + 3.5 * (dev.data.value() / max_vol).sqrt();
        let fill = if collected.get(i).copied().unwrap_or(false) {
            "#54a24b"
        } else {
            "#9d9d9d"
        };
        svg.push_str(&format!(
            "  <circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"{:.1}\" fill=\"{}\"><title>device {} — {:.0} MB</title></circle>\n",
            m.x(dev.pos.x),
            m.y(dev.pos.y),
            rr,
            fill,
            i,
            dev.data.value(),
        ));
    }
    // Depot.
    svg.push_str(&format!(
        "  <rect x=\"{:.1}\" y=\"{:.1}\" width=\"9\" height=\"9\" fill=\"#f58518\" stroke=\"#333\"><title>depot</title></rect>\n",
        m.x(scenario.depot.x) - 4.5,
        m.y(scenario.depot.y) - 4.5,
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use uavdc_core::{Alg2Planner, Planner};
    use uavdc_net::generator::{uniform, ScenarioParams};

    fn small() -> Scenario {
        uniform(&ScenarioParams::default().scaled(0.04), 3)
    }

    #[test]
    fn scenario_svg_contains_all_devices_and_depot() {
        let s = small();
        let svg = render_scenario_svg(&s);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<circle").count(), s.num_devices());
        assert!(svg.contains("depot"));
    }

    #[test]
    fn plan_svg_adds_tour_discs_and_stops() {
        let s = small();
        let plan = Alg2Planner::default().plan(&s);
        assert!(!plan.stops.is_empty());
        let svg = render_plan_svg(&s, &plan);
        assert!(svg.contains("<polyline"));
        // Coverage disc + stop marker per stop, plus device circles.
        let circles = svg.matches("<circle").count();
        assert_eq!(circles, s.num_devices() + 2 * plan.stops.len());
        assert!(svg.contains("fill-opacity"));
        // Collected devices get the green fill.
        assert!(svg.contains("#54a24b"));
    }

    #[test]
    fn coordinates_stay_on_canvas() {
        let s = small();
        let plan = Alg2Planner::default().plan(&s);
        let svg = render_plan_svg(&s, &plan);
        for cap in svg.split("cx=\"").skip(1) {
            let v: f64 = cap.split('"').next().unwrap().parse().unwrap();
            assert!((0.0..=800.0).contains(&v), "cx {v} off canvas");
        }
        for cap in svg.split("cy=\"").skip(1) {
            let v: f64 = cap.split('"').next().unwrap().parse().unwrap();
            assert!((0.0..=800.0).contains(&v), "cy {v} off canvas");
        }
    }

    #[test]
    fn write_svg_creates_file() {
        let s = small();
        let svg = render_scenario_svg(&s);
        let dir = std::env::temp_dir().join("uavdc_svg_test");
        let path = dir.join("scene.svg");
        write_svg(&path, &svg).unwrap();
        assert!(std::fs::read_to_string(&path).unwrap().contains("<svg"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
