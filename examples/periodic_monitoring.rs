//! Periodic monitoring: the paper's premise ("stored data … will be
//! collected periodically by a UAV") run to steady state. Devices keep
//! generating data; the UAV flies one tour per period. How big a battery
//! keeps the backlog bounded, and what gets lost when buffers are finite?
//!
//! ```text
//! cargo run --release --example periodic_monitoring
//! ```

use uavdc::prelude::*;
use uavdc::sim::{run_periodic, PeriodicConfig};

fn main() {
    let params = ScenarioParams::default().scaled(0.15); // 75 devices
    let scenario = uniform(&params, 21);
    let rates = vec![MegaBytesPerSecond(0.3); scenario.num_devices()];
    println!(
        "{} devices generating {:.1} MB/s total; one tour every 30 min; buffers 1.5 GB each\n",
        scenario.num_devices(),
        rates.iter().map(|r| r.value()).sum::<f64>(),
    );
    println!(
        "{:>14} {:>14} {:>14} {:>14} {:>12}",
        "battery (J)", "collected GB", "dropped GB", "backlog GB", "stable?"
    );
    for capacity in [0.5e5, 1.0e5, 2.0e5, 3.0e5] {
        let mut s = scenario.clone();
        s.uav.capacity = Joules(capacity);
        let cfg = PeriodicConfig {
            rounds: 12,
            period: Seconds(1800.0),
            generation_rates: rates.clone(),
            buffer_capacity: Some(MegaBytes(1500.0)),
            sim: SimConfig {
                record_uploads: false,
                ..SimConfig::default()
            },
        };
        let out = run_periodic(&s, &Alg2Planner::default(), &cfg);
        assert!(out.conserves_data());
        println!(
            "{:>14.0} {:>14.2} {:>14.2} {:>14.2} {:>12}",
            capacity,
            megabytes_as_gb(out.total_collected),
            megabytes_as_gb(out.total_dropped),
            megabytes_as_gb(out.final_backlog),
            out.backlog_bounded_by(MegaBytes(0.6 * 1500.0 * s.num_devices() as f64)),
        );
    }
    println!(
        "\nReading: below a battery threshold the UAV cannot keep up —\n\
         buffers saturate and data is dropped every round; above it the\n\
         backlog stabilises near zero and nothing is lost."
    );
}
