//! Where partial collection pays off: the hover-dominated regime.
//!
//! The paper's Algorithm 3 lets the UAV hover a fraction `k/K` of the
//! full sojourn at a stop, draining big devices across several
//! overlapping stops. That only matters when *hovering* is a significant
//! share of the energy budget. This example sweeps the uplink bandwidth
//! `B`: at the paper's 150 MB/s hover energy is small and Algorithms 2
//! and 3 collect almost the same; as `B` drops (slower radios → longer
//! hovers) the partial-collection planner pulls ahead.
//!
//! ```text
//! cargo run --release --example partial_vs_full
//! ```

use uavdc::prelude::*;

fn main() {
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>10}",
        "B (MB/s)", "Alg2 (GB)", "Alg3 K=4", "gain (%)", "hover (%)"
    );
    for bandwidth in [150.0, 40.0, 20.0, 10.0, 5.0] {
        let params = ScenarioParams {
            bandwidth: MegaBytesPerSecond(bandwidth),
            ..ScenarioParams::default().scaled(0.3)
        };
        let mut full_gb = 0.0;
        let mut partial_gb = 0.0;
        let mut hover_share = 0.0;
        let instances = 5;
        for seed in 0..instances {
            let scenario = uniform(&params, seed);
            let full = Alg2Planner::default().plan(&scenario);
            let partial = Alg3Planner::with_k(4).plan(&scenario);
            full.validate(&scenario).unwrap();
            partial.validate(&scenario).unwrap();
            full_gb += megabytes_as_gb(full.collected_volume());
            partial_gb += megabytes_as_gb(partial.collected_volume());
            hover_share += partial.hover_energy(&scenario).value()
                / partial.total_energy(&scenario).value().max(1e-9);
        }
        let n = instances as f64;
        println!(
            "{:>10.0} {:>12.2} {:>12.2} {:>12.1} {:>10.1}",
            bandwidth,
            full_gb / n,
            partial_gb / n,
            100.0 * (partial_gb - full_gb) / full_gb.max(1e-9),
            100.0 * hover_share / n,
        );
    }
    println!(
        "\nReading: as bandwidth falls, hovering dominates the battery and\n\
         Algorithm 3's fractional sojourns (K=4) collect measurably more\n\
         than Algorithm 2's full-collection stops — the mechanism behind\n\
         the paper's Fig. 4(a) gap between the two algorithms."
    );
}
