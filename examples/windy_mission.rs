//! Robustness study: plans are budgeted in calm air, but real missions
//! fight headwind. How much battery margin does the operator need to
//! reserve for the UAV to make it home?
//!
//! For each reserve fraction we plan against a *derated* battery and then
//! simulate against the full battery under per-leg wind noise, measuring
//! completion rate and the data actually brought home (a crashed UAV
//! brings home nothing).
//!
//! ```text
//! cargo run --release --example windy_mission
//! ```

use uavdc::prelude::*;

fn main() {
    let gusty = (1.0, 1.5); // per-leg travel-energy factor range
    let trials = 20;
    println!(
        "wind: uniform per-leg factor in [{}, {}], {trials} missions per point",
        gusty.0, gusty.1
    );
    println!(
        "\n{:>10} {:>12} {:>14} {:>16}",
        "margin %", "planned GB", "completed %", "delivered GB"
    );
    for margin in [0.0, 0.1, 0.2, 0.3, 0.4] {
        let mut planned = 0.0;
        let mut completed = 0;
        let mut delivered = 0.0;
        for seed in 0..trials {
            let params = ScenarioParams::default().scaled(0.2);
            let scenario = uniform(&params, seed);
            // Plan with a derated battery...
            let mut derated = scenario.clone();
            derated.uav.capacity = scenario.uav.capacity * (1.0 - margin);
            let plan = Alg2Planner::default().plan(&derated);
            plan.validate(&derated).unwrap();
            planned += megabytes_as_gb(plan.collected_volume());
            // ...fly with the full battery in gusty air.
            let cfg = SimConfig {
                wind: WindModel::uniform(gusty.0, gusty.1, seed ^ 0xabcd),
                ..SimConfig::default()
            };
            let outcome = simulate(&scenario, &plan, &cfg);
            if outcome.completed {
                completed += 1;
            }
            delivered += megabytes_as_gb(outcome.collected);
        }
        let n = trials as f64;
        println!(
            "{:>10.0} {:>12.2} {:>14.0} {:>16.2}",
            margin * 100.0,
            planned / n,
            100.0 * completed as f64 / n,
            delivered / n,
        );
    }
    println!(
        "\nReading: without margin most missions die mid-air and deliver\n\
         nothing; each 10% of reserved battery trades planned volume for\n\
         completion rate, and delivered volume peaks at a moderate margin."
    );
}
