//! Multi-UAV fleet planning: how collected volume scales with the number
//! of UAVs sharing one depot, under both partitioning strategies.
//!
//! ```text
//! cargo run --release --example fleet
//! ```

use uavdc::prelude::*;

fn main() {
    // A constrained instance: the paper's density, one battery cannot
    // come close to covering it.
    let params = ScenarioParams::default().scaled(0.4); // 200 devices
    let scenario = uniform(&params, 99);
    println!(
        "{} devices, {:.1} GB stored, battery {} per UAV\n",
        scenario.num_devices(),
        megabytes_as_gb(scenario.total_data()),
        scenario.uav.capacity,
    );
    println!(
        "{:>6} {:>18} {:>12} {:>18} {:>12}",
        "UAVs", "sectors (GB)", "busiest (J)", "k-means (GB)", "busiest (J)"
    );
    for m in [1, 2, 3, 4, 6] {
        let sectors = MultiUavPlanner::new(
            Alg2Planner::default(),
            FleetConfig {
                fleet_size: m,
                partition: FleetPartition::Sectors,
            },
        )
        .plan_fleet(&scenario);
        sectors.validate(&scenario).expect("valid fleet plan");
        let kmeans = MultiUavPlanner::new(
            Alg2Planner::default(),
            FleetConfig {
                fleet_size: m,
                partition: FleetPartition::KMeans,
            },
        )
        .plan_fleet(&scenario);
        kmeans.validate(&scenario).expect("valid fleet plan");
        println!(
            "{:>6} {:>18.2} {:>12.0} {:>18.2} {:>12.0}",
            m,
            megabytes_as_gb(sectors.collected_volume()),
            sectors.max_energy(&scenario).value(),
            megabytes_as_gb(kmeans.collected_volume()),
            kmeans.max_energy(&scenario).value(),
        );
    }
    println!(
        "\nEach UAV flies its own battery; disjoint device partitions\n\
         guarantee no device is collected twice (FleetPlan::validate)."
    );
}
