//! Quickstart: generate the paper's default scenario (scaled down), plan
//! a tour with each algorithm, fly it in the simulator, and print a
//! comparison table.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use uavdc::prelude::*;

fn main() {
    // 100 devices in a ~450 m square, paper radio/UAV parameters.
    let params = ScenarioParams::default().scaled(0.2);
    let scenario = uniform(&params, 7);
    println!(
        "scenario: {} devices, {:.0} m x {:.0} m region, {:.1} GB stored, battery {}",
        scenario.num_devices(),
        scenario.region.width(),
        scenario.region.height(),
        megabytes_as_gb(scenario.total_data()),
        scenario.uav.capacity,
    );

    let planners: Vec<Box<dyn Planner>> = vec![
        Box::new(Alg1Planner::default()),
        Box::new(Alg2Planner::default()),
        Box::new(Alg3Planner::with_k(4)),
        Box::new(BenchmarkPlanner),
    ];

    println!(
        "\n{:<36} {:>10} {:>8} {:>12} {:>10}",
        "planner", "GB", "stops", "energy (J)", "sim ok"
    );
    for planner in planners {
        let plan = planner.plan(&scenario);
        plan.validate(&scenario)
            .expect("planner must produce a valid plan");
        let outcome = simulate(&scenario, &plan, &SimConfig::default());
        println!(
            "{:<36} {:>10.2} {:>8} {:>12.0} {:>10}",
            planner.name(),
            megabytes_as_gb(plan.collected_volume()),
            plan.stops.len(),
            plan.total_energy(&scenario).value(),
            outcome.agrees_with_plan(&plan, &scenario),
        );
    }

    // Inspect one mission's event log.
    let plan = Alg2Planner::default().plan(&scenario);
    let outcome = simulate(&scenario, &plan, &SimConfig::default());
    println!(
        "\nAlgorithm 2 mission: {:.0} s total, {} events, first five:",
        outcome.mission_time.value(),
        outcome.trace.len()
    );
    for event in outcome.trace.events.iter().take(5) {
        println!("  {event:?}");
    }
}
