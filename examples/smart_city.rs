//! Smart-city scenario: thousands of raw IoT devices cluster around
//! facilities; aggregate nodes are elected and non-aggregate devices
//! forward their data to them (the paper's §III.A system model), then an
//! energy-constrained UAV collects from the aggregates.
//!
//! Demonstrates the two-tier topology pipeline plus planning over a
//! clustered (non-uniform) deployment.
//!
//! ```text
//! cargo run --release --example smart_city
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use uavdc::net::topology::{aggregate_network, RawDevice};
use uavdc::net::units::Meters as M;
use uavdc::prelude::*;

fn main() {
    // --- Raw deployment: 2000 devices around 8 facilities ------------
    let mut rng = SmallRng::seed_from_u64(2024);
    let side = 1000.0;
    let facilities: Vec<Point2> = (0..8)
        .map(|_| {
            Point2::new(
                rng.gen_range(100.0..side - 100.0),
                rng.gen_range(100.0..side - 100.0),
            )
        })
        .collect();
    let mut raw = Vec::new();
    while raw.len() < 2000 {
        let c = facilities[rng.gen_range(0..facilities.len())];
        let (u1, u2): (f64, f64) = (rng.gen_range(1e-9..1.0f64), rng.gen_range(0.0..1.0));
        let r = 60.0 * (-2.0 * u1.ln()).sqrt();
        let th = 2.0 * std::f64::consts::PI * u2;
        let p = Point2::new(c.x + r * th.cos(), c.y + r * th.sin());
        if p.x < 0.0 || p.x > side || p.y < 0.0 || p.y > side {
            continue;
        }
        raw.push(RawDevice {
            pos: p,
            data: MegaBytes(rng.gen_range(10.0..80.0)),
        });
    }
    let total_raw: f64 = raw.iter().map(|d| d.data.value()).sum();

    // --- Aggregate election + forwarding (comm range 40 m) -----------
    let outcome = aggregate_network(&raw, M(40.0));
    println!(
        "raw devices: {} ({:.1} GB) -> aggregates: {} ({:.1} GB), stranded: {}",
        raw.len(),
        total_raw / 1000.0,
        outcome.aggregates.len(),
        megabytes_as_gb(outcome.aggregated_data()),
        outcome.stranded.len(),
    );

    // --- Scenario over the aggregates ---------------------------------
    let scenario = Scenario {
        region: uavdc::geom::Aabb::square(side),
        devices: outcome.aggregates,
        depot: Point2::new(side / 2.0, side / 2.0),
        radio: RadioModel::with_ground_radius(M(50.0), M(0.0), MegaBytesPerSecond(150.0)),
        uav: UavSpec::paper_eval(),
    };
    scenario.validate().expect("valid scenario");

    // --- Plan and fly --------------------------------------------------
    for planner in [
        Box::new(Alg2Planner::default()) as Box<dyn Planner>,
        Box::new(Alg3Planner::with_k(4)),
        Box::new(BenchmarkPlanner),
    ] {
        let plan = planner.plan(&scenario);
        plan.validate(&scenario).unwrap();
        let sim = simulate(&scenario, &plan, &SimConfig::default());
        assert!(sim.agrees_with_plan(&plan, &scenario));
        println!(
            "{:<36} collected {:>7.2} GB at {:>3} stops ({:.0}% of aggregated data)",
            planner.name(),
            megabytes_as_gb(plan.collected_volume()),
            plan.stops.len(),
            100.0 * plan.collected_volume().value() / scenario.total_data().value(),
        );
    }
}
