//! The paper's benchmark heuristic (§VII.A).
//!
//! Build a Christofides tour over *all* aggregate sensor nodes; if its
//! hovering + travel energy exceeds the battery, repeatedly remove the
//! tour node whose removal loses the least data volume per unit of energy
//! saved, until feasible.
//!
//! Collection follows the same physical framework as the planners: the
//! UAV hovering above a node receives from *every* device within coverage
//! radius `R0` simultaneously, each device being collected at its first
//! covering stop in tour order (this is what reproduces the paper's
//! benchmark magnitudes — e.g. ≈ 74 GB at `E = 3·10⁵ J` in Fig. 4 — which
//! single-node collection undershoots by ~3x). The pruning ratio uses the
//! *marginal* data loss of removing a stop: data nobody else on the tour
//! still covers.

use crate::greedy::{EngineMode, EvalCounters, PlanStats};
use crate::plan::{CollectionPlan, HoverStop};
use crate::tourutil::{apply_order, christofides_order_obs, closed_tour_length, removal_delta};
use crate::Planner;
use uavdc_geom::{Point2, SpatialGrid};
use uavdc_net::units::Seconds;
use uavdc_net::{DeviceId, Scenario};
use uavdc_obs::{Recorder, Span};

/// The benchmark planner (no configuration; [`Planner::plan`] uses the
/// incremental pruning engine, [`BenchmarkPlanner::plan_with_stats`]
/// selects the engine explicitly).
#[derive(Clone, Copy, Debug, Default)]
pub struct BenchmarkPlanner;

/// The benchmark pruner's capacity-independent setup artifact: per-device
/// coverage lists plus the initial Christofides tour over depot + all
/// devices. Depends only on the scenario *layout* (positions, coverage
/// radius), never on the battery, so capacity sweeps over one instance
/// can share it through `uavdc-bench`'s artifact cache (keyed by
/// `Scenario::layout_fingerprint`).
#[derive(Clone, Debug)]
pub struct BenchmarkSetup {
    /// Devices within `R0` of each device's position (by device index).
    coverage: Vec<Vec<u32>>,
    /// Initial tour positions in Christofides order; index 0 is the depot.
    pts: Vec<Point2>,
    /// Device hovered above per tour index (`usize::MAX` for the depot).
    dev_of: Vec<usize>,
}

impl BenchmarkSetup {
    /// Builds the artifact, reporting the Christofides sub-spans to
    /// `rec`. Requires a non-empty scenario (the planner's empty-scenario
    /// early return never consults the artifact).
    pub fn build_obs(scenario: &Scenario, rec: &dyn Recorder) -> Self {
        let n = scenario.num_devices();
        let r0 = scenario.coverage_radius().value();

        // Coverage lists per device position.
        let positions = scenario.device_positions();
        let index = SpatialGrid::build(&positions, r0.max(1.0));
        let coverage: Vec<Vec<u32>> = positions
            .iter()
            .map(|&p| {
                index
                    .query_radius(p, r0)
                    .into_iter()
                    .map(|i| i as u32)
                    .collect()
            })
            .collect();

        // Initial Christofides tour over depot + all devices (polished
        // once up front; the pruning loop then only removes nodes, so its
        // per-iteration cost shrinks as the battery grows — the runtime
        // shape the paper reports).
        let mut pts: Vec<Point2> = Vec::with_capacity(n + 1);
        pts.push(scenario.depot);
        pts.extend(positions.iter().copied());
        let order = christofides_order_obs(&pts, rec);
        let pts = apply_order(&pts, &order);
        let dev_of: Vec<usize> = order
            .iter()
            .map(|&i| if i == 0 { usize::MAX } else { i - 1 })
            .collect();
        BenchmarkSetup {
            coverage,
            pts,
            dev_of,
        }
    }

    /// Builds the artifact without instrumentation.
    pub fn build(scenario: &Scenario) -> Self {
        BenchmarkSetup::build_obs(scenario, &uavdc_obs::NOOP)
    }

    /// Number of stops on the initial tour (depot included).
    pub fn tour_len(&self) -> usize {
        self.pts.len()
    }
}

/// Working state of the pruning loop.
struct PruneState<'a> {
    scenario: &'a Scenario,
    /// Tour positions; index 0 is the depot.
    pts: Vec<Point2>,
    /// Device hovered above per tour index (`usize::MAX` for the depot).
    dev_of: Vec<usize>,
    /// Devices within `R0` of each device's position (by device index).
    coverage: Vec<Vec<u32>>,
}

impl<'a> PruneState<'a> {
    /// Assigns every device to its first covering stop in tour order and
    /// returns `(per-stop new-device lists, per-stop hover seconds,
    /// total hover energy)`.
    fn assignments(&self) -> (Vec<Vec<u32>>, Vec<f64>, f64) {
        let b = self.scenario.radio.bandwidth.value();
        let eta_h = self.scenario.uav.hover_power.value();
        let mut taken = vec![false; self.scenario.num_devices()];
        let mut new_devices = vec![Vec::new(); self.pts.len()];
        let mut hover_s = vec![0.0; self.pts.len()];
        let mut hover_energy = 0.0;
        for i in 1..self.pts.len() {
            let dev = self.dev_of[i];
            let mut t = 0.0f64;
            for &v in &self.coverage[dev] {
                if !taken[v as usize] {
                    taken[v as usize] = true;
                    new_devices[i].push(v);
                    t = t.max(self.scenario.devices[v as usize].data.value() / b);
                }
            }
            hover_s[i] = t;
            hover_energy += t * eta_h;
        }
        (new_devices, hover_s, hover_energy)
    }
}

/// One pruning pass with a full rescan per iteration (the reference the
/// incremental engine is validated against).
fn prune_exhaustive(state: &mut PruneState<'_>, counters: &mut EvalCounters) {
    let scenario = state.scenario;
    let n = scenario.num_devices();
    let eta_h = scenario.uav.hover_power.value();
    let per_m = scenario.uav.travel_energy_per_meter().value();
    let capacity = scenario.uav.capacity.value();
    loop {
        counters.iterations += 1;
        let (_, hover_s, hover_energy) = state.assignments();
        let tour_len = closed_tour_length(&state.pts);
        if hover_energy + tour_len * per_m <= capacity || state.pts.len() <= 1 {
            break;
        }
        counters.marginal_evals += (state.pts.len() - 1) as u64;
        counters.evaluations += (state.pts.len() - 1) as u64;
        // Marginal data loss of removing stop i: the data of devices
        // assigned to i that no other remaining stop covers.
        let mut covering_stops = vec![0u32; n];
        #[allow(clippy::needless_range_loop)] // several arrays indexed by i
        for i in 1..state.pts.len() {
            for &v in &state.coverage[state.dev_of[i]] {
                covering_stops[v as usize] += 1;
            }
        }
        let mut best_idx = usize::MAX;
        let mut best_ratio = f64::INFINITY;
        #[allow(clippy::needless_range_loop)] // several arrays indexed by i
        for i in 1..state.pts.len() {
            let dev = state.dev_of[i];
            let lost: f64 = state.coverage[dev]
                .iter()
                .filter(|&&v| covering_stops[v as usize] == 1)
                .map(|&v| scenario.devices[v as usize].data.value())
                .sum();
            let saved = removal_delta(&state.pts, i) * per_m + hover_s[i] * eta_h;
            let ratio = lost / saved.max(1e-12);
            if ratio < best_ratio {
                best_ratio = ratio;
                best_idx = i;
            }
        }
        if best_idx == usize::MAX {
            break;
        }
        state.pts.remove(best_idx);
        state.dev_of.remove(best_idx);
    }
}

/// Incremental pruning: maintains per-device covering-stop counts, the
/// first-covering-stop assignment, per-stop hover seconds, and cached
/// per-stop `lost` sums across removals, so each iteration recomputes
/// only the stops a removal actually touched. The argmin itself stays the
/// exhaustive pass's plain ascending strict-`<` fold over O(|tour|)
/// cached values, and every cached quantity is kept bit-identical to the
/// full rescan (same filtered coverage-order sums, max-merged hover
/// times, fresh O(|tour|) energy totals per iteration), so the removal
/// sequence — and the final plan — matches [`prune_exhaustive`] exactly
/// (property-tested; DESIGN.md §8).
fn prune_lazy(state: &mut PruneState<'_>, counters: &mut EvalCounters, rec: &dyn Recorder) {
    let scenario = state.scenario;
    let n = scenario.num_devices();
    let eta_h = scenario.uav.hover_power.value();
    let per_m = scenario.uav.travel_energy_per_meter().value();
    let capacity = scenario.uav.capacity.value();
    let b = scenario.radio.bandwidth.value();
    let len0 = state.pts.len();

    // Tour position of each device's own stop (`usize::MAX` once pruned).
    let mut device_pos: Vec<usize> = vec![usize::MAX; n];
    for i in 1..len0 {
        device_pos[state.dev_of[i]] = i;
    }
    // Number of on-tour stops covering each device.
    let mut covering_stops = vec![0u32; n];
    for i in 1..len0 {
        for &v in &state.coverage[state.dev_of[i]] {
            covering_stops[v as usize] += 1;
        }
    }
    // First-covering-stop assignment (same sweep as `assignments`).
    let mut assigned: Vec<Vec<u32>> = vec![Vec::new(); len0];
    let mut hover_s: Vec<f64> = vec![0.0; len0];
    {
        let mut taken = vec![false; n];
        for i in 1..len0 {
            let mut t = 0.0f64;
            for &v in &state.coverage[state.dev_of[i]] {
                if !taken[v as usize] {
                    taken[v as usize] = true;
                    assigned[i].push(v);
                    t = t.max(scenario.devices[v as usize].data.value() / b);
                }
            }
            hover_s[i] = t;
        }
    }
    // Cached marginal loss per stop; every entry starts dirty.
    let mut lost: Vec<f64> = vec![0.0; len0];
    let mut lost_dirty: Vec<bool> = vec![true; len0];

    loop {
        counters.iterations += 1;
        // Fresh O(|tour|) energy totals each iteration, accumulated in
        // the same order as `assignments` for bit-identical sums.
        let mut hover_energy = 0.0f64;
        for &h in hover_s.iter().skip(1) {
            hover_energy += h * eta_h;
        }
        let tour_len = closed_tour_length(&state.pts);
        if hover_energy + tour_len * per_m <= capacity || state.pts.len() <= 1 {
            break;
        }
        // Refresh stale loss caches (the filtered sum runs in coverage
        // order, exactly like the exhaustive pass).
        let mut refreshed = 0u64;
        for i in 1..state.pts.len() {
            if !lost_dirty[i] {
                continue;
            }
            lost_dirty[i] = false;
            counters.marginal_evals += 1;
            counters.evaluations += 1;
            refreshed += 1;
            let dev = state.dev_of[i];
            lost[i] = state.coverage[dev]
                .iter()
                .filter(|&&v| covering_stops[v as usize] == 1)
                .map(|&v| scenario.devices[v as usize].data.value())
                .sum();
        }
        rec.observe("bench.loss_refreshes_per_iter", refreshed);
        let mut best_idx = usize::MAX;
        let mut best_ratio = f64::INFINITY;
        #[allow(clippy::needless_range_loop)] // several arrays indexed by i
        for i in 1..state.pts.len() {
            let saved = removal_delta(&state.pts, i) * per_m + hover_s[i] * eta_h;
            let ratio = lost[i] / saved.max(1e-12);
            if ratio < best_ratio {
                best_ratio = ratio;
                best_idx = i;
            }
        }
        if best_idx == usize::MAX {
            break;
        }
        // Remove the stop and repair the incremental structures.
        let removed_dev = state.dev_of[best_idx];
        let orphans = std::mem::take(&mut assigned[best_idx]);
        state.pts.remove(best_idx);
        state.dev_of.remove(best_idx);
        assigned.remove(best_idx);
        hover_s.remove(best_idx);
        lost.remove(best_idx);
        lost_dirty.remove(best_idx);
        device_pos[removed_dev] = usize::MAX;
        for p in device_pos.iter_mut() {
            if *p != usize::MAX && *p > best_idx {
                *p -= 1;
            }
        }
        // Decrement covering counts; a device dropping to a single
        // remaining coverer changes that coverer's marginal loss.
        for &v in &state.coverage[removed_dev] {
            let v = v as usize;
            covering_stops[v] -= 1;
            if covering_stops[v] == 1 {
                for &d in &state.coverage[v] {
                    let p = device_pos[d as usize];
                    if p != usize::MAX {
                        lost_dirty[p] = true;
                    }
                }
            }
        }
        // Reassign the removed stop's devices to their next covering
        // stop in tour order (max-merge keeps hover times exact).
        for &v in &orphans {
            let mut next = usize::MAX;
            for &d in &state.coverage[v as usize] {
                let p = device_pos[d as usize];
                if p < next {
                    next = p;
                }
            }
            if next != usize::MAX {
                assigned[next].push(v);
                hover_s[next] = hover_s[next].max(scenario.devices[v as usize].data.value() / b);
            }
        }
    }
}

impl BenchmarkPlanner {
    /// Plans with an explicit engine choice and returns the work/timing
    /// breakdown alongside the plan. `counters.candidates` is the
    /// initial tour's stop count (the benchmark has no grid candidates).
    pub fn plan_with_stats(
        &self,
        scenario: &Scenario,
        engine: EngineMode,
    ) -> (CollectionPlan, PlanStats) {
        self.plan_with_stats_obs(scenario, engine, &uavdc_obs::NOOP)
    }

    /// Like [`plan_with_stats`](BenchmarkPlanner::plan_with_stats),
    /// reporting spans (`bench/setup` covering the initial Christofides
    /// tour, `bench/prune`), end-of-run counters, and per-iteration
    /// histograms to `rec`. With the no-op recorder this is the same
    /// computation producing bit-identical plans (property-tested in
    /// `tests/obs_noop_equivalence.rs`).
    pub fn plan_with_stats_obs(
        &self,
        scenario: &Scenario,
        engine: EngineMode,
        rec: &dyn Recorder,
    ) -> (CollectionPlan, PlanStats) {
        self.plan_prepared_obs(scenario, engine, None, rec)
    }

    /// Recorder-free twin of
    /// [`plan_prepared_obs`](BenchmarkPlanner::plan_prepared_obs).
    pub fn plan_prepared(
        &self,
        scenario: &Scenario,
        engine: EngineMode,
        prepared: Option<&BenchmarkSetup>,
    ) -> (CollectionPlan, PlanStats) {
        self.plan_prepared_obs(scenario, engine, prepared, &uavdc_obs::NOOP)
    }

    /// Like [`plan_with_stats_obs`](BenchmarkPlanner::plan_with_stats_obs),
    /// optionally reusing a prebuilt [`BenchmarkSetup`] instead of
    /// rebuilding it. `prepared` must be exactly what
    /// [`BenchmarkSetup::build_obs`] would produce for this scenario (the
    /// keying contract of `uavdc-bench`'s artifact cache). The pruning
    /// loop runs on a clone of the artifact either way, so cold and
    /// prepared runs share every instruction after setup and produce
    /// bit-identical plans and counters (property-tested in
    /// `uavdc-bench/tests/service_cache_invisibility.rs`); only
    /// `setup_ns` shrinks.
    pub fn plan_prepared_obs(
        &self,
        scenario: &Scenario,
        engine: EngineMode,
        prepared: Option<&BenchmarkSetup>,
        rec: &dyn Recorder,
    ) -> (CollectionPlan, PlanStats) {
        let root = Span::root(rec, "bench");
        // lint:allow(effect-taint): wall-clock runtime stats only; never influence plan content
        let setup_start = std::time::Instant::now();
        let n = scenario.num_devices();
        let mut stats = PlanStats {
            engine,
            counters: EvalCounters {
                candidates: n,
                ..EvalCounters::default()
            },
            setup_ns: 0,
            loop_ns: 0,
        };
        if n == 0 {
            stats.setup_ns = setup_start.elapsed().as_nanos() as u64;
            return (CollectionPlan::empty(), stats);
        }
        let setup_span = root.child("setup");
        let built;
        let setup = match prepared {
            Some(s) => s,
            None => {
                built = BenchmarkSetup::build_obs(scenario, rec);
                &built
            }
        };
        let mut state = PruneState {
            scenario,
            pts: setup.pts.clone(),
            dev_of: setup.dev_of.clone(),
            coverage: setup.coverage.clone(),
        };
        stats.setup_ns = setup_start.elapsed().as_nanos() as u64;
        drop(setup_span);

        // lint:allow(effect-taint): wall-clock runtime stats only; never influence plan content
        let loop_start = std::time::Instant::now();
        let prune_span = root.child("prune");
        match engine {
            EngineMode::Lazy => prune_lazy(&mut state, &mut stats.counters, rec),
            EngineMode::Exhaustive => prune_exhaustive(&mut state, &mut stats.counters),
        }
        drop(prune_span);
        stats.loop_ns = loop_start.elapsed().as_nanos() as u64;
        let c = &stats.counters;
        rec.add("bench.initial_stops", c.candidates as u64);
        rec.add("bench.iterations", c.iterations);
        rec.add("bench.evaluations", c.evaluations);
        rec.add("bench.marginal_evals", c.marginal_evals);

        // Materialise stops from the final assignment.
        let capacity = scenario.uav.capacity.value();
        let (new_devices, hover_s, _) = state.assignments();
        let stops = (1..state.pts.len())
            .filter(|&i| !new_devices[i].is_empty() || hover_s[i] > 0.0)
            .map(|i| HoverStop {
                pos: state.pts[i],
                sojourn: Seconds(hover_s[i]),
                collected: new_devices[i]
                    .iter()
                    .map(|&v| (DeviceId(v), scenario.devices[v as usize].data))
                    .collect(),
            })
            .collect();
        let plan = CollectionPlan { stops };
        debug_assert!(plan.total_energy(scenario).value() <= capacity * (1.0 + 1e-9) + 1e-9);
        let _ = capacity;
        (plan, stats)
    }
}

impl Planner for BenchmarkPlanner {
    fn name(&self) -> &'static str {
        "Benchmark (Christofides + prune)"
    }

    fn plan(&self, scenario: &Scenario) -> CollectionPlan {
        self.plan_with_stats(scenario, EngineMode::Lazy).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uavdc_geom::Aabb;
    use uavdc_net::units::{Joules, MegaBytes, MegaBytesPerSecond, Meters};
    use uavdc_net::{IotDevice, RadioModel, UavSpec};

    fn scenario(capacity: f64, devices: Vec<(f64, f64, f64)>) -> Scenario {
        Scenario {
            region: Aabb::square(200.0),
            devices: devices
                .into_iter()
                .map(|(x, y, d)| IotDevice {
                    pos: Point2::new(x, y),
                    data: MegaBytes(d),
                })
                .collect(),
            depot: Point2::new(0.0, 0.0),
            radio: RadioModel::new(Meters(20.0), MegaBytesPerSecond(150.0)),
            uav: UavSpec {
                capacity: Joules(capacity),
                ..UavSpec::paper_default()
            },
        }
    }

    #[test]
    fn generous_budget_collects_everything() {
        let s = scenario(
            50_000.0,
            vec![
                (40.0, 40.0, 300.0),
                (120.0, 50.0, 450.0),
                (60.0, 150.0, 150.0),
            ],
        );
        let plan = BenchmarkPlanner.plan(&s);
        plan.validate(&s).unwrap();
        assert_eq!(plan.collected_volume(), MegaBytes(900.0));
    }

    #[test]
    fn coverage_semantics_collects_neighbors_at_one_stop() {
        // Two devices 10 m apart (coverage 20 m): visiting either stop
        // collects both, and the duplicate stop hovers zero seconds.
        let s = scenario(50_000.0, vec![(40.0, 40.0, 300.0), (50.0, 40.0, 600.0)]);
        let plan = BenchmarkPlanner.plan(&s);
        plan.validate(&s).unwrap();
        assert_eq!(plan.collected_volume(), MegaBytes(900.0));
        let total_devices: usize = plan.stops.iter().map(|st| st.collected.len()).sum();
        assert_eq!(total_devices, 2, "each device collected exactly once");
        // The first covering stop got both; hover time is the max need.
        let first = plan
            .stops
            .iter()
            .find(|st| st.collected.len() == 2)
            .unwrap();
        assert!((first.sojourn.value() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn tight_budget_prunes_low_value_far_nodes() {
        let s = scenario(
            4000.0,
            vec![
                (30.0, 30.0, 900.0),
                (35.0, 30.0, 800.0),
                (190.0, 190.0, 100.0),
            ],
        );
        let plan = BenchmarkPlanner.plan(&s);
        plan.validate(&s).unwrap();
        let kept: Vec<u32> = plan
            .stops
            .iter()
            .flat_map(|st| st.collected.iter().map(|&(d, _)| d.0))
            .collect();
        assert!(
            !kept.contains(&2),
            "far low-value node should be pruned, kept {kept:?}"
        );
        assert!(kept.contains(&0) && kept.contains(&1));
    }

    #[test]
    fn zero_capacity_empty_plan() {
        let s = scenario(0.0, vec![(40.0, 40.0, 300.0)]);
        let plan = BenchmarkPlanner.plan(&s);
        plan.validate(&s).unwrap();
        assert!(plan.stops.is_empty());
    }

    #[test]
    fn empty_scenario() {
        let s = scenario(1000.0, vec![]);
        assert!(BenchmarkPlanner.plan(&s).stops.is_empty());
    }

    #[test]
    fn feasible_for_a_range_of_budgets() {
        let devices: Vec<(f64, f64, f64)> = (0..40)
            .map(|i| {
                (
                    ((i * 37) % 200) as f64,
                    ((i * 53) % 200) as f64,
                    100.0 + (i * 23 % 900) as f64,
                )
            })
            .collect();
        for cap in [500.0, 2000.0, 10_000.0, 100_000.0] {
            let s = scenario(cap, devices.clone());
            let plan = BenchmarkPlanner.plan(&s);
            plan.validate(&s)
                .unwrap_or_else(|e| panic!("capacity {cap}: {e}"));
        }
    }

    #[test]
    fn collected_volume_monotone_in_budget() {
        let devices: Vec<(f64, f64, f64)> = (0..30)
            .map(|i| {
                (
                    ((i * 41) % 200) as f64,
                    ((i * 29) % 200) as f64,
                    200.0 + (i * 31 % 700) as f64,
                )
            })
            .collect();
        let mut prev = -1.0;
        for cap in [1000.0, 5000.0, 20_000.0, 80_000.0] {
            let s = scenario(cap, devices.clone());
            let v = BenchmarkPlanner.plan(&s).collected_volume().value();
            assert!(
                v >= prev - 1e-6,
                "volume decreased: {v} after {prev} at cap {cap}"
            );
            prev = v;
        }
    }

    #[test]
    fn pruning_keeps_marginal_coverage_consistent() {
        // Devices covered by several stops must not be lost when one of
        // their covering stops is pruned.
        let s = scenario(
            6000.0,
            vec![
                (30.0, 30.0, 500.0),
                (45.0, 30.0, 500.0),
                (38.0, 35.0, 400.0), // covered by both neighbours
                (150.0, 150.0, 100.0),
            ],
        );
        let plan = BenchmarkPlanner.plan(&s);
        plan.validate(&s).unwrap();
        let collected: std::collections::HashSet<u32> = plan
            .stops
            .iter()
            .flat_map(|st| st.collected.iter().map(|&(d, _)| d.0))
            .collect();
        // Device 2 sits between 0 and 1; if either of those stops
        // survives, device 2 must be collected.
        if collected.contains(&0) || collected.contains(&1) {
            assert!(collected.contains(&2));
        }
    }
}
