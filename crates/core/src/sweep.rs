//! Sweep-coverage baseline: a planner that ignores where the data is.
//!
//! Lays hovering stops on a boustrophedon (serpentine) lattice with rows
//! spaced `√2·R0` apart — the widest spacing whose square cells stay
//! fully covered — hovers at every stop long enough to drain all newly
//! covered devices, and truncates the sweep when the battery runs out.
//! A classic area-coverage strategy and a useful second baseline: it
//! shows how much the paper's data-aware planning actually buys over
//! blind coverage.

use crate::plan::{CollectionPlan, HoverStop};
use crate::Planner;
use uavdc_geom::{Point2, SpatialGrid};
use uavdc_net::units::Seconds;
use uavdc_net::{DeviceId, Scenario};

/// The sweep-coverage planner (no configuration; the lattice pitch is
/// derived from the coverage radius).
#[derive(Clone, Copy, Debug, Default)]
pub struct SweepPlanner;

impl Planner for SweepPlanner {
    fn name(&self) -> &'static str {
        "Sweep coverage (boustrophedon)"
    }

    fn plan(&self, scenario: &Scenario) -> CollectionPlan {
        if scenario.num_devices() == 0 {
            return CollectionPlan::empty();
        }
        let r0 = scenario.coverage_radius().value();
        // √2·R0 is the exact covering pitch; back off 1% so cell-corner
        // devices are strictly inside coverage despite float rounding.
        let pitch = (r0 * std::f64::consts::SQRT_2 * 0.99).max(1e-6);
        let region = &scenario.region;
        let b = scenario.radio.bandwidth.value();
        let eta_h = scenario.uav.hover_power.value();
        let per_m = scenario.uav.travel_energy_per_meter().value();
        let capacity = scenario.uav.capacity.value();

        // Serpentine lattice of stop positions covering the region.
        let cols = (region.width() / pitch).ceil() as usize;
        let rows = (region.height() / pitch).ceil() as usize;
        let mut lattice = Vec::with_capacity(rows * cols);
        for row in 0..rows {
            let y = region.min.y + (row as f64 + 0.5) * pitch;
            let xs: Vec<f64> = (0..cols)
                .map(|c| region.min.x + (c as f64 + 0.5) * pitch)
                .collect();
            if row % 2 == 0 {
                lattice.extend(xs.iter().map(|&x| Point2::new(x, y)));
            } else {
                lattice.extend(xs.iter().rev().map(|&x| Point2::new(x, y)));
            }
        }

        let positions = scenario.device_positions();
        let index = SpatialGrid::build(&positions, r0.max(1.0));
        let mut taken = vec![false; scenario.num_devices()];
        let mut stops: Vec<HoverStop> = Vec::new();
        let mut pos = scenario.depot;
        let mut energy = 0.0f64;
        for lp in lattice {
            // Marginal devices at this lattice stop.
            let mut new_devices = Vec::new();
            let mut sojourn = 0.0f64;
            for i in index.query_radius(lp, r0) {
                if !taken[i] {
                    new_devices.push(i);
                    sojourn = sojourn.max(positions_data(scenario, i) / b);
                }
            }
            if new_devices.is_empty() {
                continue; // skip empty cells entirely (no travel spent)
            }
            // Budget check: leg there + hover + direct return to depot.
            let leg = pos.distance(lp);
            let back = lp.distance(scenario.depot);
            let cost_here = leg * per_m + sojourn * eta_h;
            if energy + cost_here + back * per_m > capacity {
                continue; // try later (cheaper) stops on the serpentine
            }
            for &i in &new_devices {
                taken[i] = true;
            }
            stops.push(HoverStop {
                pos: lp,
                sojourn: Seconds(sojourn),
                collected: new_devices
                    .iter()
                    .map(|&i| (DeviceId(i as u32), scenario.devices[i].data))
                    .collect(),
            });
            energy += cost_here;
            pos = lp;
        }
        let plan = CollectionPlan { stops };
        debug_assert!(plan.validate(scenario).is_ok());
        plan
    }
}

fn positions_data(scenario: &Scenario, i: usize) -> f64 {
    scenario.devices[i].data.value()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Alg2Planner, Planner};
    use uavdc_geom::Aabb;
    use uavdc_net::units::{Joules, MegaBytes, MegaBytesPerSecond, Meters};
    use uavdc_net::{IotDevice, RadioModel, UavSpec};

    fn scenario(capacity: f64, n: usize) -> Scenario {
        Scenario {
            region: Aabb::square(300.0),
            devices: (0..n)
                .map(|i| IotDevice {
                    pos: Point2::new(((i * 71) % 300) as f64, ((i * 113) % 300) as f64),
                    data: MegaBytes(100.0 + ((i * 37) % 800) as f64),
                })
                .collect(),
            depot: Point2::new(150.0, 150.0),
            radio: RadioModel::new(Meters(40.0), MegaBytesPerSecond(150.0)),
            uav: UavSpec {
                capacity: Joules(capacity),
                ..UavSpec::paper_eval()
            },
        }
    }

    #[test]
    fn generous_budget_covers_every_device() {
        let s = scenario(1.0e6, 30);
        let plan = SweepPlanner.plan(&s);
        plan.validate(&s).unwrap();
        // Summation order differs, so compare within float tolerance.
        assert!(
            (plan.collected_volume().value() - s.total_data().value()).abs() < 1e-6,
            "collected {} of {}",
            plan.collected_volume(),
            s.total_data()
        );
    }

    #[test]
    fn constrained_budget_stays_feasible() {
        for cap in [1000.0, 20_000.0, 80_000.0] {
            let s = scenario(cap, 40);
            let plan = SweepPlanner.plan(&s);
            plan.validate(&s)
                .unwrap_or_else(|e| panic!("cap {cap}: {e}"));
        }
    }

    #[test]
    fn data_aware_planning_beats_blind_sweep_when_constrained() {
        // The whole point of the paper: Algorithm 2 should beat blind
        // coverage on a constrained budget.
        let s = scenario(60_000.0, 50);
        let sweep = SweepPlanner.plan(&s);
        let alg2 = Alg2Planner::default().plan(&s);
        assert!(
            alg2.collected_volume().value() >= sweep.collected_volume().value(),
            "alg2 {} < sweep {}",
            alg2.collected_volume(),
            sweep.collected_volume()
        );
    }

    #[test]
    fn empty_cells_are_skipped() {
        // All devices in one corner: the sweep must not hover over the
        // empty remainder of the region.
        let mut s = scenario(1.0e6, 0);
        s.devices = (0..5)
            .map(|i| IotDevice {
                pos: Point2::new(10.0 + 5.0 * i as f64, 10.0),
                data: MegaBytes(200.0),
            })
            .collect();
        let plan = SweepPlanner.plan(&s);
        plan.validate(&s).unwrap();
        assert!(
            plan.stops.len() <= 3,
            "too many stops: {}",
            plan.stops.len()
        );
        assert_eq!(plan.collected_volume(), MegaBytes(1000.0));
    }

    #[test]
    fn empty_scenario() {
        let mut s = scenario(1000.0, 1);
        s.devices.clear();
        assert!(SweepPlanner.plan(&s).stops.is_empty());
    }
}
