//! Geometric tour helpers shared by the greedy planners.
//!
//! The greedy planners (Algorithms 2/3 and the benchmark) maintain their
//! tours as point sequences with the depot fixed at index 0; these helpers
//! keep that invariant while providing the usual construction and
//! improvement moves.

use uavdc_geom::Point2;
use uavdc_graph::christofides::{christofides_with_obs, ChristofidesConfig};
use uavdc_graph::DistMatrix;

/// Length of the closed tour through `pts` (first point is the depot),
/// in raw metres: this module is crate-private hot-path machinery (a
/// declared perf-critical module, DESIGN.md §9), so it stays in f64.
pub(crate) fn closed_tour_length(pts: &[Point2]) -> f64 {
    uavdc_geom::tour_length(pts)
}

/// Cheapest insertion of `p` into the closed tour `pts`: returns
/// `(delta, pos)` with `pos >= 1` (the depot at index 0 is never
/// displaced; `pos == pts.len()` appends on the closing edge).
pub fn cheapest_insertion_point(pts: &[Point2], p: Point2) -> (f64, usize) {
    match pts.len() {
        0 => (0.0, 1),
        1 => (2.0 * pts[0].distance(p), 1),
        n => {
            let mut best = f64::INFINITY;
            let mut pos = 1;
            for i in 0..n {
                let a = pts[i];
                let b = pts[(i + 1) % n];
                let delta = a.distance(p) + p.distance(b) - a.distance(b);
                if delta < best {
                    best = delta;
                    pos = i + 1;
                }
            }
            (best, pos)
        }
    }
}

/// Removal delta of the vertex at `idx` from the closed tour: how much the
/// tour shortens when it is removed (non-negative for metric instances).
pub fn removal_delta(pts: &[Point2], idx: usize) -> f64 {
    let n = pts.len();
    debug_assert!(idx < n);
    if n <= 2 {
        // Removing one of <= 2 points removes the whole out-and-back leg.
        return closed_tour_length(pts);
    }
    let prev = pts[(idx + n - 1) % n];
    let cur = pts[idx];
    let next = pts[(idx + 1) % n];
    prev.distance(cur) + cur.distance(next) - prev.distance(next)
}

/// In-place 2-opt over a closed point tour, keeping index 0 (the depot)
/// first. Returns the length saved.
#[cfg_attr(not(test), allow(dead_code))] // used by tests and kept for extensions
pub fn two_opt_points(pts: &mut [Point2]) -> f64 {
    let n = pts.len();
    if n < 4 {
        return 0.0;
    }
    let mut saved = 0.0;
    let mut improved = true;
    let mut sweeps = 0;
    while improved && sweeps < 100 {
        improved = false;
        sweeps += 1;
        for i in 0..n - 1 {
            for j in (i + 2)..n {
                if i == 0 && j == n - 1 {
                    continue;
                }
                let (a, b) = (pts[i], pts[i + 1]);
                let (c, d) = (pts[j], pts[(j + 1) % n]);
                let delta = a.distance(c) + b.distance(d) - a.distance(b) - c.distance(d);
                if delta < -1e-10 {
                    pts[i + 1..=j].reverse();
                    saved -= delta;
                    improved = true;
                }
            }
        }
    }
    saved
}

/// Re-orders a closed point tour with Christofides (plus 2-opt polish) and
/// returns the permutation applied: `perm[k]` is the old index of the
/// point now at position `k`. The depot (old index 0) stays at position 0.
// Outside tests the planners thread a recorder through the obs variant.
#[cfg_attr(not(test), allow(dead_code))]
pub fn christofides_order(pts: &[Point2]) -> Vec<usize> {
    christofides_order_obs(pts, &uavdc_obs::NOOP)
}

/// Like [`christofides_order`], forwarding the underlying Christofides
/// call statistics (`christofides.*`) to `rec`.
pub fn christofides_order_obs(pts: &[Point2], rec: &dyn uavdc_obs::Recorder) -> Vec<usize> {
    let n = pts.len();
    if n <= 3 {
        return (0..n).collect();
    }
    let m = DistMatrix::from_fn(n, |i, j| pts[i].distance(pts[j]));
    let mut tour = christofides_with_obs(&m, &ChristofidesConfig::default(), rec);
    tour.rotate_to_start(0);
    tour.order().to_vec()
}

/// Applies a permutation returned by [`christofides_order`] to a vector.
pub fn apply_order<T: Clone>(items: &[T], order: &[usize]) -> Vec<T> {
    order.iter().map(|&i| items[i].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sq() -> Vec<Point2> {
        vec![
            Point2::new(0.0, 0.0),
            Point2::new(10.0, 0.0),
            Point2::new(10.0, 10.0),
            Point2::new(0.0, 10.0),
        ]
    }

    #[test]
    fn insertion_and_removal_are_inverse() {
        let pts = sq();
        let p = Point2::new(5.0, -3.0);
        let (delta, pos) = cheapest_insertion_point(&pts, p);
        let mut with = pts.clone();
        with.insert(pos, p);
        assert!((closed_tour_length(&with) - closed_tour_length(&pts) - delta).abs() < 1e-9);
        assert!((removal_delta(&with, pos) - delta).abs() < 1e-9);
    }

    #[test]
    fn insertion_never_displaces_depot() {
        let pts = sq();
        // A point nearest the closing edge (between last and first).
        let (_, pos) = cheapest_insertion_point(&pts, Point2::new(-1.0, 5.0));
        assert!(pos >= 1);
    }

    #[test]
    fn insertion_into_empty_and_singleton() {
        assert_eq!(cheapest_insertion_point(&[], Point2::ORIGIN), (0.0, 1));
        let (d, pos) = cheapest_insertion_point(&[Point2::ORIGIN], Point2::new(3.0, 4.0));
        assert_eq!(d, 10.0);
        assert_eq!(pos, 1);
    }

    #[test]
    fn removal_delta_on_tiny_tours() {
        let two = vec![Point2::ORIGIN, Point2::new(5.0, 0.0)];
        assert_eq!(removal_delta(&two, 1), 10.0);
    }

    #[test]
    fn two_opt_untangles() {
        let mut pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(10.0, 10.0),
            Point2::new(10.0, 0.0),
            Point2::new(0.0, 10.0),
        ];
        let before = closed_tour_length(&pts);
        let saved = two_opt_points(&mut pts);
        assert!(saved > 0.0);
        assert!((closed_tour_length(&pts) - (before - saved)).abs() < 1e-9);
        assert_eq!(pts[0], Point2::new(0.0, 0.0), "depot must stay first");
        assert!((closed_tour_length(&pts) - 40.0).abs() < 1e-9);
    }

    #[test]
    fn christofides_order_keeps_depot_first() {
        let pts: Vec<Point2> = (0..12)
            .map(|i| Point2::new((i * 37 % 50) as f64, (i * 13 % 50) as f64))
            .collect();
        let order = christofides_order(&pts);
        assert_eq!(order[0], 0);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..12).collect::<Vec<_>>());
        let reordered = apply_order(&pts, &order);
        assert!(closed_tour_length(&reordered) <= closed_tour_length(&pts) + 1e-9);
    }
}
