//! Multi-UAV fleet planning — the paper's natural extension.
//!
//! The paper plans for a single UAV and cites multi-UAV trajectory work
//! (Mozaffari et al.) as the broader setting. This module lifts any
//! single-UAV [`Planner`] to a fleet of `m` identical UAVs sharing the
//! depot: devices are partitioned into `m` disjoint groups (balanced
//! angular sectors around the depot, or k-means clusters), each group
//! becomes a sub-scenario, and the inner planner plans each UAV's tour
//! independently. Disjoint groups guarantee no device is collected twice,
//! so the fleet plan validates against the *original* scenario.

use crate::plan::CollectionPlan;
use crate::Planner;
use uavdc_geom::{cmp_f64, Point2};
use uavdc_net::units::{Joules, MegaBytes};
use uavdc_net::{DeviceId, Scenario};

/// How devices are split among the fleet.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum FleetPartition {
    /// Contiguous angular sectors around the depot, cut so every sector
    /// holds roughly the same total data volume. Cheap and works well
    /// for a central depot.
    #[default]
    Sectors,
    /// Lloyd's k-means on device positions with deterministic
    /// farthest-point initialisation. Better for clustered deployments.
    KMeans,
}

/// Fleet configuration.
#[derive(Clone, Copy, Debug)]
pub struct FleetConfig {
    /// Number of UAVs (each with the scenario's full battery).
    pub fleet_size: usize,
    /// Device partitioning strategy.
    pub partition: FleetPartition,
}

impl FleetConfig {
    /// A fleet of `m` UAVs with the default (sector) partition.
    pub fn new(fleet_size: usize) -> Self {
        FleetConfig {
            fleet_size,
            partition: FleetPartition::default(),
        }
    }
}

/// A plan per UAV. Produced by [`MultiUavPlanner::plan_fleet`].
#[derive(Clone, Debug)]
pub struct FleetPlan {
    /// One collection plan per UAV, each starting and ending at the
    /// shared depot. Device ids refer to the *original* scenario.
    pub plans: Vec<CollectionPlan>,
}

impl FleetPlan {
    /// Total volume collected by the whole fleet.
    pub fn collected_volume(&self) -> MegaBytes {
        self.plans
            .iter()
            .map(CollectionPlan::collected_volume)
            .sum()
    }

    /// Highest per-UAV energy demand (each UAV has its own battery).
    pub fn max_energy(&self, scenario: &Scenario) -> Joules {
        self.plans
            .iter()
            .map(|p| p.total_energy(scenario))
            .fold(Joules::ZERO, Joules::max)
    }

    /// Validates every UAV's plan against the original scenario and
    /// checks that no device is collected by two UAVs.
    pub fn validate(&self, scenario: &Scenario) -> Result<(), String> {
        let mut claimed = vec![false; scenario.num_devices()];
        for (u, plan) in self.plans.iter().enumerate() {
            plan.validate(scenario)
                .map_err(|e| format!("UAV {u}: {e}"))?;
            for stop in &plan.stops {
                for &(dev, _) in &stop.collected {
                    if claimed[dev.index()] {
                        return Err(format!("device {dev:?} collected by two UAVs"));
                    }
                }
            }
            for stop in &plan.stops {
                for &(dev, _) in &stop.collected {
                    claimed[dev.index()] = true;
                }
            }
        }
        Ok(())
    }
}

/// Lifts a single-UAV planner to a fleet.
#[derive(Clone, Debug)]
pub struct MultiUavPlanner<P: Planner> {
    /// The single-UAV planner run on each partition.
    pub inner: P,
    /// Fleet parameters.
    pub config: FleetConfig,
}

impl<P: Planner> MultiUavPlanner<P> {
    /// Creates a fleet planner.
    pub fn new(inner: P, config: FleetConfig) -> Self {
        MultiUavPlanner { inner, config }
    }

    /// Plans the whole fleet.
    ///
    /// # Panics
    /// Panics when `fleet_size == 0`.
    pub fn plan_fleet(&self, scenario: &Scenario) -> FleetPlan {
        let m = self.config.fleet_size;
        assert!(m >= 1, "fleet needs at least one UAV");
        if scenario.num_devices() == 0 {
            return FleetPlan {
                plans: vec![CollectionPlan::empty(); m],
            };
        }
        let groups = match self.config.partition {
            FleetPartition::Sectors => sector_partition(scenario, m),
            FleetPartition::KMeans => kmeans_partition(scenario, m),
        };
        debug_assert_eq!(groups.len(), m);
        let mut plans = Vec::with_capacity(m);
        for group in groups {
            if group.is_empty() {
                plans.push(CollectionPlan::empty());
                continue;
            }
            let sub = Scenario {
                devices: group.iter().map(|&g| scenario.devices[g]).collect(),
                ..scenario.clone()
            };
            let mut plan = self.inner.plan(&sub);
            // Remap sub-scenario device ids back to the original ones.
            for stop in &mut plan.stops {
                for entry in &mut stop.collected {
                    entry.0 = DeviceId(group[entry.0.index()] as u32);
                }
            }
            plans.push(plan);
        }
        let fleet = FleetPlan { plans };
        crate::validate::debug_check_fleet(
            "MultiUavPlanner::plan_fleet",
            scenario,
            &fleet,
            crate::validate::Profile::P3Partial,
        );
        fleet
    }
}

/// Balanced angular sectors: sort devices by angle around the depot, then
/// cut the circular order into `m` contiguous runs of roughly equal data
/// volume.
fn sector_partition(scenario: &Scenario, m: usize) -> Vec<Vec<usize>> {
    let depot = scenario.depot;
    let mut by_angle: Vec<(f64, usize)> = scenario
        .devices
        .iter()
        .enumerate()
        .map(|(i, d)| ((d.pos.y - depot.y).atan2(d.pos.x - depot.x), i))
        .collect();
    by_angle.sort_by(|a, b| cmp_f64(a.0, b.0).then(a.1.cmp(&b.1)));
    let total: f64 = scenario.devices.iter().map(|d| d.data.value()).sum();
    let target = total / m as f64;
    let mut groups = vec![Vec::new(); m];
    let mut g = 0;
    let mut acc = 0.0;
    for (_, i) in by_angle {
        if g + 1 < m && acc >= target {
            g += 1;
            acc = 0.0;
        }
        groups[g].push(i);
        acc += scenario.devices[i].data.value();
    }
    groups
}

/// Deterministic k-means: farthest-point initialisation from the device
/// nearest the depot, then 25 Lloyd iterations (or until stable).
fn kmeans_partition(scenario: &Scenario, m: usize) -> Vec<Vec<usize>> {
    let pts = scenario.device_positions();
    let n = pts.len();
    if m >= n {
        // One device per UAV, extra UAVs idle.
        let mut groups = vec![Vec::new(); m];
        for (i, g) in (0..n).zip(groups.iter_mut()) {
            g.push(i);
        }
        return groups;
    }
    // Farthest-point seeding.
    let mut centers: Vec<Point2> = Vec::with_capacity(m);
    let first = (0..n)
        .min_by(|&a, &b| {
            cmp_f64(
                pts[a].distance_sq(scenario.depot),
                pts[b].distance_sq(scenario.depot),
            )
        })
        // lint:allow(panic-site): n > 0 is checked at the top of this function
        .expect("non-empty");
    centers.push(pts[first]);
    while centers.len() < m {
        let far = (0..n)
            .max_by(|&a, &b| {
                let da = centers
                    .iter()
                    .map(|c| c.distance_sq(pts[a]))
                    .fold(f64::INFINITY, f64::min);
                let db = centers
                    .iter()
                    .map(|c| c.distance_sq(pts[b]))
                    .fold(f64::INFINITY, f64::min);
                cmp_f64(da, db).then(a.cmp(&b))
            })
            // lint:allow(panic-site): n > 0 is checked at the top of this function
            .expect("non-empty");
        centers.push(pts[far]);
    }
    // Lloyd iterations.
    let mut assignment = vec![0usize; n];
    for _ in 0..25 {
        let mut changed = false;
        for (i, p) in pts.iter().enumerate() {
            let best = (0..m)
                .min_by(|&a, &b| cmp_f64(centers[a].distance_sq(*p), centers[b].distance_sq(*p)))
                // lint:allow(panic-site): FleetConfig guarantees m >= 1
                .expect("m >= 1");
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        let mut sums = vec![(Point2::ORIGIN, 0usize); m];
        for (i, &a) in assignment.iter().enumerate() {
            sums[a].0 += pts[i];
            sums[a].1 += 1;
        }
        for (k, center) in centers.iter_mut().enumerate() {
            if sums[k].1 > 0 {
                *center = sums[k].0 / sums[k].1 as f64;
            }
        }
    }
    let mut groups = vec![Vec::new(); m];
    for (i, &a) in assignment.iter().enumerate() {
        groups[a].push(i);
    }
    groups
}

/// Joint fleet planner: instead of partitioning devices up front, runs
/// Algorithm 2's max-ρ greedy over *all* tours simultaneously — each
/// iteration picks the best (candidate, UAV) pair, so UAVs compete for
/// hovering locations and the workload balances itself. Usually at least
/// as good as partition-first planning, at the cost of a joint search.
#[derive(Clone, Copy, Debug)]
pub struct JointFleetPlanner {
    /// Number of UAVs.
    pub fleet_size: usize,
    /// Grid edge length `δ`, metres.
    pub delta: f64,
    /// Drop dominated candidates before planning.
    pub prune_dominated: bool,
}

impl JointFleetPlanner {
    /// Creates a joint planner with default grid settings.
    pub fn new(fleet_size: usize) -> Self {
        JointFleetPlanner {
            fleet_size,
            delta: 10.0,
            prune_dominated: true,
        }
    }

    /// Plans all tours jointly.
    ///
    /// # Panics
    /// Panics when `fleet_size == 0`.
    pub fn plan_fleet(&self, scenario: &Scenario) -> FleetPlan {
        use crate::candidates::CandidateSet;
        use crate::plan::HoverStop;
        use crate::tourutil::{cheapest_insertion_point, closed_tour_length};
        use uavdc_net::units::Seconds;

        let m = self.fleet_size;
        assert!(m >= 1, "fleet needs at least one UAV");
        let mut candidates = CandidateSet::build(scenario, self.delta);
        if self.prune_dominated {
            candidates.prune_dominated();
        }
        if candidates.is_empty() {
            return FleetPlan {
                plans: vec![CollectionPlan::empty(); m],
            };
        }
        let capacity = scenario.uav.capacity.value();
        let eta_h = scenario.uav.hover_power.value();
        let per_m = scenario.uav.travel_energy_per_meter().value();
        let b = scenario.radio.bandwidth.value();

        let mut collected = vec![false; scenario.num_devices()];
        let mut active = vec![true; candidates.len()];
        // Per-UAV state: tour points (depot first), stop lists, energies.
        let mut tours: Vec<Vec<Point2>> = vec![vec![scenario.depot]; m];
        let mut stop_of: Vec<Vec<usize>> = vec![vec![usize::MAX]; m];
        let mut stops: Vec<Vec<HoverStop>> = vec![Vec::new(); m];
        let mut hover: Vec<f64> = vec![0.0; m];
        let mut tour_len: Vec<f64> = vec![0.0; m];

        loop {
            // Best (candidate, uav) by ρ.
            let mut best: Option<(usize, usize, usize, f64, f64)> = None; // (cand, uav, pos, tau, ratio)
                                                                          // Indexing, not iterating: the body deactivates entries of
                                                                          // `active` while scanning it.
            #[allow(clippy::needless_range_loop)]
            for c in 0..candidates.len() {
                if !active[c] {
                    continue;
                }
                let cand = &candidates.candidates[c];
                let mut vol = 0.0f64;
                let mut tau = 0.0f64;
                for &v in &cand.covered {
                    if !collected[v as usize] {
                        let d = scenario.devices[v as usize].data.value();
                        vol += d;
                        tau = tau.max(d / b);
                    }
                }
                if vol <= 0.0 {
                    active[c] = false;
                    continue;
                }
                for u in 0..m {
                    let (dl, pos) = cheapest_insertion_point(&tours[u], cand.pos);
                    let total = hover[u] + tau * eta_h + (tour_len[u] + dl) * per_m;
                    if total > capacity {
                        continue;
                    }
                    let ratio = vol / (tau * eta_h + dl * per_m).max(1e-12);
                    let better = match best {
                        None => true,
                        Some((bc, bu, _, _, br)) => {
                            ratio > br + 1e-15 || (ratio >= br - 1e-15 && (c, u) < (bc, bu))
                        }
                    };
                    if better {
                        best = Some((c, u, pos, tau, ratio));
                    }
                }
            }
            let Some((c, u, pos, tau, _)) = best else {
                break;
            };
            let cand = &candidates.candidates[c];
            let mut entries = Vec::new();
            for &v in &cand.covered {
                if !collected[v as usize] {
                    collected[v as usize] = true;
                    entries.push((DeviceId(v), scenario.devices[v as usize].data));
                }
            }
            stops[u].push(HoverStop {
                pos: cand.pos,
                sojourn: Seconds(tau),
                collected: entries,
            });
            let stop_idx = stops[u].len() - 1;
            tours[u].insert(pos, cand.pos);
            stop_of[u].insert(pos, stop_idx);
            tour_len[u] = closed_tour_length(&tours[u]);
            hover[u] += tau * eta_h;
            active[c] = false;
        }

        let plans = (0..m)
            .map(|u| {
                let ordered = stop_of[u]
                    .iter()
                    .skip(1)
                    .map(|&s| stops[u][s].clone())
                    .collect();
                let mut plan = CollectionPlan { stops: ordered };
                crate::polish::polish_plan(&mut plan, scenario);
                plan
            })
            .collect();
        let fleet = FleetPlan { plans };
        crate::validate::debug_check_fleet(
            "JointFleetPlanner::plan_fleet",
            scenario,
            &fleet,
            crate::validate::Profile::P1FullDisjoint,
        );
        fleet
    }
}

/// Multi-UAV Algorithm 1: reduce the no-overlap fleet problem to *team
/// orienteering* on the same Eq. 9 auxiliary graph Algorithm 1 uses, with
/// one budget per UAV. Because the edge weights fold hovering energies,
/// each team tour's cycle weight is exactly that UAV's energy demand.
#[derive(Clone, Copy, Debug)]
pub struct TeamAlg1Planner {
    /// Number of UAVs.
    pub fleet_size: usize,
    /// Grid edge length `δ`, metres.
    pub delta: f64,
    /// Team-solver improvement rounds (see
    /// [`uavdc_orienteering::TeamConfig`]).
    pub ils_rounds: usize,
}

impl TeamAlg1Planner {
    /// Creates a planner with default grid settings.
    pub fn new(fleet_size: usize) -> Self {
        TeamAlg1Planner {
            fleet_size,
            delta: 10.0,
            ils_rounds: 12,
        }
    }

    /// Plans the fleet by team orienteering over disjoint candidates.
    ///
    /// # Panics
    /// Panics when `fleet_size == 0`.
    pub fn plan_fleet(&self, scenario: &Scenario) -> FleetPlan {
        use crate::auxgraph::AuxGraph;
        use crate::candidates::CandidateSet;
        use crate::plan::HoverStop;
        use uavdc_net::units::Seconds;
        use uavdc_orienteering::{solve_team, TeamConfig};

        assert!(self.fleet_size >= 1, "fleet needs at least one UAV");
        let candidates = CandidateSet::build(scenario, self.delta).disjoint_by_volume(scenario);
        if candidates.is_empty() {
            return FleetPlan {
                plans: vec![CollectionPlan::empty(); self.fleet_size],
            };
        }
        let aux = AuxGraph::build(scenario, &candidates);
        let cfg = TeamConfig {
            teams: self.fleet_size,
            ils_rounds: self.ils_rounds,
            seed: 0x7ea1_a191,
        };
        let solution = solve_team(&aux.instance, &cfg);
        debug_assert!(solution.verify(&aux.instance));

        let b = scenario.radio.bandwidth;
        let plans = solution
            .tours
            .iter()
            .map(|tour| {
                let stops = tour
                    .iter()
                    .skip(1)
                    .map(|&vertex| {
                        let cand = &candidates.candidates[vertex - 1];
                        let mut sojourn = Seconds::ZERO;
                        let collected = cand
                            .covered
                            .iter()
                            .map(|&v| {
                                let data = scenario.devices[v as usize].data;
                                sojourn = sojourn.max(data / b);
                                (DeviceId(v), data)
                            })
                            .collect();
                        HoverStop {
                            pos: cand.pos,
                            sojourn,
                            collected,
                        }
                    })
                    .collect();
                CollectionPlan { stops }
            })
            .collect();
        let fleet = FleetPlan { plans };
        crate::validate::debug_check_fleet(
            "TeamAlg1Planner::plan_fleet",
            scenario,
            &fleet,
            crate::validate::Profile::P1FullDisjoint,
        );
        fleet
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Alg2Planner, BenchmarkPlanner};
    use uavdc_geom::Aabb;
    use uavdc_net::units::{MegaBytesPerSecond, Meters};
    use uavdc_net::{IotDevice, RadioModel, UavSpec};

    fn scenario(capacity: f64, n: usize) -> Scenario {
        Scenario {
            region: Aabb::square(400.0),
            devices: (0..n)
                .map(|i| IotDevice {
                    pos: Point2::new(((i * 67) % 400) as f64, ((i * 131) % 400) as f64),
                    data: MegaBytes(100.0 + ((i * 53) % 900) as f64),
                })
                .collect(),
            depot: Point2::new(200.0, 200.0),
            radio: RadioModel::new(Meters(30.0), MegaBytesPerSecond(150.0)),
            uav: UavSpec {
                capacity: Joules(capacity),
                ..UavSpec::paper_eval()
            },
        }
    }

    #[test]
    fn fleet_of_one_matches_single_planner() {
        let s = scenario(30_000.0, 25);
        let single = Alg2Planner::default().plan(&s);
        let fleet =
            MultiUavPlanner::new(Alg2Planner::default(), FleetConfig::new(1)).plan_fleet(&s);
        fleet.validate(&s).unwrap();
        assert_eq!(fleet.plans.len(), 1);
        assert_eq!(fleet.collected_volume(), single.collected_volume());
    }

    #[test]
    fn partitions_are_disjoint_and_complete() {
        let s = scenario(30_000.0, 40);
        for groups in [sector_partition(&s, 4), kmeans_partition(&s, 4)] {
            let mut seen = vec![false; s.num_devices()];
            for g in &groups {
                for &i in g {
                    assert!(!seen[i], "device {i} in two groups");
                    seen[i] = true;
                }
            }
            assert!(seen.iter().all(|&x| x), "some device unassigned");
        }
    }

    #[test]
    fn larger_fleet_collects_more_when_constrained() {
        // Devices on a ring 100 m from the depot; the battery reaches the
        // ring but can only traverse a short arc, so every extra UAV
        // harvests a fresh sector.
        let mut s = scenario(26_000.0, 0);
        s.devices = (0..24)
            .map(|i| {
                let a = 2.0 * std::f64::consts::PI * (i as f64) / 24.0;
                IotDevice {
                    pos: Point2::new(200.0 + 100.0 * a.cos(), 200.0 + 100.0 * a.sin()),
                    data: MegaBytes(500.0),
                }
            })
            .collect();
        let one = MultiUavPlanner::new(Alg2Planner::default(), FleetConfig::new(1)).plan_fleet(&s);
        let three =
            MultiUavPlanner::new(Alg2Planner::default(), FleetConfig::new(3)).plan_fleet(&s);
        one.validate(&s).unwrap();
        three.validate(&s).unwrap();
        let (v1, v3) = (
            one.collected_volume().value(),
            three.collected_volume().value(),
        );
        assert!(v1 > 0.0, "single UAV should reach the ring");
        assert!(v3 < s.total_data().value() + 1e-6);
        assert!(v3 > 1.5 * v1, "3 UAVs {v3} should far exceed 1 UAV {v1}");
    }

    #[test]
    fn kmeans_partition_works_with_benchmark_planner() {
        let s = scenario(40_000.0, 30);
        let fleet = MultiUavPlanner::new(
            BenchmarkPlanner,
            FleetConfig {
                fleet_size: 2,
                partition: FleetPartition::KMeans,
            },
        )
        .plan_fleet(&s);
        fleet.validate(&s).unwrap();
        assert!(fleet.collected_volume().value() > 0.0);
        assert!(fleet.max_energy(&s) <= s.uav.capacity);
    }

    #[test]
    fn more_uavs_than_devices_leaves_spares_idle() {
        let s = scenario(30_000.0, 3);
        let fleet = MultiUavPlanner::new(
            Alg2Planner::default(),
            FleetConfig {
                fleet_size: 6,
                partition: FleetPartition::KMeans,
            },
        )
        .plan_fleet(&s);
        fleet.validate(&s).unwrap();
        assert_eq!(fleet.plans.len(), 6);
        let active = fleet.plans.iter().filter(|p| !p.stops.is_empty()).count();
        assert!(active <= 3);
    }

    #[test]
    fn empty_scenario_gives_empty_fleet_plans() {
        let mut s = scenario(1000.0, 5);
        s.devices.clear();
        let fleet =
            MultiUavPlanner::new(Alg2Planner::default(), FleetConfig::new(3)).plan_fleet(&s);
        assert_eq!(fleet.plans.len(), 3);
        assert_eq!(fleet.collected_volume(), MegaBytes::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least one UAV")]
    fn zero_fleet_rejected() {
        let s = scenario(1000.0, 5);
        let _ = MultiUavPlanner::new(Alg2Planner::default(), FleetConfig::new(0)).plan_fleet(&s);
    }

    #[test]
    fn team_alg1_fleet_validates_and_scales() {
        let s = scenario(20_000.0, 40);
        let one = TeamAlg1Planner::new(1).plan_fleet(&s);
        one.validate(&s).unwrap();
        let three = TeamAlg1Planner::new(3).plan_fleet(&s);
        three.validate(&s).unwrap();
        assert_eq!(three.plans.len(), 3);
        assert!(
            three.collected_volume().value() >= one.collected_volume().value() - 1e-6,
            "3 UAVs {} < 1 UAV {}",
            three.collected_volume(),
            one.collected_volume()
        );
        assert!(three.max_energy(&s) <= s.uav.capacity);
    }

    #[test]
    fn team_alg1_single_uav_comparable_to_alg1() {
        let s = scenario(25_000.0, 30);
        let fleet = TeamAlg1Planner::new(1).plan_fleet(&s);
        fleet.validate(&s).unwrap();
        let single = crate::Alg1Planner::default().plan(&s);
        let (vf, vs) = (
            fleet.collected_volume().value(),
            single.collected_volume().value(),
        );
        assert!(vf >= 0.7 * vs, "team-of-1 {vf} far below alg1 {vs}");
    }

    #[test]
    fn team_alg1_empty_scenario() {
        let mut s = scenario(1000.0, 3);
        s.devices.clear();
        let fleet = TeamAlg1Planner::new(2).plan_fleet(&s);
        assert_eq!(fleet.plans.len(), 2);
        assert_eq!(fleet.collected_volume(), MegaBytes::ZERO);
    }

    #[test]
    fn joint_planner_single_uav_is_feasible_and_comparable_to_alg2() {
        let s = scenario(30_000.0, 30);
        let joint = JointFleetPlanner::new(1).plan_fleet(&s);
        joint.validate(&s).unwrap();
        let alg2 = Alg2Planner::default().plan(&s);
        // Same greedy family; the joint planner skips interim 2-opt so
        // allow a modest gap in either direction.
        let (vj, v2) = (
            joint.collected_volume().value(),
            alg2.collected_volume().value(),
        );
        assert!(vj >= 0.8 * v2, "joint {vj} far below alg2 {v2}");
    }

    #[test]
    fn joint_planner_beats_or_matches_partitioning_on_ring() {
        // Ring scenario where sector cuts are arbitrary: joint planning
        // should do at least as well.
        let mut s = scenario(26_000.0, 0);
        s.devices = (0..24)
            .map(|i| {
                let a = 2.0 * std::f64::consts::PI * (i as f64) / 24.0;
                IotDevice {
                    pos: Point2::new(200.0 + 100.0 * a.cos(), 200.0 + 100.0 * a.sin()),
                    data: MegaBytes(500.0),
                }
            })
            .collect();
        let joint = JointFleetPlanner::new(3).plan_fleet(&s);
        joint.validate(&s).unwrap();
        let partitioned =
            MultiUavPlanner::new(Alg2Planner::default(), FleetConfig::new(3)).plan_fleet(&s);
        assert!(
            joint.collected_volume().value() >= 0.95 * partitioned.collected_volume().value(),
            "joint {} vs partitioned {}",
            joint.collected_volume(),
            partitioned.collected_volume()
        );
    }

    #[test]
    fn joint_planner_fleet_grows_monotonically() {
        let s = scenario(20_000.0, 40);
        let mut prev = -1.0;
        for m in [1, 2, 4] {
            let fleet = JointFleetPlanner::new(m).plan_fleet(&s);
            fleet.validate(&s).unwrap();
            let v = fleet.collected_volume().value();
            assert!(
                v >= prev - 1e-6,
                "fleet of {m} collected less: {v} < {prev}"
            );
            prev = v;
        }
    }

    #[test]
    fn joint_planner_empty_scenario() {
        let mut s = scenario(1000.0, 5);
        s.devices.clear();
        let fleet = JointFleetPlanner::new(2).plan_fleet(&s);
        assert_eq!(fleet.plans.len(), 2);
        assert_eq!(fleet.collected_volume(), MegaBytes::ZERO);
    }

    #[test]
    fn sector_partition_balances_volume() {
        let s = scenario(30_000.0, 60);
        let groups = sector_partition(&s, 3);
        let volumes: Vec<f64> = groups
            .iter()
            .map(|g| g.iter().map(|&i| s.devices[i].data.value()).sum())
            .collect();
        let total: f64 = volumes.iter().sum();
        for v in &volumes {
            assert!(
                *v > 0.1 * total / 3.0,
                "sector badly unbalanced: {volumes:?}"
            );
        }
    }
}
