//! Collection plans and their physical validation.

use uavdc_geom::Point2;
use uavdc_net::units::{Joules, MegaBytes, Meters, Seconds};
use uavdc_net::{DeviceId, Scenario};

/// One hovering stop of a plan.
#[derive(Clone, Debug, PartialEq)]
pub struct HoverStop {
    /// Projected hovering position.
    pub pos: Point2,
    /// Sojourn duration at this stop.
    pub sojourn: Seconds,
    /// What is collected here: device and amount. All listed devices must
    /// be within coverage radius of `pos`, each amount within what the
    /// device holds and what the sojourn's bandwidth allows.
    pub collected: Vec<(DeviceId, MegaBytes)>,
}

impl HoverStop {
    /// Total volume collected at this stop.
    pub fn volume(&self) -> MegaBytes {
        self.collected.iter().map(|&(_, v)| v).sum()
    }
}

/// A closed data-collection tour: depot → stops in order → depot.
#[derive(Clone, Debug, PartialEq)]
pub struct CollectionPlan {
    /// Hovering stops in visiting order (depot not included).
    pub stops: Vec<HoverStop>,
}

/// Why a plan failed validation.
#[derive(Clone, Debug, PartialEq)]
pub enum PlanError {
    /// Total energy demand exceeds the UAV battery.
    EnergyExceeded {
        /// Energy the plan needs.
        required: Joules,
        /// Battery capacity.
        capacity: Joules,
    },
    /// A stop collects from a device outside its coverage disc.
    OutOfCoverage {
        /// Stop index.
        stop: usize,
        /// Offending device.
        device: DeviceId,
        /// Actual ground distance.
        distance: Meters,
    },
    /// A stop collects more from one device than its sojourn's bandwidth
    /// allows (`amount > B · sojourn`).
    BandwidthExceeded {
        /// Stop index.
        stop: usize,
        /// Offending device.
        device: DeviceId,
    },
    /// More data collected from a device (across all stops) than it holds.
    OverCollected {
        /// Offending device.
        device: DeviceId,
        /// Total claimed across stops.
        claimed: MegaBytes,
        /// What the device holds.
        stored: MegaBytes,
    },
    /// A negative or non-finite quantity appeared.
    Malformed(
        /// Description of the defect.
        String,
    ),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::EnergyExceeded { required, capacity } => {
                write!(f, "plan needs {required} but battery holds {capacity}")
            }
            PlanError::OutOfCoverage {
                stop,
                device,
                distance,
            } => {
                write!(
                    f,
                    "stop {stop} collects from device {device:?} at {:.1} m, outside coverage",
                    // lint:allow(unit-unwrap): error formatting with one decimal, not arithmetic
                    distance.value()
                )
            }
            PlanError::BandwidthExceeded { stop, device } => {
                write!(
                    f,
                    "stop {stop} collects more from device {device:?} than bandwidth × sojourn"
                )
            }
            PlanError::OverCollected {
                device,
                claimed,
                stored,
            } => {
                write!(
                    f,
                    "device {device:?} yields {claimed} total but stores only {stored}"
                )
            }
            PlanError::Malformed(what) => write!(f, "malformed plan: {what}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl CollectionPlan {
    /// The empty plan: stay at the depot, collect nothing.
    pub fn empty() -> Self {
        CollectionPlan { stops: Vec::new() }
    }

    /// Total collected volume, summed over stops.
    pub fn collected_volume(&self) -> MegaBytes {
        self.stops.iter().map(HoverStop::volume).sum()
    }

    /// Ground length of the closed tour depot → stops → depot.
    pub fn travel_length(&self, scenario: &Scenario) -> Meters {
        if self.stops.is_empty() {
            return Meters::ZERO;
        }
        let mut len = 0.0;
        let mut prev = scenario.depot;
        for s in &self.stops {
            len += prev.distance(s.pos);
            prev = s.pos;
        }
        len += prev.distance(scenario.depot);
        Meters(len)
    }

    /// Energy spent flying the tour.
    pub fn travel_energy(&self, scenario: &Scenario) -> Joules {
        scenario.uav.travel_energy(self.travel_length(scenario))
    }

    /// Energy spent hovering, over all stops.
    pub fn hover_energy(&self, scenario: &Scenario) -> Joules {
        self.stops
            .iter()
            .map(|s| scenario.uav.hover_energy(s.sojourn))
            .sum()
    }

    /// Total energy demand of the plan.
    pub fn total_energy(&self, scenario: &Scenario) -> Joules {
        self.travel_energy(scenario) + self.hover_energy(scenario)
    }

    /// Total mission duration: flight time plus hover time.
    pub fn duration(&self, scenario: &Scenario) -> Seconds {
        let flight = self.travel_length(scenario) / scenario.uav.speed;
        let hover: Seconds = self.stops.iter().map(|s| s.sojourn).sum();
        flight + hover
    }

    /// Order-sensitive 64-bit fingerprint of the full plan content.
    ///
    /// FNV-1a over every stop's position, sojourn, and collection list,
    /// folding each `f64` in as its exact IEEE-754 bit pattern — two plans
    /// hash equal iff they are bit-identical, which is the equality the
    /// bench-compare gate needs (the planners are deterministic, so any
    /// drift is a real behaviour change, not float noise).
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |word: u64| {
            for byte in word.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(PRIME);
            }
        };
        mix(self.stops.len() as u64);
        for stop in &self.stops {
            mix(stop.pos.x.to_bits());
            mix(stop.pos.y.to_bits());
            // lint:allow(unit-unwrap): hashing the exact bit pattern, not arithmetic
            mix(stop.sojourn.value().to_bits());
            mix(stop.collected.len() as u64);
            for &(dev, amount) in &stop.collected {
                mix(u64::from(dev.0));
                // lint:allow(unit-unwrap): hashing the exact bit pattern, not arithmetic
                mix(amount.value().to_bits());
            }
        }
        h
    }

    /// Checks every physical constraint of the plan against the scenario.
    ///
    /// Tolerances: energy within `1e-6` relative; per-device totals within
    /// `1e-6` MB absolute slack.
    pub fn validate(&self, scenario: &Scenario) -> Result<(), PlanError> {
        let r0 = scenario.coverage_radius();
        let b = scenario.radio.bandwidth;
        let mut per_device = vec![MegaBytes::ZERO; scenario.num_devices()];
        for (i, stop) in self.stops.iter().enumerate() {
            if !stop.pos.is_finite() {
                return Err(PlanError::Malformed(format!(
                    "stop {i} position not finite"
                )));
            }
            if !stop.sojourn.is_finite() || stop.sojourn < Seconds::ZERO {
                return Err(PlanError::Malformed(format!("stop {i} sojourn invalid")));
            }
            let allowance = b * stop.sojourn;
            // A device may appear several times in one stop (e.g. a
            // sojourn later extended by the partial-collection planner);
            // the bandwidth constraint applies to its per-stop total.
            // BTreeMap, not HashMap: validation failure messages surface
            // map contents, and a deterministic order keeps them stable.
            let mut within_stop = std::collections::BTreeMap::new();
            for &(dev, amount) in &stop.collected {
                if dev.index() >= scenario.num_devices() {
                    return Err(PlanError::Malformed(format!(
                        "stop {i} references unknown device"
                    )));
                }
                if !amount.is_finite() || amount < MegaBytes::ZERO {
                    return Err(PlanError::Malformed(format!(
                        "stop {i} collects invalid amount"
                    )));
                }
                let d = Meters(scenario.devices[dev.index()].pos.distance(stop.pos));
                if d > r0 + Meters(1e-6) {
                    return Err(PlanError::OutOfCoverage {
                        stop: i,
                        device: dev,
                        distance: d,
                    });
                }
                let total = within_stop.entry(dev).or_insert(MegaBytes::ZERO);
                *total += amount;
                if *total > allowance + MegaBytes(1e-6) {
                    return Err(PlanError::BandwidthExceeded {
                        stop: i,
                        device: dev,
                    });
                }
                per_device[dev.index()] += amount;
            }
        }
        for (idx, &claimed) in per_device.iter().enumerate() {
            let stored = scenario.devices[idx].data;
            if claimed > stored + MegaBytes(1e-6) {
                return Err(PlanError::OverCollected {
                    device: DeviceId(idx as u32),
                    claimed,
                    stored,
                });
            }
        }
        let required = self.total_energy(scenario);
        if required > scenario.uav.capacity * (1.0 + 1e-6) + Joules(1e-6) {
            return Err(PlanError::EnergyExceeded {
                required,
                capacity: scenario.uav.capacity,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uavdc_geom::Aabb;
    use uavdc_net::units::{MegaBytesPerSecond, Meters as M, Watts};
    use uavdc_net::{IotDevice, RadioModel, UavSpec};

    fn scenario() -> Scenario {
        Scenario {
            region: Aabb::square(200.0),
            devices: vec![
                IotDevice {
                    pos: Point2::new(50.0, 50.0),
                    data: MegaBytes(300.0),
                },
                IotDevice {
                    pos: Point2::new(150.0, 150.0),
                    data: MegaBytes(600.0),
                },
            ],
            depot: Point2::new(0.0, 0.0),
            radio: RadioModel::new(M(50.0), MegaBytesPerSecond(150.0)),
            uav: UavSpec {
                capacity: Joules(50_000.0),
                speed: uavdc_net::units::MetersPerSecond(10.0),
                hover_power: Watts(150.0),
                travel_power: Watts(100.0),
                altitude: M(0.0),
                travel_energy_override: None,
            },
        }
    }

    fn good_plan() -> CollectionPlan {
        CollectionPlan {
            stops: vec![
                HoverStop {
                    pos: Point2::new(50.0, 50.0),
                    sojourn: Seconds(2.0),
                    collected: vec![(DeviceId(0), MegaBytes(300.0))],
                },
                HoverStop {
                    pos: Point2::new(150.0, 150.0),
                    sojourn: Seconds(4.0),
                    collected: vec![(DeviceId(1), MegaBytes(600.0))],
                },
            ],
        }
    }

    #[test]
    fn empty_plan_is_free_and_valid() {
        let s = scenario();
        let p = CollectionPlan::empty();
        assert_eq!(p.total_energy(&s), Joules::ZERO);
        assert_eq!(p.collected_volume(), MegaBytes::ZERO);
        assert_eq!(p.duration(&s), Seconds::ZERO);
        assert_eq!(p.validate(&s), Ok(()));
    }

    #[test]
    fn travel_geometry() {
        let s = scenario();
        let p = good_plan();
        let expect = Point2::new(0.0, 0.0).distance(Point2::new(50.0, 50.0))
            + Point2::new(50.0, 50.0).distance(Point2::new(150.0, 150.0))
            + Point2::new(150.0, 150.0).distance(Point2::new(0.0, 0.0));
        assert!((p.travel_length(&s).value() - expect).abs() < 1e-9);
        // 10 J per metre.
        assert!((p.travel_energy(&s).value() - 10.0 * expect).abs() < 1e-6);
        // Hover: (2 + 4) s * 150 J/s.
        assert_eq!(p.hover_energy(&s), Joules(900.0));
    }

    #[test]
    fn duration_combines_flight_and_hover() {
        let s = scenario();
        let p = good_plan();
        let flight = p.travel_length(&s).value() / 10.0;
        assert!((p.duration(&s).value() - flight - 6.0).abs() < 1e-9);
    }

    #[test]
    fn valid_plan_passes() {
        assert_eq!(good_plan().validate(&scenario()), Ok(()));
    }

    #[test]
    fn energy_overrun_detected() {
        let mut s = scenario();
        s.uav.capacity = Joules(100.0);
        match good_plan().validate(&s) {
            Err(PlanError::EnergyExceeded { .. }) => {}
            other => panic!("expected EnergyExceeded, got {other:?}"),
        }
    }

    #[test]
    fn out_of_coverage_detected() {
        let s = scenario();
        let mut p = good_plan();
        p.stops[0].collected = vec![(DeviceId(1), MegaBytes(10.0))]; // ~141 m away
        match p.validate(&s) {
            Err(PlanError::OutOfCoverage {
                stop: 0,
                device: DeviceId(1),
                ..
            }) => {}
            other => panic!("expected OutOfCoverage, got {other:?}"),
        }
    }

    #[test]
    fn bandwidth_violation_detected() {
        let s = scenario();
        let mut p = good_plan();
        p.stops[0].sojourn = Seconds(1.0); // allowance 150 MB < 300 MB claimed
        match p.validate(&s) {
            Err(PlanError::BandwidthExceeded {
                stop: 0,
                device: DeviceId(0),
            }) => {}
            other => panic!("expected BandwidthExceeded, got {other:?}"),
        }
    }

    #[test]
    fn over_collection_detected() {
        let s = scenario();
        let mut p = good_plan();
        // Collect device 0 twice (two stops at the same place).
        p.stops.push(p.stops[0].clone());
        match p.validate(&s) {
            Err(PlanError::OverCollected {
                device: DeviceId(0),
                ..
            }) => {}
            other => panic!("expected OverCollected, got {other:?}"),
        }
    }

    #[test]
    fn partial_collection_across_stops_is_fine() {
        let s = scenario();
        let p = CollectionPlan {
            stops: vec![
                HoverStop {
                    pos: Point2::new(50.0, 50.0),
                    sojourn: Seconds(1.0),
                    collected: vec![(DeviceId(0), MegaBytes(150.0))],
                },
                HoverStop {
                    pos: Point2::new(52.0, 50.0),
                    sojourn: Seconds(1.0),
                    collected: vec![(DeviceId(0), MegaBytes(150.0))],
                },
            ],
        };
        assert_eq!(p.validate(&s), Ok(()));
        assert_eq!(p.collected_volume(), MegaBytes(300.0));
    }

    #[test]
    fn malformed_plans_rejected() {
        let s = scenario();
        let mut p = good_plan();
        p.stops[0].sojourn = Seconds(-1.0);
        assert!(matches!(p.validate(&s), Err(PlanError::Malformed(_))));
        let mut p2 = good_plan();
        p2.stops[0].collected[0].1 = MegaBytes(f64::NAN);
        assert!(matches!(p2.validate(&s), Err(PlanError::Malformed(_))));
        let mut p3 = good_plan();
        p3.stops[0].collected[0].0 = DeviceId(99);
        assert!(matches!(p3.validate(&s), Err(PlanError::Malformed(_))));
    }

    #[test]
    fn fingerprint_separates_plans() {
        let p = good_plan();
        assert_eq!(p.fingerprint(), good_plan().fingerprint());
        assert_ne!(p.fingerprint(), CollectionPlan::empty().fingerprint());
        let mut reordered = good_plan();
        reordered.stops.reverse();
        assert_ne!(p.fingerprint(), reordered.fingerprint(), "order matters");
        let mut nudged = good_plan();
        nudged.stops[0].sojourn = Seconds(2.0 + 1e-12);
        assert_ne!(p.fingerprint(), nudged.fingerprint(), "bit-level change");
    }

    #[test]
    fn error_display_is_informative() {
        let e = PlanError::EnergyExceeded {
            required: Joules(10.0),
            capacity: Joules(5.0),
        };
        assert!(e.to_string().contains("battery"));
        let o = PlanError::OverCollected {
            device: DeviceId(3),
            claimed: MegaBytes(10.0),
            stored: MegaBytes(5.0),
        };
        assert!(o.to_string().contains("stores only"));
    }
}
