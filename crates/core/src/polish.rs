//! Post-optimisation of finished plans.
//!
//! Planners emit feasible plans whose stop *sets* are fixed; this module
//! squeezes the remaining slack out of the stop *order* with 2-opt and
//! Or-opt moves over the closed tour (depot fixed). Reordering never
//! changes what is collected, only the travel length — so a polished plan
//! is feasible whenever the input was, with strictly less (or equal)
//! energy. The freed energy is returned so callers can try to extend the
//! plan further.

use crate::plan::CollectionPlan;
use crate::Planner;
use uavdc_geom::Point2;
use uavdc_net::units::Joules;
use uavdc_net::Scenario;

/// Reorders the plan's stops in place (2-opt + Or-opt over the closed
/// tour through the depot) and returns the travel energy saved.
pub fn polish_plan(plan: &mut CollectionPlan, scenario: &Scenario) -> Joules {
    let n = plan.stops.len();
    if n < 3 {
        return Joules::ZERO;
    }
    let before = plan.travel_energy(scenario);
    // Tour as (position, stop index) with the depot at slot 0.
    let mut tour: Vec<(Point2, usize)> = Vec::with_capacity(n + 1);
    tour.push((scenario.depot, usize::MAX));
    tour.extend(plan.stops.iter().enumerate().map(|(i, s)| (s.pos, i)));

    let mut improved = true;
    let mut sweeps = 0;
    while improved && sweeps < 60 {
        improved = false;
        sweeps += 1;
        improved |= two_opt_pass(&mut tour);
        improved |= or_opt_pass(&mut tour);
    }

    let order: Vec<usize> = tour.iter().skip(1).map(|&(_, i)| i).collect();
    let stops = std::mem::take(&mut plan.stops);
    let mut slots: Vec<Option<crate::plan::HoverStop>> = stops.into_iter().map(Some).collect();
    plan.stops = order
        .into_iter()
        // lint:allow(panic-site): order is a permutation of stop indices by construction
        .map(|i| slots[i].take().expect("each stop appears once in the tour"))
        .collect();
    (before - plan.travel_energy(scenario)).clamp_non_negative()
}

/// A planner wrapper that polishes the inner planner's output.
#[derive(Clone, Debug, Default)]
pub struct Polished<P: Planner> {
    /// The planner whose output is polished.
    pub inner: P,
}

impl<P: Planner> Polished<P> {
    /// Wraps a planner.
    pub fn new(inner: P) -> Self {
        Polished { inner }
    }
}

impl<P: Planner> Planner for Polished<P> {
    fn name(&self) -> &'static str {
        "polished"
    }

    fn plan(&self, scenario: &Scenario) -> CollectionPlan {
        let mut plan = self.inner.plan(scenario);
        polish_plan(&mut plan, scenario);
        plan
    }
}

fn two_opt_pass(tour: &mut [(Point2, usize)]) -> bool {
    let n = tour.len();
    let mut improved = false;
    for i in 0..n - 1 {
        for j in (i + 2)..n {
            if i == 0 && j == n - 1 {
                continue;
            }
            let (a, b) = (tour[i].0, tour[i + 1].0);
            let (c, d) = (tour[j].0, tour[(j + 1) % n].0);
            if a.distance(c) + b.distance(d) < a.distance(b) + c.distance(d) - 1e-10 {
                tour[i + 1..=j].reverse();
                improved = true;
            }
        }
    }
    improved
}

fn or_opt_pass(tour: &mut Vec<(Point2, usize)>) -> bool {
    let n = tour.len();
    if n < 5 {
        return false;
    }
    let mut improved = false;
    for seg_len in 1..=3usize.min(n - 3) {
        // Segment starts after the depot; never move slot 0.
        let mut start = 1;
        while start + seg_len <= tour.len() {
            let nn = tour.len();
            let prev = tour[start - 1].0;
            let next = tour[(start + seg_len) % nn].0;
            let first = tour[start].0;
            let last = tour[start + seg_len - 1].0;
            let gain = prev.distance(first) + last.distance(next) - prev.distance(next);
            if gain <= 1e-10 {
                start += 1;
                continue;
            }
            // Remove the segment, find best re-insertion.
            let seg: Vec<(Point2, usize)> = tour.drain(start..start + seg_len).collect();
            let m = tour.len();
            let mut best_cost = f64::INFINITY;
            let mut best_pos = start;
            let mut best_rev = false;
            for k in 0..m {
                let a = tour[k].0;
                let b = tour[(k + 1) % m].0;
                let fwd = a.distance(seg[0].0) + seg[seg_len - 1].0.distance(b) - a.distance(b);
                let rev = a.distance(seg[seg_len - 1].0) + seg[0].0.distance(b) - a.distance(b);
                if fwd < best_cost {
                    best_cost = fwd;
                    best_pos = k + 1;
                    best_rev = false;
                }
                if rev < best_cost {
                    best_cost = rev;
                    best_pos = k + 1;
                    best_rev = true;
                }
            }
            if best_cost < gain - 1e-10 {
                let mut seg = seg;
                if best_rev {
                    seg.reverse();
                }
                for (off, item) in seg.into_iter().enumerate() {
                    tour.insert(best_pos + off, item);
                }
                improved = true;
                // Restart this segment length after a change.
                start = 1;
            } else {
                // Put it back where it was.
                for (off, item) in seg.into_iter().enumerate() {
                    tour.insert(start + off, item);
                }
                start += 1;
            }
        }
    }
    improved
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::HoverStop;
    use uavdc_geom::Aabb;
    use uavdc_net::units::{MegaBytes, MegaBytesPerSecond, Meters, Seconds};
    use uavdc_net::{DeviceId, IotDevice, RadioModel, UavSpec};

    fn scenario() -> Scenario {
        Scenario {
            region: Aabb::square(100.0),
            devices: (0..6)
                .map(|i| IotDevice {
                    pos: Point2::new(10.0 + 15.0 * i as f64, if i % 2 == 0 { 20.0 } else { 80.0 }),
                    data: MegaBytes(150.0),
                })
                .collect(),
            depot: Point2::new(0.0, 0.0),
            radio: RadioModel::new(Meters(10.0), MegaBytesPerSecond(150.0)),
            uav: UavSpec {
                capacity: uavdc_net::units::Joules(1.0e6),
                ..UavSpec::paper_default()
            },
        }
    }

    fn zigzag_plan(s: &Scenario) -> CollectionPlan {
        // Visit devices in index order: a zig-zag between y=20 and y=80.
        CollectionPlan {
            stops: s
                .devices
                .iter()
                .enumerate()
                .map(|(i, d)| HoverStop {
                    pos: d.pos,
                    sojourn: Seconds(1.0),
                    collected: vec![(DeviceId(i as u32), d.data)],
                })
                .collect(),
        }
    }

    #[test]
    fn polishing_shortens_zigzag() {
        let s = scenario();
        let mut plan = zigzag_plan(&s);
        let before = plan.total_energy(&s);
        let volume = plan.collected_volume();
        let saved = polish_plan(&mut plan, &s);
        assert!(saved.value() > 0.0, "zig-zag must be improvable");
        assert!(plan.total_energy(&s).value() < before.value());
        assert_eq!(plan.collected_volume(), volume, "collection untouched");
        plan.validate(&s).unwrap();
        // Energy bookkeeping consistent.
        assert!(((before - plan.total_energy(&s)).value() - saved.value()).abs() < 1e-9);
    }

    #[test]
    fn polishing_keeps_every_stop_exactly_once() {
        let s = scenario();
        let mut plan = zigzag_plan(&s);
        polish_plan(&mut plan, &s);
        let mut devices: Vec<u32> = plan
            .stops
            .iter()
            .flat_map(|st| st.collected.iter().map(|&(d, _)| d.0))
            .collect();
        devices.sort_unstable();
        assert_eq!(devices, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn small_plans_are_noops() {
        let s = scenario();
        let mut plan = CollectionPlan::empty();
        assert_eq!(polish_plan(&mut plan, &s), Joules::ZERO);
        let mut two = CollectionPlan {
            stops: zigzag_plan(&s).stops[..2].to_vec(),
        };
        assert_eq!(polish_plan(&mut two, &s), Joules::ZERO);
    }

    #[test]
    fn polished_wrapper_never_worse() {
        let s = scenario();
        let base = crate::Alg2Planner::default().plan(&s);
        let polished = Polished::new(crate::Alg2Planner::default()).plan(&s);
        polished.validate(&s).unwrap();
        assert_eq!(polished.collected_volume(), base.collected_volume());
        assert!(polished.total_energy(&s).value() <= base.total_energy(&s).value() + 1e-9);
    }

    #[test]
    fn polishing_already_optimal_tour_is_stable() {
        let s = scenario();
        let mut plan = zigzag_plan(&s);
        polish_plan(&mut plan, &s);
        let e1 = plan.total_energy(&s);
        let saved = polish_plan(&mut plan, &s);
        assert!(saved.value() < 1e-9);
        assert!((plan.total_energy(&s).value() - e1.value()).abs() < 1e-9);
    }
}
