//! Algorithm 2: the data collection maximization problem *with* hovering
//! coverage overlapping — greedy maximum-ρ insertion.
//!
//! The tour starts as `{depot}`. Each iteration evaluates every remaining
//! candidate hovering location `s` by the paper's ratio (Eq. 13)
//!
//! ```text
//! ρ(s) = P'(s) / (t'(s)·η_h + Δtravel(s)·η_t/speed)
//! ```
//!
//! where `P'(s)` counts only *not-yet-collected* devices (Eq. 11), `t'(s)`
//! is the hover time those devices need (Eq. 12), and `Δtravel` is the
//! tour-length increase from adding `s`. The best candidate that keeps the
//! plan within the battery is added; iteration stops when nothing fits.
//!
//! Two tour-maintenance modes ([`TourMode`]):
//!
//! * [`TourMode::FastInsertion`] (default) ranks candidates by their
//!   cheapest-insertion delta — O(|tour|) per candidate — inserts the
//!   winner, and periodically compacts the tour with 2-opt. This is the
//!   mode that scales to the paper's 40 000-candidate instances.
//! * [`TourMode::PaperChristofides`] recomputes a full Christofides tour
//!   for every candidate evaluation, exactly as Algorithm 2 is written.
//!   `O(M · n³)` per iteration — use only on small instances (the
//!   ablation bench quantifies what FastInsertion gives up).
//!
//! Candidate evaluation parallelises over crossbeam scoped threads when
//! the candidate set is large.

use crate::candidates::CandidateSet;
use crate::greedy::{
    self, DeviceIndex, EngineMode, EvalCounters, Fixup, InsertionCache, LazyHeap, PlanStats, Probe,
};
use crate::plan::{CollectionPlan, HoverStop};
use crate::tourutil::{cheapest_insertion_point, closed_tour_length};
use crate::Planner;
use uavdc_geom::Point2;
use uavdc_net::units::Seconds;
use uavdc_net::{DeviceId, Scenario};
use uavdc_obs::{Recorder, Span};

/// How the tour is re-planned as stops are added.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum TourMode {
    /// Cheapest-insertion deltas + periodic 2-opt compaction (scalable).
    #[default]
    FastInsertion,
    /// Full Christofides re-tour per candidate evaluation (faithful to
    /// the paper's pseudocode; cubic — small instances only).
    PaperChristofides,
}

/// Configuration of [`Alg2Planner`].
#[derive(Clone, Copy, Debug)]
pub struct Alg2Config {
    /// Grid edge length `δ`, metres.
    pub delta: f64,
    /// Tour maintenance strategy.
    pub tour_mode: TourMode,
    /// Drop candidates whose coverage is dominated by another candidate
    /// before planning.
    pub prune_dominated: bool,
    /// Parallelise candidate evaluation above this candidate count
    /// (`usize::MAX` disables threading).
    pub parallel_threshold: usize,
    /// Per-iteration evaluation strategy. [`EngineMode::Lazy`] (default)
    /// applies only to [`TourMode::FastInsertion`];
    /// [`TourMode::PaperChristofides`] always rescans exhaustively
    /// because every candidate's Δtravel changes with each re-tour.
    pub engine: EngineMode,
}

impl Default for Alg2Config {
    fn default() -> Self {
        Alg2Config {
            delta: 10.0,
            tour_mode: TourMode::FastInsertion,
            prune_dominated: true,
            parallel_threshold: 4096,
            engine: EngineMode::Lazy,
        }
    }
}

/// Algorithm 2 planner.
#[derive(Clone, Debug, Default)]
pub struct Alg2Planner {
    /// Planner configuration.
    pub config: Alg2Config,
}

impl Alg2Planner {
    /// Creates a planner with the given configuration.
    pub fn new(config: Alg2Config) -> Self {
        Alg2Planner { config }
    }
}

/// Evaluation of one candidate in the current state.
#[derive(Clone, Copy, Debug)]
struct Evaluation {
    cand: usize,
    ratio: f64,
    sojourn: f64,
    insert_pos: usize,
}

struct GreedyState<'a> {
    scenario: &'a Scenario,
    candidates: &'a CandidateSet,
    /// Device already fully collected?
    collected: Vec<bool>,
    /// Tour as points; index 0 is the depot. `stop_of[i]` maps tour index
    /// `i >= 1` to an index into `stops`.
    tour_pts: Vec<Point2>,
    stop_of: Vec<usize>,
    stops: Vec<HoverStop>,
    /// Candidate still worth considering (covers uncollected data)?
    active: Vec<bool>,
    hover_energy_total: f64,
    tour_len: f64,
}

impl<'a> GreedyState<'a> {
    fn new(scenario: &'a Scenario, candidates: &'a CandidateSet) -> Self {
        GreedyState {
            scenario,
            candidates,
            collected: vec![false; scenario.num_devices()],
            tour_pts: vec![scenario.depot],
            stop_of: vec![usize::MAX],
            stops: Vec::new(),
            active: vec![true; candidates.len()],
            hover_energy_total: 0.0,
            tour_len: 0.0,
        }
    }

    /// Marginal volume / hover time of a candidate on the uncollected
    /// devices (Eqs. 11–12). Returns `(volume_mb, hover_s)`.
    fn marginal(&self, cand: usize) -> (f64, f64) {
        let b = self.scenario.radio.bandwidth.value();
        let mut vol = 0.0f64;
        let mut t = 0.0f64;
        for &v in &self.candidates.candidates[cand].covered {
            if !self.collected[v as usize] {
                let d = self.scenario.devices[v as usize].data.value();
                vol += d;
                t = t.max(d / b);
            }
        }
        (vol, t)
    }

    /// Evaluates one candidate under FastInsertion; `None` when inactive,
    /// empty, or infeasible right now.
    fn evaluate_insertion(
        &self,
        cand: usize,
        capacity: f64,
        eta_h: f64,
        per_m: f64,
    ) -> Option<Evaluation> {
        if !self.active[cand] {
            return None;
        }
        let (vol, t) = self.marginal(cand);
        if vol <= 0.0 {
            return None;
        }
        let (delta_len, pos) =
            cheapest_insertion_point(&self.tour_pts, self.candidates.candidates[cand].pos);
        let extra = t * eta_h + delta_len * per_m;
        let total = self.hover_energy_total + t * eta_h + (self.tour_len + delta_len) * per_m;
        if total > capacity {
            return None;
        }
        Some(Evaluation {
            cand,
            ratio: vol / extra.max(1e-12),
            sojourn: t,
            insert_pos: pos,
        })
    }

    /// Evaluates one candidate under PaperChristofides: re-tours the full
    /// stop set with the candidate included.
    fn evaluate_christofides(
        &self,
        cand: usize,
        capacity: f64,
        eta_h: f64,
        per_m: f64,
        rec: &dyn Recorder,
    ) -> Option<Evaluation> {
        if !self.active[cand] {
            return None;
        }
        let (vol, t) = self.marginal(cand);
        if vol <= 0.0 {
            return None;
        }
        rec.add("alg2.christofides_retours", 1);
        let mut pts = self.tour_pts.clone();
        pts.push(self.candidates.candidates[cand].pos);
        let order = crate::tourutil::christofides_order_obs(&pts, rec);
        let new_len = closed_tour_length(&crate::tourutil::apply_order(&pts, &order));
        let delta_len = (new_len - self.tour_len).max(0.0);
        let extra = t * eta_h + delta_len * per_m;
        let total = self.hover_energy_total + t * eta_h + new_len * per_m;
        if total > capacity {
            return None;
        }
        // Insert position is recomputed at commit time in this mode.
        Some(Evaluation {
            cand,
            ratio: vol / extra.max(1e-12),
            sojourn: t,
            insert_pos: usize::MAX,
        })
    }

    /// Commits the chosen candidate: collects its uncovered devices,
    /// splices it into the tour, updates energies. Returns the device ids
    /// drained by this stop (the lazy engine's dirty seed). Does **not**
    /// deactivate other exhausted candidates — the exhaustive path sweeps
    /// with [`GreedyState::deactivate_exhausted`], the lazy path reaches
    /// the same candidates through the device index.
    fn commit(
        &mut self,
        eval: Evaluation,
        mode: TourMode,
        eta_h: f64,
        rec: &dyn Recorder,
    ) -> Vec<u32> {
        let cand = &self.candidates.candidates[eval.cand];
        let mut collected_here = Vec::new();
        let mut drained = Vec::new();
        for &v in &cand.covered {
            if !self.collected[v as usize] {
                self.collected[v as usize] = true;
                collected_here.push((DeviceId(v), self.scenario.devices[v as usize].data));
                drained.push(v);
            }
        }
        debug_assert!(!collected_here.is_empty());
        let stop = HoverStop {
            pos: cand.pos,
            sojourn: Seconds(eval.sojourn),
            collected: collected_here,
        };
        self.stops.push(stop);
        let stop_idx = self.stops.len() - 1;
        match mode {
            TourMode::FastInsertion => {
                self.tour_pts.insert(eval.insert_pos, cand.pos);
                self.stop_of.insert(eval.insert_pos, stop_idx);
            }
            TourMode::PaperChristofides => {
                self.tour_pts.push(cand.pos);
                self.stop_of.push(stop_idx);
                rec.add("alg2.christofides_retours", 1);
                let order = crate::tourutil::christofides_order_obs(&self.tour_pts, rec);
                self.tour_pts = crate::tourutil::apply_order(&self.tour_pts, &order);
                self.stop_of = crate::tourutil::apply_order(&self.stop_of, &order);
            }
        }
        self.tour_len = closed_tour_length(&self.tour_pts);
        self.hover_energy_total += eval.sojourn * eta_h;
        self.active[eval.cand] = false;
        drained
    }

    /// Deactivates candidates that no longer cover anything uncollected
    /// (full sweep; the exhaustive engine runs this after every commit).
    fn deactivate_exhausted(&mut self) {
        for i in 0..self.candidates.len() {
            if self.active[i] {
                let covered = &self.candidates.candidates[i].covered;
                if covered.iter().all(|&v| self.collected[v as usize]) {
                    self.active[i] = false;
                }
            }
        }
    }

    /// 2-opt compaction over (point, stop) pairs, reordering both in
    /// lockstep; compaction only shortens the tour, so feasibility is
    /// preserved. Returns whether the tour order actually changed (when
    /// it did not, every cached insertion delta is still exact).
    fn compact(&mut self) -> bool {
        if self.tour_pts.len() < 4 {
            return false;
        }
        let paired: Vec<(Point2, usize)> = self
            .tour_pts
            .iter()
            .copied()
            .zip(self.stop_of.iter().copied())
            .collect();
        let (paired, changed) = two_opt_paired(paired);
        self.tour_pts = paired.iter().map(|p| p.0).collect();
        self.stop_of = paired.iter().map(|p| p.1).collect();
        self.tour_len = closed_tour_length(&self.tour_pts);
        changed
    }

    fn into_plan(self) -> CollectionPlan {
        // Emit stops in tour order (skipping the depot sentinel).
        let mut ordered = Vec::with_capacity(self.stops.len());
        for (i, &s) in self.stop_of.iter().enumerate() {
            if i == 0 {
                continue;
            }
            ordered.push(self.stops[s].clone());
        }
        CollectionPlan { stops: ordered }
    }
}

/// 2-opt where each tour element carries a payload that must move with
/// its point. Index 0 (depot) stays first. Also reports whether any
/// improving swap was applied.
fn two_opt_paired(mut paired: Vec<(Point2, usize)>) -> (Vec<(Point2, usize)>, bool) {
    let n = paired.len();
    if n < 4 {
        return (paired, false);
    }
    let mut changed = false;
    let mut improved = true;
    let mut sweeps = 0;
    while improved && sweeps < 100 {
        improved = false;
        sweeps += 1;
        for i in 0..n - 1 {
            for j in (i + 2)..n {
                if i == 0 && j == n - 1 {
                    continue;
                }
                let (a, b) = (paired[i].0, paired[i + 1].0);
                let (c, d) = (paired[j].0, paired[(j + 1) % n].0);
                let delta = a.distance(c) + b.distance(d) - a.distance(b) - c.distance(d);
                if delta < -1e-10 {
                    paired[i + 1..=j].reverse();
                    improved = true;
                    changed = true;
                }
            }
        }
    }
    (paired, changed)
}

/// The exhaustive engines' ratio comparator (deterministic tie-break on
/// candidate index).
fn better(a: &Evaluation, b: &Evaluation) -> bool {
    a.ratio > b.ratio + greedy::RATIO_BAND
        || (a.ratio >= b.ratio - greedy::RATIO_BAND && a.cand < b.cand)
}

/// Finds the best evaluation over all candidates, optionally in parallel.
fn best_evaluation(
    state: &GreedyState<'_>,
    mode: TourMode,
    parallel_threshold: usize,
    rec: &dyn Recorder,
) -> Option<Evaluation> {
    let capacity = state.scenario.uav.capacity.value();
    let eta_h = state.scenario.uav.hover_power.value();
    let per_m = state.scenario.uav.travel_energy_per_meter().value();
    let eval_one = |c: usize| -> Option<Evaluation> {
        match mode {
            TourMode::FastInsertion => state.evaluate_insertion(c, capacity, eta_h, per_m),
            TourMode::PaperChristofides => {
                state.evaluate_christofides(c, capacity, eta_h, per_m, rec)
            }
        }
    };
    let n = state.candidates.len();
    let parallel = n >= parallel_threshold && mode != TourMode::PaperChristofides;
    greedy::chunked_argmax(n, parallel, eval_one, better)
}

/// Runs the exhaustive greedy loop (full rescan per iteration) to
/// completion, counting iterations as it goes.
fn run_exhaustive(
    state: &mut GreedyState<'_>,
    config: &Alg2Config,
    eta_h: f64,
    counters: &mut EvalCounters,
    rec: &dyn Recorder,
) {
    let mut since_compact = 0;
    loop {
        counters.iterations += 1;
        counters.marginal_evals += state.candidates.len() as u64;
        counters.evaluations += state.candidates.len() as u64;
        let Some(eval) = best_evaluation(state, config.tour_mode, config.parallel_threshold, rec)
        else {
            break;
        };
        state.commit(eval, config.tour_mode, eta_h, rec);
        state.deactivate_exhausted();
        since_compact += 1;
        if config.tour_mode == TourMode::FastInsertion && since_compact >= 8 {
            state.compact();
            since_compact = 0;
        }
    }
    if config.tour_mode == TourMode::FastInsertion {
        state.compact();
    }
}

/// Runs the lazy greedy loop: inverted-index dirty invalidation, exact
/// insertion-cache repair, CELF-style heap selection. Produces the same
/// state evolution — and therefore the same plan — as
/// [`run_exhaustive`] with [`TourMode::FastInsertion`] (property-tested
/// in `tests/lazy_equivalence.rs`; the identical-output argument is in
/// DESIGN.md §8).
fn run_lazy(
    state: &mut GreedyState<'_>,
    config: &Alg2Config,
    eta_h: f64,
    counters: &mut EvalCounters,
    rec: &dyn Recorder,
) {
    let scenario = state.scenario;
    let capacity = scenario.uav.capacity.value();
    let per_m = scenario.uav.travel_energy_per_meter().value();
    let m = state.candidates.len();
    let parallel_threshold = config.parallel_threshold;

    let index = DeviceIndex::build(state.candidates, scenario.num_devices());
    let mut cache_vol = vec![0.0f64; m];
    let mut cache_t = vec![0.0f64; m];
    let mut ins = InsertionCache::new(m);
    let mut heap = LazyHeap::new(m);

    // The engine's one ratio formula — must stay bit-identical to
    // `evaluate_insertion` (same ops in the same order on the same
    // cached operands).
    let ratio_of = |vol: f64, t: f64, delta: f64| -> f64 {
        let extra = t * eta_h + delta * per_m;
        vol / extra.max(1e-12)
    };

    // Initial full evaluation of every candidate (parallel when large).
    let all: Vec<u32> = (0..m as u32).collect();
    let evals = greedy::chunked_map(&all, parallel_threshold, |&c| {
        let (vol, t) = state.marginal(c as usize);
        if vol <= 0.0 {
            (vol, t, 0.0, usize::MAX)
        } else {
            let (delta, pos) = cheapest_insertion_point(
                &state.tour_pts,
                state.candidates.candidates[c as usize].pos,
            );
            (vol, t, delta, pos)
        }
    });
    counters.marginal_evals += m as u64;
    counters.evaluations += m as u64;
    for (c, &(vol, t, delta, pos)) in evals.iter().enumerate() {
        cache_vol[c] = vol;
        cache_t[c] = t;
        if vol <= 0.0 {
            state.active[c] = false;
        } else {
            ins.set(c, delta, pos);
            heap.push(c, ratio_of(vol, t, delta));
        }
    }

    let mut stamp = vec![0u32; m];
    let mut epoch = 0u32;
    let mut dirty: Vec<u32> = Vec::new();
    let mut touched: Vec<u32> = Vec::new();
    let mut rescan: Vec<u32> = Vec::new();
    let mut since_compact = 0;
    loop {
        counters.iterations += 1;
        let mut pops = 0u64;
        let selected = heap.select(
            |c| state.active[c],
            |c| {
                // Caches are exact; only feasibility depends on the
                // running totals. Mirrors `evaluate_insertion` bit for
                // bit (infeasible ⇔ it would return `None`).
                let t = cache_t[c];
                let (delta, _) = ins.get(c).unwrap_or((0.0, 0));
                let total = state.hover_energy_total + t * eta_h + (state.tour_len + delta) * per_m;
                if total > capacity {
                    Probe::Infeasible
                } else {
                    Probe::Feasible(ratio_of(cache_vol[c], t, delta))
                }
            },
            &mut pops,
        );
        counters.heap_pops += pops;
        rec.observe("alg2.pops_per_iter", pops);
        let Some((winner, ratio)) = selected else {
            break;
        };
        // Canonical insertion position for the winner (the cache may
        // name a different edge of equal delta).
        let pos =
            cheapest_insertion_point(&state.tour_pts, state.candidates.candidates[winner].pos).1;
        let eval = Evaluation {
            cand: winner,
            ratio,
            sojourn: cache_t[winner],
            insert_pos: pos,
        };
        let drained = state.commit(eval, TourMode::FastInsertion, eta_h, rec);
        since_compact += 1;

        // Repair every active candidate's cached insertion delta in
        // O(1); collect the ones whose argmin edge was destroyed.
        touched.clear();
        rescan.clear();
        for c in 0..m {
            if !state.active[c] {
                continue;
            }
            counters.fixups += 1;
            match ins.apply_insertion(c, state.candidates.candidates[c].pos, &state.tour_pts, pos) {
                Fixup::Unchanged => {}
                Fixup::Improved => touched.push(c as u32),
                Fixup::Invalidated => rescan.push(c as u32),
            }
        }

        // Re-evaluate the marginal reward of candidates sharing a
        // drained device; fully-drained ones deactivate (the exhaustive
        // sweep would catch exactly these this iteration).
        epoch = epoch.wrapping_add(1);
        index.dirty_candidates(drained.iter().copied(), &mut stamp, epoch, &mut dirty);
        rec.observe("alg2.dirty_batch", dirty.len() as u64);
        for &c in &dirty {
            let c = c as usize;
            if !state.active[c] {
                continue;
            }
            counters.marginal_evals += 1;
            counters.evaluations += 1;
            let (vol, t) = state.marginal(c);
            cache_vol[c] = vol;
            cache_t[c] = t;
            if vol <= 0.0 {
                state.active[c] = false;
            } else {
                touched.push(c as u32);
            }
        }

        // Rescan destroyed insertion deltas as one (possibly parallel)
        // dirty batch.
        rescan.retain(|&c| state.active[c as usize]);
        if !rescan.is_empty() {
            counters.delta_rescans += rescan.len() as u64;
            counters.evaluations += rescan.len() as u64;
            let fresh = greedy::chunked_map(&rescan, parallel_threshold, |&c| {
                cheapest_insertion_point(
                    &state.tour_pts,
                    state.candidates.candidates[c as usize].pos,
                )
            });
            for (&c, &(delta, p)) in rescan.iter().zip(&fresh) {
                ins.set(c as usize, delta, p);
                touched.push(c);
            }
        }

        // Publish fresh heap entries for every candidate whose caches
        // changed (this is also what lets a parked candidate re-enter
        // contention when its own cost shrank).
        touched.sort_unstable();
        touched.dedup();
        for &c in &touched {
            let c = c as usize;
            if state.active[c] {
                if let Some((delta, _)) = ins.get(c) {
                    heap.push(c, ratio_of(cache_vol[c], cache_t[c], delta));
                }
            }
        }

        // Periodic 2-opt compaction. When the tour actually changed,
        // every cached delta is stale and battery slack may have grown:
        // rescan all active candidates and return parked ones to
        // contention.
        if since_compact >= 8 {
            if state.compact() {
                let alive: Vec<u32> = (0..m as u32)
                    .filter(|&c| state.active[c as usize])
                    .collect();
                counters.delta_rescans += alive.len() as u64;
                counters.evaluations += alive.len() as u64;
                let fresh = greedy::chunked_map(&alive, parallel_threshold, |&c| {
                    cheapest_insertion_point(
                        &state.tour_pts,
                        state.candidates.candidates[c as usize].pos,
                    )
                });
                for (&c, &(delta, p)) in alive.iter().zip(&fresh) {
                    ins.set(c as usize, delta, p);
                    heap.push(
                        c as usize,
                        ratio_of(cache_vol[c as usize], cache_t[c as usize], delta),
                    );
                }
                heap.unpark_all();
            }
            since_compact = 0;
        }
    }
    state.compact();
}

impl Alg2Planner {
    /// Plans and returns the work/timing breakdown alongside the plan
    /// (consumed by the `planner_baseline` perf harness).
    pub fn plan_with_stats(&self, scenario: &Scenario) -> (CollectionPlan, PlanStats) {
        self.plan_with_stats_obs(scenario, &uavdc_obs::NOOP)
    }

    /// Like [`plan_with_stats`](Alg2Planner::plan_with_stats), reporting
    /// spans (`alg2/setup`, `alg2/loop`), end-of-run counters, and
    /// per-iteration histograms to `rec`. With the no-op recorder this
    /// is the same computation producing bit-identical plans
    /// (property-tested in `tests/obs_noop_equivalence.rs`).
    pub fn plan_with_stats_obs(
        &self,
        scenario: &Scenario,
        rec: &dyn Recorder,
    ) -> (CollectionPlan, PlanStats) {
        self.plan_prepared_obs(scenario, None, rec)
    }

    /// Recorder-free twin of
    /// [`plan_prepared_obs`](Alg2Planner::plan_prepared_obs).
    pub fn plan_prepared(
        &self,
        scenario: &Scenario,
        prepared: Option<&CandidateSet>,
    ) -> (CollectionPlan, PlanStats) {
        self.plan_prepared_obs(scenario, prepared, &uavdc_obs::NOOP)
    }

    /// Like [`plan_with_stats_obs`](Alg2Planner::plan_with_stats_obs),
    /// optionally reusing a prebuilt candidate set instead of rebuilding
    /// it. `prepared` must be exactly what the cold path would build —
    /// `CandidateSet::build(scenario, config.delta)` followed by
    /// `prune_dominated()` when `config.prune_dominated` is set — which is
    /// what `uavdc-bench`'s artifact cache guarantees by keying on the
    /// scenario layout fingerprint and `δ`. Cold and prepared runs then
    /// share every instruction after setup, so plans and counters are
    /// bit-identical (property-tested in
    /// `uavdc-bench/tests/service_cache_invisibility.rs`); only
    /// `setup_ns` shrinks.
    pub fn plan_prepared_obs(
        &self,
        scenario: &Scenario,
        prepared: Option<&CandidateSet>,
        rec: &dyn Recorder,
    ) -> (CollectionPlan, PlanStats) {
        let root = Span::root(rec, "alg2");
        // lint:allow(effect-taint): wall-clock runtime stats only; never influence plan content
        let setup_start = std::time::Instant::now();
        let setup_span = root.child("setup");
        let built;
        let candidates = match prepared {
            Some(c) => c,
            None => {
                let mut c = CandidateSet::build(scenario, self.config.delta);
                if self.config.prune_dominated {
                    c.prune_dominated();
                }
                built = c;
                &built
            }
        };
        let engine = match self.config.tour_mode {
            TourMode::FastInsertion => self.config.engine,
            // Christofides re-touring invalidates every Δtravel each
            // iteration; there is nothing for the lazy engine to cache.
            TourMode::PaperChristofides => EngineMode::Exhaustive,
        };
        let mut stats = PlanStats {
            engine,
            counters: EvalCounters {
                candidates: candidates.len(),
                ..EvalCounters::default()
            },
            setup_ns: 0,
            loop_ns: 0,
        };
        drop(setup_span);
        if candidates.is_empty() {
            stats.setup_ns = setup_start.elapsed().as_nanos() as u64;
            return (CollectionPlan::empty(), stats);
        }
        let mut state = GreedyState::new(scenario, candidates);
        let eta_h = scenario.uav.hover_power.value();
        stats.setup_ns = setup_start.elapsed().as_nanos() as u64;
        // lint:allow(effect-taint): wall-clock runtime stats only; never influence plan content
        let loop_start = std::time::Instant::now();
        let loop_span = root.child("loop");
        match engine {
            EngineMode::Lazy => run_lazy(&mut state, &self.config, eta_h, &mut stats.counters, rec),
            EngineMode::Exhaustive => {
                run_exhaustive(&mut state, &self.config, eta_h, &mut stats.counters, rec)
            }
        }
        drop(loop_span);
        stats.loop_ns = loop_start.elapsed().as_nanos() as u64;
        flush_counters(rec, &stats.counters);
        let plan = state.into_plan();
        crate::validate::debug_check_plan(
            "Alg2Planner",
            scenario,
            &plan,
            crate::validate::Profile::P2FullOverlap,
        );
        (plan, stats)
    }
}

/// Publishes the end-of-run engine counters under the `alg2.` namespace.
fn flush_counters(rec: &dyn Recorder, c: &EvalCounters) {
    rec.add("alg2.candidates", c.candidates as u64);
    rec.add("alg2.iterations", c.iterations);
    rec.add("alg2.evaluations", c.evaluations);
    rec.add("alg2.marginal_evals", c.marginal_evals);
    rec.add("alg2.delta_rescans", c.delta_rescans);
    rec.add("alg2.fixups", c.fixups);
    rec.add("alg2.heap_pops", c.heap_pops);
}

impl Planner for Alg2Planner {
    fn name(&self) -> &'static str {
        match self.config.tour_mode {
            TourMode::FastInsertion => "Algorithm 2 (greedy ρ, fast)",
            TourMode::PaperChristofides => "Algorithm 2 (greedy ρ, Christofides)",
        }
    }

    fn plan(&self, scenario: &Scenario) -> CollectionPlan {
        self.plan_with_stats(scenario).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uavdc_geom::Aabb;
    use uavdc_net::units::{Joules, MegaBytes, MegaBytesPerSecond, Meters};
    use uavdc_net::{IotDevice, RadioModel, UavSpec};

    fn scenario(capacity: f64) -> Scenario {
        Scenario {
            region: Aabb::square(200.0),
            devices: vec![
                IotDevice {
                    pos: Point2::new(40.0, 40.0),
                    data: MegaBytes(300.0),
                },
                IotDevice {
                    pos: Point2::new(48.0, 40.0),
                    data: MegaBytes(450.0),
                },
                IotDevice {
                    pos: Point2::new(60.0, 44.0),
                    data: MegaBytes(150.0),
                },
                IotDevice {
                    pos: Point2::new(180.0, 180.0),
                    data: MegaBytes(900.0),
                },
            ],
            depot: Point2::new(0.0, 0.0),
            radio: RadioModel::new(Meters(20.0), MegaBytesPerSecond(150.0)),
            uav: UavSpec {
                capacity: Joules(capacity),
                ..UavSpec::paper_default()
            },
        }
    }

    #[test]
    fn plan_validates_and_respects_budget() {
        let s = scenario(4000.0);
        let plan = Alg2Planner::default().plan(&s);
        plan.validate(&s).unwrap();
        assert!(plan.total_energy(&s).value() <= 4000.0 + 1e-6);
        assert!(plan.collected_volume().value() > 0.0);
    }

    #[test]
    fn overlapping_coverage_collects_each_device_once() {
        let s = scenario(50_000.0);
        let plan = Alg2Planner::default().plan(&s);
        plan.validate(&s).unwrap();
        // All four devices collected exactly once.
        assert_eq!(plan.collected_volume(), MegaBytes(1800.0));
        let mut seen = std::collections::HashSet::new();
        for stop in &plan.stops {
            for (dev, _) in &stop.collected {
                assert!(seen.insert(*dev), "device collected twice");
            }
        }
    }

    #[test]
    fn zero_capacity_collects_nothing() {
        let s = scenario(0.0);
        let plan = Alg2Planner::default().plan(&s);
        assert!(plan.stops.is_empty());
    }

    #[test]
    fn paper_christofides_mode_works_on_small_instances() {
        let s = scenario(8000.0);
        let cfg = Alg2Config {
            delta: 20.0,
            tour_mode: TourMode::PaperChristofides,
            ..Alg2Config::default()
        };
        let plan = Alg2Planner::new(cfg).plan(&s);
        plan.validate(&s).unwrap();
        assert!(plan.collected_volume().value() > 0.0);
    }

    #[test]
    fn parallel_and_serial_agree() {
        let s = scenario(6000.0);
        let serial = Alg2Planner::new(Alg2Config {
            parallel_threshold: usize::MAX,
            ..Alg2Config::default()
        })
        .plan(&s);
        let parallel = Alg2Planner::new(Alg2Config {
            parallel_threshold: 1,
            ..Alg2Config::default()
        })
        .plan(&s);
        assert_eq!(serial.collected_volume(), parallel.collected_volume());
        assert_eq!(serial.stops.len(), parallel.stops.len());
    }

    #[test]
    fn finer_grid_does_not_collect_less() {
        // More candidates can only help the greedy (it has strictly more
        // choices); allow small tolerance for tie-breaking noise.
        let s = scenario(5000.0);
        let coarse = Alg2Planner::new(Alg2Config {
            delta: 40.0,
            ..Alg2Config::default()
        })
        .plan(&s);
        let fine = Alg2Planner::new(Alg2Config {
            delta: 5.0,
            ..Alg2Config::default()
        })
        .plan(&s);
        assert!(
            fine.collected_volume().value() >= 0.9 * coarse.collected_volume().value(),
            "fine {} vs coarse {}",
            fine.collected_volume(),
            coarse.collected_volume()
        );
    }

    #[test]
    fn sojourn_covers_only_new_devices() {
        // Second stop overlapping the first should hover only as long as
        // its new devices need (Eq. 12).
        let s = scenario(50_000.0);
        let plan = Alg2Planner::default().plan(&s);
        let b = s.radio.bandwidth.value();
        for stop in &plan.stops {
            let needed = stop
                .collected
                .iter()
                .map(|&(_, v)| v.value() / b)
                .fold(0.0, f64::max);
            assert!((stop.sojourn.value() - needed).abs() < 1e-9);
        }
    }
}
