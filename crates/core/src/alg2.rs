//! Algorithm 2: the data collection maximization problem *with* hovering
//! coverage overlapping — greedy maximum-ρ insertion.
//!
//! The tour starts as `{depot}`. Each iteration evaluates every remaining
//! candidate hovering location `s` by the paper's ratio (Eq. 13)
//!
//! ```text
//! ρ(s) = P'(s) / (t'(s)·η_h + Δtravel(s)·η_t/speed)
//! ```
//!
//! where `P'(s)` counts only *not-yet-collected* devices (Eq. 11), `t'(s)`
//! is the hover time those devices need (Eq. 12), and `Δtravel` is the
//! tour-length increase from adding `s`. The best candidate that keeps the
//! plan within the battery is added; iteration stops when nothing fits.
//!
//! Two tour-maintenance modes ([`TourMode`]):
//!
//! * [`TourMode::FastInsertion`] (default) ranks candidates by their
//!   cheapest-insertion delta — O(|tour|) per candidate — inserts the
//!   winner, and periodically compacts the tour with 2-opt. This is the
//!   mode that scales to the paper's 40 000-candidate instances.
//! * [`TourMode::PaperChristofides`] recomputes a full Christofides tour
//!   for every candidate evaluation, exactly as Algorithm 2 is written.
//!   `O(M · n³)` per iteration — use only on small instances (the
//!   ablation bench quantifies what FastInsertion gives up). By default
//!   the rebuilds run through an incremental tour's cached distances and
//!   odd-vertex matching memo ([`Alg2Config::speculative_cache`]), which
//!   changes nothing about the produced plans — only their cost.
//!
//! Candidate evaluation parallelises over crossbeam scoped threads when
//! the candidate set is large. The lazy engine additionally leans on the
//! batch kernels of `uavdc_graph::incremental` (bit-identical per lane to
//! the scalar scans they replace) and on an [`IncrementalTour`] mirror of
//! the growing tour, so its *operation counts* — frozen by the perf
//! baseline — stay exactly those of the exhaustive reference while each
//! operation gets cheaper.

use crate::candidates::CandidateSet;
use crate::greedy::{
    self, DeviceIndex, EngineMode, EvalCounters, Fixup, InsertionCache, LazyHeap, PlanStats, Probe,
    RepairDists,
};
use crate::plan::{CollectionPlan, HoverStop};
use crate::tourutil::{cheapest_insertion_point, closed_tour_length};
use crate::Planner;
use uavdc_geom::Point2;
use uavdc_graph::incremental::{
    cheapest_insertion_cached, cheapest_insertion_cached4, distances_to_point, IncrementalTour,
    RetourPolicy,
};
use uavdc_net::units::Seconds;
use uavdc_net::{DeviceId, Scenario};
use uavdc_obs::{Recorder, Span};

/// How the tour is re-planned as stops are added.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum TourMode {
    /// Cheapest-insertion deltas + periodic 2-opt compaction (scalable).
    #[default]
    FastInsertion,
    /// Full Christofides re-tour per candidate evaluation (faithful to
    /// the paper's pseudocode; cubic — small instances only).
    PaperChristofides,
}

/// Configuration of [`Alg2Planner`].
#[derive(Clone, Copy, Debug)]
pub struct Alg2Config {
    /// Grid edge length `δ`, metres.
    pub delta: f64,
    /// Tour maintenance strategy.
    pub tour_mode: TourMode,
    /// Drop candidates whose coverage is dominated by another candidate
    /// before planning.
    pub prune_dominated: bool,
    /// Parallelise candidate evaluation above this candidate count
    /// (`usize::MAX` disables threading).
    pub parallel_threshold: usize,
    /// Per-iteration evaluation strategy. [`EngineMode::Lazy`] (default)
    /// applies only to [`TourMode::FastInsertion`];
    /// [`TourMode::PaperChristofides`] always rescans exhaustively
    /// because every candidate's Δtravel changes with each re-tour.
    pub engine: EngineMode,
    /// Under [`TourMode::PaperChristofides`], score candidates through an
    /// [`IncrementalTour`]'s speculative Christofides rebuilds (cached
    /// distance matrix + odd-vertex matching memo) and reuse the winning
    /// order at commit instead of re-touring from scratch. Plans are
    /// bit-identical either way (differential-tested in
    /// `tests/alg2_incremental_equivalence.rs`); the literal transcription
    /// (`false`) additionally re-tours once per commit, which shows up in
    /// [`EvalCounters::full_retours`]. Ignored by
    /// [`TourMode::FastInsertion`].
    pub speculative_cache: bool,
}

impl Default for Alg2Config {
    fn default() -> Self {
        Alg2Config {
            delta: 10.0,
            tour_mode: TourMode::FastInsertion,
            prune_dominated: true,
            parallel_threshold: 4096,
            engine: EngineMode::Lazy,
            speculative_cache: true,
        }
    }
}

/// Algorithm 2 planner.
#[derive(Clone, Debug, Default)]
pub struct Alg2Planner {
    /// Planner configuration.
    pub config: Alg2Config,
}

impl Alg2Planner {
    /// Creates a planner with the given configuration.
    pub fn new(config: Alg2Config) -> Self {
        Alg2Planner { config }
    }
}

/// Evaluation of one candidate in the current state.
#[derive(Clone, Copy, Debug)]
struct Evaluation {
    cand: usize,
    ratio: f64,
    sojourn: f64,
    insert_pos: usize,
}

struct GreedyState<'a> {
    scenario: &'a Scenario,
    candidates: &'a CandidateSet,
    /// Device already fully collected?
    collected: Vec<bool>,
    /// Tour as points; index 0 is the depot. `stop_of[i]` maps tour index
    /// `i >= 1` to an index into `stops`.
    tour_pts: Vec<Point2>,
    stop_of: Vec<usize>,
    stops: Vec<HoverStop>,
    /// Candidate still worth considering (covers uncollected data)?
    active: Vec<bool>,
    hover_energy_total: f64,
    tour_len: f64,
}

impl<'a> GreedyState<'a> {
    fn new(scenario: &'a Scenario, candidates: &'a CandidateSet) -> Self {
        GreedyState {
            scenario,
            candidates,
            collected: vec![false; scenario.num_devices()],
            tour_pts: vec![scenario.depot],
            stop_of: vec![usize::MAX],
            stops: Vec::new(),
            active: vec![true; candidates.len()],
            hover_energy_total: 0.0,
            tour_len: 0.0,
        }
    }

    /// Marginal volume / hover time of a candidate on the uncollected
    /// devices (Eqs. 11–12). Returns `(volume_mb, hover_s)`.
    fn marginal(&self, cand: usize) -> (f64, f64) {
        let b = self.scenario.radio.bandwidth.value();
        let mut vol = 0.0f64;
        let mut t = 0.0f64;
        for &v in &self.candidates.candidates[cand].covered {
            if !self.collected[v as usize] {
                let d = self.scenario.devices[v as usize].data.value();
                vol += d;
                t = t.max(d / b);
            }
        }
        (vol, t)
    }

    /// Evaluates one candidate under FastInsertion; `None` when inactive,
    /// empty, or infeasible right now.
    fn evaluate_insertion(
        &self,
        cand: usize,
        capacity: f64,
        eta_h: f64,
        per_m: f64,
    ) -> Option<Evaluation> {
        if !self.active[cand] {
            return None;
        }
        let (vol, t) = self.marginal(cand);
        if vol <= 0.0 {
            return None;
        }
        let (delta_len, pos) =
            cheapest_insertion_point(&self.tour_pts, self.candidates.candidates[cand].pos);
        let extra = t * eta_h + delta_len * per_m;
        let total = self.hover_energy_total + t * eta_h + (self.tour_len + delta_len) * per_m;
        if total > capacity {
            return None;
        }
        Some(Evaluation {
            cand,
            ratio: vol / extra.max(1e-12),
            sojourn: t,
            insert_pos: pos,
        })
    }

    /// Commits the chosen candidate under FastInsertion: collects its
    /// uncovered devices, splices it into the tour at
    /// `eval.insert_pos`, updates energies. Returns the device ids
    /// drained by this stop (the lazy engine's dirty seed). Does **not**
    /// deactivate other exhausted candidates — the exhaustive path sweeps
    /// with [`GreedyState::deactivate_exhausted`], the lazy path reaches
    /// the same candidates through the device index.
    fn commit(&mut self, eval: Evaluation, eta_h: f64) -> Vec<u32> {
        let cand = &self.candidates.candidates[eval.cand];
        let drained = self.drain_devices(eval);
        self.tour_pts.insert(eval.insert_pos, cand.pos);
        self.stop_of.insert(eval.insert_pos, self.stops.len() - 1);
        self.tour_len = closed_tour_length(&self.tour_pts);
        self.hover_energy_total += eval.sojourn * eta_h;
        self.active[eval.cand] = false;
        drained
    }

    /// Commits the chosen candidate under PaperChristofides: the stop is
    /// appended and the whole tour re-ordered. With `Some(order)` (the
    /// winner's speculative order over `tour_pts ∪ {cand}`, positions
    /// `0..len()+1` with the candidate at position `len()`) the
    /// evaluation's rebuild is reused; with `None` a fresh Christofides
    /// re-tour runs here, exactly as the pseudocode is written. Both
    /// orders are bit-identical, so the committed tours are too.
    fn commit_paper(
        &mut self,
        eval: Evaluation,
        order: Option<&[usize]>,
        eta_h: f64,
        rec: &dyn Recorder,
    ) -> Vec<u32> {
        let cand = &self.candidates.candidates[eval.cand];
        let drained = self.drain_devices(eval);
        self.tour_pts.push(cand.pos);
        self.stop_of.push(self.stops.len() - 1);
        match order {
            Some(order) => {
                self.tour_pts = crate::tourutil::apply_order(&self.tour_pts, order);
                self.stop_of = crate::tourutil::apply_order(&self.stop_of, order);
            }
            None => {
                rec.add("alg2.christofides_retours", 1);
                let order = crate::tourutil::christofides_order_obs(&self.tour_pts, rec);
                self.tour_pts = crate::tourutil::apply_order(&self.tour_pts, &order);
                self.stop_of = crate::tourutil::apply_order(&self.stop_of, &order);
            }
        }
        self.tour_len = closed_tour_length(&self.tour_pts);
        self.hover_energy_total += eval.sojourn * eta_h;
        self.active[eval.cand] = false;
        drained
    }

    /// Shared commit prologue: collects the candidate's uncovered devices
    /// into a new [`HoverStop`] and returns the drained device ids.
    fn drain_devices(&mut self, eval: Evaluation) -> Vec<u32> {
        let cand = &self.candidates.candidates[eval.cand];
        let mut collected_here = Vec::new();
        let mut drained = Vec::new();
        for &v in &cand.covered {
            if !self.collected[v as usize] {
                self.collected[v as usize] = true;
                collected_here.push((DeviceId(v), self.scenario.devices[v as usize].data));
                drained.push(v);
            }
        }
        debug_assert!(!collected_here.is_empty());
        self.stops.push(HoverStop {
            pos: cand.pos,
            sojourn: Seconds(eval.sojourn),
            collected: collected_here,
        });
        drained
    }

    /// Deactivates candidates that no longer cover anything uncollected
    /// (full sweep; the exhaustive engine runs this after every commit).
    fn deactivate_exhausted(&mut self) {
        for i in 0..self.candidates.len() {
            if self.active[i] {
                let covered = &self.candidates.candidates[i].covered;
                if covered.iter().all(|&v| self.collected[v as usize]) {
                    self.active[i] = false;
                }
            }
        }
    }

    /// 2-opt compaction over (point, stop) pairs, reordering both in
    /// lockstep; compaction only shortens the tour, so feasibility is
    /// preserved. Returns whether the tour order actually changed (when
    /// it did not, every cached insertion delta is still exact).
    fn compact(&mut self) -> bool {
        if self.tour_pts.len() < 4 {
            return false;
        }
        let paired: Vec<(Point2, usize)> = self
            .tour_pts
            .iter()
            .copied()
            .zip(self.stop_of.iter().copied())
            .collect();
        let (paired, changed) = two_opt_paired(paired);
        self.tour_pts = paired.iter().map(|p| p.0).collect();
        self.stop_of = paired.iter().map(|p| p.1).collect();
        self.tour_len = closed_tour_length(&self.tour_pts);
        changed
    }

    fn into_plan(self) -> CollectionPlan {
        // Emit stops in tour order (skipping the depot sentinel).
        let mut ordered = Vec::with_capacity(self.stops.len());
        for (i, &s) in self.stop_of.iter().enumerate() {
            if i == 0 {
                continue;
            }
            ordered.push(self.stops[s].clone());
        }
        CollectionPlan { stops: ordered }
    }
}

/// 2-opt where each tour element carries a payload that must move with
/// its point. Index 0 (depot) stays first. Also reports whether any
/// improving swap was applied.
fn two_opt_paired(mut paired: Vec<(Point2, usize)>) -> (Vec<(Point2, usize)>, bool) {
    let n = paired.len();
    if n < 4 {
        return (paired, false);
    }
    let mut changed = false;
    let mut improved = true;
    let mut sweeps = 0;
    while improved && sweeps < 100 {
        improved = false;
        sweeps += 1;
        for i in 0..n - 1 {
            for j in (i + 2)..n {
                if i == 0 && j == n - 1 {
                    continue;
                }
                let (a, b) = (paired[i].0, paired[i + 1].0);
                let (c, d) = (paired[j].0, paired[(j + 1) % n].0);
                let delta = a.distance(c) + b.distance(d) - a.distance(b) - c.distance(d);
                if delta < -1e-10 {
                    paired[i + 1..=j].reverse();
                    improved = true;
                    changed = true;
                }
            }
        }
    }
    (paired, changed)
}

/// The exhaustive engines' ratio comparator (deterministic tie-break on
/// candidate index).
fn better(a: &Evaluation, b: &Evaluation) -> bool {
    a.ratio > b.ratio + greedy::RATIO_BAND
        || (a.ratio >= b.ratio - greedy::RATIO_BAND && a.cand < b.cand)
}

/// Finds the best FastInsertion evaluation over all candidates,
/// optionally in parallel.
fn best_evaluation(state: &GreedyState<'_>, parallel_threshold: usize) -> Option<Evaluation> {
    let capacity = state.scenario.uav.capacity.value();
    let eta_h = state.scenario.uav.hover_power.value();
    let per_m = state.scenario.uav.travel_energy_per_meter().value();
    let n = state.candidates.len();
    let parallel = n >= parallel_threshold;
    greedy::chunked_argmax(
        n,
        parallel,
        |c| state.evaluate_insertion(c, capacity, eta_h, per_m),
        better,
    )
}

/// Runs the exhaustive FastInsertion greedy loop (full rescan per
/// iteration) to completion, counting iterations as it goes. This is the
/// reference engine — and the perf baseline's speedup denominator — so it
/// deliberately stays scalar.
fn run_exhaustive(
    state: &mut GreedyState<'_>,
    config: &Alg2Config,
    eta_h: f64,
    counters: &mut EvalCounters,
) {
    let mut since_compact = 0;
    loop {
        counters.iterations += 1;
        counters.marginal_evals += state.candidates.len() as u64;
        counters.evaluations += state.candidates.len() as u64;
        let Some(eval) = best_evaluation(state, config.parallel_threshold) else {
            break;
        };
        state.commit(eval, eta_h);
        counters.tour_patches += 1;
        state.deactivate_exhausted();
        since_compact += 1;
        if since_compact >= 8 {
            if state.compact() {
                counters.tour_patches += 1;
            }
            since_compact = 0;
        }
    }
    if state.compact() {
        counters.tour_patches += 1;
    }
}

/// Runs the PaperChristofides greedy loop: every candidate is scored by a
/// full re-tour of the stop set with the candidate included, exactly as
/// Algorithm 2 is written. With [`Alg2Config::speculative_cache`] the
/// per-candidate rebuilds run as [`IncrementalTour::speculative_order_obs`]
/// (cached distance matrix, memoised odd-vertex matching) and the winning
/// order is reused at commit; both paths produce bit-identical plans
/// (differential-tested in `tests/alg2_incremental_equivalence.rs`).
fn run_paper(
    state: &mut GreedyState<'_>,
    config: &Alg2Config,
    eta_h: f64,
    counters: &mut EvalCounters,
    rec: &dyn Recorder,
) {
    let scenario = state.scenario;
    let capacity = scenario.uav.capacity.value();
    let per_m = scenario.uav.travel_energy_per_meter().value();
    let m = state.candidates.len();
    let mut inc = IncrementalTour::new(
        (scenario.depot.x, scenario.depot.y),
        RetourPolicy::PatchOnly,
    );
    loop {
        counters.iterations += 1;
        counters.marginal_evals += m as u64;
        counters.evaluations += m as u64;
        let mut best: Option<(Evaluation, Option<Vec<usize>>)> = None;
        for c in 0..m {
            if !state.active[c] {
                continue;
            }
            let (vol, t) = state.marginal(c);
            if vol <= 0.0 {
                continue;
            }
            rec.add("alg2.christofides_retours", 1);
            counters.full_retours += 1;
            let cand_pos = state.candidates.candidates[c].pos;
            let mut pts = state.tour_pts.clone();
            pts.push(cand_pos);
            let order = if config.speculative_cache {
                inc.speculative_order_obs((cand_pos.x, cand_pos.y), rec)
            } else {
                crate::tourutil::christofides_order_obs(&pts, rec)
            };
            let new_len = closed_tour_length(&crate::tourutil::apply_order(&pts, &order));
            let delta_len = (new_len - state.tour_len).max(0.0);
            let extra = t * eta_h + delta_len * per_m;
            let total = state.hover_energy_total + t * eta_h + new_len * per_m;
            if total > capacity {
                continue;
            }
            let eval = Evaluation {
                cand: c,
                ratio: vol / extra.max(1e-12),
                sojourn: t,
                insert_pos: usize::MAX,
            };
            if best.as_ref().is_none_or(|(b, _)| better(&eval, b)) {
                best = Some((eval, config.speculative_cache.then_some(order)));
            }
        }
        let Some((eval, order)) = best else {
            break;
        };
        let cand_pos = state.candidates.candidates[eval.cand].pos;
        state.commit_paper(eval, order.as_deref(), eta_h, rec);
        counters.tour_patches += 1;
        match order {
            Some(order) => {
                // Mirror the commit into the incremental tour: append the
                // winner at the tail (where the speculative phantom stop
                // sat) and apply the reused order.
                let id = inc.append_point((cand_pos.x, cand_pos.y));
                let tail = inc.len();
                inc.insert_id_at(id, tail);
                inc.apply_permutation(&order);
                debug_assert_eq!(inc.len(), state.tour_pts.len());
            }
            None => {
                // The literal transcription re-toured once more at commit.
                counters.full_retours += 1;
            }
        }
        state.deactivate_exhausted();
    }
}

/// Epoch-stamped membership push: `touched` accumulates each candidate at
/// most once per iteration, replacing a sort+dedup pass. Heap pushes may
/// then happen in discovery order rather than ascending candidate order —
/// harmless, because the heap's pop sequence depends only on the *set* of
/// `(ratio, cand, gen)` entries (strict total order), never on push order,
/// and per-candidate generation numbers count only that candidate's own
/// pushes.
fn touch(tstamp: &mut [u32], tepoch: u32, touched: &mut Vec<u32>, c: u32) {
    if tstamp[c as usize] != tepoch {
        tstamp[c as usize] = tepoch;
        touched.push(c);
    }
}

/// The lazy engine's compaction: 2-opt over the incremental tour's cached
/// triangular matrix, with the resulting permutation applied to the
/// planner state and coordinate mirrors in lockstep. Produces exactly the
/// state [`GreedyState::compact`] would: the sweeps make bit-identical
/// decisions (cached distances ≡ fresh ones) and the skipped `tour_len`
/// recomputation on the unchanged path is the value it already holds.
fn lazy_compact(state: &mut GreedyState<'_>, inc: &mut IncrementalTour) -> bool {
    let Some(perm) = inc.two_opt_compact() else {
        return false;
    };
    state.tour_pts = crate::tourutil::apply_order(&state.tour_pts, &perm);
    state.stop_of = crate::tourutil::apply_order(&state.stop_of, &perm);
    state.tour_len = inc.total_cost();
    true
}

/// Input-derived accelerator structures for the lazy engine, built during
/// the setup phase alongside the candidate set (each is a pure function
/// of the scenario and candidates, independent of the greedy loop's
/// progress): the inverted device→candidate index, candidate coordinate
/// structure-of-arrays mirrors, the flattened coverage CSR with volumes
/// and hover times preresolved, and the candidate × tour-point distance
/// matrix backing store with its depot column (tour point id 0) filled.
///
/// The distance matrix is the loop's sqrt cache: row `c` holds candidate
/// `c`'s distance to every tour point, indexed by the point's stable
/// [`IncrementalTour`] id, written once when the point enters the tour
/// and reused by every later repair, rescan and compaction rescan.
struct LazyPre {
    index: DeviceIndex,
    cand_xs: Vec<f64>,
    cand_ys: Vec<f64>,
    cov_off: Vec<u32>,
    cov_dev: Vec<u32>,
    cov_data: Vec<f64>,
    cov_rate: Vec<f64>,
    /// Row-major `m × dcap` distance matrix (rows padded to `dcap`).
    dmat: Vec<f64>,
    /// Row capacity in tour-point ids; doubles when the tour outgrows it.
    dcap: usize,
}

impl LazyPre {
    fn build(candidates: &CandidateSet, scenario: &Scenario) -> Self {
        let m = candidates.len();
        let cand_xs: Vec<f64> = candidates.candidates.iter().map(|c| c.pos.x).collect();
        let cand_ys: Vec<f64> = candidates.candidates.iter().map(|c| c.pos.y).collect();
        let bandwidth = scenario.radio.bandwidth.value();
        let mut cov_off: Vec<u32> = Vec::with_capacity(m + 1);
        cov_off.push(0);
        let mut cov_dev: Vec<u32> = Vec::new();
        let mut cov_data: Vec<f64> = Vec::new();
        let mut cov_rate: Vec<f64> = Vec::new();
        for c in &candidates.candidates {
            for &v in &c.covered {
                let d = scenario.devices[v as usize].data.value();
                cov_dev.push(v);
                cov_data.push(d);
                cov_rate.push(d / bandwidth);
            }
            cov_off.push(cov_dev.len() as u32);
        }
        let dcap = 64usize;
        let mut dmat = vec![0.0f64; m * dcap];
        let mut col: Vec<f64> = Vec::new();
        distances_to_point(
            &cand_xs,
            &cand_ys,
            scenario.depot.x,
            scenario.depot.y,
            &mut col,
        );
        for (c, &d) in col.iter().enumerate() {
            dmat[c * dcap] = d;
        }
        LazyPre {
            index: DeviceIndex::build(candidates, scenario.num_devices()),
            cand_xs,
            cand_ys,
            cov_off,
            cov_dev,
            cov_data,
            cov_rate,
            dmat,
            dcap,
        }
    }
}

/// Doubles the distance-matrix row capacity until tour-point `id` fits,
/// preserving row contents (free function over the two fields so callers
/// holding shared borrows of [`LazyPre`]'s other fields can grow it).
/// Tops candidate `cu`'s banked distance row up to every point column
/// the bank holds, copying the missing tail from the per-point columns
/// (`cols[idx][c]` — the `distances_to_point` batch computed when point
/// `idx` entered the tour). Called right before a rescan reads the row;
/// see `filled`'s declaration for why rows are not kept current eagerly.
fn fill_row(dmat: &mut [f64], cap: usize, filled: &mut [u32], cols: &[Vec<f64>], cu: u32) {
    let c = cu as usize;
    let lo = filled[c] as usize;
    let hi = cols.len();
    if lo < hi {
        let row = &mut dmat[c * cap..c * cap + hi];
        for (idx, slot) in row.iter_mut().enumerate().take(hi).skip(lo) {
            *slot = cols[idx][c];
        }
        filled[c] = hi as u32;
    }
}

fn grow_rows(dmat: &mut Vec<f64>, dcap: &mut usize, id: usize, m: usize) {
    while id >= *dcap {
        let ncap = *dcap * 2;
        let mut nmat = vec![0.0f64; m * ncap];
        for c in 0..m {
            nmat[c * ncap..c * ncap + *dcap].copy_from_slice(&dmat[c * *dcap..(c + 1) * *dcap]);
        }
        *dmat = nmat;
        *dcap = ncap;
    }
}

/// Runs the lazy greedy loop: inverted-index dirty invalidation, exact
/// insertion-cache repair, CELF-style heap selection. Produces the same
/// state evolution — same plans, same operation counts — as
/// [`run_exhaustive`] (property-tested in `tests/lazy_equivalence.rs`;
/// the identical-output argument is in DESIGN.md §8 and §16). The
/// individual operations are cheapened with the cached-distance machinery
/// of `uavdc_graph::incremental`: each committed stop's distance column
/// is computed once (vectorised) and banked in [`LazyPre`]'s matrix, so
/// per-commit cache repair, destroyed-argmin rescans
/// ([`cheapest_insertion_cached`]) and compaction rescans are pure table
/// arithmetic with no repeated square roots; marginals run over a
/// flattened coverage CSR, and compaction 2-opts the
/// [`IncrementalTour`]'s cached matrix instead of recomputing point
/// distances.
fn run_lazy(
    state: &mut GreedyState<'_>,
    config: &Alg2Config,
    eta_h: f64,
    counters: &mut EvalCounters,
    rec: &dyn Recorder,
    pre: &mut LazyPre,
) {
    let scenario = state.scenario;
    let capacity = scenario.uav.capacity.value();
    let per_m = scenario.uav.travel_energy_per_meter().value();
    let m = state.candidates.len();
    let parallel_threshold = config.parallel_threshold;

    // Split the prebuilt structures into disjoint field borrows: the
    // distance matrix is written inside loops that read the others.
    let LazyPre {
        index,
        cand_xs,
        cand_ys,
        cov_off,
        cov_dev,
        cov_data,
        cov_rate,
        dmat,
        dcap,
    } = pre;

    // Branch-free twin of `GreedyState::marginal` over the prebuilt
    // coverage CSR, bit-identical because the masked contributions are
    // exact identities: volumes are non-negative and both accumulators
    // start at +0.0, so `+= d·0.0` and `.max(rate·0.0)` leave them
    // unchanged bit for bit.
    let marginal_fast = |c: usize, collected: &[bool]| -> (f64, f64) {
        let lo = cov_off[c] as usize;
        let hi = cov_off[c + 1] as usize;
        let mut vol = 0.0f64;
        let mut t = 0.0f64;
        for j in lo..hi {
            let w = (!collected[cov_dev[j] as usize]) as u32 as f64;
            vol += cov_data[j] * w;
            t = t.max(cov_rate[j] * w);
        }
        (vol, t)
    };

    let mut cache_vol = vec![0.0f64; m];
    let mut cache_t = vec![0.0f64; m];
    let mut ins = InsertionCache::new(m);
    let mut heap = LazyHeap::new(m);
    heap.enable_purge();
    let mut inc = IncrementalTour::new(
        (scenario.depot.x, scenario.depot.y),
        RetourPolicy::PatchOnly,
    );

    // The engine's one ratio formula — must stay bit-identical to
    // `evaluate_insertion` (same ops in the same order on the same
    // cached operands).
    let ratio_of = |vol: f64, t: f64, delta: f64| -> f64 {
        let extra = t * eta_h + delta * per_m;
        vol / extra.max(1e-12)
    };

    // Initial full evaluation of every candidate: marginals in (possibly
    // parallel) chunks, insertion deltas from the banked depot column
    // (the depot-only tour's delta is `2·d`, bit-identical to
    // `cheapest_insertion_point`).
    let all: Vec<u32> = (0..m as u32).collect();
    let marg = greedy::chunked_map(&all, parallel_threshold, |&c| {
        marginal_fast(c as usize, &state.collected)
    });
    counters.marginal_evals += m as u64;
    counters.evaluations += m as u64;
    for (c, &(vol, t)) in marg.iter().enumerate() {
        cache_vol[c] = vol;
        cache_t[c] = t;
        if vol <= 0.0 {
            state.active[c] = false;
        } else {
            let delta = 2.0 * dmat[c * *dcap];
            ins.set(c, delta, 1);
            heap.push(c, ratio_of(vol, t, delta));
        }
    }

    let mut stamp = vec![0u32; m];
    let mut epoch = 0u32;
    let mut tstamp = vec![0u32; m];
    let mut tepoch = 0u32;
    let mut dirty: Vec<u32> = Vec::new();
    let mut touched: Vec<u32> = Vec::new();
    let mut rescan: Vec<u32> = Vec::new();
    let mut col: Vec<f64> = Vec::new();
    let mut pubbuf: Vec<(u32, f64)> = Vec::new();
    // Column bank: `cols[id][c]` = candidate `c`'s distance to tour point
    // `id`, kept alongside the row-major matrix. Rows serve the rescans
    // (one candidate × whole tour, contiguous); columns serve the fixups
    // (whole candidate range × three tour points, contiguous). Same
    // values — each column is the `distances_to_point` batch the row
    // entries are scattered from, and a candidate active now was active
    // at every earlier insertion (deactivation is permanent), so its row
    // never misses a bank value.
    let mut cols: Vec<Vec<f64>> = Vec::new();
    let mut depot_col = vec![0.0f64; m];
    for (c, d) in depot_col.iter_mut().enumerate() {
        *d = dmat[c * *dcap];
    }
    cols.push(depot_col);
    // Rows are backfilled from the bank on demand, when a rescan is
    // about to read them: `filled[c]` = number of leading point columns
    // candidate `c`'s row holds. Writing the whole new column into every
    // active row each commit would cost a cache line per candidate per
    // iteration; a rescan instead tops up just the few columns its row
    // is missing (values identical either way — both copy the same
    // `distances_to_point` batch).
    let mut filled = vec![1u32; m];
    let mut since_compact = 0;
    loop {
        counters.iterations += 1;
        let mut pops = 0u64;
        let selected = heap.select(
            |c| state.active[c],
            |c| {
                // Caches are exact; only feasibility depends on the
                // running totals. Mirrors `evaluate_insertion` bit for
                // bit (infeasible ⇔ it would return `None`).
                let t = cache_t[c];
                let (delta, _) = ins.get(c).unwrap_or((0.0, 0));
                let total = state.hover_energy_total + t * eta_h + (state.tour_len + delta) * per_m;
                if total > capacity {
                    Probe::Infeasible
                } else {
                    Probe::Feasible(ratio_of(cache_vol[c], t, delta))
                }
            },
            &mut pops,
        );
        counters.heap_pops += pops;
        rec.observe("alg2.pops_per_iter", pops);
        let Some((winner, ratio)) = selected else {
            break;
        };
        // Canonical insertion position for the winner (the cache may
        // name a different edge of equal delta).
        let pos =
            cheapest_insertion_point(&state.tour_pts, state.candidates.candidates[winner].pos).1;
        let eval = Evaluation {
            cand: winner,
            ratio,
            sojourn: cache_t[winner],
            insert_pos: pos,
        };
        let drained = state.commit(eval, eta_h);
        // Mirror the commit into the incremental tour (its cached edge
        // lengths feed the repair distances below).
        let id = inc.append_point((cand_xs[winner], cand_ys[winner]));
        inc.insert_id_at(id, pos);
        grow_rows(dmat, dcap, id, m);
        since_compact += 1;

        // Repair every active candidate's cached insertion delta in O(1):
        // the new stop's distance column is computed once (vectorised),
        // banked into the candidate's matrix row for all later rescans,
        // and combined with the banked predecessor/successor distances;
        // the two new tour edges come from the incremental tour's cache.
        // Candidates whose argmin edge was destroyed collect for a
        // cached-row rescan.
        let ln = state.tour_pts.len();
        let ida = inc.order()[pos - 1];
        let idb = inc.order()[(pos + 1) % ln];
        distances_to_point(cand_xs, cand_ys, cand_xs[winner], cand_ys[winner], &mut col);
        debug_assert_eq!(id, cols.len());
        let bank_a = &cols[ida];
        let bank_b = &cols[idb];
        let e_ap = inc.edge_costs()[pos - 1];
        let e_pb = inc.edge_costs()[pos];
        tepoch = tepoch.wrapping_add(1);
        touched.clear();
        rescan.clear();
        let cap = *dcap;
        for c in 0..m {
            if !state.active[c] {
                continue;
            }
            counters.fixups += 1;
            let d = RepairDists {
                d_a: bank_a[c],
                d_p: col[c],
                d_b: bank_b[c],
                e_ap,
                e_pb,
            };
            match ins.apply_insertion_cols(c, d, pos) {
                Fixup::Unchanged => {}
                Fixup::Improved => touch(&mut tstamp, tepoch, &mut touched, c as u32),
                Fixup::Invalidated => rescan.push(c as u32),
            }
        }
        cols.push(std::mem::take(&mut col));

        // Re-evaluate the marginal reward of candidates sharing a
        // drained device; fully-drained ones deactivate (the exhaustive
        // sweep would catch exactly these this iteration).
        epoch = epoch.wrapping_add(1);
        index.dirty_candidates(drained.iter().copied(), &mut stamp, epoch, &mut dirty);
        rec.observe("alg2.dirty_batch", dirty.len() as u64);
        for &cu in &dirty {
            let c = cu as usize;
            if !state.active[c] {
                continue;
            }
            counters.marginal_evals += 1;
            counters.evaluations += 1;
            let (vol, t) = marginal_fast(c, &state.collected);
            cache_vol[c] = vol;
            cache_t[c] = t;
            if vol <= 0.0 {
                state.active[c] = false;
            } else {
                touch(&mut tstamp, tepoch, &mut touched, cu);
            }
        }

        // Rescan destroyed insertion deltas from the banked distance
        // rows — pure table arithmetic, no recomputed square roots.
        rescan.retain(|&c| state.active[c as usize]);
        if !rescan.is_empty() {
            counters.delta_rescans += rescan.len() as u64;
            counters.evaluations += rescan.len() as u64;
            let order = inc.order();
            let elen = inc.edge_costs();
            for &cu in &rescan {
                fill_row(dmat, cap, &mut filled, &cols, cu);
            }
            for ch in rescan.chunks(4) {
                if let &[c0, c1, c2, c3] = ch {
                    let row = |cu: u32| &dmat[cu as usize * cap..(cu as usize + 1) * cap];
                    let out = cheapest_insertion_cached4(
                        [row(c0), row(c1), row(c2), row(c3)],
                        order,
                        elen,
                    );
                    for (&cu, &(delta, p)) in ch.iter().zip(&out) {
                        ins.set(cu as usize, delta, p as usize);
                        touch(&mut tstamp, tepoch, &mut touched, cu);
                    }
                } else {
                    for &cu in ch {
                        let c = cu as usize;
                        let (delta, p) =
                            cheapest_insertion_cached(&dmat[c * cap..(c + 1) * cap], order, elen);
                        ins.set(c, delta, p as usize);
                        touch(&mut tstamp, tepoch, &mut touched, cu);
                    }
                }
            }
        }

        // Publish fresh heap entries for every candidate whose caches
        // changed (this is also what lets a parked candidate re-enter
        // contention when its own cost shrank).
        pubbuf.clear();
        for &cu in &touched {
            let c = cu as usize;
            if state.active[c] {
                if let Some((delta, _)) = ins.get(c) {
                    pubbuf.push((cu, ratio_of(cache_vol[c], cache_t[c], delta)));
                }
            }
        }
        for &(cu, r) in &pubbuf {
            heap.push(cu as usize, r);
        }

        // Periodic 2-opt compaction. When the tour actually changed,
        // every cached delta is stale and battery slack may have grown:
        // rescan all active candidates and return parked ones to
        // contention.
        if since_compact >= 8 {
            if lazy_compact(state, &mut inc) {
                let alive: Vec<u32> = (0..m as u32)
                    .filter(|&c| state.active[c as usize])
                    .collect();
                counters.delta_rescans += alive.len() as u64;
                counters.evaluations += alive.len() as u64;
                let order = inc.order();
                let elen = inc.edge_costs();
                pubbuf.clear();
                for &cu in &alive {
                    fill_row(dmat, cap, &mut filled, &cols, cu);
                }
                for ch in alive.chunks(4) {
                    if let &[c0, c1, c2, c3] = ch {
                        let row = |cu: u32| &dmat[cu as usize * cap..(cu as usize + 1) * cap];
                        let out = cheapest_insertion_cached4(
                            [row(c0), row(c1), row(c2), row(c3)],
                            order,
                            elen,
                        );
                        for (&cu, &(delta, p)) in ch.iter().zip(&out) {
                            let c = cu as usize;
                            ins.set(c, delta, p as usize);
                            pubbuf.push((cu, ratio_of(cache_vol[c], cache_t[c], delta)));
                        }
                    } else {
                        for &cu in ch {
                            let c = cu as usize;
                            let (delta, p) = cheapest_insertion_cached(
                                &dmat[c * cap..(c + 1) * cap],
                                order,
                                elen,
                            );
                            ins.set(c, delta, p as usize);
                            pubbuf.push((cu, ratio_of(cache_vol[c], cache_t[c], delta)));
                        }
                    }
                }
                for &(cu, r) in &pubbuf {
                    heap.push(cu as usize, r);
                }
                heap.unpark_all();
            }
            since_compact = 0;
        }
    }
    lazy_compact(state, &mut inc);
    counters.tour_patches += inc.counters().tour_patches;
}

impl Alg2Planner {
    /// Plans and returns the work/timing breakdown alongside the plan
    /// (consumed by the `planner_baseline` perf harness).
    pub fn plan_with_stats(&self, scenario: &Scenario) -> (CollectionPlan, PlanStats) {
        self.plan_with_stats_obs(scenario, &uavdc_obs::NOOP)
    }

    /// Like [`plan_with_stats`](Alg2Planner::plan_with_stats), reporting
    /// spans (`alg2/setup`, `alg2/loop`), end-of-run counters, and
    /// per-iteration histograms to `rec`. With the no-op recorder this
    /// is the same computation producing bit-identical plans
    /// (property-tested in `tests/obs_noop_equivalence.rs`).
    pub fn plan_with_stats_obs(
        &self,
        scenario: &Scenario,
        rec: &dyn Recorder,
    ) -> (CollectionPlan, PlanStats) {
        self.plan_prepared_obs(scenario, None, rec)
    }

    /// Recorder-free twin of
    /// [`plan_prepared_obs`](Alg2Planner::plan_prepared_obs).
    pub fn plan_prepared(
        &self,
        scenario: &Scenario,
        prepared: Option<&CandidateSet>,
    ) -> (CollectionPlan, PlanStats) {
        self.plan_prepared_obs(scenario, prepared, &uavdc_obs::NOOP)
    }

    /// Like [`plan_with_stats_obs`](Alg2Planner::plan_with_stats_obs),
    /// optionally reusing a prebuilt candidate set instead of rebuilding
    /// it. `prepared` must be exactly what the cold path would build —
    /// `CandidateSet::build(scenario, config.delta)` followed by
    /// `prune_dominated()` when `config.prune_dominated` is set — which is
    /// what `uavdc-bench`'s artifact cache guarantees by keying on the
    /// scenario layout fingerprint and `δ`. Cold and prepared runs then
    /// share every instruction after setup, so plans and counters are
    /// bit-identical (property-tested in
    /// `uavdc-bench/tests/service_cache_invisibility.rs`); only
    /// `setup_ns` shrinks.
    pub fn plan_prepared_obs(
        &self,
        scenario: &Scenario,
        prepared: Option<&CandidateSet>,
        rec: &dyn Recorder,
    ) -> (CollectionPlan, PlanStats) {
        let root = Span::root(rec, "alg2");
        // lint:allow(effect-taint): wall-clock runtime stats only; never influence plan content
        let setup_start = std::time::Instant::now();
        let setup_span = root.child("setup");
        let built;
        let candidates = match prepared {
            Some(c) => c,
            None => {
                let mut c = CandidateSet::build(scenario, self.config.delta);
                if self.config.prune_dominated {
                    c.prune_dominated();
                }
                built = c;
                &built
            }
        };
        let engine = match self.config.tour_mode {
            TourMode::FastInsertion => self.config.engine,
            // Christofides re-touring invalidates every Δtravel each
            // iteration; there is nothing for the lazy engine to cache.
            TourMode::PaperChristofides => EngineMode::Exhaustive,
        };
        let mut stats = PlanStats {
            engine,
            counters: EvalCounters {
                candidates: candidates.len(),
                ..EvalCounters::default()
            },
            setup_ns: 0,
            loop_ns: 0,
        };
        drop(setup_span);
        if candidates.is_empty() {
            stats.setup_ns = setup_start.elapsed().as_nanos() as u64;
            return (CollectionPlan::empty(), stats);
        }
        let mut state = GreedyState::new(scenario, candidates);
        let eta_h = scenario.uav.hover_power.value();
        // The lazy engine's accelerator structures are input-derived
        // (scenario + candidate set only), so they are built in the setup
        // phase alongside the candidate set itself; the loop timer below
        // covers the greedy search proper for both engines.
        let mut pre = match (self.config.tour_mode, engine) {
            (TourMode::FastInsertion, EngineMode::Lazy) => {
                Some(LazyPre::build(candidates, scenario))
            }
            _ => None,
        };
        stats.setup_ns = setup_start.elapsed().as_nanos() as u64;
        // lint:allow(effect-taint): wall-clock runtime stats only; never influence plan content
        let loop_start = std::time::Instant::now();
        let loop_span = root.child("loop");
        match (self.config.tour_mode, engine, pre.as_mut()) {
            (TourMode::PaperChristofides, _, _) => {
                run_paper(&mut state, &self.config, eta_h, &mut stats.counters, rec)
            }
            (TourMode::FastInsertion, EngineMode::Lazy, Some(pre)) => run_lazy(
                &mut state,
                &self.config,
                eta_h,
                &mut stats.counters,
                rec,
                pre,
            ),
            _ => run_exhaustive(&mut state, &self.config, eta_h, &mut stats.counters),
        }
        drop(loop_span);
        stats.loop_ns = loop_start.elapsed().as_nanos() as u64;
        flush_counters(rec, &stats.counters);
        let plan = state.into_plan();
        crate::validate::debug_check_plan(
            "Alg2Planner",
            scenario,
            &plan,
            crate::validate::Profile::P2FullOverlap,
        );
        (plan, stats)
    }
}

/// Publishes the end-of-run engine counters under the `alg2.` namespace.
fn flush_counters(rec: &dyn Recorder, c: &EvalCounters) {
    rec.add("alg2.candidates", c.candidates as u64);
    rec.add("alg2.iterations", c.iterations);
    rec.add("alg2.evaluations", c.evaluations);
    rec.add("alg2.marginal_evals", c.marginal_evals);
    rec.add("alg2.delta_rescans", c.delta_rescans);
    rec.add("alg2.fixups", c.fixups);
    rec.add("alg2.heap_pops", c.heap_pops);
    rec.add("alg2.tour_patches", c.tour_patches);
    rec.add("alg2.full_retours", c.full_retours);
}

impl Planner for Alg2Planner {
    fn name(&self) -> &'static str {
        match self.config.tour_mode {
            TourMode::FastInsertion => "Algorithm 2 (greedy ρ, fast)",
            TourMode::PaperChristofides => "Algorithm 2 (greedy ρ, Christofides)",
        }
    }

    fn plan(&self, scenario: &Scenario) -> CollectionPlan {
        self.plan_with_stats(scenario).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uavdc_geom::Aabb;
    use uavdc_net::units::{Joules, MegaBytes, MegaBytesPerSecond, Meters};
    use uavdc_net::{IotDevice, RadioModel, UavSpec};

    fn scenario(capacity: f64) -> Scenario {
        Scenario {
            region: Aabb::square(200.0),
            devices: vec![
                IotDevice {
                    pos: Point2::new(40.0, 40.0),
                    data: MegaBytes(300.0),
                },
                IotDevice {
                    pos: Point2::new(48.0, 40.0),
                    data: MegaBytes(450.0),
                },
                IotDevice {
                    pos: Point2::new(60.0, 44.0),
                    data: MegaBytes(150.0),
                },
                IotDevice {
                    pos: Point2::new(180.0, 180.0),
                    data: MegaBytes(900.0),
                },
            ],
            depot: Point2::new(0.0, 0.0),
            radio: RadioModel::new(Meters(20.0), MegaBytesPerSecond(150.0)),
            uav: UavSpec {
                capacity: Joules(capacity),
                ..UavSpec::paper_default()
            },
        }
    }

    #[test]
    fn plan_validates_and_respects_budget() {
        let s = scenario(4000.0);
        let plan = Alg2Planner::default().plan(&s);
        plan.validate(&s).unwrap();
        assert!(plan.total_energy(&s).value() <= 4000.0 + 1e-6);
        assert!(plan.collected_volume().value() > 0.0);
    }

    #[test]
    fn overlapping_coverage_collects_each_device_once() {
        let s = scenario(50_000.0);
        let plan = Alg2Planner::default().plan(&s);
        plan.validate(&s).unwrap();
        // All four devices collected exactly once.
        assert_eq!(plan.collected_volume(), MegaBytes(1800.0));
        let mut seen = std::collections::HashSet::new();
        for stop in &plan.stops {
            for (dev, _) in &stop.collected {
                assert!(seen.insert(*dev), "device collected twice");
            }
        }
    }

    #[test]
    fn zero_capacity_collects_nothing() {
        let s = scenario(0.0);
        let plan = Alg2Planner::default().plan(&s);
        assert!(plan.stops.is_empty());
    }

    #[test]
    fn paper_christofides_mode_works_on_small_instances() {
        let s = scenario(8000.0);
        let cfg = Alg2Config {
            delta: 20.0,
            tour_mode: TourMode::PaperChristofides,
            ..Alg2Config::default()
        };
        let plan = Alg2Planner::new(cfg).plan(&s);
        plan.validate(&s).unwrap();
        assert!(plan.collected_volume().value() > 0.0);
    }

    #[test]
    fn paper_mode_speculative_cache_is_invisible() {
        // The cached and literal Christofides paths must produce
        // identical plans (the big differential harness lives in
        // tests/alg2_incremental_equivalence.rs; this is the smoke case).
        let s = scenario(12_000.0);
        let cached = Alg2Planner::new(Alg2Config {
            delta: 20.0,
            tour_mode: TourMode::PaperChristofides,
            speculative_cache: true,
            ..Alg2Config::default()
        })
        .plan_with_stats(&s);
        let literal = Alg2Planner::new(Alg2Config {
            delta: 20.0,
            tour_mode: TourMode::PaperChristofides,
            speculative_cache: false,
            ..Alg2Config::default()
        })
        .plan_with_stats(&s);
        assert_eq!(cached.0, literal.0, "plans diverged");
        // The literal path re-tours once more per commit.
        let commits = cached.0.stops.len() as u64;
        assert_eq!(
            literal.1.counters.full_retours,
            cached.1.counters.full_retours + commits
        );
        assert_eq!(cached.1.counters.tour_patches, commits);
    }

    #[test]
    fn parallel_and_serial_agree() {
        let s = scenario(6000.0);
        let serial = Alg2Planner::new(Alg2Config {
            parallel_threshold: usize::MAX,
            ..Alg2Config::default()
        })
        .plan(&s);
        let parallel = Alg2Planner::new(Alg2Config {
            parallel_threshold: 1,
            ..Alg2Config::default()
        })
        .plan(&s);
        assert_eq!(serial.collected_volume(), parallel.collected_volume());
        assert_eq!(serial.stops.len(), parallel.stops.len());
    }

    #[test]
    fn finer_grid_does_not_collect_less() {
        // More candidates can only help the greedy (it has strictly more
        // choices); allow small tolerance for tie-breaking noise.
        let s = scenario(5000.0);
        let coarse = Alg2Planner::new(Alg2Config {
            delta: 40.0,
            ..Alg2Config::default()
        })
        .plan(&s);
        let fine = Alg2Planner::new(Alg2Config {
            delta: 5.0,
            ..Alg2Config::default()
        })
        .plan(&s);
        assert!(
            fine.collected_volume().value() >= 0.9 * coarse.collected_volume().value(),
            "fine {} vs coarse {}",
            fine.collected_volume(),
            coarse.collected_volume()
        );
    }

    #[test]
    fn sojourn_covers_only_new_devices() {
        // Second stop overlapping the first should hover only as long as
        // its new devices need (Eq. 12).
        let s = scenario(50_000.0);
        let plan = Alg2Planner::default().plan(&s);
        let b = s.radio.bandwidth.value();
        for stop in &plan.stops {
            let needed = stop
                .collected
                .iter()
                .map(|&(_, v)| v.value() / b)
                .fold(0.0, f64::max);
            assert!((stop.sojourn.value() - needed).abs() < 1e-9);
        }
    }
}
