//! Online route repair: drop the lowest-value stops until the remaining
//! route fits an energy budget.
//!
//! This is the [`greedy`](crate::greedy) insertion machinery run in
//! reverse. `InsertionCache` prices *adding* a stop between tour
//! neighbours `p`/`n` as `d(p,s) + d(s,n) − d(p,n)`; removing a stop
//! refunds exactly the same delta (plus the stop's hover energy), and —
//! the same locality argument as the cache's `apply_insertion` fixup —
//! a removal only perturbs the deltas of its two surviving neighbours.
//! Keeping the route as a doubly linked list therefore makes every drop
//! an O(1) update: three distance evaluations and two pointer swaps,
//! with no rescan of the remaining stops.
//!
//! The drop *order* is by ascending stop value (collected volume), with
//! [`cmp_f64`] + index tie-breaking so repairs are deterministic and
//! replayable. The closed-loop controller in `uavdc-sim` calls this at
//! each decision point where the live consumption estimate says the
//! nominal remainder of the plan no longer fits.

use uavdc_geom::{cmp_f64, Point2};
use uavdc_net::units::{Joules, JoulesPerMeter, MegaBytes};

/// One remaining stop of the route under repair.
#[derive(Clone, Debug)]
pub struct RepairStop {
    /// Hover position.
    pub pos: Point2,
    /// Energy the hover at this stop will consume.
    pub hover_energy: Joules,
    /// Value delivered by the stop — what greedy dropping minimises the
    /// loss of.
    pub score: MegaBytes,
}

/// Result of [`drop_to_fit`].
#[derive(Clone, Debug)]
pub struct RepairOutcome {
    /// Indices (into the input slice) of the surviving stops, in their
    /// original route order.
    pub kept: Vec<usize>,
    /// Indices of the dropped stops, in drop order (ascending value).
    pub dropped: Vec<usize>,
    /// Energy of the surviving route: travel `start → kept… → depot`
    /// priced at `per_meter`, plus the surviving hover energies.
    pub route_energy: Joules,
    /// True when the surviving route fits the budget. False only when
    /// even the bare `start → depot` leg exceeds it — every stop was
    /// dropped and the caller's reserve policy has to cover the gap.
    pub fits: bool,
}

/// Drops lowest-value stops from the route `start → stops… → depot`
/// until its energy (travel at `per_meter` + hovers) fits
/// `energy_budget`. Stop order is preserved; only membership changes.
///
/// Deterministic: ties in value break on the lower index. O(k log k) in
/// the number of stops for the sort, O(1) per drop.
pub fn drop_to_fit(
    start: Point2,
    depot: Point2,
    stops: &[RepairStop],
    per_meter: JoulesPerMeter,
    energy_budget: Joules,
) -> RepairOutcome {
    let n = stops.len();
    let per_m = per_meter.value();
    let budget = energy_budget.value();
    // Route nodes: 0 = start, 1..=n = stops, n+1 = depot.
    let pos_of = |node: usize| -> Point2 {
        if node == 0 {
            start
        } else if node == n + 1 {
            depot
        } else {
            stops[node - 1].pos
        }
    };
    let mut next: Vec<usize> = (1..n + 2).collect(); // next[i] for i in 0..=n
    let mut prev: Vec<usize> = (0..=n).collect(); // prev[i] is at index i-1... use full arrays:
    next.push(n + 1); // next[n+1] unused sentinel
    prev.insert(0, 0); // prev[0] unused sentinel; prev[i] = i-1

    let mut cost = 0.0f64;
    for node in 0..=n {
        cost += pos_of(node).distance(pos_of(node + 1)) * per_m;
    }
    for s in stops {
        cost += s.hover_energy.value();
    }

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| cmp_f64(stops[a].score.value(), stops[b].score.value()).then(a.cmp(&b)));

    let mut gone = vec![false; n];
    let mut dropped = Vec::new();
    for &j in &order {
        if cost <= budget {
            break;
        }
        let node = j + 1;
        let (p, nx) = (prev[node], next[node]);
        // The reversed insertion delta: travel refunded by bypassing the
        // stop, plus its hover. Triangle inequality makes the travel
        // term non-negative (up to fp rounding).
        let saved = (pos_of(p).distance(pos_of(node)) + pos_of(node).distance(pos_of(nx))
            - pos_of(p).distance(pos_of(nx)))
            * per_m
            + stops[j].hover_energy.value();
        cost -= saved;
        next[p] = nx;
        prev[nx] = p;
        gone[j] = true;
        dropped.push(j);
    }

    RepairOutcome {
        kept: (0..n).filter(|&j| !gone[j]).collect(),
        dropped,
        fits: cost <= budget,
        route_energy: Joules(cost),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stop(x: f64, y: f64, hover: f64, score: f64) -> RepairStop {
        RepairStop {
            pos: Point2::new(x, y),
            hover_energy: Joules(hover),
            score: MegaBytes(score),
        }
    }

    /// Recompute the kept route's energy from scratch, bypassing the
    /// incremental bookkeeping.
    fn recompute(
        start: Point2,
        depot: Point2,
        stops: &[RepairStop],
        kept: &[usize],
        per_m: f64,
    ) -> f64 {
        let mut cost = 0.0;
        let mut pos = start;
        for &j in kept {
            cost += pos.distance(stops[j].pos) * per_m + stops[j].hover_energy.value();
            pos = stops[j].pos;
        }
        cost + pos.distance(depot) * per_m
    }

    #[test]
    fn generous_budget_drops_nothing() {
        let stops = vec![stop(10.0, 0.0, 50.0, 5.0), stop(20.0, 0.0, 60.0, 7.0)];
        let out = drop_to_fit(
            Point2::ORIGIN,
            Point2::ORIGIN,
            &stops,
            JoulesPerMeter(10.0),
            Joules(1e9),
        );
        assert!(out.fits);
        assert_eq!(out.kept, vec![0, 1]);
        assert!(out.dropped.is_empty());
        // 0 -> 10 -> 20 -> 0 is 40 m at 10 J/m, plus the two hovers.
        assert!((out.route_energy.value() - (400.0 + 110.0)).abs() < 1e-9);
    }

    #[test]
    fn drops_lowest_value_first() {
        // Three collinear stops; shrink the budget so exactly one must go.
        let stops = vec![
            stop(10.0, 0.0, 10.0, 100.0),
            stop(20.0, 0.0, 10.0, 1.0), // cheapest data: first to be cut
            stop(30.0, 0.0, 10.0, 50.0),
        ];
        let full = recompute(Point2::ORIGIN, Point2::ORIGIN, &stops, &[0, 1, 2], 10.0);
        let out = drop_to_fit(
            Point2::ORIGIN,
            Point2::ORIGIN,
            &stops,
            JoulesPerMeter(10.0),
            Joules(full - 1.0),
        );
        assert!(out.fits);
        assert_eq!(out.dropped, vec![1]);
        assert_eq!(out.kept, vec![0, 2]);
    }

    #[test]
    fn incremental_cost_matches_recompute() {
        // A zig-zag route where bypass distances differ per stop.
        let stops = vec![
            stop(10.0, 15.0, 30.0, 9.0),
            stop(25.0, -5.0, 20.0, 3.0),
            stop(40.0, 12.0, 45.0, 6.0),
            stop(55.0, 1.0, 10.0, 1.0),
        ];
        let full = recompute(
            Point2::ORIGIN,
            Point2::new(5.0, 0.0),
            &stops,
            &[0, 1, 2, 3],
            7.0,
        );
        for frac in [0.9, 0.6, 0.3, 0.05] {
            let out = drop_to_fit(
                Point2::ORIGIN,
                Point2::new(5.0, 0.0),
                &stops,
                JoulesPerMeter(7.0),
                Joules(full * frac),
            );
            let re = recompute(
                Point2::ORIGIN,
                Point2::new(5.0, 0.0),
                &stops,
                &out.kept,
                7.0,
            );
            assert!(
                (out.route_energy.value() - re).abs() < 1e-9 * (1.0 + re),
                "incremental {} vs recomputed {re}",
                out.route_energy.value()
            );
            assert!(out.fits == (re <= full * frac + 1e-9));
            let mut all: Vec<usize> = out.kept.iter().chain(&out.dropped).copied().collect();
            all.sort_unstable();
            assert_eq!(all, vec![0, 1, 2, 3], "kept and dropped must partition");
        }
    }

    #[test]
    fn impossible_budget_drops_everything() {
        let stops = vec![stop(10.0, 0.0, 10.0, 1.0)];
        let out = drop_to_fit(
            Point2::ORIGIN,
            Point2::new(100.0, 0.0),
            &stops,
            JoulesPerMeter(10.0),
            Joules(1.0),
        );
        assert!(!out.fits, "even the bare return leg exceeds the budget");
        assert!(out.kept.is_empty());
        assert_eq!(out.dropped, vec![0]);
        assert!((out.route_energy.value() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn value_ties_break_on_index() {
        let stops = vec![
            stop(10.0, 0.0, 10.0, 5.0),
            stop(20.0, 0.0, 10.0, 5.0),
            stop(30.0, 0.0, 10.0, 5.0),
        ];
        let out = drop_to_fit(
            Point2::ORIGIN,
            Point2::ORIGIN,
            &stops,
            JoulesPerMeter(10.0),
            Joules(0.0),
        );
        assert_eq!(out.dropped, vec![0, 1, 2]);
    }

    #[test]
    fn empty_route_is_just_the_return_leg() {
        let out = drop_to_fit(
            Point2::ORIGIN,
            Point2::new(30.0, 40.0),
            &[],
            JoulesPerMeter(10.0),
            Joules(600.0),
        );
        assert!(out.fits);
        assert!((out.route_energy.value() - 500.0).abs() < 1e-9);
    }
}
