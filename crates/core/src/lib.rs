//! Tour planners for data collection from IoT devices with an
//! energy-constrained UAV.
//!
//! This crate implements the algorithmic contribution of *"Data Collection
//! of IoT Devices Using an Energy-Constrained UAV"* (Li, Liang, Xu, Jia —
//! IPPS 2020): plan a closed tour from a depot through hovering locations,
//! with a sojourn duration at each, maximising the volume of sensory data
//! collected subject to the UAV's battery, which drains both while
//! hovering (`η_h`) and while flying (`η_t`).
//!
//! # Planners
//!
//! | Planner | Paper | Problem |
//! |---|---|---|
//! | [`Alg1Planner`] | Algorithm 1 | full collection, **no** coverage overlap — reduction to orienteering on the Eq. 9 auxiliary graph |
//! | [`Alg2Planner`] | Algorithm 2 | full collection **with** coverage overlap — greedy max-ρ insertion with Christofides re-touring |
//! | [`Alg3Planner`] | Algorithm 3 | **partial** collection (`K` virtual hovering locations per real one) |
//! | [`BenchmarkPlanner`] | §VII.A benchmark | Christofides over all devices, then prune until feasible |
//!
//! All planners return a [`CollectionPlan`] whose physics can be verified
//! independently with [`CollectionPlan::validate`] (and end-to-end with
//! the `uavdc-sim` discrete-event simulator).
//!
//! # Example
//!
//! ```
//! use uavdc_net::generator::{uniform, ScenarioParams};
//! use uavdc_core::{Alg2Planner, Planner};
//!
//! let params = ScenarioParams::default().scaled(0.05); // 25 devices
//! let scenario = uniform(&params, 42);
//! let plan = Alg2Planner::default().plan(&scenario);
//! plan.validate(&scenario).unwrap();
//! assert!(plan.total_energy(&scenario) <= scenario.uav.capacity);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod alg1;
mod alg2;
mod alg3;
mod auxgraph;
mod benchmark;
pub mod cache;
mod candidates;
pub mod greedy;
mod multi;
mod plan;
mod polish;
pub mod repair;
mod sweep;
mod tourutil;
pub mod validate;

pub use alg1::{Alg1Config, Alg1Planner, CandidateFilter};
pub use alg2::{Alg2Config, Alg2Planner, TourMode};
pub use alg3::{Alg3Config, Alg3Planner};
pub use auxgraph::AuxGraph;
pub use benchmark::{BenchmarkPlanner, BenchmarkSetup};
pub use cache::ArtifactCache;
pub use candidates::{Candidate, CandidateSet};
pub use greedy::{EngineMode, EvalCounters, PlanStats};
pub use multi::{
    FleetConfig, FleetPartition, FleetPlan, JointFleetPlanner, MultiUavPlanner, TeamAlg1Planner,
};
pub use plan::{CollectionPlan, HoverStop, PlanError};
pub use polish::{polish_plan, Polished};
pub use repair::{drop_to_fit, RepairOutcome, RepairStop};
pub use sweep::SweepPlanner;

use uavdc_net::Scenario;

/// A tour planner: consumes a scenario, produces a feasible plan.
pub trait Planner {
    /// Human-readable name used in experiment tables.
    fn name(&self) -> &'static str;

    /// Plans a closed data-collection tour. Implementations must return a
    /// plan that passes [`CollectionPlan::validate`] for the same
    /// scenario.
    fn plan(&self, scenario: &Scenario) -> CollectionPlan;
}
