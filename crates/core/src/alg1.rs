//! Algorithm 1: the data collection maximization problem *without*
//! hovering coverage overlapping, by reduction to orienteering.
//!
//! Pipeline (paper §IV): partition the region into `δ`-squares, compute
//! `t(s)`, `P(s)`, `w1(s)` per candidate (Eqs. 6–8), build the auxiliary
//! metric graph with Eq. 9 edge weights, and solve orienteering with the
//! battery as the budget. The tour returned by the orienteering solver is
//! the UAV's collection tour; its cycle weight in the auxiliary graph is
//! exactly its energy demand.
//!
//! The "no overlapping" premise is realised by [`CandidateFilter`]:
//! `Disjoint` (default) greedily filters candidates to pairwise-disjoint
//! coverage sets before solving, so awards never double-count a device;
//! `Raw` runs on all candidates exactly as the paper states the algorithm
//! (awards may double-count when coverage overlaps, but the built plan
//! still collects each device once — at its first covering stop).

use crate::auxgraph::AuxGraph;
use crate::candidates::CandidateSet;
use crate::plan::{CollectionPlan, HoverStop};
use crate::Planner;
use uavdc_net::units::Seconds;
use uavdc_net::{DeviceId, Scenario};
use uavdc_obs::{Recorder, Span};
use uavdc_orienteering::{solve_obs, Backend, GraspConfig};

/// How candidates are prepared before the orienteering reduction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CandidateFilter {
    /// Greedily keep a maximal family of candidates with pairwise-disjoint
    /// coverage (largest covered volume first) — the faithful "no
    /// hovering coverage overlapping" setting.
    #[default]
    Disjoint,
    /// Keep all candidates (plus dominance pruning); awards may
    /// double-count devices shared between overlapping candidates.
    Raw,
}

/// Configuration of [`Alg1Planner`].
#[derive(Clone, Copy, Debug)]
pub struct Alg1Config {
    /// Grid edge length `δ`, metres.
    pub delta: f64,
    /// Candidate preparation.
    pub filter: CandidateFilter,
    /// Orienteering backend.
    pub backend: Backend,
}

impl Default for Alg1Config {
    fn default() -> Self {
        Alg1Config {
            delta: 10.0,
            filter: CandidateFilter::Disjoint,
            backend: Backend::Grasp(GraspConfig::default()),
        }
    }
}

/// Algorithm 1 planner.
#[derive(Clone, Debug, Default)]
pub struct Alg1Planner {
    /// Planner configuration.
    pub config: Alg1Config,
}

impl Alg1Planner {
    /// Creates a planner with the given configuration.
    pub fn new(config: Alg1Config) -> Self {
        Alg1Planner { config }
    }

    /// Like [`Planner::plan`], reporting phase spans (`alg1/candidates`,
    /// `alg1/aux_graph`, `alg1/orienteering`, `alg1/stitch`) and the
    /// surviving candidate count to `rec`. The recorder never influences
    /// planning: for any `rec` the plan is bit-identical to `plan`.
    pub fn plan_obs(&self, scenario: &Scenario, rec: &dyn Recorder) -> CollectionPlan {
        let root = Span::root(rec, "alg1");

        let cand_span = root.child("candidates");
        let mut candidates = CandidateSet::build(scenario, self.config.delta);
        let candidates = match self.config.filter {
            CandidateFilter::Disjoint => candidates.disjoint_by_volume(scenario),
            CandidateFilter::Raw => {
                candidates.prune_dominated();
                candidates
            }
        };
        drop(cand_span);
        rec.add("alg1.candidates", candidates.candidates.len() as u64);
        if candidates.is_empty() {
            return CollectionPlan::empty();
        }

        let aux_span = root.child("aux_graph");
        let aux = AuxGraph::build(scenario, &candidates);
        drop(aux_span);

        let solve_span = root.child("orienteering");
        let solution = solve_obs(&aux.instance, self.config.backend, rec);
        drop(solve_span);

        let stitch_span = root.child("stitch");
        // Materialise the plan: visit the tour's candidates in order; each
        // device is collected (fully) at the first stop covering it.
        let b = scenario.radio.bandwidth;
        let mut collected = vec![false; scenario.num_devices()];
        let mut stops = Vec::new();
        for &vertex in solution.tour.iter().skip(1) {
            let cand = &candidates.candidates[vertex - 1];
            let mut stop_collect = Vec::new();
            let mut sojourn = Seconds::ZERO;
            for &v in &cand.covered {
                if !collected[v as usize] {
                    collected[v as usize] = true;
                    let data = scenario.devices[v as usize].data;
                    sojourn = sojourn.max(data / b);
                    stop_collect.push((DeviceId(v), data));
                }
            }
            // Under the Raw filter a stop can be fully redundant; keep it
            // on the tour (the energy was budgeted) but hover zero time.
            stops.push(HoverStop {
                pos: cand.pos,
                sojourn,
                collected: stop_collect,
            });
        }
        let plan = CollectionPlan { stops };
        drop(stitch_span);
        crate::validate::debug_check_plan(
            "Alg1Planner",
            scenario,
            &plan,
            crate::validate::Profile::P1FullDisjoint,
        );
        plan
    }
}

impl Planner for Alg1Planner {
    fn name(&self) -> &'static str {
        "Algorithm 1 (orienteering)"
    }

    fn plan(&self, scenario: &Scenario) -> CollectionPlan {
        self.plan_obs(scenario, &uavdc_obs::NOOP)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uavdc_geom::{Aabb, Point2};
    use uavdc_net::units::{Joules, MegaBytes, MegaBytesPerSecond, Meters};
    use uavdc_net::{IotDevice, RadioModel, UavSpec};

    fn scenario(capacity: f64) -> Scenario {
        // Two clusters: a near one (2 devices coverable together) and a
        // far one.
        Scenario {
            region: Aabb::square(200.0),
            devices: vec![
                IotDevice {
                    pos: Point2::new(40.0, 40.0),
                    data: MegaBytes(300.0),
                },
                IotDevice {
                    pos: Point2::new(48.0, 40.0),
                    data: MegaBytes(450.0),
                },
                IotDevice {
                    pos: Point2::new(180.0, 180.0),
                    data: MegaBytes(900.0),
                },
            ],
            depot: Point2::new(0.0, 0.0),
            radio: RadioModel::new(Meters(20.0), MegaBytesPerSecond(150.0)),
            uav: UavSpec {
                capacity: Joules(capacity),
                ..UavSpec::paper_default()
            },
        }
    }

    #[test]
    fn plan_is_valid_and_within_budget() {
        let s = scenario(3000.0);
        let plan = Alg1Planner::default().plan(&s);
        plan.validate(&s).unwrap();
        assert!(plan.total_energy(&s) <= s.uav.capacity);
    }

    #[test]
    fn tight_budget_prefers_near_cluster() {
        // Reaching the far device costs ~2 * 254 m * 10 J/m ≈ 5.1 kJ; the
        // near cluster costs ~1.2 kJ. With 2 kJ only the near pair fits.
        let s = scenario(2000.0);
        let plan = Alg1Planner::default().plan(&s);
        plan.validate(&s).unwrap();
        assert_eq!(plan.collected_volume(), MegaBytes(750.0));
    }

    #[test]
    fn generous_budget_collects_everything() {
        let s = scenario(20_000.0);
        let plan = Alg1Planner::default().plan(&s);
        plan.validate(&s).unwrap();
        assert_eq!(plan.collected_volume(), MegaBytes(1650.0));
    }

    #[test]
    fn zero_budget_collects_nothing() {
        let s = scenario(0.0);
        let plan = Alg1Planner::default().plan(&s);
        plan.validate(&s).unwrap();
        assert_eq!(plan.collected_volume(), MegaBytes::ZERO);
    }

    #[test]
    fn raw_filter_never_overcollects() {
        let s = scenario(20_000.0);
        let cfg = Alg1Config {
            filter: CandidateFilter::Raw,
            ..Alg1Config::default()
        };
        let plan = Alg1Planner::new(cfg).plan(&s);
        plan.validate(&s).unwrap(); // validator rejects double collection
        assert!(plan.collected_volume() <= s.total_data());
    }

    #[test]
    fn disjoint_filter_prize_equals_plan_volume() {
        // With disjoint candidates the orienteering prize cannot
        // double-count, so plan volume == claimed volume is implied by
        // validation; additionally no stop may be empty.
        let s = scenario(20_000.0);
        let plan = Alg1Planner::default().plan(&s);
        for stop in &plan.stops {
            assert!(
                !stop.collected.is_empty(),
                "disjoint mode must not produce empty stops"
            );
        }
    }

    #[test]
    fn exact_backend_on_tiny_instance() {
        let s = scenario(3000.0);
        let cfg = Alg1Config {
            delta: 25.0,
            backend: Backend::Exact,
            ..Alg1Config::default()
        };
        let plan = Alg1Planner::new(cfg).plan(&s);
        plan.validate(&s).unwrap();
        // Exact backend must do at least as well as greedy.
        let greedy = Alg1Planner::new(Alg1Config {
            delta: 25.0,
            backend: Backend::Greedy,
            ..Alg1Config::default()
        })
        .plan(&s);
        assert!(plan.collected_volume().value() >= greedy.collected_volume().value() - 1e-9);
    }

    #[test]
    fn empty_scenario_gives_empty_plan() {
        let mut s = scenario(1000.0);
        s.devices.clear();
        let plan = Alg1Planner::default().plan(&s);
        assert!(plan.stops.is_empty());
    }
}
