//! Thread-safe, plan-invisible cache of per-instance planner artifacts.
//!
//! The batch planning service (`uavdc-bench::service`) runs thousands of
//! independent requests against a handful of distinct instances; the
//! expensive part of each request is the *setup* — building and pruning
//! the candidate set, or computing the benchmark's initial Christofides
//! tour — and that setup depends only on the instance layout (and, for
//! candidate sets, the grid edge `δ`), never on the battery capacity the
//! request sweeps. [`ArtifactCache`] shares those artifacts across
//! requests behind one mutex.
//!
//! Invisibility contract: a cached artifact must be the value the cold
//! path would rebuild, so cached and cold runs produce bit-identical
//! plans and identical deterministic counters (property-tested in
//! `uavdc-bench`'s `service_cache_invisibility` suite). The cache itself
//! enforces the half it can: [`ArtifactCache::insert`] is first-writer-
//! wins, so once a key is published every reader sees the same `Arc` and
//! a racing duplicate build cannot swap the value mid-batch.
//!
//! Concurrency discipline (scanned by `uavdc-lint`'s v4 rules): the one
//! mutex is held only for a map lookup or insert — never across a spawn,
//! never while calling back into planner code — and lock poisoning is
//! absorbed the same way `uavdc-obs` absorbs it: a panicked worker leaves
//! a consistent (if partial) map, and a cache read must never turn into a
//! second panic.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// A keyed store of shared planner artifacts.
///
/// Keys are caller-computed 64-bit fingerprints (see
/// `Scenario::layout_fingerprint` in `uavdc-net` and the composed keys in
/// `uavdc-bench::service`); values are handed out as [`Arc`] clones, so a
/// hit costs one lock plus one reference-count bump.
#[derive(Debug, Default)]
pub struct ArtifactCache<T> {
    /// `BTreeMap`, not `HashMap`: iteration (and therefore any report
    /// derived from it) is key-ordered and deterministic.
    entries: Mutex<BTreeMap<u64, Arc<T>>>,
}

impl<T> ArtifactCache<T> {
    /// An empty cache.
    pub fn new() -> Self {
        ArtifactCache {
            entries: Mutex::new(BTreeMap::new()),
        }
    }

    /// Locks the map, recovering from poisoning: the artifacts already
    /// published by a panicked worker are still the values the cold path
    /// would rebuild, so they remain safe to serve.
    ///
    /// Reentrancy invariant (audited, enforced by uavdc-lint's
    /// `lock-across-spawn` rule): no caller may invoke another
    /// `locked()`-taking method while holding this guard, and no planner
    /// code runs under it — every critical section is a single map
    /// operation.
    fn locked(&self) -> MutexGuard<'_, BTreeMap<u64, Arc<T>>> {
        match self.entries.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The artifact under `key`, if already published.
    pub fn get(&self, key: u64) -> Option<Arc<T>> {
        self.locked().get(&key).cloned()
    }

    /// Publishes `value` under `key` and returns the artifact every
    /// reader of `key` will see from now on — the *existing* one when the
    /// key was already present (first writer wins), so concurrent
    /// duplicate builds converge on a single shared value.
    pub fn insert(&self, key: u64, value: T) -> Arc<T> {
        let mut map = self.locked();
        Arc::clone(map.entry(key).or_insert_with(|| Arc::new(value)))
    }

    /// Number of distinct keys published.
    pub fn len(&self) -> usize {
        self.locked().len()
    }

    /// True when nothing has been published.
    pub fn is_empty(&self) -> bool {
        self.locked().is_empty()
    }

    /// Keys currently published, in ascending order (deterministic).
    pub fn keys(&self) -> Vec<u64> {
        self.locked().keys().copied().collect()
    }

    /// Drops every artifact (invalidation is whole-cache: keys are
    /// content fingerprints, so a changed instance *is* a new key and
    /// stale entries are merely unused memory, never wrong answers).
    pub fn clear(&self) {
        self.locked().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_get_round_trips() {
        let cache = ArtifactCache::new();
        assert!(cache.is_empty());
        assert!(cache.get(7).is_none());
        let a = cache.insert(7, vec![1, 2, 3]);
        assert_eq!(*a, vec![1, 2, 3]);
        assert_eq!(cache.len(), 1);
        let b = cache.get(7).expect("published");
        assert!(Arc::ptr_eq(&a, &b), "hits share one allocation");
    }

    #[test]
    fn first_writer_wins_on_duplicate_insert() {
        let cache = ArtifactCache::new();
        let first = cache.insert(1, "first");
        let second = cache.insert(1, "second");
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(*second, "first");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn keys_are_sorted_and_clear_empties() {
        let cache = ArtifactCache::new();
        for k in [9u64, 2, 5] {
            cache.insert(k, k);
        }
        assert_eq!(cache.keys(), vec![2, 5, 9]);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn concurrent_readers_and_writers_converge() {
        let cache = ArtifactCache::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let cache = &cache;
                scope.spawn(move || {
                    for k in 0..32u64 {
                        let v = cache.insert(k, k * 10);
                        assert_eq!(*v, k * 10);
                        let _ = t;
                    }
                });
            }
        });
        assert_eq!(cache.len(), 32);
        for k in 0..32u64 {
            assert_eq!(*cache.get(k).expect("published"), k * 10);
        }
    }
}
