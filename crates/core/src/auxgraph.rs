//! The auxiliary orienteering graph of Algorithm 1 (paper Eq. 6–9).
//!
//! Vertices are the depot plus every candidate hovering location. Each
//! candidate carries its full-collection award `P(s)` (Eq. 6) and hovering
//! energy `w1(s) = t(s)·η_h` (Eq. 8); each edge folds the hovering
//! energies of its endpoints into its weight:
//!
//! ```text
//! w2(s_j, s_k) = (w1(s_j) + w1(s_k)) / 2 + ℓ(s_j, s_k) · η_t / speed
//! ```
//!
//! so that the weight of any *cycle* through a vertex set equals the total
//! hovering + travel energy of the corresponding UAV tour exactly, and the
//! graph stays metric (paper Lemma 1). Solving orienteering with the
//! battery capacity as the budget therefore yields an energy-feasible
//! data-collection tour.

use crate::candidates::CandidateSet;
use uavdc_geom::Point2;
use uavdc_graph::DistMatrix;
use uavdc_net::units::{Joules, MegaBytes, Seconds};
use uavdc_net::Scenario;
use uavdc_orienteering::OrienteeringInstance;

/// The constructed auxiliary graph plus the mapping back to candidates.
#[derive(Clone, Debug)]
pub struct AuxGraph {
    /// Orienteering instance: vertex 0 is the depot, vertex `i + 1` is
    /// candidate `i`. Edge weights and the budget are joules; prizes are
    /// megabytes (the orienteering layer itself is dimension-generic).
    pub instance: OrienteeringInstance,
    /// Positions of the instance vertices (depot first).
    pub positions: Vec<Point2>,
    /// Hovering energy `w1` of each vertex (zero for the depot).
    pub hover_energy: Vec<Joules>,
    /// Full-collection sojourn `t(s)` of each vertex.
    pub hover_time: Vec<Seconds>,
}

impl AuxGraph {
    /// Builds the auxiliary graph from a candidate set.
    pub fn build(scenario: &Scenario, candidates: &CandidateSet) -> Self {
        let volumes: Vec<MegaBytes> = scenario.devices.iter().map(|d| d.data).collect();
        let n = candidates.len() + 1;
        let mut positions = Vec::with_capacity(n);
        let mut prizes = Vec::with_capacity(n);
        let mut hover_energy = Vec::with_capacity(n);
        let mut hover_time = Vec::with_capacity(n);
        positions.push(scenario.depot);
        prizes.push(0.0);
        hover_energy.push(Joules::ZERO);
        hover_time.push(Seconds::ZERO);
        let eta_h = scenario.uav.hover_power;
        for c in &candidates.candidates {
            let t = c.hover_time(&volumes, scenario);
            positions.push(c.pos);
            // lint:allow(unit-unwrap): prizes feed the dimension-generic orienteering layer (megabytes)
            prizes.push(c.coverage_volume(&volumes).value());
            hover_energy.push(eta_h * t);
            hover_time.push(t);
        }
        // The orienteering instance is dimension-generic: its weights and
        // budget are raw f64 carrying joules by the Eq. 9 construction.
        // lint:allow(unit-unwrap): Eq. 9 edge weights enter the generic orienteering layer as joules
        let per_m = scenario.uav.travel_energy_per_meter().value();
        // lint:allow(unit-unwrap): Eq. 9 edge weights enter the generic orienteering layer as joules
        let he: Vec<f64> = hover_energy.iter().map(|e| e.value()).collect();
        let pos = positions.clone();
        let dist = DistMatrix::from_fn(n, |i, j| {
            (he[i] + he[j]) / 2.0 + pos[i].distance(pos[j]) * per_m
        });
        debug_assert!(
            n > 40 || dist.is_metric(1e-9),
            "Eq. 9 weights must be metric (Lemma 1)"
        );
        // lint:allow(unit-unwrap): the orienteering budget is the battery capacity in joules
        let instance = OrienteeringInstance::new(dist, prizes, 0, scenario.uav.capacity.value());
        let aux = AuxGraph {
            instance,
            positions,
            hover_energy,
            hover_time,
        };
        crate::validate::debug_check_aux_graph("AuxGraph::build", &aux);
        aux
    }

    /// Exact hovering + travel energy of the closed tour visiting the
    /// given instance vertices in order — equals the cycle weight in the
    /// auxiliary graph (each endpoint's half-energies summing to `w1`).
    pub fn tour_energy(&self, tour: &[usize]) -> Joules {
        if tour.len() < 2 {
            return self
                .hover_energy
                .get(tour.first().copied().unwrap_or(0))
                .copied()
                .unwrap_or(Joules::ZERO);
        }
        Joules(self.instance.tour_cost(tour))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::CandidateSet;
    use uavdc_geom::Aabb;
    use uavdc_net::units::{Joules, MegaBytesPerSecond, Meters};
    use uavdc_net::{IotDevice, RadioModel, UavSpec};

    fn scenario() -> Scenario {
        Scenario {
            region: Aabb::square(100.0),
            devices: vec![
                IotDevice {
                    pos: Point2::new(20.0, 20.0),
                    data: MegaBytes(300.0),
                },
                IotDevice {
                    pos: Point2::new(80.0, 80.0),
                    data: MegaBytes(600.0),
                },
            ],
            depot: Point2::new(50.0, 50.0),
            radio: RadioModel::new(Meters(15.0), MegaBytesPerSecond(150.0)),
            uav: UavSpec {
                capacity: Joules(10_000.0),
                ..UavSpec::paper_default()
            },
        }
    }

    #[test]
    fn depot_is_vertex_zero_with_no_award() {
        let s = scenario();
        let cs = CandidateSet::build(&s, 10.0);
        let g = AuxGraph::build(&s, &cs);
        assert_eq!(g.positions[0], s.depot);
        assert_eq!(g.instance.prize(0), 0.0);
        assert_eq!(g.hover_energy[0], Joules::ZERO);
        assert_eq!(g.instance.depot(), 0);
        assert_eq!(g.instance.len(), cs.len() + 1);
    }

    #[test]
    fn awards_and_hover_energies_follow_eqs_6_to_8() {
        let s = scenario();
        let cs = CandidateSet::build(&s, 10.0);
        let g = AuxGraph::build(&s, &cs);
        for (i, c) in cs.candidates.iter().enumerate() {
            let vol: f64 = c
                .covered
                .iter()
                .map(|&v| s.devices[v as usize].data.value())
                .sum();
            let t: f64 = c
                .covered
                .iter()
                .map(|&v| s.devices[v as usize].data.value() / 150.0)
                .fold(0.0, f64::max);
            assert!((g.instance.prize(i + 1) - vol).abs() < 1e-9);
            assert!((g.hover_time[i + 1].value() - t).abs() < 1e-9);
            assert!((g.hover_energy[i + 1].value() - t * 150.0).abs() < 1e-9);
        }
    }

    #[test]
    fn edge_weights_fold_half_hover_energies() {
        let s = scenario();
        let cs = CandidateSet::build(&s, 10.0);
        let g = AuxGraph::build(&s, &cs);
        // Edge depot (w1 = 0) to candidate i: w2 = w1(i)/2 + 10 J/m * dist.
        let d01 = g.positions[0].distance(g.positions[1]);
        let w = g.instance.dist(0, 1);
        assert!((w - (g.hover_energy[1].value() / 2.0 + 10.0 * d01)).abs() < 1e-9);
    }

    #[test]
    fn cycle_weight_equals_true_tour_energy() {
        let s = scenario();
        let cs = CandidateSet::build(&s, 10.0);
        let g = AuxGraph::build(&s, &cs);
        // Any cycle through depot and two candidates: compare Eq. 9 cost
        // against hand-computed hover + travel energy.
        let a = 1;
        let b = cs.len(); // last candidate
        let tour = vec![0, a, b];
        let cost = g.tour_energy(&tour);
        let travel = (g.positions[0].distance(g.positions[a])
            + g.positions[a].distance(g.positions[b])
            + g.positions[b].distance(g.positions[0]))
            * 10.0;
        let hover = g.hover_energy[a] + g.hover_energy[b];
        assert!((cost.value() - travel - hover.value()).abs() < 1e-6);
    }

    #[test]
    fn aux_graph_is_metric_lemma_1() {
        let s = scenario();
        let cs = CandidateSet::build(&s, 12.0);
        let g = AuxGraph::build(&s, &cs);
        assert!(g.instance.matrix().is_metric(1e-9));
    }
}
