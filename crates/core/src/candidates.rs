//! Candidate hovering locations and their coverage sets.
//!
//! Section IV of the paper partitions the monitoring region into squares
//! of edge `δ` and lets the UAV hover only at square centres. A square is
//! a useful candidate only when its centre covers at least one device —
//! with `δ = 5 m` and 500 devices that still leaves tens of thousands of
//! candidates, so coverage sets are computed through the spatial index
//! rather than by brute force.

use uavdc_geom::{GridSpec, Point2, SpatialGrid};
use uavdc_net::units::{MegaBytes, Meters, Seconds};
use uavdc_net::Scenario;

/// A candidate hovering location: a grid-square centre plus the set of
/// devices within coverage radius `R0` of it (the paper's `C(s_j)`).
#[derive(Clone, Debug)]
pub struct Candidate {
    /// Projected hovering position (ground coordinates of the cell
    /// centre; the UAV actually hovers at altitude `H` above it).
    pub pos: Point2,
    /// Indices into [`Scenario::devices`] of the covered devices, sorted.
    pub covered: Vec<u32>,
}

impl Candidate {
    /// Full-collection hover duration `t(s) = max_{v∈C(s)} D_v / B`
    /// (paper Eq. 1/7) over the given residual volumes.
    pub fn hover_time(&self, residual: &[MegaBytes], scenario: &Scenario) -> Seconds {
        let b = scenario.radio.bandwidth;
        self.covered
            .iter()
            .map(|&v| residual[v as usize] / b)
            .fold(Seconds::ZERO, Seconds::max)
    }

    /// Total volume within coverage `P(s) = Σ_{v∈C(s)} D_v` (Eq. 2/6) over
    /// the given residual volumes.
    pub fn coverage_volume(&self, residual: &[MegaBytes]) -> MegaBytes {
        self.covered.iter().map(|&v| residual[v as usize]).sum()
    }
}

/// All candidate hovering locations for a scenario at a given `δ`.
#[derive(Clone, Debug)]
pub struct CandidateSet {
    /// Grid edge length `δ`, metres.
    pub delta: f64,
    /// Coverage radius `R0` used.
    pub coverage_radius: Meters,
    /// Candidates with non-empty coverage, in grid row-major order.
    pub candidates: Vec<Candidate>,
}

impl CandidateSet {
    /// Builds the candidate set: partitions the region into `δ`-squares
    /// and keeps every square centre that covers at least one device.
    ///
    /// # Panics
    /// Panics when `delta` is non-positive or non-finite.
    pub fn build(scenario: &Scenario, delta: f64) -> Self {
        assert!(
            delta.is_finite() && delta > 0.0,
            "delta must be positive, got {delta}"
        );
        let r0 = scenario.coverage_radius();
        let grid = GridSpec::for_region(&scenario.region, delta);
        let positions = scenario.device_positions();
        // lint:allow(unit-unwrap): the geometry layer (SpatialGrid) is dimension-generic, radii in metres
        let index = SpatialGrid::build(&positions, r0.value().max(delta));
        let mut candidates = Vec::new();
        let mut buf = Vec::new();
        for cell in grid.cells() {
            let center = grid.cell_center(cell);
            // lint:allow(unit-unwrap): the geometry layer is dimension-generic, radii in metres
            index.query_radius_into(center, r0.value(), &mut buf);
            if buf.is_empty() {
                continue;
            }
            let mut covered: Vec<u32> = buf.iter().map(|&i| i as u32).collect();
            covered.sort_unstable();
            candidates.push(Candidate {
                pos: center,
                covered,
            });
        }
        CandidateSet {
            delta,
            coverage_radius: r0,
            candidates,
        }
    }

    /// Number of candidates.
    #[inline]
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// True when no candidate covers any device.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// Removes dominated candidates: a candidate is dropped when another
    /// candidate covers a strict superset of its devices (or the same set,
    /// keeping the first in grid order). Preserves the attainable data
    /// volume while shrinking the search space.
    pub fn prune_dominated(&mut self) {
        let n = self.candidates.len();
        // Bucket candidates by covered device to limit the quadratic
        // comparison to candidates that can actually intersect. Device
        // ids are dense, so a flat Vec indexed by id keeps the peer
        // iteration order deterministic (a hash map's would not be).
        let num_ids = self
            .candidates
            .iter()
            .flat_map(|c| c.covered.iter())
            .map(|&v| v as usize + 1)
            .max()
            .unwrap_or(0);
        let mut by_device: Vec<Vec<usize>> = vec![Vec::new(); num_ids];
        for (i, c) in self.candidates.iter().enumerate() {
            for &v in &c.covered {
                by_device[v as usize].push(i);
            }
        }
        let mut dead = vec![false; n];
        // Collapse exact-duplicate coverage sets up front (common at
        // small δ, where many grid cells see the same devices): keep the
        // first candidate in grid order — exactly what the pairwise
        // equal-set rule below would converge to — in one O(n log n)
        // pass instead of paying for duplicates in the bucket scans.
        // A BTreeMap keyed on the sorted slice keeps this deterministic.
        {
            let mut seen: std::collections::BTreeMap<&[u32], usize> =
                std::collections::BTreeMap::new();
            for (i, c) in self.candidates.iter().enumerate() {
                if seen.contains_key(c.covered.as_slice()) {
                    dead[i] = true;
                } else {
                    seen.insert(c.covered.as_slice(), i);
                }
            }
        }
        for i in 0..n {
            if dead[i] {
                continue;
            }
            // Candidates sharing the first device of i are the only
            // possible dominators.
            let first = self.candidates[i].covered[0];
            if let Some(peers) = by_device.get(first as usize) {
                for &j in peers {
                    if i == j || dead[j] {
                        continue;
                    }
                    let (a, b) = (&self.candidates[i].covered, &self.candidates[j].covered);
                    if b.len() > a.len() && is_subset(a, b) {
                        dead[i] = true;
                        break;
                    }
                    if a == b && j < i {
                        dead[i] = true;
                        break;
                    }
                }
            }
        }
        let mut k = 0;
        self.candidates.retain(|_| {
            let keep = !dead[k];
            k += 1;
            keep
        });
    }

    /// Filters to a subset with pairwise-disjoint coverage sets, greedily
    /// keeping the candidates with the largest covered data volume first.
    /// This realises the paper's "without hovering coverage overlapping"
    /// setting for Algorithm 1.
    pub fn disjoint_by_volume(&self, scenario: &Scenario) -> CandidateSet {
        let volumes: Vec<MegaBytes> = scenario.devices.iter().map(|d| d.data).collect();
        let mut order: Vec<usize> = (0..self.candidates.len()).collect();
        order.sort_by(|&a, &b| {
            // lint:allow(unit-unwrap): cmp_f64_desc needs the raw values for its NaN-safe total order
            let va = self.candidates[a].coverage_volume(&volumes).value();
            // lint:allow(unit-unwrap): cmp_f64_desc needs the raw values for its NaN-safe total order
            let vb = self.candidates[b].coverage_volume(&volumes).value();
            uavdc_geom::cmp_f64_desc(va, vb)
        });
        let mut taken_device = vec![false; scenario.num_devices()];
        let mut kept = Vec::new();
        for i in order {
            let c = &self.candidates[i];
            if c.covered.iter().all(|&v| !taken_device[v as usize]) {
                for &v in &c.covered {
                    taken_device[v as usize] = true;
                }
                kept.push(c.clone());
            }
        }
        CandidateSet {
            delta: self.delta,
            coverage_radius: self.coverage_radius,
            candidates: kept,
        }
    }
}

fn is_subset(a: &[u32], b: &[u32]) -> bool {
    // Both sorted; standard merge scan.
    let mut j = 0;
    for &x in a {
        while j < b.len() && b[j] < x {
            j += 1;
        }
        if j == b.len() || b[j] != x {
            return false;
        }
        j += 1;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use uavdc_geom::Aabb;
    use uavdc_net::units::{Joules, MegaBytesPerSecond, Meters};
    use uavdc_net::{IotDevice, RadioModel, Scenario, UavSpec};

    fn scenario_with(devices: Vec<(f64, f64, f64)>, r0: f64) -> Scenario {
        Scenario {
            region: Aabb::square(100.0),
            devices: devices
                .into_iter()
                .map(|(x, y, d)| IotDevice {
                    pos: Point2::new(x, y),
                    data: MegaBytes(d),
                })
                .collect(),
            depot: Point2::new(50.0, 50.0),
            radio: RadioModel::new(Meters(r0), MegaBytesPerSecond(150.0)),
            uav: UavSpec {
                capacity: Joules(1e5),
                ..UavSpec::paper_default()
            },
        }
    }

    #[test]
    fn empty_region_has_no_candidates() {
        let s = scenario_with(vec![], 10.0);
        let cs = CandidateSet::build(&s, 10.0);
        assert!(cs.is_empty());
    }

    #[test]
    fn every_candidate_covers_something_and_every_device_is_coverable() {
        let s = scenario_with(vec![(10.0, 10.0, 500.0), (90.0, 90.0, 300.0)], 15.0);
        let cs = CandidateSet::build(&s, 5.0);
        assert!(!cs.is_empty());
        let mut covered_devices = std::collections::HashSet::new();
        for c in &cs.candidates {
            assert!(!c.covered.is_empty());
            for &v in &c.covered {
                let d = s.devices[v as usize].pos.distance(c.pos);
                assert!(d <= 15.0 + 1e-9, "claimed coverage at distance {d}");
                covered_devices.insert(v);
            }
        }
        assert_eq!(covered_devices.len(), 2);
    }

    #[test]
    fn hover_time_is_max_over_covered() {
        let s = scenario_with(vec![(50.0, 50.0, 600.0), (52.0, 50.0, 150.0)], 10.0);
        let cs = CandidateSet::build(&s, 10.0);
        let volumes: Vec<MegaBytes> = s.devices.iter().map(|d| d.data).collect();
        let c = cs
            .candidates
            .iter()
            .find(|c| c.covered.len() == 2)
            .expect("some cell covers both");
        // t = max(600, 150) / 150 = 4 s; P = 750 MB.
        assert!((c.hover_time(&volumes, &s).value() - 4.0).abs() < 1e-12);
        assert_eq!(c.coverage_volume(&volumes), MegaBytes(750.0));
    }

    #[test]
    fn coarser_grid_fewer_candidates() {
        let s = scenario_with(vec![(25.0, 25.0, 100.0), (75.0, 75.0, 100.0)], 20.0);
        let fine = CandidateSet::build(&s, 5.0);
        let coarse = CandidateSet::build(&s, 25.0);
        assert!(fine.len() > coarse.len());
    }

    #[test]
    fn prune_dominated_keeps_volume_attainable() {
        let s = scenario_with(vec![(30.0, 30.0, 100.0), (35.0, 30.0, 100.0)], 12.0);
        let mut cs = CandidateSet::build(&s, 4.0);
        let before = cs.len();
        cs.prune_dominated();
        assert!(cs.len() < before);
        // Some surviving candidate still covers both devices.
        assert!(cs.candidates.iter().any(|c| c.covered.len() == 2));
        // No candidate is a strict subset of another survivor.
        for i in 0..cs.len() {
            for j in 0..cs.len() {
                if i != j {
                    let (a, b) = (&cs.candidates[i].covered, &cs.candidates[j].covered);
                    assert!(
                        !(b.len() > a.len() && is_subset(a, b)),
                        "candidate {i} still dominated by {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn prune_dominated_collapses_duplicates_keeping_first() {
        // Hand-built set: indices 0, 2, 4 share the exact coverage set
        // {0, 1}; index 1 is a strict subset {0}; index 3 is unrelated.
        let mk = |x: f64, covered: Vec<u32>| Candidate {
            pos: Point2::new(x, 0.0),
            covered,
        };
        let mut cs = CandidateSet {
            delta: 1.0,
            coverage_radius: Meters(1.0),
            candidates: vec![
                mk(0.0, vec![0, 1]),
                mk(1.0, vec![0]),
                mk(2.0, vec![0, 1]),
                mk(3.0, vec![2]),
                mk(4.0, vec![0, 1]),
            ],
        };
        cs.prune_dominated();
        let kept: Vec<f64> = cs.candidates.iter().map(|c| c.pos.x).collect();
        // First duplicate (x = 0) survives, later twins and the strict
        // subset are pruned, unrelated coverage is untouched.
        assert_eq!(kept, vec![0.0, 3.0]);
    }

    #[test]
    fn disjoint_filter_produces_disjoint_sets() {
        let s = scenario_with(
            vec![
                (30.0, 30.0, 900.0),
                (38.0, 30.0, 100.0),
                (80.0, 80.0, 400.0),
            ],
            12.0,
        );
        let cs = CandidateSet::build(&s, 4.0);
        let dj = cs.disjoint_by_volume(&s);
        let mut seen = std::collections::HashSet::new();
        for c in &dj.candidates {
            for &v in &c.covered {
                assert!(seen.insert(v), "device {v} covered twice in disjoint set");
            }
        }
        // Greedy keeps the largest-volume candidate: it must include the
        // cell covering both 900 MB and 100 MB devices if one exists.
        let max_cov = dj.candidates.iter().map(|c| c.covered.len()).max().unwrap();
        assert!(max_cov >= 1);
    }

    #[test]
    fn subset_helper() {
        assert!(is_subset(&[1, 3], &[1, 2, 3]));
        assert!(is_subset(&[], &[1]));
        assert!(!is_subset(&[1, 4], &[1, 2, 3]));
        assert!(!is_subset(&[0], &[]));
    }

    #[test]
    #[should_panic(expected = "delta must be positive")]
    fn bad_delta_panics() {
        let s = scenario_with(vec![(1.0, 1.0, 1.0)], 10.0);
        let _ = CandidateSet::build(&s, -1.0);
    }
}
