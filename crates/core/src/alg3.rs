//! Algorithm 3: the *partial* data collection maximization problem.
//!
//! Each real hovering location `s` spawns `K` virtual hovering locations
//! `s_{j,1..K}` with sojourn durations `k·t(s)/K` (paper Eq. 4–5); a
//! shorter sojourn collects `min(D_v, B·τ)` from every covered device
//! simultaneously. The greedy loop of Algorithm 2 runs over the virtual
//! locations, with two partial-collection twists (paper §VI):
//!
//! * at most one virtual location per real location is on the tour at a
//!   time — choosing a second one *extends the sojourn* of the existing
//!   stop instead of adding a new tour vertex (the paper removes the
//!   shorter virtual stop and keeps the longer, which is travel-wise
//!   identical; Lemma 2 shows no collected data is lost);
//! * residual volumes are tracked per device, so a device partially
//!   drained at one stop can yield its remainder at later stops, and
//!   hover durations are recomputed from residuals as the tour grows
//!   (the pseudocode's lines 11–12).

use crate::candidates::CandidateSet;
use crate::greedy::{
    self, DeviceIndex, EngineMode, EvalCounters, Fixup, InsertionCache, LazyHeap, PlanStats, Probe,
};
use crate::plan::{CollectionPlan, HoverStop};
use crate::tourutil::{cheapest_insertion_point, closed_tour_length};
use crate::Planner;
use uavdc_geom::Point2;
use uavdc_net::units::{MegaBytes, Seconds};
use uavdc_net::{DeviceId, Scenario};
use uavdc_obs::{Recorder, Span};

/// Configuration of [`Alg3Planner`].
#[derive(Clone, Copy, Debug)]
pub struct Alg3Config {
    /// Grid edge length `δ`, metres.
    pub delta: f64,
    /// Number of sojourn partitions `K >= 1`; `K = 1` degenerates to full
    /// collection per stop (Algorithm 2 behaviour).
    pub k: usize,
    /// Drop dominated candidates before planning.
    pub prune_dominated: bool,
    /// Parallelise candidate evaluation above this candidate count.
    pub parallel_threshold: usize,
    /// Per-iteration evaluation strategy ([`EngineMode::Lazy`] default).
    pub engine: EngineMode,
}

impl Default for Alg3Config {
    fn default() -> Self {
        Alg3Config {
            delta: 10.0,
            k: 2,
            prune_dominated: true,
            parallel_threshold: 4096,
            engine: EngineMode::Lazy,
        }
    }
}

/// Algorithm 3 planner.
#[derive(Clone, Debug, Default)]
pub struct Alg3Planner {
    /// Planner configuration.
    pub config: Alg3Config,
}

impl Alg3Planner {
    /// Creates a planner with the given configuration.
    pub fn new(config: Alg3Config) -> Self {
        Alg3Planner { config }
    }

    /// Convenience constructor: default configuration with the given `K`.
    pub fn with_k(k: usize) -> Self {
        Alg3Planner {
            config: Alg3Config {
                k,
                ..Alg3Config::default()
            },
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct VirtualEval {
    cand: usize,
    /// Chosen sojourn extension τ (seconds).
    tau: f64,
    ratio: f64,
    /// Cheapest-insertion position (ignored when the candidate already has
    /// a stop on the tour).
    insert_pos: usize,
}

struct PartialState<'a> {
    scenario: &'a Scenario,
    candidates: &'a CandidateSet,
    /// Remaining (uncollected) volume per device, MB.
    residual: Vec<f64>,
    tour_pts: Vec<Point2>,
    /// Stop index per tour position (`usize::MAX` for the depot).
    stop_of: Vec<usize>,
    stops: Vec<HoverStop>,
    /// Existing stop index per candidate, if any.
    stop_of_candidate: Vec<usize>,
    active: Vec<bool>,
    hover_energy_total: f64,
    tour_len: f64,
}

impl<'a> PartialState<'a> {
    fn new(scenario: &'a Scenario, candidates: &'a CandidateSet) -> Self {
        PartialState {
            scenario,
            candidates,
            residual: scenario.devices.iter().map(|d| d.data.value()).collect(),
            tour_pts: vec![scenario.depot],
            stop_of: vec![usize::MAX],
            stops: Vec::new(),
            stop_of_candidate: vec![usize::MAX; candidates.len()],
            active: vec![true; candidates.len()],
            hover_energy_total: 0.0,
            tour_len: 0.0,
        }
    }

    /// Best virtual location of candidate `c` (over `k = 1..=K`), or
    /// `None` when inactive/empty/infeasible.
    fn evaluate(
        &self,
        c: usize,
        k_parts: usize,
        capacity: f64,
        eta_h: f64,
        per_m: f64,
    ) -> Option<VirtualEval> {
        if !self.active[c] {
            return None;
        }
        let b = self.scenario.radio.bandwidth.value();
        let covered = &self.candidates.candidates[c].covered;
        // Full residual hover time t(s) (Eq. 1 on residual volumes).
        let mut t_full = 0.0f64;
        for &v in covered {
            t_full = t_full.max(self.residual[v as usize] / b);
        }
        if t_full <= 0.0 {
            return None;
        }
        let on_tour = self.stop_of_candidate[c] != usize::MAX;
        let (delta_len, insert_pos) = if on_tour {
            (0.0, usize::MAX)
        } else {
            cheapest_insertion_point(&self.tour_pts, self.candidates.candidates[c].pos)
        };
        let travel_extra = delta_len * per_m;
        let mut best: Option<VirtualEval> = None;
        for k in 1..=k_parts {
            let tau = t_full * (k as f64) / (k_parts as f64);
            // Volume collected in τ: every covered device uploads in
            // parallel at B, truncated by its residual.
            let vol: f64 = covered
                .iter()
                .map(|&v| self.residual[v as usize].min(b * tau))
                .sum();
            if vol <= 1e-9 {
                continue;
            }
            let hover_extra = tau * eta_h;
            let total = self.hover_energy_total + hover_extra + (self.tour_len + delta_len) * per_m;
            if total > capacity {
                continue;
            }
            let ratio = vol / (hover_extra + travel_extra).max(1e-12);
            if best.as_ref().is_none_or(|e| ratio > e.ratio) {
                best = Some(VirtualEval {
                    cand: c,
                    tau,
                    ratio,
                    insert_pos,
                });
            }
        }
        best
    }

    /// Commits the chosen virtual location. Returns the volume collected,
    /// the drained device ids (the lazy engine's dirty seed), and the
    /// tour position the stop was inserted at (`None` when an existing
    /// stop's sojourn was extended — the tour is untouched then). Does
    /// **not** deactivate exhausted candidates; see
    /// [`PartialState::deactivate_exhausted`].
    fn commit(&mut self, eval: VirtualEval, eta_h: f64) -> (f64, Vec<u32>, Option<usize>) {
        let b = self.scenario.radio.bandwidth.value();
        let covered = &self.candidates.candidates[eval.cand].covered;
        let mut entries = Vec::new();
        let mut drained = Vec::new();
        let mut collected_now = 0.0;
        for &v in covered {
            let amount = self.residual[v as usize].min(b * eval.tau);
            if amount > 0.0 {
                self.residual[v as usize] -= amount;
                entries.push((DeviceId(v), MegaBytes(amount)));
                collected_now += amount;
                drained.push(v);
            }
        }
        debug_assert!(collected_now > 0.0);
        let existing = self.stop_of_candidate[eval.cand];
        let mut inserted_at = None;
        if existing != usize::MAX {
            // Extend the sojourn of the existing stop (Lemma 2).
            let stop = &mut self.stops[existing];
            stop.sojourn += Seconds(eval.tau);
            stop.collected.extend(entries);
        } else {
            let pos = self.candidates.candidates[eval.cand].pos;
            self.stops.push(HoverStop {
                pos,
                sojourn: Seconds(eval.tau),
                collected: entries,
            });
            let idx = self.stops.len() - 1;
            self.stop_of_candidate[eval.cand] = idx;
            self.tour_pts.insert(eval.insert_pos, pos);
            self.stop_of.insert(eval.insert_pos, idx);
            self.tour_len = closed_tour_length(&self.tour_pts);
            inserted_at = Some(eval.insert_pos);
        }
        self.hover_energy_total += eval.tau * eta_h;
        (collected_now, drained, inserted_at)
    }

    /// Deactivates candidates whose covered devices are all exhausted
    /// (full sweep; the exhaustive engine runs this after every commit).
    fn deactivate_exhausted(&mut self) {
        for i in 0..self.candidates.len() {
            if self.active[i] {
                let cov = &self.candidates.candidates[i].covered;
                if cov.iter().all(|&v| self.residual[v as usize] <= 1e-9) {
                    self.active[i] = false;
                }
            }
        }
    }

    /// Whether candidate `c`'s covered devices are all exhausted (the
    /// per-candidate form of the deactivation sweep).
    fn is_exhausted(&self, c: usize) -> bool {
        self.candidates.candidates[c]
            .covered
            .iter()
            .all(|&v| self.residual[v as usize] <= 1e-9)
    }

    fn into_plan(self) -> CollectionPlan {
        let mut ordered = Vec::with_capacity(self.stops.len());
        for (i, &s) in self.stop_of.iter().enumerate() {
            if i == 0 {
                continue;
            }
            ordered.push(self.stops[s].clone());
        }
        CollectionPlan { stops: ordered }
    }
}

/// The exhaustive engine's ratio comparator (deterministic tie-break on
/// candidate index).
fn better(a: &VirtualEval, b: &VirtualEval) -> bool {
    a.ratio > b.ratio + greedy::RATIO_BAND
        || (a.ratio >= b.ratio - greedy::RATIO_BAND && a.cand < b.cand)
}

fn best_virtual(
    state: &PartialState<'_>,
    k_parts: usize,
    parallel_threshold: usize,
) -> Option<VirtualEval> {
    let capacity = state.scenario.uav.capacity.value();
    let eta_h = state.scenario.uav.hover_power.value();
    let per_m = state.scenario.uav.travel_energy_per_meter().value();
    let n = state.candidates.len();
    greedy::chunked_argmax(
        n,
        n >= parallel_threshold,
        |c| state.evaluate(c, k_parts, capacity, eta_h, per_m),
        better,
    )
}

/// Scenario power constants threaded through the cached evaluators.
#[derive(Clone, Copy)]
struct Power {
    capacity: f64,
    eta_h: f64,
    per_m: f64,
}

/// Best virtual location of candidate `c` from the *cached* per-k
/// marginals, mirroring [`PartialState::evaluate`] bit for bit. With
/// `feasible_only` the battery filter applies (selection); without it the
/// result is the heap's upper-bound key — valid because the feasible k
/// subset only shrinks between cache refreshes (the tour never shortens
/// in Algorithm 3). Returns `(ratio, tau)`.
#[allow(clippy::too_many_arguments)]
fn cached_best_k(
    st: &PartialState<'_>,
    ins: &InsertionCache,
    t_full: &[f64],
    tau: &[f64],
    vol: &[f64],
    kp: usize,
    c: usize,
    power: Power,
    feasible_only: bool,
) -> Option<(f64, f64)> {
    if t_full[c] <= 0.0 {
        return None;
    }
    let on_tour = st.stop_of_candidate[c] != usize::MAX;
    let delta_len = if on_tour { 0.0 } else { ins.get(c)?.0 };
    let travel_extra = delta_len * power.per_m;
    let mut best: Option<(f64, f64)> = None;
    for k in 0..kp {
        let tk = tau[c * kp + k];
        let vk = vol[c * kp + k];
        if vk <= 1e-9 {
            continue;
        }
        let hover_extra = tk * power.eta_h;
        if feasible_only {
            let total =
                st.hover_energy_total + hover_extra + (st.tour_len + delta_len) * power.per_m;
            if total > power.capacity {
                continue;
            }
        }
        let ratio = vk / (hover_extra + travel_extra).max(1e-12);
        if best.is_none_or(|(r, _)| ratio > r) {
            best = Some((ratio, tk));
        }
    }
    best
}

/// Runs the exhaustive greedy loop (full rescan per iteration).
fn run_exhaustive(
    state: &mut PartialState<'_>,
    config: &Alg3Config,
    eta_h: f64,
    max_iters: usize,
    counters: &mut EvalCounters,
) {
    for _ in 0..max_iters {
        counters.iterations += 1;
        counters.marginal_evals += state.candidates.len() as u64;
        counters.evaluations += state.candidates.len() as u64;
        match best_virtual(state, config.k, config.parallel_threshold) {
            Some(eval) => {
                let (got, _, _) = state.commit(eval, eta_h);
                state.deactivate_exhausted();
                if got <= 1e-9 {
                    break;
                }
            }
            None => break,
        }
    }
}

/// Runs the lazy greedy loop over virtual locations. Caches `t_full` and
/// the per-k `(τ, volume)` arrays per candidate (refreshed when a shared
/// device drains), the cheapest-insertion delta (repaired in O(1) per
/// tour insertion; sojourn extensions leave the tour untouched), and
/// selects through the CELF heap whose keys are the unconditional max-k
/// ratios — exact upper bounds that [`Probe::Feasible`] decays as the
/// battery filters out deeper sojourns. Produces the same plans as
/// [`run_exhaustive`] (property-tested; DESIGN.md §8).
fn run_lazy(
    state: &mut PartialState<'_>,
    config: &Alg3Config,
    eta_h: f64,
    max_iters: usize,
    counters: &mut EvalCounters,
    rec: &dyn Recorder,
) {
    let scenario = state.scenario;
    let power = Power {
        capacity: scenario.uav.capacity.value(),
        eta_h,
        per_m: scenario.uav.travel_energy_per_meter().value(),
    };
    let b = scenario.radio.bandwidth.value();
    let m = state.candidates.len();
    let kp = config.k;
    let parallel_threshold = config.parallel_threshold;

    let index = DeviceIndex::build(state.candidates, scenario.num_devices());
    let mut t_full = vec![0.0f64; m];
    let mut tau = vec![0.0f64; m * kp];
    let mut vol = vec![0.0f64; m * kp];
    let mut ins = InsertionCache::new(m);
    let mut heap = LazyHeap::new(m);

    // Mirrors the t_full / per-k (τ, vol) loops of
    // `PartialState::evaluate` exactly (same iteration order, same ops).
    let eval_marginal = |st: &PartialState<'_>, c: usize| -> (f64, Vec<f64>, Vec<f64>) {
        let covered = &st.candidates.candidates[c].covered;
        let mut tf = 0.0f64;
        for &v in covered {
            tf = tf.max(st.residual[v as usize] / b);
        }
        let mut taus = vec![0.0f64; kp];
        let mut vols = vec![0.0f64; kp];
        if tf > 0.0 {
            for k in 1..=kp {
                let t = tf * (k as f64) / (kp as f64);
                taus[k - 1] = t;
                vols[k - 1] = covered
                    .iter()
                    .map(|&v| st.residual[v as usize].min(b * t))
                    .sum();
            }
        }
        (tf, taus, vols)
    };

    // Initial full evaluation (parallel when large).
    let all: Vec<u32> = (0..m as u32).collect();
    let marginals = greedy::chunked_map(&all, parallel_threshold, |&c| {
        eval_marginal(state, c as usize)
    });
    let deltas = greedy::chunked_map(&all, parallel_threshold, |&c| {
        cheapest_insertion_point(&state.tour_pts, state.candidates.candidates[c as usize].pos)
    });
    counters.marginal_evals += m as u64;
    counters.evaluations += m as u64;
    // Candidates already exhausted at the start: the exhaustive sweep
    // only deactivates them *after* the first commit, so record them now
    // and deactivate at the same point.
    let mut init_exhausted: Vec<u32> = Vec::new();
    for (c, (tf, taus, vols)) in marginals.into_iter().enumerate() {
        t_full[c] = tf;
        tau[c * kp..(c + 1) * kp].copy_from_slice(&taus);
        vol[c * kp..(c + 1) * kp].copy_from_slice(&vols);
        ins.set(c, deltas[c].0, deltas[c].1);
        if state.is_exhausted(c) {
            init_exhausted.push(c as u32);
        }
        if let Some((key, _)) = cached_best_k(state, &ins, &t_full, &tau, &vol, kp, c, power, false)
        {
            heap.push(c, key);
        }
    }

    let mut stamp = vec![0u32; m];
    let mut epoch = 0u32;
    let mut dirty: Vec<u32> = Vec::new();
    let mut touched: Vec<u32> = Vec::new();
    let mut rescan: Vec<u32> = Vec::new();
    let mut first_commit_done = false;
    for _ in 0..max_iters {
        counters.iterations += 1;
        let mut pops = 0u64;
        let selected = heap.select(
            |c| state.active[c],
            |c| match cached_best_k(state, &ins, &t_full, &tau, &vol, kp, c, power, true) {
                None => Probe::Infeasible,
                Some((ratio, _)) => Probe::Feasible(ratio),
            },
            &mut pops,
        );
        counters.heap_pops += pops;
        rec.observe("alg3.pops_per_iter", pops);
        let Some((winner, ratio)) = selected else {
            break;
        };
        let Some((_, wtau)) =
            cached_best_k(state, &ins, &t_full, &tau, &vol, kp, winner, power, true)
        else {
            break; // unreachable: the probe just reported it feasible
        };
        let on_tour = state.stop_of_candidate[winner] != usize::MAX;
        let insert_pos = if on_tour {
            usize::MAX
        } else {
            // Canonical position (the cache may name an equal-delta edge).
            cheapest_insertion_point(&state.tour_pts, state.candidates.candidates[winner].pos).1
        };
        let eval = VirtualEval {
            cand: winner,
            tau: wtau,
            ratio,
            insert_pos,
        };
        let (got, drained, inserted_at) = state.commit(eval, eta_h);
        if inserted_at.is_some() {
            rec.add("alg3.tour_insertions", 1);
        } else {
            rec.add("alg3.sojourn_extensions", 1);
        }
        if got <= 1e-9 {
            break;
        }

        // Repair cached insertion deltas when the tour gained a vertex
        // (sojourn extensions leave every delta exact).
        touched.clear();
        rescan.clear();
        if let Some(ins_pos) = inserted_at {
            for c in 0..m {
                if !state.active[c] || state.stop_of_candidate[c] != usize::MAX {
                    continue;
                }
                counters.fixups += 1;
                match ins.apply_insertion(
                    c,
                    state.candidates.candidates[c].pos,
                    &state.tour_pts,
                    ins_pos,
                ) {
                    Fixup::Unchanged => {}
                    Fixup::Improved => touched.push(c as u32),
                    Fixup::Invalidated => rescan.push(c as u32),
                }
            }
        }

        // Refresh marginals of candidates sharing a drained device.
        epoch = epoch.wrapping_add(1);
        index.dirty_candidates(drained.iter().copied(), &mut stamp, epoch, &mut dirty);
        rec.observe("alg3.dirty_batch", dirty.len() as u64);
        for &c in &dirty {
            let c = c as usize;
            if !state.active[c] {
                continue;
            }
            counters.marginal_evals += 1;
            counters.evaluations += 1;
            let (tf, taus, vols) = eval_marginal(state, c);
            t_full[c] = tf;
            tau[c * kp..(c + 1) * kp].copy_from_slice(&taus);
            vol[c * kp..(c + 1) * kp].copy_from_slice(&vols);
            if state.is_exhausted(c) {
                state.active[c] = false;
            } else {
                touched.push(c as u32);
            }
        }
        if !first_commit_done {
            for &c in &init_exhausted {
                state.active[c as usize] = false;
            }
            first_commit_done = true;
        }

        // Rescan destroyed insertion deltas as one dirty batch.
        rescan.retain(|&c| state.active[c as usize]);
        if !rescan.is_empty() {
            counters.delta_rescans += rescan.len() as u64;
            counters.evaluations += rescan.len() as u64;
            let fresh = greedy::chunked_map(&rescan, parallel_threshold, |&c| {
                cheapest_insertion_point(
                    &state.tour_pts,
                    state.candidates.candidates[c as usize].pos,
                )
            });
            for (&c, &(d, p)) in rescan.iter().zip(&fresh) {
                ins.set(c as usize, d, p);
                touched.push(c);
            }
        }

        // Publish fresh heap keys for every candidate whose caches
        // changed (also how a parked candidate re-enters contention).
        touched.sort_unstable();
        touched.dedup();
        for &c in &touched {
            let c = c as usize;
            if !state.active[c] {
                continue;
            }
            if let Some((key, _)) =
                cached_best_k(state, &ins, &t_full, &tau, &vol, kp, c, power, false)
            {
                heap.push(c, key);
            }
        }
    }
}

impl Alg3Planner {
    /// Plans and returns the work/timing breakdown alongside the plan
    /// (consumed by the `planner_baseline` perf harness).
    pub fn plan_with_stats(&self, scenario: &Scenario) -> (CollectionPlan, PlanStats) {
        self.plan_with_stats_obs(scenario, &uavdc_obs::NOOP)
    }

    /// Like [`plan_with_stats`](Alg3Planner::plan_with_stats), reporting
    /// spans (`alg3/setup`, `alg3/loop`), end-of-run counters, and
    /// per-iteration histograms to `rec`. With the no-op recorder this
    /// is the same computation producing bit-identical plans
    /// (property-tested in `tests/obs_noop_equivalence.rs`).
    pub fn plan_with_stats_obs(
        &self,
        scenario: &Scenario,
        rec: &dyn Recorder,
    ) -> (CollectionPlan, PlanStats) {
        self.plan_prepared_obs(scenario, None, rec)
    }

    /// Recorder-free twin of
    /// [`plan_prepared_obs`](Alg3Planner::plan_prepared_obs).
    pub fn plan_prepared(
        &self,
        scenario: &Scenario,
        prepared: Option<&CandidateSet>,
    ) -> (CollectionPlan, PlanStats) {
        self.plan_prepared_obs(scenario, prepared, &uavdc_obs::NOOP)
    }

    /// Like [`plan_with_stats_obs`](Alg3Planner::plan_with_stats_obs),
    /// optionally reusing a prebuilt candidate set instead of rebuilding
    /// it. `prepared` must be exactly what the cold path would build —
    /// `CandidateSet::build(scenario, config.delta)` followed by
    /// `prune_dominated()` when `config.prune_dominated` is set (the
    /// keying contract of `uavdc-bench`'s artifact cache). Cold and
    /// prepared runs share every instruction after setup, so plans and
    /// counters are bit-identical (property-tested in
    /// `uavdc-bench/tests/service_cache_invisibility.rs`); only
    /// `setup_ns` shrinks.
    pub fn plan_prepared_obs(
        &self,
        scenario: &Scenario,
        prepared: Option<&CandidateSet>,
        rec: &dyn Recorder,
    ) -> (CollectionPlan, PlanStats) {
        assert!(self.config.k >= 1, "K must be at least 1");
        let root = Span::root(rec, "alg3");
        // lint:allow(effect-taint): wall-clock runtime stats only; never influence plan content
        let setup_start = std::time::Instant::now();
        let setup_span = root.child("setup");
        let built;
        let candidates = match prepared {
            Some(c) => c,
            None => {
                let mut c = CandidateSet::build(scenario, self.config.delta);
                if self.config.prune_dominated {
                    c.prune_dominated();
                }
                built = c;
                &built
            }
        };
        let mut stats = PlanStats {
            engine: self.config.engine,
            counters: EvalCounters {
                candidates: candidates.len(),
                ..EvalCounters::default()
            },
            setup_ns: 0,
            loop_ns: 0,
        };
        drop(setup_span);
        if candidates.is_empty() {
            stats.setup_ns = setup_start.elapsed().as_nanos() as u64;
            return (CollectionPlan::empty(), stats);
        }
        let mut state = PartialState::new(scenario, candidates);
        // Each commit either exhausts at least one virtual step of one
        // candidate or collects real data; the cap is a safety net for
        // degenerate float behaviour.
        let max_iters = candidates
            .len()
            .saturating_mul(self.config.k)
            .saturating_mul(4)
            + 64;
        let eta_h = scenario.uav.hover_power.value();
        stats.setup_ns = setup_start.elapsed().as_nanos() as u64;
        // lint:allow(effect-taint): wall-clock runtime stats only; never influence plan content
        let loop_start = std::time::Instant::now();
        let loop_span = root.child("loop");
        match self.config.engine {
            EngineMode::Lazy => run_lazy(
                &mut state,
                &self.config,
                eta_h,
                max_iters,
                &mut stats.counters,
                rec,
            ),
            EngineMode::Exhaustive => run_exhaustive(
                &mut state,
                &self.config,
                eta_h,
                max_iters,
                &mut stats.counters,
            ),
        }
        drop(loop_span);
        stats.loop_ns = loop_start.elapsed().as_nanos() as u64;
        flush_counters(rec, &stats.counters);
        let plan = state.into_plan();
        crate::validate::debug_check_plan(
            "Alg3Planner",
            scenario,
            &plan,
            crate::validate::Profile::P3Partial,
        );
        (plan, stats)
    }
}

/// Publishes the end-of-run engine counters under the `alg3.` namespace.
fn flush_counters(rec: &dyn Recorder, c: &EvalCounters) {
    rec.add("alg3.candidates", c.candidates as u64);
    rec.add("alg3.iterations", c.iterations);
    rec.add("alg3.evaluations", c.evaluations);
    rec.add("alg3.marginal_evals", c.marginal_evals);
    rec.add("alg3.delta_rescans", c.delta_rescans);
    rec.add("alg3.fixups", c.fixups);
    rec.add("alg3.heap_pops", c.heap_pops);
}

impl Planner for Alg3Planner {
    fn name(&self) -> &'static str {
        "Algorithm 3 (partial collection)"
    }

    fn plan(&self, scenario: &Scenario) -> CollectionPlan {
        self.plan_with_stats(scenario).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Alg2Config, Alg2Planner};
    use uavdc_geom::Aabb;
    use uavdc_net::units::{Joules, MegaBytesPerSecond, Meters};
    use uavdc_net::{IotDevice, RadioModel, UavSpec};

    fn scenario(capacity: f64) -> Scenario {
        Scenario {
            region: Aabb::square(200.0),
            devices: vec![
                IotDevice {
                    pos: Point2::new(40.0, 40.0),
                    data: MegaBytes(300.0),
                },
                IotDevice {
                    pos: Point2::new(48.0, 40.0),
                    data: MegaBytes(450.0),
                },
                IotDevice {
                    pos: Point2::new(60.0, 44.0),
                    data: MegaBytes(150.0),
                },
                IotDevice {
                    pos: Point2::new(180.0, 180.0),
                    data: MegaBytes(900.0),
                },
            ],
            depot: Point2::new(0.0, 0.0),
            radio: RadioModel::new(Meters(20.0), MegaBytesPerSecond(150.0)),
            uav: UavSpec {
                capacity: Joules(capacity),
                ..UavSpec::paper_default()
            },
        }
    }

    #[test]
    fn plan_validates_for_various_k() {
        let s = scenario(5000.0);
        for k in [1, 2, 4, 8] {
            let plan = Alg3Planner::with_k(k).plan(&s);
            plan.validate(&s).unwrap_or_else(|e| panic!("K={k}: {e}"));
            assert!(plan.total_energy(&s).value() <= 5000.0 + 1e-6);
        }
    }

    #[test]
    fn generous_budget_collects_everything_for_any_k() {
        let s = scenario(60_000.0);
        for k in [1, 3] {
            let plan = Alg3Planner::with_k(k).plan(&s);
            plan.validate(&s).unwrap();
            assert!(
                (plan.collected_volume().value() - 1800.0).abs() < 1e-6,
                "K={k} collected {}",
                plan.collected_volume()
            );
        }
    }

    #[test]
    fn partial_collection_beats_or_matches_full_on_tight_budget() {
        // The whole point of Algorithm 3 (paper Fig. 4a): with partial
        // sojourns the UAV spends hovering energy more efficiently.
        let s = scenario(3500.0);
        let full = Alg2Planner::new(Alg2Config {
            delta: 10.0,
            ..Alg2Config::default()
        })
        .plan(&s);
        let partial = Alg3Planner::with_k(4).plan(&s);
        partial.validate(&s).unwrap();
        assert!(
            partial.collected_volume().value() >= full.collected_volume().value() - 1e-6,
            "partial {} < full {}",
            partial.collected_volume(),
            full.collected_volume()
        );
    }

    #[test]
    fn k1_matches_alg2_semantics() {
        // With K = 1 every selected stop collects fully (on residuals), so
        // collected volumes should be comparable to Algorithm 2.
        let s = scenario(4000.0);
        let a2 = Alg2Planner::default().plan(&s);
        let a3 = Alg3Planner::with_k(1).plan(&s);
        a3.validate(&s).unwrap();
        // Same greedy family; allow them to differ but not wildly.
        let (v2, v3) = (a2.collected_volume().value(), a3.collected_volume().value());
        assert!(v3 >= 0.7 * v2, "K=1 {} vs alg2 {}", v3, v2);
    }

    #[test]
    fn zero_capacity_collects_nothing() {
        let s = scenario(0.0);
        let plan = Alg3Planner::default().plan(&s);
        assert!(plan.stops.is_empty());
    }

    #[test]
    fn residuals_never_go_negative() {
        let s = scenario(5000.0);
        let plan = Alg3Planner::with_k(4).plan(&s);
        let mut per_device = vec![0.0; s.num_devices()];
        for stop in &plan.stops {
            for &(dev, amt) in &stop.collected {
                per_device[dev.index()] += amt.value();
            }
        }
        for (i, &got) in per_device.iter().enumerate() {
            assert!(
                got <= s.devices[i].data.value() + 1e-6,
                "device {i} overdrawn"
            );
        }
    }

    #[test]
    fn extended_stops_merge_rather_than_duplicate_tour_points() {
        let s = scenario(8000.0);
        let plan = Alg3Planner::with_k(4).plan(&s);
        // No two stops at the same position (extension merges them).
        for i in 0..plan.stops.len() {
            for j in (i + 1)..plan.stops.len() {
                assert!(
                    plan.stops[i].pos.distance(plan.stops[j].pos) > 1e-9,
                    "duplicate stop position"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "K must be at least 1")]
    fn k_zero_rejected() {
        let s = scenario(1000.0);
        let _ = Alg3Planner::with_k(0).plan(&s);
    }
}
