//! Algorithm 3: the *partial* data collection maximization problem.
//!
//! Each real hovering location `s` spawns `K` virtual hovering locations
//! `s_{j,1..K}` with sojourn durations `k·t(s)/K` (paper Eq. 4–5); a
//! shorter sojourn collects `min(D_v, B·τ)` from every covered device
//! simultaneously. The greedy loop of Algorithm 2 runs over the virtual
//! locations, with two partial-collection twists (paper §VI):
//!
//! * at most one virtual location per real location is on the tour at a
//!   time — choosing a second one *extends the sojourn* of the existing
//!   stop instead of adding a new tour vertex (the paper removes the
//!   shorter virtual stop and keeps the longer, which is travel-wise
//!   identical; Lemma 2 shows no collected data is lost);
//! * residual volumes are tracked per device, so a device partially
//!   drained at one stop can yield its remainder at later stops, and
//!   hover durations are recomputed from residuals as the tour grows
//!   (the pseudocode's lines 11–12).

use crate::candidates::CandidateSet;
use crate::plan::{CollectionPlan, HoverStop};
use crate::tourutil::{cheapest_insertion_point, closed_tour_length};
use crate::Planner;
use uavdc_geom::Point2;
use uavdc_net::units::{MegaBytes, Seconds};
use uavdc_net::{DeviceId, Scenario};

/// Configuration of [`Alg3Planner`].
#[derive(Clone, Copy, Debug)]
pub struct Alg3Config {
    /// Grid edge length `δ`, metres.
    pub delta: f64,
    /// Number of sojourn partitions `K >= 1`; `K = 1` degenerates to full
    /// collection per stop (Algorithm 2 behaviour).
    pub k: usize,
    /// Drop dominated candidates before planning.
    pub prune_dominated: bool,
    /// Parallelise candidate evaluation above this candidate count.
    pub parallel_threshold: usize,
}

impl Default for Alg3Config {
    fn default() -> Self {
        Alg3Config {
            delta: 10.0,
            k: 2,
            prune_dominated: true,
            parallel_threshold: 4096,
        }
    }
}

/// Algorithm 3 planner.
#[derive(Clone, Debug, Default)]
pub struct Alg3Planner {
    /// Planner configuration.
    pub config: Alg3Config,
}

impl Alg3Planner {
    /// Creates a planner with the given configuration.
    pub fn new(config: Alg3Config) -> Self {
        Alg3Planner { config }
    }

    /// Convenience constructor: default configuration with the given `K`.
    pub fn with_k(k: usize) -> Self {
        Alg3Planner {
            config: Alg3Config {
                k,
                ..Alg3Config::default()
            },
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct VirtualEval {
    cand: usize,
    /// Chosen sojourn extension τ (seconds).
    tau: f64,
    ratio: f64,
    /// Cheapest-insertion position (ignored when the candidate already has
    /// a stop on the tour).
    insert_pos: usize,
}

struct PartialState<'a> {
    scenario: &'a Scenario,
    candidates: &'a CandidateSet,
    /// Remaining (uncollected) volume per device, MB.
    residual: Vec<f64>,
    tour_pts: Vec<Point2>,
    /// Stop index per tour position (`usize::MAX` for the depot).
    stop_of: Vec<usize>,
    stops: Vec<HoverStop>,
    /// Existing stop index per candidate, if any.
    stop_of_candidate: Vec<usize>,
    active: Vec<bool>,
    hover_energy_total: f64,
    tour_len: f64,
}

impl<'a> PartialState<'a> {
    fn new(scenario: &'a Scenario, candidates: &'a CandidateSet) -> Self {
        PartialState {
            scenario,
            candidates,
            residual: scenario.devices.iter().map(|d| d.data.value()).collect(),
            tour_pts: vec![scenario.depot],
            stop_of: vec![usize::MAX],
            stops: Vec::new(),
            stop_of_candidate: vec![usize::MAX; candidates.len()],
            active: vec![true; candidates.len()],
            hover_energy_total: 0.0,
            tour_len: 0.0,
        }
    }

    /// Best virtual location of candidate `c` (over `k = 1..=K`), or
    /// `None` when inactive/empty/infeasible.
    fn evaluate(
        &self,
        c: usize,
        k_parts: usize,
        capacity: f64,
        eta_h: f64,
        per_m: f64,
    ) -> Option<VirtualEval> {
        if !self.active[c] {
            return None;
        }
        let b = self.scenario.radio.bandwidth.value();
        let covered = &self.candidates.candidates[c].covered;
        // Full residual hover time t(s) (Eq. 1 on residual volumes).
        let mut t_full = 0.0f64;
        for &v in covered {
            t_full = t_full.max(self.residual[v as usize] / b);
        }
        if t_full <= 0.0 {
            return None;
        }
        let on_tour = self.stop_of_candidate[c] != usize::MAX;
        let (delta_len, insert_pos) = if on_tour {
            (0.0, usize::MAX)
        } else {
            cheapest_insertion_point(&self.tour_pts, self.candidates.candidates[c].pos)
        };
        let travel_extra = delta_len * per_m;
        let mut best: Option<VirtualEval> = None;
        for k in 1..=k_parts {
            let tau = t_full * (k as f64) / (k_parts as f64);
            // Volume collected in τ: every covered device uploads in
            // parallel at B, truncated by its residual.
            let vol: f64 = covered
                .iter()
                .map(|&v| self.residual[v as usize].min(b * tau))
                .sum();
            if vol <= 1e-9 {
                continue;
            }
            let hover_extra = tau * eta_h;
            let total = self.hover_energy_total + hover_extra + (self.tour_len + delta_len) * per_m;
            if total > capacity {
                continue;
            }
            let ratio = vol / (hover_extra + travel_extra).max(1e-12);
            if best.as_ref().is_none_or(|e| ratio > e.ratio) {
                best = Some(VirtualEval {
                    cand: c,
                    tau,
                    ratio,
                    insert_pos,
                });
            }
        }
        best
    }

    fn commit(&mut self, eval: VirtualEval, eta_h: f64) -> f64 {
        let b = self.scenario.radio.bandwidth.value();
        let covered = &self.candidates.candidates[eval.cand].covered;
        let mut entries = Vec::new();
        let mut collected_now = 0.0;
        for &v in covered {
            let amount = self.residual[v as usize].min(b * eval.tau);
            if amount > 0.0 {
                self.residual[v as usize] -= amount;
                entries.push((DeviceId(v), MegaBytes(amount)));
                collected_now += amount;
            }
        }
        debug_assert!(collected_now > 0.0);
        let existing = self.stop_of_candidate[eval.cand];
        if existing != usize::MAX {
            // Extend the sojourn of the existing stop (Lemma 2).
            let stop = &mut self.stops[existing];
            stop.sojourn += Seconds(eval.tau);
            stop.collected.extend(entries);
        } else {
            let pos = self.candidates.candidates[eval.cand].pos;
            self.stops.push(HoverStop {
                pos,
                sojourn: Seconds(eval.tau),
                collected: entries,
            });
            let idx = self.stops.len() - 1;
            self.stop_of_candidate[eval.cand] = idx;
            self.tour_pts.insert(eval.insert_pos, pos);
            self.stop_of.insert(eval.insert_pos, idx);
            self.tour_len = closed_tour_length(&self.tour_pts);
        }
        self.hover_energy_total += eval.tau * eta_h;
        // Deactivate exhausted candidates.
        for i in 0..self.candidates.len() {
            if self.active[i] {
                let cov = &self.candidates.candidates[i].covered;
                if cov.iter().all(|&v| self.residual[v as usize] <= 1e-9) {
                    self.active[i] = false;
                }
            }
        }
        collected_now
    }

    fn into_plan(self) -> CollectionPlan {
        let mut ordered = Vec::with_capacity(self.stops.len());
        for (i, &s) in self.stop_of.iter().enumerate() {
            if i == 0 {
                continue;
            }
            ordered.push(self.stops[s].clone());
        }
        CollectionPlan { stops: ordered }
    }
}

fn best_virtual(
    state: &PartialState<'_>,
    k_parts: usize,
    parallel_threshold: usize,
) -> Option<VirtualEval> {
    let capacity = state.scenario.uav.capacity.value();
    let eta_h = state.scenario.uav.hover_power.value();
    let per_m = state.scenario.uav.travel_energy_per_meter().value();
    let better = |a: &VirtualEval, b: &VirtualEval| -> bool {
        a.ratio > b.ratio + 1e-15 || (a.ratio >= b.ratio - 1e-15 && a.cand < b.cand)
    };
    let n = state.candidates.len();
    if n < parallel_threshold {
        let mut best: Option<VirtualEval> = None;
        for c in 0..n {
            if let Some(e) = state.evaluate(c, k_parts, capacity, eta_h, per_m) {
                if best.as_ref().is_none_or(|b| better(&e, b)) {
                    best = Some(e);
                }
            }
        }
        return best;
    }
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(16);
    let chunk = n.div_ceil(threads);
    let mut results: Vec<Option<VirtualEval>> = vec![None; threads];
    crossbeam::thread::scope(|scope| {
        for (t, slot) in results.iter_mut().enumerate() {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(n);
            let state_ref = &state;
            scope.spawn(move |_| {
                let mut best: Option<VirtualEval> = None;
                for c in lo..hi {
                    if let Some(e) = state_ref.evaluate(c, k_parts, capacity, eta_h, per_m) {
                        if best.as_ref().is_none_or(|b| better(&e, b)) {
                            best = Some(e);
                        }
                    }
                }
                *slot = best;
            });
        }
    })
    // lint:allow(panic-site): Err only when a worker thread panicked; re-raising is correct
    .expect("candidate evaluation thread panicked");
    results
        .into_iter()
        .flatten()
        .fold(None, |acc, e| match acc {
            None => Some(e),
            Some(b) => Some(if better(&e, &b) { e } else { b }),
        })
}

impl Planner for Alg3Planner {
    fn name(&self) -> &'static str {
        "Algorithm 3 (partial collection)"
    }

    fn plan(&self, scenario: &Scenario) -> CollectionPlan {
        assert!(self.config.k >= 1, "K must be at least 1");
        let mut candidates = CandidateSet::build(scenario, self.config.delta);
        if self.config.prune_dominated {
            candidates.prune_dominated();
        }
        if candidates.is_empty() {
            return CollectionPlan::empty();
        }
        let mut state = PartialState::new(scenario, &candidates);
        // Each commit either exhausts at least one virtual step of one
        // candidate or collects real data; the cap is a safety net for
        // degenerate float behaviour.
        let max_iters = candidates
            .len()
            .saturating_mul(self.config.k)
            .saturating_mul(4)
            + 64;
        for _ in 0..max_iters {
            match best_virtual(&state, self.config.k, self.config.parallel_threshold) {
                Some(eval) => {
                    let got = state.commit(eval, scenario.uav.hover_power.value());
                    if got <= 1e-9 {
                        break;
                    }
                }
                None => break,
            }
        }
        let plan = state.into_plan();
        crate::validate::debug_check_plan(
            "Alg3Planner",
            scenario,
            &plan,
            crate::validate::Profile::P3Partial,
        );
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Alg2Config, Alg2Planner};
    use uavdc_geom::Aabb;
    use uavdc_net::units::{Joules, MegaBytesPerSecond, Meters};
    use uavdc_net::{IotDevice, RadioModel, UavSpec};

    fn scenario(capacity: f64) -> Scenario {
        Scenario {
            region: Aabb::square(200.0),
            devices: vec![
                IotDevice {
                    pos: Point2::new(40.0, 40.0),
                    data: MegaBytes(300.0),
                },
                IotDevice {
                    pos: Point2::new(48.0, 40.0),
                    data: MegaBytes(450.0),
                },
                IotDevice {
                    pos: Point2::new(60.0, 44.0),
                    data: MegaBytes(150.0),
                },
                IotDevice {
                    pos: Point2::new(180.0, 180.0),
                    data: MegaBytes(900.0),
                },
            ],
            depot: Point2::new(0.0, 0.0),
            radio: RadioModel::new(Meters(20.0), MegaBytesPerSecond(150.0)),
            uav: UavSpec {
                capacity: Joules(capacity),
                ..UavSpec::paper_default()
            },
        }
    }

    #[test]
    fn plan_validates_for_various_k() {
        let s = scenario(5000.0);
        for k in [1, 2, 4, 8] {
            let plan = Alg3Planner::with_k(k).plan(&s);
            plan.validate(&s).unwrap_or_else(|e| panic!("K={k}: {e}"));
            assert!(plan.total_energy(&s).value() <= 5000.0 + 1e-6);
        }
    }

    #[test]
    fn generous_budget_collects_everything_for_any_k() {
        let s = scenario(60_000.0);
        for k in [1, 3] {
            let plan = Alg3Planner::with_k(k).plan(&s);
            plan.validate(&s).unwrap();
            assert!(
                (plan.collected_volume().value() - 1800.0).abs() < 1e-6,
                "K={k} collected {}",
                plan.collected_volume()
            );
        }
    }

    #[test]
    fn partial_collection_beats_or_matches_full_on_tight_budget() {
        // The whole point of Algorithm 3 (paper Fig. 4a): with partial
        // sojourns the UAV spends hovering energy more efficiently.
        let s = scenario(3500.0);
        let full = Alg2Planner::new(Alg2Config {
            delta: 10.0,
            ..Alg2Config::default()
        })
        .plan(&s);
        let partial = Alg3Planner::with_k(4).plan(&s);
        partial.validate(&s).unwrap();
        assert!(
            partial.collected_volume().value() >= full.collected_volume().value() - 1e-6,
            "partial {} < full {}",
            partial.collected_volume(),
            full.collected_volume()
        );
    }

    #[test]
    fn k1_matches_alg2_semantics() {
        // With K = 1 every selected stop collects fully (on residuals), so
        // collected volumes should be comparable to Algorithm 2.
        let s = scenario(4000.0);
        let a2 = Alg2Planner::default().plan(&s);
        let a3 = Alg3Planner::with_k(1).plan(&s);
        a3.validate(&s).unwrap();
        // Same greedy family; allow them to differ but not wildly.
        let (v2, v3) = (a2.collected_volume().value(), a3.collected_volume().value());
        assert!(v3 >= 0.7 * v2, "K=1 {} vs alg2 {}", v3, v2);
    }

    #[test]
    fn zero_capacity_collects_nothing() {
        let s = scenario(0.0);
        let plan = Alg3Planner::default().plan(&s);
        assert!(plan.stops.is_empty());
    }

    #[test]
    fn residuals_never_go_negative() {
        let s = scenario(5000.0);
        let plan = Alg3Planner::with_k(4).plan(&s);
        let mut per_device = vec![0.0; s.num_devices()];
        for stop in &plan.stops {
            for &(dev, amt) in &stop.collected {
                per_device[dev.index()] += amt.value();
            }
        }
        for (i, &got) in per_device.iter().enumerate() {
            assert!(
                got <= s.devices[i].data.value() + 1e-6,
                "device {i} overdrawn"
            );
        }
    }

    #[test]
    fn extended_stops_merge_rather_than_duplicate_tour_points() {
        let s = scenario(8000.0);
        let plan = Alg3Planner::with_k(4).plan(&s);
        // No two stops at the same position (extension merges them).
        for i in 0..plan.stops.len() {
            for j in (i + 1)..plan.stops.len() {
                assert!(
                    plan.stops[i].pos.distance(plan.stops[j].pos) > 1e-9,
                    "duplicate stop position"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "K must be at least 1")]
    fn k_zero_rejected() {
        let s = scenario(1000.0);
        let _ = Alg3Planner::with_k(0).plan(&s);
    }
}
