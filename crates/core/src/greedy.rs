//! Shared lazy-greedy evaluation engine for the max-ρ planners.
//!
//! Algorithms 2 and 3 (and, in its pruning mirror image, the benchmark
//! heuristic) are greedy loops that repeatedly pick the candidate with the
//! best reward/cost ratio. The textbook implementation rescans all `M`
//! candidates every iteration — `O(M·(|C(s)| + |tour|))` per commit, which
//! at `δ = 5 m` (≈ 40 000 candidates) dominates planning wall time.
//!
//! This module provides the machinery for an *incremental* greedy loop
//! whose plans are bit-identical to the exhaustive rescan:
//!
//! * [`DeviceIndex`] — inverted device → candidate index. Committing a
//!   stop drains a handful of devices; only the candidates sharing one of
//!   them can see their marginal reward change, so the dirty set per
//!   iteration is `∪_{v drained} index[v]` instead of all `M`.
//! * [`InsertionCache`] — exact cheapest-insertion deltas maintained
//!   under tour mutation. Inserting a point removes one tour edge and adds
//!   two; every cached delta is repaired in O(1) (min against the two new
//!   edges) and only candidates whose cached argmin edge was the removed
//!   one need a full rescan. 2-opt compaction rebuilds wholesale, and only
//!   when it actually changed the tour.
//! * [`LazyHeap`] — a CELF-style max-heap of generation-stamped cached ρ
//!   values. The planner re-pushes an entry whenever a candidate's cache
//!   changes, so every live entry is exact; selection pops the top, asks
//!   the planner for the candidate's *feasible* value (which may decay the
//!   entry, CELF-style, when the battery rules out its best variant),
//!   parks candidates that cannot fit until slack reappears, and resolves
//!   near-ties with the same `1e-15` band + lowest-candidate-index fold
//!   the exhaustive serial scan uses.
//! * [`chunked_argmax`] / [`chunked_for_each`] — the one shared
//!   implementation of the crossbeam chunked-thread scan that
//!   `alg2::best_evaluation` and `alg3::best_virtual` used to duplicate,
//!   now also pointed at dirty *batches* instead of the full range. Thread
//!   count is configurable through `UAVDC_THREADS` for reproducible
//!   benchmark runs.
//! * [`EvalCounters`] — instrumentation: how many full candidate
//!   evaluations the lazy engine actually performed versus the
//!   `M × iterations` an exhaustive loop would have, so the perf baseline
//!   (`crates/bench`, `BENCH_planner.json`) can track the trajectory and
//!   CI can trip on regressions.
//!
//! Identical-output argument (also in DESIGN.md §8): the engine never
//! *approximates* — every cached quantity a selection reads is equal to
//! what a fresh evaluation would produce, because each mutation event
//! (device drain, edge removal, tour compaction) eagerly re-evaluates or
//! repairs exactly the caches it touched. Selection then reproduces the
//! serial fold's comparator, so the winning candidate — and therefore the
//! committed plan — matches the exhaustive scan bit for bit.

use std::collections::BinaryHeap;
use std::sync::OnceLock;

use crate::candidates::CandidateSet;
use uavdc_geom::Point2;

/// Ratio-comparison band shared with the exhaustive scans: `a` beats `b`
/// only when `a.ratio > b.ratio + RATIO_BAND`, and exact ties go to the
/// lower candidate index.
pub const RATIO_BAND: f64 = 1e-15;

/// Which per-iteration evaluation strategy a greedy planner uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum EngineMode {
    /// Incremental evaluation: dirty-set invalidation + lazy max-heap.
    /// Produces the same plans as [`EngineMode::Exhaustive`] (property
    /// tested) at a fraction of the evaluations.
    #[default]
    Lazy,
    /// Full rescan of every candidate each iteration — the reference
    /// implementation the lazy engine is validated against.
    Exhaustive,
}

// ---------------------------------------------------------------------------
// Thread configuration (shared by all chunked scans)
// ---------------------------------------------------------------------------

/// Number of worker threads used by the chunked candidate scans.
///
/// `UAVDC_THREADS` (a positive integer) overrides the default of
/// `available_parallelism().min(16)` so benchmark runs are reproducible
/// across machines. Read once per process.
pub fn num_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var("UAVDC_THREADS") {
            if let Ok(n) = v.parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
            .min(16)
    })
}

/// Chunked parallel argmax over `0..n`, deduplicating the scan that
/// `alg2::best_evaluation` and `alg3::best_virtual` used to each carry.
///
/// `eval(c)` returns the candidate's evaluation (or `None` when it is
/// inactive/infeasible) and `better(a, b)` decides whether `a` should
/// replace `b`. Chunks are folded in ascending-index order and merged in
/// chunk order, reproducing the original code's result exactly. With
/// `parallel == false` the scan is a plain serial fold.
pub(crate) fn chunked_argmax<E, F, B>(n: usize, parallel: bool, eval: F, better: B) -> Option<E>
where
    E: Send,
    F: Fn(usize) -> Option<E> + Sync,
    B: Fn(&E, &E) -> bool + Sync,
{
    let threads = if parallel { num_threads() } else { 1 };
    chunked_argmax_with(n, threads, eval, better)
}

/// [`chunked_argmax`] with an explicit worker-thread count, bypassing the
/// process-wide `UAVDC_THREADS` cache. `threads == 1` (or `n < 2`) is the
/// plain serial fold. The result is bit-identical for every thread count:
/// chunks are folded in ascending-index order and merged in chunk order,
/// so ties always resolve to the lowest-index winner under a strict
/// `better` predicate. Exposed (and property-tested) so determinism can
/// be checked across thread counts within one process.
pub fn chunked_argmax_with<E, F, B>(n: usize, threads: usize, eval: F, better: B) -> Option<E>
where
    E: Send,
    F: Fn(usize) -> Option<E> + Sync,
    B: Fn(&E, &E) -> bool + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads == 1 || n < 2 {
        let mut best: Option<E> = None;
        for c in 0..n {
            if let Some(e) = eval(c) {
                if best.as_ref().is_none_or(|b| better(&e, b)) {
                    best = Some(e);
                }
            }
        }
        return best;
    }
    let chunk = n.div_ceil(threads);
    let mut results: Vec<Option<E>> = Vec::new();
    results.resize_with(threads, || None);
    crossbeam::thread::scope(|scope| {
        for (t, slot) in results.iter_mut().enumerate() {
            let lo = (t * chunk).min(n);
            let hi = ((t + 1) * chunk).min(n);
            let eval = &eval;
            let better = &better;
            scope.spawn(move |_| {
                let mut best: Option<E> = None;
                for c in lo..hi {
                    if let Some(e) = eval(c) {
                        if best.as_ref().is_none_or(|b| better(&e, b)) {
                            best = Some(e);
                        }
                    }
                }
                *slot = best;
            });
        }
    })
    // lint:allow(panic-site): Err only when a worker thread panicked; re-raising is correct
    .expect("candidate evaluation thread panicked");
    results
        .into_iter()
        .flatten()
        .fold(None, |acc, e| match acc {
            None => Some(e),
            Some(b) => Some(if better(&e, &b) { e } else { b }),
        })
}

/// Chunked parallel for-each over an index batch: applies `f` to every
/// element of `batch`, splitting across scoped threads when the batch is
/// at least `parallel_threshold` long. Each invocation must write only to
/// state owned by its index (the caller passes a closure over interior-
/// mutability-free shared slices via `per_item` results), so this variant
/// returns the computed values in batch order instead of mutating.
pub(crate) fn chunked_map<T, R, F>(batch: &[T], parallel_threshold: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = batch.len();
    let threads = if n < parallel_threshold.max(2) {
        1
    } else {
        num_threads()
    };
    chunked_map_with(batch, threads, f)
}

/// [`chunked_map`] with an explicit worker-thread count, bypassing the
/// process-wide `UAVDC_THREADS` cache. Results come back in batch order
/// regardless of the thread count (chunks are contiguous and concatenated
/// in chunk order), which the determinism property test asserts.
pub fn chunked_map_with<T, R, F>(batch: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = batch.len();
    let threads = threads.clamp(1, n.max(1));
    if threads == 1 {
        return batch.iter().map(&f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut results: Vec<Vec<R>> = Vec::new();
    results.resize_with(threads, Vec::new);
    crossbeam::thread::scope(|scope| {
        for (t, slot) in results.iter_mut().enumerate() {
            let lo = (t * chunk).min(n);
            let hi = ((t + 1) * chunk).min(n);
            let f = &f;
            scope.spawn(move |_| {
                *slot = batch[lo..hi].iter().map(f).collect();
            });
        }
    })
    // lint:allow(panic-site): Err only when a worker thread panicked; re-raising is correct
    .expect("candidate evaluation thread panicked");
    results.into_iter().flatten().collect()
}

// ---------------------------------------------------------------------------
// Inverted device → candidate index
// ---------------------------------------------------------------------------

/// Inverted index from device id to the candidates covering it.
///
/// Built once per planning run from the (pruned) [`CandidateSet`];
/// committing a stop that drains devices `S` dirties exactly
/// `∪_{v ∈ S} candidates_of(v)` — the only candidates whose marginal
/// reward terms can have changed.
#[derive(Clone, Debug)]
pub struct DeviceIndex {
    /// CSR layout: device `v`'s candidates sit at
    /// `data[offsets[v]..offsets[v + 1]]` — one flat allocation instead
    /// of a `Vec` per device.
    offsets: Vec<u32>,
    data: Vec<u32>,
}

impl DeviceIndex {
    /// Builds the index. `num_devices` bounds the device-id space.
    pub fn build(candidates: &CandidateSet, num_devices: usize) -> Self {
        let mut offsets = vec![0u32; num_devices + 1];
        for c in &candidates.candidates {
            for &v in &c.covered {
                offsets[v as usize + 1] += 1;
            }
        }
        for v in 0..num_devices {
            offsets[v + 1] += offsets[v];
        }
        let mut cursor = offsets.clone();
        let mut data = vec![0u32; offsets[num_devices] as usize];
        // Candidates are visited in ascending order, so each device's
        // slice comes out ascending — same order the per-device Vec
        // layout produced.
        for (i, c) in candidates.candidates.iter().enumerate() {
            for &v in &c.covered {
                let slot = cursor[v as usize];
                data[slot as usize] = i as u32;
                cursor[v as usize] = slot + 1;
            }
        }
        DeviceIndex { offsets, data }
    }

    /// Candidates covering device `v`, in ascending candidate order.
    #[inline]
    pub fn candidates_of(&self, v: u32) -> &[u32] {
        &self.data[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }

    /// Collects the deduplicated dirty candidate set for a batch of
    /// drained devices, using `stamp`/`epoch` as a reusable visited
    /// marker (no per-call allocation of a fresh bitmap).
    pub fn dirty_candidates(
        &self,
        drained: impl IntoIterator<Item = u32>,
        stamp: &mut [u32],
        epoch: u32,
        out: &mut Vec<u32>,
    ) {
        out.clear();
        for v in drained {
            for &c in self.candidates_of(v) {
                if stamp[c as usize] != epoch {
                    stamp[c as usize] = epoch;
                    out.push(c);
                }
            }
        }
        out.sort_unstable();
    }
}

// ---------------------------------------------------------------------------
// Exact incremental cheapest-insertion cache
// ---------------------------------------------------------------------------

/// Outcome of the O(1) per-candidate repair after a tour insertion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fixup {
    /// Cached delta unchanged (its edge survived and neither new edge is
    /// cheaper).
    Unchanged,
    /// Cached delta improved via one of the two new edges (ρ may grow —
    /// the planner must refresh the candidate's heap entry).
    Improved,
    /// The cached argmin edge was the one the insertion removed; the
    /// candidate needs a full rescan before its next evaluation.
    Invalidated,
}

/// Cached cheapest-insertion evaluations, maintained *exactly* across
/// tour insertions.
///
/// For each candidate we store the cheapest-insertion `(delta, pos)` into
/// the current tour, where `pos` doubles as the identity of the edge that
/// achieved the minimum (insertion position `pos` splits the edge between
/// tour indices `pos-1` and `pos mod n`). Inserting a point at position
/// `q` removes that one edge and adds two; a cached entry stays exact by
/// (a) shifting its edge index, and (b) taking the min against the two new
/// edges — unless its own edge was removed, in which case it must rescan.
/// The cached *value* always equals a fresh full scan's value; the cached
/// *position* may name a different edge of equal delta, which is
/// irrelevant because planners recompute the canonical position for the
/// single winning candidate at commit time.
#[derive(Clone, Debug)]
pub struct InsertionCache {
    delta: Vec<f64>,
    pos: Vec<usize>,
    valid: Vec<bool>,
}

impl InsertionCache {
    /// An all-invalid cache for `m` candidates.
    pub fn new(m: usize) -> Self {
        InsertionCache {
            delta: vec![0.0; m],
            pos: vec![usize::MAX; m],
            valid: vec![false; m],
        }
    }

    /// The cached `(delta, pos)`; `None` when the entry needs a rescan.
    #[inline]
    pub fn get(&self, c: usize) -> Option<(f64, usize)> {
        if self.valid[c] {
            Some((self.delta[c], self.pos[c]))
        } else {
            None
        }
    }

    /// Stores a freshly computed evaluation.
    #[inline]
    pub fn set(&mut self, c: usize, delta: f64, pos: usize) {
        self.delta[c] = delta;
        self.pos[c] = pos;
        self.valid[c] = true;
    }

    /// Marks one entry as needing a rescan.
    #[inline]
    pub fn invalidate(&mut self, c: usize) {
        self.valid[c] = false;
    }

    /// Invalidates everything (used after 2-opt compaction changed the
    /// tour wholesale).
    pub fn invalidate_all(&mut self) {
        self.valid.iter_mut().for_each(|v| *v = false);
    }

    /// Repairs entry `c` after `p` was inserted at position `ins_pos`;
    /// `tour` is the tour *after* the insertion. O(1).
    pub fn apply_insertion(
        &mut self,
        c: usize,
        cand_pos: Point2,
        tour: &[Point2],
        ins_pos: usize,
    ) -> Fixup {
        if !self.valid[c] {
            return Fixup::Invalidated;
        }
        if self.pos[c] == ins_pos {
            self.valid[c] = false;
            return Fixup::Invalidated;
        }
        if self.pos[c] > ins_pos {
            self.pos[c] += 1;
        }
        let n = tour.len();
        let p = tour[ins_pos];
        let a = tour[ins_pos - 1];
        let b = tour[(ins_pos + 1) % n];
        let mut out = Fixup::Unchanged;
        let delta_a = a.distance(cand_pos) + cand_pos.distance(p) - a.distance(p);
        if delta_a < self.delta[c] {
            self.delta[c] = delta_a;
            self.pos[c] = ins_pos;
            out = Fixup::Improved;
        }
        let delta_b = p.distance(cand_pos) + cand_pos.distance(b) - p.distance(b);
        if delta_b < self.delta[c] {
            self.delta[c] = delta_b;
            self.pos[c] = ins_pos + 1;
            out = Fixup::Improved;
        }
        out
    }

    /// Column-based twin of [`InsertionCache::apply_insertion`]: identical
    /// decision sequence (same comparisons on the same values in the same
    /// order), with the five distances supplied by the caller instead of
    /// recomputed per candidate. Algorithm 2's lazy engine batch-computes
    /// the three candidate→tour-point columns once per commit
    /// (`uavdc_graph::incremental::distances_to_point`) and repairs every
    /// active candidate from them; `tests/lazy_equivalence.rs` and the
    /// in-module repair property keep the two variants locked together.
    pub fn apply_insertion_cols(&mut self, c: usize, d: RepairDists, ins_pos: usize) -> Fixup {
        if !self.valid[c] {
            return Fixup::Invalidated;
        }
        if self.pos[c] == ins_pos {
            self.valid[c] = false;
            return Fixup::Invalidated;
        }
        if self.pos[c] > ins_pos {
            self.pos[c] += 1;
        }
        let mut out = Fixup::Unchanged;
        let delta_a = d.d_a + d.d_p - d.e_ap;
        if delta_a < self.delta[c] {
            self.delta[c] = delta_a;
            self.pos[c] = ins_pos;
            out = Fixup::Improved;
        }
        let delta_b = d.d_p + d.d_b - d.e_pb;
        if delta_b < self.delta[c] {
            self.delta[c] = delta_b;
            self.pos[c] = ins_pos + 1;
            out = Fixup::Improved;
        }
        out
    }
}

/// Distance bundle feeding [`InsertionCache::apply_insertion_cols`]: the
/// candidate's distances to the three tour points around an insertion at
/// `ins_pos` (predecessor `a`, inserted point `p`, successor `b`), plus
/// the two new tour edges. Every field must be bit-identical to the
/// `Point2::distance` value [`InsertionCache::apply_insertion`] would
/// recompute.
#[derive(Clone, Copy, Debug)]
pub struct RepairDists {
    /// `a.distance(candidate)`.
    pub d_a: f64,
    /// `p.distance(candidate)`.
    pub d_p: f64,
    /// `b.distance(candidate)`.
    pub d_b: f64,
    /// `a.distance(p)` — the first new tour edge.
    pub e_ap: f64,
    /// `p.distance(b)` — the second new tour edge.
    pub e_pb: f64,
}

// ---------------------------------------------------------------------------
// CELF-style lazy max-heap
// ---------------------------------------------------------------------------

/// Order-preserving bijection from `f64` under [`f64::total_cmp`] to
/// `u64` under integer `<`: the sign-dependent XOR from `total_cmp`'s own
/// definition, shifted from `i64` into `u64` range. Exact for every bit
/// pattern (including NaNs, infinities and signed zeros), so a `u64`
/// comparison of mapped values is bit-for-bit the `TotalF64` ordering.
#[inline]
fn mono_f64(v: f64) -> u64 {
    let b = v.to_bits() as i64;
    let m = b ^ (((b >> 63) as u64) >> 1) as i64;
    (m as u64) ^ (1u64 << 63)
}

/// Inverse of [`mono_f64`] (the XOR mask is sign-preserved, so the map is
/// an involution on the shifted integers). Bit-exact round trip.
#[inline]
fn unmono_f64(u: u64) -> f64 {
    let m = (u ^ (1u64 << 63)) as i64;
    let b = m ^ (((m >> 63) as u64) >> 1) as i64;
    f64::from_bits(b as u64)
}

/// Heap entry packed into one `u128` key: max by ratio (via
/// [`mono_f64`]), then min by candidate index (`!cand`: ties at bit-equal
/// ratio resolve to the lower index, like the serial fold), `gen` last so
/// the ordering is total. Packing keeps the entry at 16 bytes while
/// turning the three-field lexicographic comparison into a single integer
/// compare — the heap's sift loops dominate lazy-selection wall time.
#[inline]
fn pack_entry(ratio: f64, cand: u32, gen: u32) -> u128 {
    ((mono_f64(ratio) as u128) << 64) | (((!cand) as u128) << 32) | gen as u128
}

#[inline]
fn entry_ratio(key: u128) -> f64 {
    unmono_f64((key >> 64) as u64)
}

#[inline]
fn entry_cand(key: u128) -> u32 {
    !((key >> 32) as u32)
}

#[inline]
fn entry_gen(key: u128) -> u32 {
    key as u32
}

/// What [`LazyHeap::select`] learned about a popped candidate.
pub enum Probe {
    /// The candidate's best feasible ratio right now. Must be
    /// `<= `the entry's cached ratio (evaluations only decay under
    /// tightening feasibility; anything that can *raise* a ratio must
    /// instead go through [`LazyHeap::push`]).
    Feasible(f64),
    /// Nothing about this candidate fits the remaining battery. It is
    /// parked until [`LazyHeap::unpark_all`] (slack reappeared) or a
    /// [`LazyHeap::push`] (its own cost shrank) revives it.
    Infeasible,
}

/// Generation-stamped lazy max-heap over cached candidate ratios.
///
/// Every push stamps the candidate's current generation; entries whose
/// stamp is stale (the candidate was re-pushed since) are discarded on
/// pop. The planner guarantees that at selection time the newest entry of
/// every unparked, active candidate carries a ratio `>=` its true current
/// value (exact for Algorithm 2; an upper bound that [`Probe::Feasible`]
/// decays for Algorithm 3's battery-filtered virtual stops).
pub struct LazyHeap {
    heap: BinaryHeap<u128>,
    gen: Vec<u32>,
    parked: Vec<u128>,
    purge_at: usize,
}

impl LazyHeap {
    /// An empty heap over `m` candidates.
    pub fn new(m: usize) -> Self {
        LazyHeap {
            heap: BinaryHeap::with_capacity(m),
            gen: vec![0; m],
            parked: Vec::new(),
            purge_at: usize::MAX,
        }
    }

    /// Enables bulk sweeps of superseded entries at the start of
    /// [`select`](LazyHeap::select) whenever the heap holds more than
    /// `4·m` entries. A sweep only reschedules *when* a superseded entry
    /// leaves the heap, never *whether*: every pushed entry is discarded
    /// exactly once either way — at the heap top or during a sweep — and
    /// both count toward the pop counter, so the counter total is
    /// invariant. That bookkeeping identity needs the planner loop to
    /// end by running selection to heap exhaustion (as Algorithm 2's
    /// does — its only exit is an empty selection, which pops every
    /// remaining entry). Loops with early exits (`alg3`'s iteration cap
    /// and zero-gain break) must leave purging off, or entries the
    /// baseline left uncounted in the resident heap would get counted.
    pub fn enable_purge(&mut self) {
        self.purge_at = (4 * self.gen.len()).max(64);
    }

    /// Sweeps superseded entries out in bulk, counting each into `pops`
    /// (see [`enable_purge`](LazyHeap::enable_purge)). Live entries are
    /// untouched, so selection observes the same candidates in the same
    /// order; the point is that a discard during the sweep is O(1) while
    /// the same discard at the heap top is O(log n) on a heap bloated by
    /// the very entries being discarded.
    fn purge(&mut self, pops: &mut u64) {
        if self.heap.len() < self.purge_at {
            return;
        }
        let old = std::mem::take(&mut self.heap).into_vec();
        let mut live = Vec::with_capacity(self.gen.len());
        for e in old {
            if entry_gen(e) == self.gen[entry_cand(e) as usize] {
                live.push(e);
            } else {
                *pops += 1;
            }
        }
        self.heap = BinaryHeap::from(live);
    }

    /// Publishes candidate `c`'s current cached ratio, superseding any
    /// previous entry for `c`.
    pub fn push(&mut self, c: usize, ratio: f64) {
        self.gen[c] = self.gen[c].wrapping_add(1);
        self.heap.push(pack_entry(ratio, c as u32, self.gen[c]));
    }

    /// Returns parked candidates to contention (call when battery slack
    /// grew, e.g. after a tour compaction shortened the tour). Stale
    /// parked entries are filtered out by the generation check on pop.
    pub fn unpark_all(&mut self) {
        for e in self.parked.drain(..) {
            self.heap.push(e);
        }
    }

    /// Number of candidates currently parked as infeasible.
    pub fn parked_len(&self) -> usize {
        self.parked.len()
    }

    /// Selects the candidate the exhaustive serial fold would pick:
    /// among feasible candidates, the lowest-index one that no candidate
    /// beats by more than [`RATIO_BAND`] under the fold's replacement
    /// rule. `probe(c)` reports the candidate's current feasible value
    /// (see [`Probe`]); `active(c)` filters candidates that have been
    /// deactivated since their entry was pushed.
    ///
    /// Returns `(candidate, ratio)` or `None` when nothing is feasible.
    pub fn select(
        &mut self,
        mut active: impl FnMut(usize) -> bool,
        mut probe: impl FnMut(usize) -> Probe,
        pops: &mut u64,
    ) -> Option<(usize, f64)> {
        self.purge(pops);
        // Cohort of feasible candidates within the tie band of each
        // other; kept sorted implicitly by collecting then folding.
        let mut cohort: Vec<(f64, u32, u32)> = Vec::new();
        let mut cohort_min = f64::INFINITY;
        while let Some(&top) = self.heap.peek() {
            if !cohort.is_empty() && entry_ratio(top) < cohort_min - RATIO_BAND {
                break;
            }
            // lint:allow(panic-site): peek above proves the heap is non-empty
            let entry = self.heap.pop().expect("heap entry vanished after peek");
            *pops += 1;
            let c = entry_cand(entry) as usize;
            if entry_gen(entry) != self.gen[c] || !active(c) {
                continue; // superseded or deactivated entry
            }
            match probe(c) {
                Probe::Infeasible => self.parked.push(entry),
                Probe::Feasible(v) => {
                    if v >= entry_ratio(entry) {
                        // Exact entry: joins the cohort directly.
                        cohort_min = cohort_min.min(v);
                        cohort.push((v, entry_cand(entry), entry_gen(entry)));
                    } else {
                        // CELF decay: the feasible value is below the
                        // cached bound; re-queue at its true value so it
                        // competes in the right order.
                        self.heap
                            .push(pack_entry(v, entry_cand(entry), entry_gen(entry)));
                    }
                }
            }
        }
        // Serial-fold tie-break over the cohort in ascending candidate
        // order: replace only on a strict RATIO_BAND improvement.
        cohort.sort_unstable_by_key(|e| e.1);
        let mut best: Option<(f64, u32, u32)> = None;
        for &(r, c, g) in &cohort {
            match best {
                None => best = Some((r, c, g)),
                Some((br, _, _)) => {
                    if r > br + RATIO_BAND {
                        best = Some((r, c, g));
                    }
                }
            }
        }
        let winner = best?;
        // Losers stay current: return them to the heap unchanged.
        for &(r, c, g) in &cohort {
            if c != winner.1 {
                self.heap.push(pack_entry(r, c, g));
            }
        }
        Some((winner.1 as usize, winner.0))
    }
}

// ---------------------------------------------------------------------------
// Instrumentation
// ---------------------------------------------------------------------------

/// Work counters for one planning run, comparing the lazy engine's
/// actual evaluation count against the exhaustive bound.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EvalCounters {
    /// Candidates at loop start (after pruning) — the `M` of the bound.
    pub candidates: usize,
    /// Greedy iterations performed (selection attempts, including the
    /// final one that found nothing feasible).
    pub iterations: u64,
    /// Full candidate evaluations performed (marginal-reward recomputes
    /// and/or insertion-delta rescans; one event per candidate per batch).
    pub evaluations: u64,
    /// Marginal-reward recomputes triggered by drained devices.
    pub marginal_evals: u64,
    /// Cheapest-insertion full rescans (edge removed under the cached
    /// argmin, or tour compaction changed the tour).
    pub delta_rescans: u64,
    /// O(1) insertion-cache repairs performed.
    pub fixups: u64,
    /// Heap entries retired during selection: top-of-heap pops plus
    /// stale entries removed by the purge sweep. Every pushed entry is
    /// retired exactly once, so the count is purge-invariant.
    pub heap_pops: u64,
    /// Incremental tour patches applied (insertion splices plus local
    /// compactions that changed the tour). Deterministic: equal across
    /// engines because both drive the same state evolution.
    pub tour_patches: u64,
    /// Full Christofides tour rebuilds (PaperChristofides evaluations and
    /// uncached commits; always 0 under FastInsertion).
    pub full_retours: u64,
}

impl EvalCounters {
    /// Evaluations an exhaustive rescan would have performed:
    /// `iterations × candidates`.
    pub fn exhaustive_bound(&self) -> u64 {
        self.iterations.saturating_mul(self.candidates as u64)
    }

    /// Evaluations avoided relative to the exhaustive bound.
    pub fn saved(&self) -> u64 {
        self.exhaustive_bound().saturating_sub(self.evaluations)
    }
}

/// Timing + work breakdown for one planning run, returned by the
/// planners' `plan_with_stats` entry points and consumed by the
/// `planner_baseline` perf harness.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PlanStats {
    /// Engine that produced the plan.
    pub engine: EngineMode,
    /// Work counters (candidate counts are planner-specific: grid
    /// candidates for Algorithms 2/3, initial tour stops for the
    /// benchmark heuristic).
    pub counters: EvalCounters,
    /// Wall time building + pruning the candidate set, nanoseconds.
    pub setup_ns: u64,
    /// Wall time in the greedy loop itself, nanoseconds.
    pub loop_ns: u64,
}

impl PlanStats {
    /// Total planning wall time, nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.setup_ns + self.loop_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tourutil::cheapest_insertion_point;
    use uavdc_net::units::Meters;

    #[test]
    fn device_index_inverts_coverage() {
        use crate::candidates::Candidate;
        let cs = CandidateSet {
            delta: 1.0,
            coverage_radius: Meters(1.0),
            candidates: vec![
                Candidate {
                    pos: Point2::new(0.0, 0.0),
                    covered: vec![0, 2],
                },
                Candidate {
                    pos: Point2::new(1.0, 0.0),
                    covered: vec![1],
                },
                Candidate {
                    pos: Point2::new(2.0, 0.0),
                    covered: vec![0, 1],
                },
            ],
        };
        let idx = DeviceIndex::build(&cs, 3);
        assert_eq!(idx.candidates_of(0), &[0, 2]);
        assert_eq!(idx.candidates_of(1), &[1, 2]);
        assert_eq!(idx.candidates_of(2), &[0]);
        let mut stamp = vec![0u32; 3];
        let mut out = Vec::new();
        idx.dirty_candidates([0, 1], &mut stamp, 1, &mut out);
        assert_eq!(out, vec![0, 1, 2]);
        idx.dirty_candidates([2], &mut stamp, 2, &mut out);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn packed_heap_key_matches_three_field_ordering() {
        // The packed u128 key must reproduce the lexicographic
        // (total_cmp ratio, Reverse(cand), gen) ordering bit for bit —
        // the heap's pop sequence, and with it the frozen `heap_pops`
        // baseline counter, depends on it. Exercise the f64 edge cases
        // total_cmp distinguishes plus a pseudo-random sweep.
        let specials = [
            f64::NEG_INFINITY,
            -1.5e300,
            -1.0,
            -f64::MIN_POSITIVE / 2.0, // negative subnormal
            -0.0,
            0.0,
            f64::MIN_POSITIVE / 2.0,
            1.0,
            1.0 + f64::EPSILON,
            1.5e300,
            f64::INFINITY,
            f64::NAN,
            -f64::NAN,
        ];
        let mut vals: Vec<f64> = specials.to_vec();
        let mut s = 0x2545f4914f6cdd1du64;
        for _ in 0..512 {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            vals.push(f64::from_bits(s));
        }
        for &a in &vals {
            assert_eq!(
                unmono_f64(mono_f64(a)).to_bits(),
                a.to_bits(),
                "mono/unmono round trip broke {a:?}"
            );
            for &b in &vals {
                assert_eq!(
                    mono_f64(a).cmp(&mono_f64(b)),
                    a.total_cmp(&b),
                    "mono order diverged from total_cmp on {a:?} vs {b:?}"
                );
            }
        }
        // Tie-breaks: equal ratio prefers the lower candidate; equal
        // (ratio, cand) prefers the higher generation.
        assert!(pack_entry(1.0, 3, 7) > pack_entry(1.0, 4, 7));
        assert!(pack_entry(1.0, 3, 8) > pack_entry(1.0, 3, 7));
        assert!(pack_entry(2.0, 9, 1) > pack_entry(1.0, 0, 9));
        assert_eq!(entry_cand(pack_entry(1.0, 3, 7)), 3);
        assert_eq!(entry_gen(pack_entry(1.0, 3, 7)), 7);
    }

    #[test]
    fn insertion_cache_repair_matches_full_rescan() {
        // Deterministic pseudo-random points; after every insertion the
        // repaired cache must match a fresh cheapest_insertion_point.
        let cands: Vec<Point2> = (0..40)
            .map(|i| Point2::new(((i * 37) % 101) as f64, ((i * 53) % 97) as f64))
            .collect();
        let inserts: Vec<Point2> = (0..12)
            .map(|i| Point2::new(((i * 61 + 13) % 89) as f64, ((i * 29 + 7) % 83) as f64))
            .collect();
        let mut tour = vec![Point2::new(50.0, 50.0)];
        let mut cache = InsertionCache::new(cands.len());
        for (c, &p) in cands.iter().enumerate() {
            let (d, pos) = cheapest_insertion_point(&tour, p);
            cache.set(c, d, pos);
        }
        let mut cols = InsertionCache::new(cands.len());
        for (c, &p) in cands.iter().enumerate() {
            let (d, pos) = cheapest_insertion_point(&tour, p);
            cols.set(c, d, pos);
        }
        for &p in &inserts {
            let (_, ins_pos) = cheapest_insertion_point(&tour, p);
            tour.insert(ins_pos, p);
            let a = tour[ins_pos - 1];
            let b = tour[(ins_pos + 1) % tour.len()];
            for (c, &cp) in cands.iter().enumerate() {
                let d = RepairDists {
                    d_a: a.distance(cp),
                    d_p: p.distance(cp),
                    d_b: b.distance(cp),
                    e_ap: a.distance(p),
                    e_pb: p.distance(b),
                };
                let row_fix = cache.apply_insertion(c, cp, &tour, ins_pos);
                // The column twin must take the exact same decisions.
                assert_eq!(cols.apply_insertion_cols(c, d, ins_pos), row_fix);
                if row_fix == Fixup::Invalidated {
                    let (d, pos) = cheapest_insertion_point(&tour, cp);
                    cache.set(c, d, pos);
                    cols.set(c, d, pos);
                }
                assert_eq!(cache.get(c), cols.get(c), "column repair diverged at {c}");
                let (want, _) = cheapest_insertion_point(&tour, cp);
                let (got, got_pos) = cache.get(c).unwrap();
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "candidate {c} delta diverged"
                );
                // The cached position must name a real edge achieving
                // the cached delta (not necessarily the canonical one).
                assert!(got_pos >= 1 && got_pos <= tour.len());
            }
        }
    }

    #[test]
    fn lazy_heap_orders_by_ratio_then_index() {
        let mut h = LazyHeap::new(4);
        h.push(2, 5.0);
        h.push(0, 7.0);
        h.push(1, 7.0);
        h.push(3, 1.0);
        let mut pops = 0;
        let got = h.select(
            |_| true,
            |c| Probe::Feasible([7.0, 7.0, 5.0, 1.0][c]),
            &mut pops,
        );
        // Bit-equal ratios: lowest index wins.
        assert_eq!(got, Some((0, 7.0)));
    }

    #[test]
    fn lazy_heap_discards_superseded_entries() {
        let mut h = LazyHeap::new(2);
        h.push(0, 9.0);
        h.push(0, 3.0); // supersedes the 9.0 entry
        h.push(1, 5.0);
        let mut pops = 0;
        let got = h.select(|_| true, |c| Probe::Feasible([3.0, 5.0][c]), &mut pops);
        assert_eq!(got, Some((1, 5.0)));
    }

    #[test]
    fn lazy_heap_parks_infeasible_until_unparked() {
        let mut h = LazyHeap::new(2);
        h.push(0, 9.0);
        h.push(1, 5.0);
        let mut pops = 0;
        let got = h.select(
            |_| true,
            |c| {
                if c == 0 {
                    Probe::Infeasible
                } else {
                    Probe::Feasible(5.0)
                }
            },
            &mut pops,
        );
        assert_eq!(got, Some((1, 5.0)));
        assert_eq!(h.parked_len(), 1);
        // Candidate 0 is out of contention until slack returns.
        let got = h.select(|_| true, |_| Probe::Feasible(9.0), &mut pops);
        assert_eq!(got, None);
        h.unpark_all();
        let got = h.select(|_| true, |_| Probe::Feasible(9.0), &mut pops);
        assert_eq!(got, Some((0, 9.0)));
    }

    #[test]
    fn lazy_heap_decays_upper_bounds() {
        // Candidate 0's bound is 9 but its feasible value is 2; candidate
        // 1's exact 5 must win.
        let mut h = LazyHeap::new(2);
        h.push(0, 9.0);
        h.push(1, 5.0);
        let mut pops = 0;
        let got = h.select(
            |_| true,
            |c| Probe::Feasible(if c == 0 { 2.0 } else { 5.0 }),
            &mut pops,
        );
        assert_eq!(got, Some((1, 5.0)));
        // The decayed entry remains selectable at its true value.
        let got = h.select(|_| true, |_| Probe::Feasible(2.0), &mut pops);
        assert_eq!(got, Some((0, 2.0)));
    }

    #[test]
    fn chunked_argmax_parallel_matches_serial() {
        let score = |c: usize| -> Option<(f64, usize)> {
            if c % 7 == 3 {
                None
            } else {
                Some((((c * 2654435761) % 1000) as f64, c))
            }
        };
        let better = |a: &(f64, usize), b: &(f64, usize)| {
            a.0 > b.0 + RATIO_BAND || (a.0 >= b.0 - RATIO_BAND && a.1 < b.1)
        };
        let serial = chunked_argmax(5000, false, score, better);
        let parallel = chunked_argmax(5000, true, score, better);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn chunked_map_preserves_order() {
        let batch: Vec<u32> = (0..1000).collect();
        let serial = chunked_map(&batch, usize::MAX, |&x| x * 3);
        let parallel = chunked_map(&batch, 1, |&x| x * 3);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn counters_bound_arithmetic() {
        let c = EvalCounters {
            candidates: 100,
            iterations: 10,
            evaluations: 150,
            ..EvalCounters::default()
        };
        assert_eq!(c.exhaustive_bound(), 1000);
        assert_eq!(c.saved(), 850);
    }

    #[test]
    fn thread_count_is_at_least_one() {
        assert!(num_threads() >= 1);
    }
}
