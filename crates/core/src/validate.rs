//! Paper-invariant runtime validation.
//!
//! [`CollectionPlan::validate`] checks the *physics* of a plan (coverage,
//! bandwidth, battery). This module checks the *paper's* invariants on
//! top: that a planner's output actually has the structure Problems P1–P3
//! of Li et al. (IPPS 2020) promise. The checking functions are always
//! available (tests exercise them directly); the `debug_check_*` hooks at
//! the planner exits fire only when the crate is built with
//! `--features validate` **and** `debug_assertions` are on, so release
//! binaries pay nothing.
//!
//! Invariants checked, per [`Profile`]:
//!
//! * **closed tour** — the tour starts and ends at the depot; every leg
//!   is re-derived independently and must reproduce
//!   [`CollectionPlan::travel_length`].
//! * **energy budget** — hovering + travel energy stays within the
//!   battery `E`, and the slack `E − demand` is reported explicitly.
//! * **P1/P2 coverage completeness** — full-collection planners drain a
//!   device completely or not at all; P1 additionally never lists a
//!   device at two stops (its candidate coverage is disjoint).
//! * **P2/P3 data conservation** — summed over all (virtual) hovering
//!   locations, no device yields more than it stores, and each stop's
//!   per-device haul respects `B · τ`.
//! * **auxiliary-graph metricity** — the Eq. 9 weights form a metric
//!   (paper Lemma 1), so orienteering budgets translate to tour energy.

use crate::auxgraph::AuxGraph;
use crate::multi::FleetPlan;
use crate::plan::CollectionPlan;
use uavdc_net::units::Joules;
use uavdc_net::Scenario;

/// Relative tolerance for energy / volume comparisons.
const REL_TOL: f64 = 1e-6;

/// Which of the paper's problems a plan claims to solve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Profile {
    /// Problem P1 (Algorithm 1): full collection, each device drained at
    /// exactly one hovering location.
    P1FullDisjoint,
    /// Problem P2 (Algorithm 2): full collection with coverage overlap —
    /// a device may be *coverable* from several stops but is still
    /// drained completely at the stops that list it.
    P2FullOverlap,
    /// Problem P3 (Algorithm 3): partial collection across virtual
    /// hovering locations; only conservation is required.
    P3Partial,
}

/// A violated paper invariant.
#[derive(Clone, Debug, PartialEq)]
pub struct Violation {
    /// Short machine-stable name of the invariant (e.g. `energy-budget`).
    pub invariant: &'static str,
    /// Human-readable description of how it was violated.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.invariant, self.detail)
    }
}

impl std::error::Error for Violation {}

fn violation(invariant: &'static str, detail: String) -> Violation {
    Violation { invariant, detail }
}

/// Facts established by a successful [`check_plan`].
#[derive(Clone, Copy, Debug)]
pub struct PlanCheck {
    /// Battery slack `E − (travel + hover)`; non-negative (within
    /// tolerance) for any accepted plan.
    pub energy_slack: Joules,
    /// Devices drained completely.
    pub devices_drained: usize,
    /// Devices the plan does not touch at all.
    pub devices_untouched: usize,
}

/// Checks every paper invariant of a single-UAV plan.
///
/// Returns the established facts, or the first [`Violation`] found.
pub fn check_plan(
    scenario: &Scenario,
    plan: &CollectionPlan,
    profile: Profile,
) -> Result<PlanCheck, Violation> {
    // --- Closed tour at the depot -----------------------------------
    // Re-derive the tour leg by leg, starting and ending at the depot,
    // and insist the plan's own accounting agrees.
    let mut legs = 0.0;
    let mut prev = scenario.depot;
    for (i, stop) in plan.stops.iter().enumerate() {
        if !stop.pos.is_finite() {
            return Err(violation(
                "closed-tour",
                format!("stop {i} position is not finite"),
            ));
        }
        legs += prev.distance(stop.pos);
        prev = stop.pos;
    }
    if !plan.stops.is_empty() {
        legs += prev.distance(scenario.depot);
    }
    // lint:allow(unit-unwrap): independent validator cross-checks the unit-typed accounting in raw f64
    let claimed = plan.travel_length(scenario).value();
    if (legs - claimed).abs() > REL_TOL * (1.0 + claimed.abs()) {
        return Err(violation(
            "closed-tour",
            format!("independent leg sum {legs} m disagrees with travel_length {claimed} m"),
        ));
    }

    // --- Energy budget with explicit slack --------------------------
    let demand = plan.total_energy(scenario);
    let capacity = scenario.uav.capacity;
    let slack = capacity - demand;
    // lint:allow(unit-unwrap): independent validator cross-checks the unit-typed accounting in raw f64
    if slack.value() < -REL_TOL * (1.0 + capacity.value()) {
        return Err(violation(
            "energy-budget",
            format!("demand {demand} exceeds battery {capacity} (slack {slack})"),
        ));
    }

    // --- Per-device conservation and per-stop bandwidth -------------
    let r0 = match scenario.try_coverage_radius() {
        // lint:allow(unit-unwrap): independent validator cross-checks the unit-typed accounting in raw f64
        Some(r) => r.value(),
        None => {
            return Err(violation(
                "coverage",
                "scenario altitude exceeds transmission range".to_string(),
            ))
        }
    };
    let n = scenario.num_devices();
    let mut per_device = vec![0.0f64; n];
    let mut stops_listing = vec![0usize; n];
    for (i, stop) in plan.stops.iter().enumerate() {
        // lint:allow(unit-unwrap): independent validator cross-checks the unit-typed accounting in raw f64
        if !stop.sojourn.is_finite() || stop.sojourn.value() < 0.0 {
            return Err(violation(
                "conservation",
                format!("stop {i} sojourn invalid"),
            ));
        }
        // lint:allow(unit-unwrap): independent validator cross-checks the unit-typed accounting in raw f64
        let allowance = (scenario.radio.bandwidth * stop.sojourn).value();
        let mut within_stop = vec![0.0f64; n];
        let mut listed = vec![false; n];
        for &(dev, amount) in &stop.collected {
            let d = dev.index();
            if d >= n {
                return Err(violation(
                    "conservation",
                    format!("stop {i} references unknown device {dev:?}"),
                ));
            }
            // lint:allow(unit-unwrap): independent validator cross-checks the unit-typed accounting in raw f64
            if !amount.is_finite() || amount.value() < 0.0 {
                return Err(violation(
                    "conservation",
                    format!("stop {i} collects invalid amount from {dev:?}"),
                ));
            }
            let dist = scenario.devices[d].pos.distance(stop.pos);
            if dist > r0 + REL_TOL {
                return Err(violation(
                    "coverage",
                    format!(
                        "stop {i} collects from device {dev:?} at {dist:.3} m > R0 = {r0:.3} m"
                    ),
                ));
            }
            // lint:allow(unit-unwrap): independent validator cross-checks the unit-typed accounting in raw f64
            within_stop[d] += amount.value();
            if within_stop[d] > allowance + REL_TOL * (1.0 + allowance) {
                return Err(violation(
                    "conservation",
                    format!(
                        "stop {i} pulls {} MB from device {dev:?}, over B·τ = {allowance} MB",
                        within_stop[d]
                    ),
                ));
            }
            // lint:allow(unit-unwrap): independent validator cross-checks the unit-typed accounting in raw f64
            per_device[d] += amount.value();
            if !listed[d] {
                listed[d] = true;
                stops_listing[d] += 1;
            }
        }
    }

    let mut drained = 0;
    let mut untouched = 0;
    for (d, &got) in per_device.iter().enumerate() {
        // lint:allow(unit-unwrap): independent validator cross-checks the unit-typed accounting in raw f64
        let stored = scenario.devices[d].data.value();
        if got > stored + REL_TOL * (1.0 + stored) {
            return Err(violation(
                "conservation",
                format!("device {d} yields {got} MB across stops but stores {stored} MB"),
            ));
        }
        let is_drained = got >= stored - REL_TOL * (1.0 + stored);
        let is_untouched = got <= REL_TOL * (1.0 + stored);
        if is_drained && !is_untouched {
            drained += 1;
        } else if is_untouched {
            untouched += 1;
        } else {
            // Partially drained: legal only under P3.
            match profile {
                Profile::P3Partial => {}
                Profile::P1FullDisjoint | Profile::P2FullOverlap => {
                    return Err(violation(
                        "full-collection",
                        format!("device {d} only partially drained ({got} of {stored} MB) under a full-collection profile"),
                    ));
                }
            }
        }
        if profile == Profile::P1FullDisjoint && stops_listing[d] > 1 {
            return Err(violation(
                "disjoint-coverage",
                format!(
                    "device {d} is collected at {} stops; P1 drains each device at one location",
                    stops_listing[d]
                ),
            ));
        }
    }

    Ok(PlanCheck {
        energy_slack: slack.clamp_non_negative(),
        devices_drained: drained,
        devices_untouched: untouched,
    })
}

/// Checks a fleet plan: every member plan upholds `profile`, each UAV's
/// battery is respected individually, and no device is drained by two
/// UAVs (conservation across the fleet).
pub fn check_fleet(
    scenario: &Scenario,
    fleet: &FleetPlan,
    profile: Profile,
) -> Result<(), Violation> {
    let n = scenario.num_devices();
    let mut per_device = vec![0.0f64; n];
    let mut owner = vec![usize::MAX; n];
    for (u, plan) in fleet.plans.iter().enumerate() {
        check_plan(scenario, plan, profile)
            .map_err(|v| violation(v.invariant, format!("UAV {u}: {}", v.detail)))?;
        for stop in &plan.stops {
            for &(dev, amount) in &stop.collected {
                let d = dev.index();
                if owner[d] != usize::MAX && owner[d] != u {
                    return Err(violation(
                        "fleet-conservation",
                        format!("device {d} collected by both UAV {} and UAV {u}", owner[d]),
                    ));
                }
                owner[d] = u;
                // lint:allow(unit-unwrap): independent validator cross-checks the unit-typed accounting in raw f64
                per_device[d] += amount.value();
            }
        }
    }
    for (d, &got) in per_device.iter().enumerate() {
        // lint:allow(unit-unwrap): independent validator cross-checks the unit-typed accounting in raw f64
        let stored = scenario.devices[d].data.value();
        if got > stored + REL_TOL * (1.0 + stored) {
            return Err(violation(
                "fleet-conservation",
                format!("device {d} yields {got} MB across the fleet but stores {stored} MB"),
            ));
        }
    }
    Ok(())
}

/// How many vertices [`check_aux_graph`] still checks with the full
/// O(n³) triple scan; larger graphs fall back to a deterministic strided
/// sample of triples.
const METRIC_FULL_CHECK: usize = 60;

/// Checks that the auxiliary graph's Eq. 9 weights form a metric (paper
/// Lemma 1): symmetric, zero diagonal, triangle inequality, and every
/// edge at least the half-sum of its endpoints' hovering energies.
pub fn check_aux_graph(aux: &AuxGraph) -> Result<(), Violation> {
    let inst = &aux.instance;
    let n = inst.len();
    let scale = 1.0
        + inst.dist(0, 0).abs().max(
            aux.hover_energy
                .iter()
                .copied()
                .fold(Joules::ZERO, Joules::max)
                // lint:allow(unit-unwrap): independent validator cross-checks the unit-typed accounting in raw f64
                .value(),
        );
    let tol = REL_TOL * scale.max(1.0);
    for i in 0..n {
        if inst.dist(i, i).abs() > tol {
            return Err(violation(
                "aux-metricity",
                format!("non-zero diagonal at vertex {i}"),
            ));
        }
        for j in (i + 1)..n {
            let w = inst.dist(i, j);
            if (w - inst.dist(j, i)).abs() > tol {
                return Err(violation(
                    "aux-metricity",
                    format!("asymmetric weight between {i} and {j}"),
                ));
            }
            // lint:allow(unit-unwrap): independent validator cross-checks the unit-typed accounting in raw f64
            let half_sum = ((aux.hover_energy[i] + aux.hover_energy[j]) / 2.0).value();
            if w < half_sum - tol {
                return Err(violation(
                    "aux-metricity",
                    format!(
                        "edge ({i},{j}) weighs {w} J, below its hovering half-sum {half_sum} J"
                    ),
                ));
            }
        }
    }
    // Triangle inequality: full scan when affordable, strided otherwise.
    let stride = if n <= METRIC_FULL_CHECK {
        1
    } else {
        n / METRIC_FULL_CHECK + 1
    };
    let mut i = 0;
    while i < n {
        let mut j = 0;
        while j < n {
            let wij = inst.dist(i, j);
            for k in 0..n {
                if inst.dist(i, k) > wij + inst.dist(j, k) + tol {
                    return Err(violation(
                        "aux-metricity",
                        format!("triangle inequality fails on ({i},{j},{k})"),
                    ));
                }
            }
            j += stride;
        }
        i += stride;
    }
    Ok(())
}

/// Whether the planner-exit hooks are active in this build.
#[inline]
pub fn hooks_active() -> bool {
    cfg!(all(feature = "validate", debug_assertions))
}

/// Planner-exit hook: panics on a violated invariant when built with
/// `--features validate` in a debug profile, otherwise does nothing.
#[inline]
pub fn debug_check_plan(ctx: &str, scenario: &Scenario, plan: &CollectionPlan, profile: Profile) {
    if hooks_active() {
        if let Err(v) = check_plan(scenario, plan, profile) {
            // lint:allow(panic-site): aborting on a violated paper invariant is this hook's entire purpose
            panic!("{ctx}: paper invariant violated: {v}");
        }
    }
}

/// Planner-exit hook for fleet planners; see [`debug_check_plan`].
#[inline]
pub fn debug_check_fleet(ctx: &str, scenario: &Scenario, fleet: &FleetPlan, profile: Profile) {
    if hooks_active() {
        if let Err(v) = check_fleet(scenario, fleet, profile) {
            // lint:allow(panic-site): aborting on a violated paper invariant is this hook's entire purpose
            panic!("{ctx}: paper invariant violated: {v}");
        }
    }
}

/// Construction-exit hook for the auxiliary graph; see
/// [`debug_check_plan`].
#[inline]
pub fn debug_check_aux_graph(ctx: &str, aux: &AuxGraph) {
    if hooks_active() {
        if let Err(v) = check_aux_graph(aux) {
            // lint:allow(panic-site): aborting on a violated paper invariant is this hook's entire purpose
            panic!("{ctx}: paper invariant violated: {v}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::HoverStop;
    use uavdc_geom::{Aabb, Point2};
    use uavdc_net::units::{MegaBytes, MegaBytesPerSecond, Meters, Seconds, Watts};
    use uavdc_net::{DeviceId, IotDevice, RadioModel, UavSpec};

    fn scenario() -> Scenario {
        Scenario {
            region: Aabb::square(200.0),
            devices: vec![
                IotDevice {
                    pos: Point2::new(50.0, 50.0),
                    data: MegaBytes(300.0),
                },
                IotDevice {
                    pos: Point2::new(150.0, 150.0),
                    data: MegaBytes(600.0),
                },
            ],
            depot: Point2::new(0.0, 0.0),
            radio: RadioModel::new(Meters(50.0), MegaBytesPerSecond(150.0)),
            uav: UavSpec {
                capacity: Joules(50_000.0),
                speed: uavdc_net::units::MetersPerSecond(10.0),
                hover_power: Watts(150.0),
                travel_power: Watts(100.0),
                altitude: Meters(0.0),
                travel_energy_override: None,
            },
        }
    }

    fn full_plan() -> CollectionPlan {
        CollectionPlan {
            stops: vec![
                HoverStop {
                    pos: Point2::new(50.0, 50.0),
                    sojourn: Seconds(2.0),
                    collected: vec![(DeviceId(0), MegaBytes(300.0))],
                },
                HoverStop {
                    pos: Point2::new(150.0, 150.0),
                    sojourn: Seconds(4.0),
                    collected: vec![(DeviceId(1), MegaBytes(600.0))],
                },
            ],
        }
    }

    #[test]
    fn full_plan_passes_all_profiles() {
        let s = scenario();
        let p = full_plan();
        for profile in [
            Profile::P1FullDisjoint,
            Profile::P2FullOverlap,
            Profile::P3Partial,
        ] {
            let check = check_plan(&s, &p, profile).unwrap();
            assert_eq!(check.devices_drained, 2);
            assert_eq!(check.devices_untouched, 0);
            assert!(check.energy_slack.value() > 0.0);
        }
    }

    #[test]
    fn empty_plan_passes() {
        let s = scenario();
        let check = check_plan(&s, &CollectionPlan::empty(), Profile::P1FullDisjoint).unwrap();
        assert_eq!(check.devices_untouched, 2);
        assert_eq!(check.energy_slack, s.uav.capacity);
    }

    #[test]
    fn energy_overrun_rejected_with_named_invariant() {
        let mut s = scenario();
        s.uav.capacity = Joules(100.0);
        let v = check_plan(&s, &full_plan(), Profile::P2FullOverlap).unwrap_err();
        assert_eq!(v.invariant, "energy-budget");
    }

    #[test]
    fn partial_drain_rejected_under_full_profiles_only() {
        let s = scenario();
        let mut p = full_plan();
        p.stops[0].collected[0].1 = MegaBytes(100.0); // of 300 stored
        assert_eq!(
            check_plan(&s, &p, Profile::P1FullDisjoint)
                .unwrap_err()
                .invariant,
            "full-collection"
        );
        assert_eq!(
            check_plan(&s, &p, Profile::P2FullOverlap)
                .unwrap_err()
                .invariant,
            "full-collection"
        );
        assert!(check_plan(&s, &p, Profile::P3Partial).is_ok());
    }

    #[test]
    fn split_collection_rejected_under_p1() {
        let s = scenario();
        let p = CollectionPlan {
            stops: vec![
                HoverStop {
                    pos: Point2::new(50.0, 50.0),
                    sojourn: Seconds(1.0),
                    collected: vec![(DeviceId(0), MegaBytes(150.0))],
                },
                HoverStop {
                    pos: Point2::new(52.0, 50.0),
                    sojourn: Seconds(1.0),
                    collected: vec![(DeviceId(0), MegaBytes(150.0))],
                },
            ],
        };
        assert_eq!(
            check_plan(&s, &p, Profile::P1FullDisjoint)
                .unwrap_err()
                .invariant,
            "disjoint-coverage"
        );
        // Splitting across stops is exactly what P2/P3 virtual locations
        // allow, provided the device-level total is conserved.
        assert!(check_plan(&s, &p, Profile::P2FullOverlap).is_ok());
        assert!(check_plan(&s, &p, Profile::P3Partial).is_ok());
    }

    #[test]
    fn over_collection_rejected() {
        let s = scenario();
        let mut p = full_plan();
        p.stops.push(p.stops[0].clone());
        let v = check_plan(&s, &p, Profile::P3Partial).unwrap_err();
        assert_eq!(v.invariant, "conservation");
    }

    #[test]
    fn out_of_coverage_rejected() {
        let s = scenario();
        let mut p = full_plan();
        p.stops[0].collected = vec![(DeviceId(1), MegaBytes(600.0))]; // ~141 m away
        let v = check_plan(&s, &p, Profile::P3Partial).unwrap_err();
        assert_eq!(v.invariant, "coverage");
    }

    #[test]
    fn fleet_double_collection_rejected() {
        let s = scenario();
        let one = CollectionPlan {
            stops: vec![full_plan().stops[0].clone()],
        };
        let fleet = FleetPlan {
            plans: vec![one.clone(), one],
        };
        let v = check_fleet(&s, &fleet, Profile::P2FullOverlap).unwrap_err();
        assert_eq!(v.invariant, "fleet-conservation");
    }

    #[test]
    fn fleet_of_disjoint_plans_passes() {
        let s = scenario();
        let a = CollectionPlan {
            stops: vec![full_plan().stops[0].clone()],
        };
        let b = CollectionPlan {
            stops: vec![full_plan().stops[1].clone()],
        };
        assert!(check_fleet(&s, &FleetPlan { plans: vec![a, b] }, Profile::P2FullOverlap).is_ok());
    }

    #[test]
    fn aux_graph_of_real_candidates_is_metric() {
        let s = scenario();
        let cs = crate::candidates::CandidateSet::build(&s, 10.0);
        let aux = AuxGraph::build(&s, &cs);
        assert!(check_aux_graph(&aux).is_ok());
    }

    #[test]
    fn hooks_report_build_configuration() {
        let expected = cfg!(all(feature = "validate", debug_assertions));
        assert_eq!(hooks_active(), expected);
    }
}
