//! Differential harness for Algorithm 2's incremental tour maintenance
//! (DESIGN.md §16): across random scenarios, capacities and grid
//! resolutions, the planner must emit **bit-identical**
//! [`CollectionPlan`]s no matter which engine drives the greedy loop or
//! how the tour cache is warmed:
//!
//! * [`TourMode::FastInsertion`]: lazy ≡ exhaustive, with the
//!   incremental-tour counters (`tour_patches`, `full_retours`) agreeing
//!   exactly across engines — both engines drive the same tour-state
//!   evolution, they only differ in how many candidates they score.
//! * [`TourMode::PaperChristofides`]: lazy ≡ exhaustive, and the
//!   speculative matching memo ([`Alg2Config::speculative_cache`]) is
//!   invisible — cache on ≡ cache off, bit for bit.
//!
//! Run with `--features validate` to widen every property to >= 1024
//! seeded cases (and to enable the paper-invariant exit hooks); the
//! default is a quick pass.

use proptest::prelude::*;
use uavdc_core::{Alg2Config, Alg2Planner, CollectionPlan, EngineMode, PlanStats, TourMode};
use uavdc_net::generator::{uniform, ScenarioParams};
use uavdc_net::units::Joules;
use uavdc_net::Scenario;

fn cases(quick: u32) -> u32 {
    if cfg!(feature = "validate") {
        1100
    } else {
        quick
    }
}

fn scenario(seed: u64, scale: f64, capacity_kj: f64) -> Scenario {
    let params = ScenarioParams::default()
        .scaled(scale)
        .with_capacity(Joules(capacity_kj * 1000.0));
    uniform(&params, seed)
}

fn run(s: &Scenario, config: Alg2Config) -> (CollectionPlan, PlanStats) {
    Alg2Planner::new(config).plan_with_stats(s)
}

/// Plans with both engines and asserts full-plan and tour-counter
/// equality; returns the (shared) plan and the lazy stats.
fn assert_engines_equivalent(
    s: &Scenario,
    base: Alg2Config,
    tag: &str,
) -> (CollectionPlan, PlanStats) {
    let (pl, sl) = run(
        s,
        Alg2Config {
            engine: EngineMode::Lazy,
            ..base
        },
    );
    let (pf, sf) = run(
        s,
        Alg2Config {
            engine: EngineMode::Exhaustive,
            ..base
        },
    );
    prop_assert_eq!(&pl, &pf, "{}: lazy and exhaustive plans diverge", tag);
    prop_assert_eq!(
        sl.counters.iterations,
        sf.counters.iterations,
        "{}: iteration counts diverge",
        tag
    );
    prop_assert_eq!(
        sl.counters.tour_patches,
        sf.counters.tour_patches,
        "{}: tour_patches diverge across engines",
        tag
    );
    prop_assert_eq!(
        sl.counters.full_retours,
        sf.counters.full_retours,
        "{}: full_retours diverge across engines",
        tag
    );
    prop_assert!(
        sl.counters.evaluations <= sf.counters.exhaustive_bound(),
        "{}: lazy did {} evaluations, exhaustive bound is {}",
        tag,
        sl.counters.evaluations,
        sf.counters.exhaustive_bound()
    );
    (pl, sl)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(24)))]

    /// **Tentpole**: fast-insertion mode — the production configuration —
    /// across engines. Every accepted candidate is an insertion-splice
    /// patch, so `tour_patches` must cover at least the emitted stops,
    /// and fast mode never runs a full Christofides rebuild.
    #[test]
    fn fast_insertion_engines_agree(
        seed in 0u64..100_000,
        scale in 0.05f64..0.2,
        delta in 5.0f64..25.0,
        capacity_kj in 80.0f64..400.0,
    ) {
        let s = scenario(seed, scale, capacity_kj);
        let (plan, stats) = assert_engines_equivalent(&s, Alg2Config {
            tour_mode: TourMode::FastInsertion,
            delta,
            ..Alg2Config::default()
        }, "alg2/fast");
        prop_assert!(
            stats.counters.tour_patches >= plan.stops.len() as u64,
            "{} stops cannot come from {} patches",
            plan.stops.len(),
            stats.counters.tour_patches
        );
        prop_assert_eq!(stats.counters.full_retours, 0u64,
            "fast-insertion mode must never run a full rebuild");
    }

    /// Disabling dominated-candidate pruning changes the candidate set
    /// the engines race over but must not change the engine equivalence.
    #[test]
    fn fast_insertion_agrees_without_pruning(
        seed in 0u64..100_000,
        scale in 0.05f64..0.12,
    ) {
        let s = scenario(seed, scale, 200.0);
        assert_engines_equivalent(&s, Alg2Config {
            tour_mode: TourMode::FastInsertion,
            prune_dominated: false,
            ..Alg2Config::default()
        }, "alg2/fast/noprune");
    }
}

proptest! {
    // Paper mode re-runs Christofides per scored candidate, so the quick
    // pass uses fewer, smaller cases; `validate` still widens to >= 1024.
    #![proptest_config(ProptestConfig::with_cases(cases(12)))]

    /// Paper mode across engines, and speculative-cache invisibility:
    /// the memoised odd-vertex matching must only ever skip work, never
    /// change a plan.
    #[test]
    fn paper_mode_engines_and_cache_agree(
        seed in 0u64..100_000,
        scale in 0.03f64..0.08,
        capacity_kj in 60.0f64..250.0,
    ) {
        let s = scenario(seed, scale, capacity_kj);
        let base = Alg2Config {
            tour_mode: TourMode::PaperChristofides,
            ..Alg2Config::default()
        };
        let (cached_plan, cached_stats) = assert_engines_equivalent(&s, Alg2Config {
            speculative_cache: true,
            ..base
        }, "alg2/paper/cached");
        let (cold_plan, cold_stats) = assert_engines_equivalent(&s, Alg2Config {
            speculative_cache: false,
            ..base
        }, "alg2/paper/cold");
        prop_assert_eq!(&cached_plan, &cold_plan,
            "speculative cache changed the plan");
        prop_assert_eq!(
            cached_stats.counters.iterations,
            cold_stats.counters.iterations,
            "speculative cache changed the iteration count"
        );
        if !cached_plan.stops.is_empty() {
            prop_assert!(
                cached_stats.counters.full_retours > 0,
                "paper mode scored {} stops without a single rebuild",
                cached_plan.stops.len()
            );
        }
    }
}
