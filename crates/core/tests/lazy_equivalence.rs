//! Property tests of the lazy-greedy engine (`uavdc_core::greedy`):
//! across random scenarios, every planner running with
//! [`EngineMode::Lazy`] must emit a plan **bit-identical** to the same
//! planner running with [`EngineMode::Exhaustive`] — same stops, same
//! order, same sojourns, same collected volumes — while performing no
//! more candidate evaluations than the exhaustive bound.
//!
//! Run with `--features validate` to additionally exercise the
//! paper-invariant hooks at every planner exit.

use proptest::prelude::*;
use uavdc_core::{
    Alg2Config, Alg2Planner, Alg3Config, Alg3Planner, BenchmarkPlanner, EngineMode, TourMode,
};
use uavdc_net::generator::{uniform, ScenarioParams};
use uavdc_net::units::Joules;
use uavdc_net::Scenario;

fn small_scenario(seed: u64, scale: f64) -> Scenario {
    uniform(&ScenarioParams::default().scaled(scale), seed)
}

/// Plans with both engines and asserts bit-identical output plus the
/// evaluation-count bound `lazy.evaluations <= iterations * candidates`.
fn assert_alg2_equivalent(s: &Scenario, base: Alg2Config, tag: &str) {
    let lazy = Alg2Planner::new(Alg2Config {
        engine: EngineMode::Lazy,
        ..base
    });
    let full = Alg2Planner::new(Alg2Config {
        engine: EngineMode::Exhaustive,
        ..base
    });
    let (pl, sl) = lazy.plan_with_stats(s);
    let (pf, sf) = full.plan_with_stats(s);
    assert_eq!(pl, pf, "{tag}: lazy and exhaustive plans diverge");
    assert!(
        sl.counters.evaluations <= sf.counters.exhaustive_bound(),
        "{tag}: lazy did {} evaluations, exhaustive bound is {}",
        sl.counters.evaluations,
        sf.counters.exhaustive_bound()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Algorithm 2, fast-insertion tour maintenance: the production
    /// configuration of the lazy engine (dirty invalidation + CELF heap
    /// + incremental insertion cache + periodic 2-opt rescans).
    #[test]
    fn alg2_fast_insertion_lazy_matches_exhaustive(
        seed in 0u64..10_000,
        scale in 0.05f64..0.2,
    ) {
        let s = small_scenario(seed, scale);
        assert_alg2_equivalent(&s, Alg2Config {
            tour_mode: TourMode::FastInsertion,
            ..Alg2Config::default()
        }, "alg2/fast");
    }

    /// Algorithm 2, paper-faithful Christofides re-touring: every
    /// candidate's Δtravel changes with each re-tour, so the lazy
    /// request must transparently fall back to exhaustive rescans and
    /// still agree (cubic mode — keep instances small).
    #[test]
    fn alg2_christofides_lazy_matches_exhaustive(
        seed in 0u64..10_000,
        scale in 0.02f64..0.06,
    ) {
        let s = small_scenario(seed, scale);
        assert_alg2_equivalent(&s, Alg2Config {
            tour_mode: TourMode::PaperChristofides,
            delta: 20.0,
            ..Alg2Config::default()
        }, "alg2/christofides");
    }

    /// Algorithm 3 across sojourn partition counts: K = 1 degenerates to
    /// full collection, K > 1 exercises virtual hovering locations,
    /// sojourn-extension commits, and the unconditional max-k heap key.
    #[test]
    fn alg3_lazy_matches_exhaustive_over_k(
        seed in 0u64..10_000,
        scale in 0.05f64..0.2,
        k_sel in 0usize..3,
    ) {
        let k = [1usize, 2, 4][k_sel];
        let s = small_scenario(seed, scale);
        let base = Alg3Config { k, ..Alg3Config::default() };
        let lazy = Alg3Planner::new(Alg3Config { engine: EngineMode::Lazy, ..base });
        let full = Alg3Planner::new(Alg3Config { engine: EngineMode::Exhaustive, ..base });
        let (pl, sl) = lazy.plan_with_stats(&s);
        let (pf, sf) = full.plan_with_stats(&s);
        prop_assert_eq!(pl, pf, "alg3 K={} diverged on seed {}", k, seed);
        prop_assert!(sl.counters.evaluations <= sf.counters.exhaustive_bound());
    }

    /// Benchmark pruner under battery pressure: tight capacities force
    /// long pruning runs (orphan reassignment, hover max-merges, dirty
    /// loss refreshes); generous ones exit immediately. Both must agree
    /// with the from-scratch rescan.
    #[test]
    fn benchmark_lazy_matches_exhaustive(
        seed in 0u64..10_000,
        scale in 0.05f64..0.2,
        cap in 2e4f64..9e5,
    ) {
        let mut s = small_scenario(seed, scale);
        s.uav.capacity = Joules(cap);
        let (pl, sl) = BenchmarkPlanner.plan_with_stats(&s, EngineMode::Lazy);
        let (pf, sf) = BenchmarkPlanner.plan_with_stats(&s, EngineMode::Exhaustive);
        prop_assert_eq!(pl, pf, "benchmark diverged on seed {} cap {}", seed, cap);
        prop_assert!(sl.counters.evaluations <= sf.counters.exhaustive_bound());
    }
}
