//! Property tests of the observability contract (DESIGN.md §10): a
//! recorder must **never influence planning**. For every planner and
//! both engine modes, running with the uninstrumented entry point, with
//! the explicit [`NoopRecorder`], and with a live [`CollectingRecorder`]
//! must produce bit-identical plans and identical evaluation counters —
//! the recorder only *watches*.
//!
//! Run with `--features validate` to additionally exercise the
//! paper-invariant hooks at every planner exit.

use proptest::prelude::*;
use uavdc_core::{
    Alg2Config, Alg2Planner, Alg3Config, Alg3Planner, BenchmarkPlanner, CollectionPlan, EngineMode,
    PlanStats,
};
use uavdc_net::generator::{uniform, ScenarioParams};
use uavdc_net::Scenario;
use uavdc_obs::{CollectingRecorder, NoopRecorder, Recorder};

fn small_scenario(seed: u64, scale: f64) -> Scenario {
    uniform(&ScenarioParams::default().scaled(scale), seed)
}

/// Runs one planner closure under the three recorder regimes and checks
/// plan + counter identity (wall-clock fields are excluded: they are
/// measurements, not behaviour).
fn assert_recorder_invisible(
    tag: &str,
    plain: impl Fn() -> (CollectionPlan, PlanStats),
    with_rec: impl Fn(&dyn Recorder) -> (CollectionPlan, PlanStats),
) -> CollectingRecorder {
    let (plan_plain, stats_plain) = plain();
    let (plan_noop, stats_noop) = with_rec(&NoopRecorder);
    let collecting = CollectingRecorder::new();
    let (plan_coll, stats_coll) = with_rec(&collecting);

    assert_eq!(
        plan_plain, plan_noop,
        "{tag}: noop recorder changed the plan"
    );
    assert_eq!(
        plan_plain, plan_coll,
        "{tag}: collecting recorder changed the plan"
    );
    assert_eq!(
        plan_plain.fingerprint(),
        plan_coll.fingerprint(),
        "{tag}: fingerprints must agree when plans do"
    );
    assert_eq!(
        stats_plain.counters, stats_noop.counters,
        "{tag}: noop recorder changed the counters"
    );
    assert_eq!(
        stats_plain.counters, stats_coll.counters,
        "{tag}: collecting recorder changed the counters"
    );
    collecting
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn alg2_recorder_is_invisible(
        seed in 0u64..10_000,
        scale in 0.05f64..0.15,
        lazy_flag in 0u8..2,
    ) {
        let s = small_scenario(seed, scale);
        let engine = if lazy_flag == 1 { EngineMode::Lazy } else { EngineMode::Exhaustive };
        let planner = Alg2Planner::new(Alg2Config { engine, ..Alg2Config::default() });
        let rec = assert_recorder_invisible(
            "alg2",
            || planner.plan_with_stats(&s),
            |r| planner.plan_with_stats_obs(&s, r),
        );
        // The collecting run must actually have recorded the loop.
        let report = rec.report();
        prop_assert!(report.counters.iter().any(|c| c.name == "alg2.iterations"));
    }

    #[test]
    fn alg3_recorder_is_invisible(
        seed in 0u64..10_000,
        scale in 0.05f64..0.15,
        lazy_flag in 0u8..2,
        k in 2u32..5,
    ) {
        let s = small_scenario(seed, scale);
        let engine = if lazy_flag == 1 { EngineMode::Lazy } else { EngineMode::Exhaustive };
        let planner = Alg3Planner::new(Alg3Config {
            k: k as usize,
            engine,
            ..Alg3Config::default()
        });
        let rec = assert_recorder_invisible(
            "alg3",
            || planner.plan_with_stats(&s),
            |r| planner.plan_with_stats_obs(&s, r),
        );
        prop_assert!(rec.report().counters.iter().any(|c| c.name == "alg3.iterations"));
    }

    #[test]
    fn benchmark_recorder_is_invisible(
        seed in 0u64..10_000,
        scale in 0.05f64..0.15,
        lazy_flag in 0u8..2,
    ) {
        let s = small_scenario(seed, scale);
        let engine = if lazy_flag == 1 { EngineMode::Lazy } else { EngineMode::Exhaustive };
        let rec = assert_recorder_invisible(
            "benchmark",
            || BenchmarkPlanner.plan_with_stats(&s, engine),
            |r| BenchmarkPlanner.plan_with_stats_obs(&s, engine, r),
        );
        prop_assert!(rec.report().counters.iter().any(|c| c.name == "bench.iterations"));
    }
}

/// The report of an instrumented lazy run is itself deterministic:
/// running the same planner twice yields byte-identical JSON (modulo the
/// wall-clock span timings, which use the manual clock here).
#[test]
fn collected_report_is_deterministic() {
    let s = small_scenario(7, 0.1);
    let planner = Alg2Planner::new(Alg2Config {
        engine: EngineMode::Lazy,
        ..Alg2Config::default()
    });
    let run = || {
        let rec = CollectingRecorder::with_clock(Box::new(uavdc_obs::ManualClock::new()));
        let _ = planner.plan_with_stats_obs(&s, &rec);
        rec.report().to_json()
    };
    assert_eq!(run(), run());
}
