//! Property tests of the paper-invariant validator
//! (`uavdc_core::validate`): every plan the planners emit must be
//! accepted, and corrupted plans must be rejected with the right
//! invariant.

use proptest::prelude::*;
use uavdc_core::validate::{check_fleet, check_plan, Profile};
use uavdc_core::{
    Alg1Planner, Alg2Planner, Alg3Planner, CollectionPlan, FleetConfig, MultiUavPlanner, Planner,
};
use uavdc_net::generator::{uniform, ScenarioParams};
use uavdc_net::units::Joules;
use uavdc_net::Scenario;

fn small_scenario(seed: u64, scale: f64) -> Scenario {
    uniform(&ScenarioParams::default().scaled(scale), seed)
}

fn planner_outputs(s: &Scenario) -> Vec<(CollectionPlan, Profile, &'static str)> {
    vec![
        (
            Alg1Planner::default().plan(s),
            Profile::P1FullDisjoint,
            "alg1",
        ),
        (
            Alg2Planner::default().plan(s),
            Profile::P2FullOverlap,
            "alg2",
        ),
        (Alg3Planner::default().plan(s), Profile::P3Partial, "alg3"),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Acceptance: across random scenarios and seeds, every plan the
    /// three planners produce satisfies its problem's invariants.
    #[test]
    fn validator_accepts_all_planner_outputs(
        seed in 0u64..10_000,
        scale in 0.02f64..0.07,
    ) {
        let s = small_scenario(seed, scale);
        for (plan, profile, name) in planner_outputs(&s) {
            let check = check_plan(&s, &plan, profile)
                .unwrap_or_else(|v| panic!("{name} rejected on seed {seed}: {v}"));
            prop_assert!(check.energy_slack.value() >= 0.0);
            prop_assert!(
                check.devices_drained + check.devices_untouched <= s.num_devices()
            );
        }
    }

    /// Acceptance: fleet planning over the same scenarios.
    #[test]
    fn validator_accepts_fleet_plans(
        seed in 0u64..10_000,
        m in 2usize..4,
    ) {
        let s = small_scenario(seed, 0.04);
        let fleet = MultiUavPlanner::new(Alg2Planner::default(), FleetConfig::new(m))
            .plan_fleet(&s);
        // The generic fleet lifter guarantees conservation (P3); each
        // inner Alg2 plan additionally satisfies full collection.
        prop_assert!(check_fleet(&s, &fleet, Profile::P3Partial).is_ok());
        for plan in &fleet.plans {
            prop_assert!(check_plan(&s, plan, Profile::P2FullOverlap).is_ok());
        }
    }

    /// Rejection — inflated budget: a plan made under a larger battery
    /// must be caught when judged against the real (smaller) one.
    #[test]
    fn validator_rejects_inflated_budget(
        seed in 0u64..10_000,
        derate in 0.1f64..0.8,
    ) {
        let s = small_scenario(seed, 0.04);
        let plan = Alg2Planner::default().plan(&s);
        let demand = plan.total_energy(&s).value();
        prop_assume!(demand > 1.0);
        let mut tight = s.clone();
        tight.uav.capacity = Joules(demand * derate);
        let v = check_plan(&tight, &plan, Profile::P2FullOverlap).unwrap_err();
        prop_assert_eq!(v.invariant, "energy-budget");
    }

    /// Rejection — dropped stop: removing a visit while re-attaching its
    /// collection to a far-away surviving stop must be caught (the
    /// devices are no longer inside the receiving stop's coverage disc).
    #[test]
    fn validator_rejects_dropped_stop(
        seed in 0u64..10_000,
    ) {
        let s = small_scenario(seed, 0.05);
        let plan = Alg2Planner::default().plan(&s);
        prop_assume!(plan.stops.len() >= 2);
        let r0 = s.coverage_radius().value();
        // Find a (dropped, receiver) pair where some dropped device lies
        // outside the receiver's coverage.
        let mut mutated = None;
        'outer: for drop_idx in 0..plan.stops.len() {
            for recv_idx in 0..plan.stops.len() {
                if recv_idx == drop_idx {
                    continue;
                }
                let recv_pos = plan.stops[recv_idx].pos;
                let escapes = plan.stops[drop_idx].collected.iter().any(|&(dev, _)| {
                    s.devices[dev.index()].pos.distance(recv_pos) > r0 + 1e-3
                });
                if escapes {
                    let mut m = plan.clone();
                    let dropped = m.stops.remove(drop_idx);
                    let recv = if recv_idx > drop_idx { recv_idx - 1 } else { recv_idx };
                    m.stops[recv].collected.extend(dropped.collected);
                    m.stops[recv].sojourn += dropped.sojourn;
                    mutated = Some(m);
                    break 'outer;
                }
            }
        }
        prop_assume!(mutated.is_some());
        let v = check_plan(&s, &mutated.unwrap(), Profile::P2FullOverlap).unwrap_err();
        prop_assert_eq!(v.invariant, "coverage");
    }

    /// Rejection — broken depot closure: a tour through a non-finite
    /// position cannot close at the depot.
    #[test]
    fn validator_rejects_broken_closure(
        seed in 0u64..10_000,
    ) {
        let s = small_scenario(seed, 0.04);
        let mut plan = Alg2Planner::default().plan(&s);
        prop_assume!(!plan.stops.is_empty());
        let last = plan.stops.len() - 1;
        plan.stops[last].pos = uavdc_geom::Point2::new(f64::NAN, 0.0);
        let v = check_plan(&s, &plan, Profile::P2FullOverlap).unwrap_err();
        prop_assert_eq!(v.invariant, "closed-tour");
    }

    /// Rejection — partial drain under a full-collection profile.
    #[test]
    fn validator_rejects_partial_drain_under_full_profiles(
        seed in 0u64..10_000,
        fraction in 0.05f64..0.9,
    ) {
        let s = small_scenario(seed, 0.04);
        let mut plan = Alg2Planner::default().plan(&s);
        let target = plan
            .stops
            .iter()
            .position(|st| st.collected.iter().any(|&(_, v)| v.value() > 1.0));
        prop_assume!(target.is_some());
        let stop = &mut plan.stops[target.unwrap()];
        for entry in &mut stop.collected {
            entry.1 = uavdc_net::units::MegaBytes(entry.1.value() * fraction);
        }
        let v = check_plan(&s, &plan, Profile::P2FullOverlap).unwrap_err();
        prop_assert_eq!(v.invariant, "full-collection");
        // The same mutation is legal partial collection under P3.
        prop_assert!(check_plan(&s, &plan, Profile::P3Partial).is_ok());
    }
}
