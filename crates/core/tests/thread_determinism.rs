//! Property test: the chunked parallel scans are bit-identical across
//! thread counts.
//!
//! `UAVDC_THREADS` selects the worker count once per process (an
//! `OnceLock` in `greedy::num_threads`), so varying it in-process is
//! impossible; the explicit-thread variants `chunked_argmax_with` /
//! `chunked_map_with` take the same code path with the cache bypassed,
//! letting one test sweep thread counts {1, 2, 4, 8} plus serial mode.
//! The inputs are adversarially tie-heavy: if the merge order were ever
//! nondeterministic, a tie is exactly where a different winner would
//! surface.

use uavdc_core::greedy::{chunked_argmax_with, chunked_map_with};

/// SplitMix64: deterministic, dependency-free test PRNG.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in [0, m).
    fn below(&mut self, m: u64) -> u64 {
        self.next() % m
    }
}

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Tie-heavy score table: values drawn from a 4-element set so that at
/// every size a large fraction of candidates share the exact maximum,
/// interleaved with inactive (`None`) candidates.
fn tie_heavy_scores(n: usize, seed: u64) -> Vec<Option<f64>> {
    let mut rng = Rng(seed);
    (0..n)
        .map(|_| match rng.below(5) {
            0 => None,
            1 => Some(0.0),
            2 => Some(0.25),
            3 => Some(1.0),
            _ => Some(1.0), // double weight on the shared maximum
        })
        .collect()
}

#[test]
fn argmax_bit_identical_across_thread_counts() {
    for &n in &[0usize, 1, 2, 3, 7, 8, 9, 64, 257, 1000] {
        for seed in 0..4u64 {
            let scores = tie_heavy_scores(n, seed * 1193 + n as u64);
            let run = |threads: usize| {
                chunked_argmax_with(
                    n,
                    threads,
                    |c| scores[c].map(|s| (s, c)),
                    // Strict `better`: ties keep the earlier candidate, so
                    // the winning *index* must match exactly, not just the
                    // winning score.
                    |a: &(f64, usize), b: &(f64, usize)| a.0 > b.0,
                )
            };
            let serial = run(1);
            for &t in &THREAD_COUNTS {
                let got = run(t);
                assert_eq!(
                    got.map(|(s, c)| (s.to_bits(), c)),
                    serial.map(|(s, c)| (s.to_bits(), c)),
                    "argmax diverged at n={n} seed={seed} threads={t}"
                );
            }
        }
    }
}

#[test]
fn argmax_all_ties_resolves_to_first_candidate() {
    // Every candidate scores exactly 1.0: the winner must always be
    // candidate 0, whatever the chunking.
    for &n in &[2usize, 5, 16, 99, 1024] {
        for &t in &THREAD_COUNTS {
            let got = chunked_argmax_with(n, t, |c| Some((1.0f64, c)), |a, b| a.0 > b.0);
            assert_eq!(got, Some((1.0, 0)), "n={n} threads={t}");
        }
    }
}

#[test]
fn argmax_oversubscribed_threads_are_safe() {
    // More threads than candidates: trailing chunks are empty and must
    // neither panic nor change the answer.
    let scores = tie_heavy_scores(5, 7);
    let serial = chunked_argmax_with(5, 1, |c| scores[c].map(|s| (s, c)), |a, b| a.0 > b.0);
    for t in [5usize, 6, 13, 64] {
        let got = chunked_argmax_with(5, t, |c| scores[c].map(|s| (s, c)), |a, b| a.0 > b.0);
        assert_eq!(got, serial, "threads={t}");
    }
}

#[test]
fn map_bit_identical_across_thread_counts() {
    for &n in &[0usize, 1, 2, 3, 7, 8, 9, 64, 257, 1000] {
        let mut rng = Rng(n as u64 + 17);
        let batch: Vec<f64> = (0..n).map(|_| rng.below(1 << 20) as f64 / 64.0).collect();
        // A float pipeline whose result depends on the element only (no
        // cross-element accumulation), as the chunked contract requires.
        let f = |x: &f64| (x * 1.000000119 + 0.5).sqrt().to_bits();
        let serial: Vec<u64> = batch.iter().map(f).collect();
        for &t in &THREAD_COUNTS {
            let got = chunked_map_with(&batch, t, f);
            assert_eq!(got, serial, "map diverged at n={n} threads={t}");
        }
        // Oversubscribed: more threads than elements.
        let got = chunked_map_with(&batch, n + 3, f);
        assert_eq!(got, serial, "map diverged oversubscribed at n={n}");
    }
}

#[test]
fn adversarial_quantizing_comparator_keeps_tie_breaks_bit_identical() {
    // The nastiest comparator for a chunked scan: quantize scores into
    // wide buckets so that *most* pairs compare equal even when the raw
    // floats differ. Any schedule-dependence in how per-chunk winners
    // merge would pick a different representative of the top bucket;
    // the winning (bits, index) pair must instead match the serial scan
    // exactly for every thread count, including oversubscription.
    let quantized = |a: &(f64, usize), b: &(f64, usize)| (a.0 / 8.0).floor() > (b.0 / 8.0).floor();
    for &n in &[1usize, 2, 7, 64, 257, 1000] {
        for seed in 0..4u64 {
            let mut rng = Rng(seed * 7919 + n as u64);
            // Raw scores in [0, 32): only four quantization buckets, so
            // the top bucket holds ~n/4 tied candidates.
            let scores: Vec<Option<f64>> = (0..n)
                .map(|_| match rng.below(6) {
                    0 => None,
                    r => Some(r as f64 * 5.3),
                })
                .collect();
            let run = |threads: usize| {
                chunked_argmax_with(n, threads, |c| scores[c].map(|s| (s, c)), quantized)
            };
            let serial = run(1);
            for &t in &THREAD_COUNTS {
                let got = run(t);
                assert_eq!(
                    got.map(|(s, c)| (s.to_bits(), c)),
                    serial.map(|(s, c)| (s.to_bits(), c)),
                    "quantized argmax diverged at n={n} seed={seed} threads={t}"
                );
            }
            let got = run(n + 5);
            assert_eq!(
                got.map(|(s, c)| (s.to_bits(), c)),
                serial.map(|(s, c)| (s.to_bits(), c)),
                "quantized argmax diverged oversubscribed at n={n} seed={seed}"
            );
        }
    }
}

#[test]
fn adversarial_comparator_map_order_matches_serial() {
    // The same tie-heavy inputs through `chunked_map_with`: result
    // order must be the batch order bit-for-bit, never the completion
    // order of the worker threads.
    for &n in &[1usize, 7, 257, 1000] {
        let mut rng = Rng(n as u64 + 31);
        let batch: Vec<f64> = (0..n).map(|_| (rng.below(4) as f64) * 5.3).collect();
        let f = |x: &f64| ((x / 8.0).floor()).to_bits();
        let serial: Vec<u64> = batch.iter().map(f).collect();
        for &t in &THREAD_COUNTS {
            let got = chunked_map_with(&batch, t, f);
            assert_eq!(got, serial, "quantized map diverged at n={n} threads={t}");
        }
    }
}

#[test]
fn map_preserves_batch_order() {
    let batch: Vec<usize> = (0..1000).collect();
    for &t in &THREAD_COUNTS {
        let got = chunked_map_with(&batch, t, |&i| i);
        assert_eq!(got, batch, "order broken at threads={t}");
    }
}
