//! End-to-end tests of the `uavdc-lint` CLI over fixture files: one
//! fixture per violation class must drive a non-zero exit, the clean
//! fixture and the workspace itself must exit 0.

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Run the built CLI binary on explicit paths; returns (exit, stdout).
fn run_lint(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_uavdc-lint"))
        .args(args)
        .output()
        .expect("spawn uavdc-lint");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

fn expect_rule(name: &str, rule: &str) -> String {
    let path = fixture(name);
    let (code, stdout) = run_lint(&[path.to_str().unwrap()]);
    assert_eq!(code, 1, "{name} must exit 1, got {code}; stdout:\n{stdout}");
    assert!(
        stdout.contains(&format!(": {rule}:")),
        "{name} must report rule `{rule}`; stdout:\n{stdout}"
    );
    stdout
}

#[test]
fn float_ord_fixture_fails() {
    let out = expect_rule("float_ord.rs_fixture", "float-ord");
    assert!(
        out.contains("partial_cmp"),
        "flags the NaN-unsafe comparator:\n{out}"
    );
    assert!(
        out.contains("0.5"),
        "flags the exact float comparison:\n{out}"
    );
}

#[test]
fn panic_site_fixture_fails() {
    let out = expect_rule("panic_site.rs_fixture", "panic-site");
    // One finding per panicking construct: unwrap, expect, panic!.
    assert_eq!(out.matches(": panic-site:").count(), 3, "stdout:\n{out}");
}

#[test]
fn nondeterminism_fixture_fails() {
    let out = expect_rule("nondeterminism.rs_fixture", "nondeterminism");
    assert!(out.contains("HashMap"), "stdout:\n{out}");
}

#[test]
fn pragma_meta_rules_fire() {
    let out = expect_rule("bad_pragma.rs_fixture", "malformed-allow");
    assert!(
        out.contains("unused-allow"),
        "reason-less and unused pragmas both flagged:\n{out}"
    );
}

#[test]
fn clean_fixture_passes() {
    let path = fixture("clean.rs_fixture");
    let (code, stdout) = run_lint(&[path.to_str().unwrap()]);
    assert_eq!(code, 0, "clean fixture must exit 0; stdout:\n{stdout}");
    assert!(stdout.is_empty());
}

#[test]
fn json_output_is_machine_readable() {
    let path = fixture("nondeterminism.rs_fixture");
    let (code, stdout) = run_lint(&["--json", path.to_str().unwrap()]);
    assert_eq!(code, 1);
    for line in stdout.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "JSON object per line: {line}"
        );
        assert!(line.contains("\"rule\":\"nondeterminism\""), "line: {line}");
    }
}

#[test]
fn whole_workspace_is_clean() {
    let findings =
        uavdc_lint::scan_workspace(&uavdc_lint::workspace_root()).expect("workspace scan");
    assert!(
        findings.is_empty(),
        "workspace must lint clean:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
