//! End-to-end tests of the `uavdc-lint` CLI over fixture files: one
//! fixture per violation class must drive a non-zero exit, the clean
//! fixture and the workspace itself must exit 0.

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Run the built CLI binary on explicit paths; returns (exit, stdout).
fn run_lint(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_uavdc-lint"))
        .args(args)
        .output()
        .expect("spawn uavdc-lint");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

fn expect_rule(name: &str, rule: &str) -> String {
    let path = fixture(name);
    let (code, stdout) = run_lint(&[path.to_str().unwrap()]);
    assert_eq!(code, 1, "{name} must exit 1, got {code}; stdout:\n{stdout}");
    assert!(
        stdout.contains(&format!(": {rule}:")),
        "{name} must report rule `{rule}`; stdout:\n{stdout}"
    );
    stdout
}

#[test]
fn float_ord_fixture_fails() {
    let out = expect_rule("float_ord.rs_fixture", "float-ord");
    assert!(
        out.contains("partial_cmp"),
        "flags the NaN-unsafe comparator:\n{out}"
    );
    assert!(
        out.contains("0.5"),
        "flags the exact float comparison:\n{out}"
    );
}

#[test]
fn panic_site_fixture_fails() {
    let out = expect_rule("panic_site.rs_fixture", "panic-site");
    // One finding per panicking construct: unwrap, expect, panic!.
    assert_eq!(out.matches(": panic-site:").count(), 3, "stdout:\n{out}");
}

#[test]
fn nondeterminism_fixture_fails() {
    let out = expect_rule("nondeterminism.rs_fixture", "nondeterminism");
    assert!(out.contains("HashMap"), "stdout:\n{out}");
}

#[test]
fn pragma_meta_rules_fire() {
    let out = expect_rule("bad_pragma.rs_fixture", "malformed-allow");
    assert!(
        out.contains("unused-allow"),
        "reason-less and unused pragmas both flagged:\n{out}"
    );
}

#[test]
fn raw_quantity_fixture_fails() {
    let out = expect_rule("raw_quantity.rs_fixture", "raw-quantity");
    // Mutation coverage: field, return type, and parameter each flagged.
    assert_eq!(out.matches(": raw-quantity:").count(), 3, "stdout:\n{out}");
    assert!(out.contains("Battery.capacity"), "field finding:\n{out}");
    assert!(out.contains("returns"), "return-type finding:\n{out}");
    assert!(out.contains("`distance`"), "parameter finding:\n{out}");
}

#[test]
fn unit_unwrap_fixture_fails() {
    let out = expect_rule("unit_unwrap.rs_fixture", "unit-unwrap");
    // Both escape hatches: `.value()` and the `Unit(..).0` tuple access.
    assert_eq!(out.matches(": unit-unwrap:").count(), 2, "stdout:\n{out}");
    assert!(out.contains(".value()"), "stdout:\n{out}");
    assert!(out.contains(".0"), "stdout:\n{out}");
}

#[test]
fn float_eq_fixture_fails() {
    let out = expect_rule("float_eq.rs_fixture", "float-eq");
    // `assert_eq!` on floats and a bare `==` on f64 symbols.
    assert_eq!(out.matches(": float-eq:").count(), 2, "stdout:\n{out}");
    assert!(out.contains("assert_eq!"), "stdout:\n{out}");
}

#[test]
fn env_read_fixture_fails() {
    let out = expect_rule("env_read.rs_fixture", "env-read");
    assert!(out.contains("ambient state"), "stdout:\n{out}");
}

#[test]
fn fault_config_from_env_fixture_fails() {
    // The fault-injection config must be constructor-injected (a
    // mission's faults are seeded, replayable inputs); building it from
    // env vars is exactly the ambient-state pattern env-read exists to
    // catch. The sanctioned real implementation lives in uavdc-net and
    // is covered by `whole_workspace_is_clean`.
    let out = expect_rule("fault_config_env.rs_fixture", "env-read");
    assert_eq!(
        out.matches(": env-read:").count(),
        3,
        "one finding per env read (var, var, var_os):\n{out}"
    );
}

#[test]
fn lexer_regression_fixture_is_clean() {
    // Rule-triggering text inside strings, comments, and doc comments —
    // plus `pair.0.1` tuple-field chains — must never produce findings.
    let path = fixture("lexer_regression.rs_fixture");
    let (code, stdout) = run_lint(&[path.to_str().unwrap()]);
    assert_eq!(code, 0, "lexer regression fixture must exit 0:\n{stdout}");
    assert!(stdout.is_empty());
}

#[test]
fn clean_fixture_passes() {
    let path = fixture("clean.rs_fixture");
    let (code, stdout) = run_lint(&[path.to_str().unwrap()]);
    assert_eq!(code, 0, "clean fixture must exit 0; stdout:\n{stdout}");
    assert!(stdout.is_empty());
}

#[test]
fn json_output_is_machine_readable() {
    let path = fixture("nondeterminism.rs_fixture");
    let (code, stdout) = run_lint(&["--json", path.to_str().unwrap()]);
    assert_eq!(code, 1);
    let doc = stdout.trim();
    assert!(
        doc.starts_with("{\"schema\":\"uavdc-lint/4\"") && doc.ends_with('}'),
        "single schema-tagged JSON document: {doc}"
    );
    assert!(doc.contains("\"rule\":\"nondeterminism\""), "doc: {doc}");
    assert!(doc.contains("\"count\":"), "doc: {doc}");
}

#[test]
fn effect_taint_fixture_fails_with_witness_path() {
    let out = expect_rule("effect_taint.rs_fixture", "effect-taint");
    assert!(
        out.contains("via plan_entry -> helper_a -> helper_b"),
        "shortest witness call path printed:\n{out}"
    );
    assert!(
        out.contains("wall-clock read") && out.contains("Instant::now"),
        "effect kind and source named:\n{out}"
    );
    // Reported once, at the entry point, not at every hop.
    assert_eq!(out.matches(": effect-taint:").count(), 1, "stdout:\n{out}");
}

#[test]
fn panic_reach_fixture_fails_with_witness_path() {
    let out = expect_rule("panic_reach.rs_fixture", "panic-reach");
    assert!(
        out.contains("via plan_entry -> pick"),
        "witness call path printed:\n{out}"
    );
    assert!(
        out.contains("indexing") && out.contains("panic_reach.rs_fixture:10"),
        "source site named with file:line:\n{out}"
    );
}

#[test]
fn unit_flow_fixture_fails_and_wrap_launders() {
    let out = expect_rule("unit_flow.rs_fixture", "unit-flow");
    // The unwrapped call in `report` is flagged; the `Joules(..)`-wrapped
    // call in `report_wrapped` launders cleanly.
    assert_eq!(out.matches(": unit-flow:").count(), 1, "stdout:\n{out}");
    assert!(
        out.contains("`raw_energy` in `report`") && out.contains("chain raw_energy"),
        "producer chain printed:\n{out}"
    );
}

#[test]
fn obs_twin_fixture_fails_both_ways() {
    let out = expect_rule("obs_twin.rs_fixture", "obs-twin");
    assert_eq!(out.matches(": obs-twin:").count(), 2, "stdout:\n{out}");
    assert!(
        out.contains("plain `solve` does not cleanly delegate"),
        "broken delegation flagged:\n{out}"
    );
    assert!(
        out.contains("`orphan_obs` has no plain sibling"),
        "orphan twin flagged:\n{out}"
    );
}

#[test]
fn graph_dump_mode_shows_edges_and_hazards() {
    let path = fixture("effect_taint.rs_fixture");
    let (code, stdout) = run_lint(&["--graph", path.to_str().unwrap()]);
    assert_eq!(code, 0, "--graph is a dump, not a lint:\n{stdout}");
    assert!(
        stdout.contains("plan_entry") && stdout.contains("-> ["),
        "edges rendered:\n{stdout}"
    );
    assert!(
        stdout.contains("effects=1+0"),
        "helper_b's live effect site counted:\n{stdout}"
    );
}

/// A scratch path in the target tmpdir so `--fix-unused --write` can
/// mutate a copy without touching the committed fixture.
fn scratch_copy(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("create tmpdir");
    dir.join(name)
}

#[test]
fn fix_unused_dry_run_reports_without_editing() {
    let copy = scratch_copy("unused_pragma_dry.rs_fixture.tmp");
    std::fs::copy(fixture("unused_pragma.rs_fixture"), &copy).expect("copy");
    let before = std::fs::read_to_string(&copy).unwrap();
    let (code, stdout) = run_lint(&["--fix-unused", copy.to_str().unwrap()]);
    assert_eq!(code, 0, "dry run exits 0:\n{stdout}");
    assert_eq!(
        stdout.matches("would remove").count(),
        2,
        "both stale pragmas listed:\n{stdout}"
    );
    let after = std::fs::read_to_string(&copy).unwrap();
    assert_eq!(before, after, "dry run must not edit the file");
}

#[test]
fn fix_unused_write_removes_only_stale_pragmas() {
    let copy = scratch_copy("unused_pragma_write.rs_fixture.tmp");
    std::fs::copy(fixture("unused_pragma.rs_fixture"), &copy).expect("copy");
    let (code, stdout) = run_lint(&["--fix-unused", "--write", copy.to_str().unwrap()]);
    assert_eq!(code, 0, "write run exits 0:\n{stdout}");
    assert_eq!(stdout.matches("removed").count(), 2, "stdout:\n{stdout}");
    let after = std::fs::read_to_string(&copy).unwrap();
    assert!(
        !after.contains("lint:allow(nondeterminism)") && !after.contains("refactored away"),
        "stale pragmas deleted (whole line and trailing comment):\n{after}"
    );
    assert!(
        after.contains("lint:allow(panic-site): fixture exercises a justified unwrap"),
        "live pragma preserved:\n{after}"
    );
    // The fixed file now lints clean.
    let (code, stdout) = run_lint(&[copy.to_str().unwrap()]);
    assert_eq!(code, 0, "fixed file is clean:\n{stdout}");
}

/// Golden test: `--json` over the four rule-mutation fixtures must emit
/// byte-for-byte the committed snapshot — stable schema tag, stable rule
/// list, findings sorted by (path, line, rule, message) regardless of
/// argument order.
#[test]
fn json_report_matches_golden_snapshot() {
    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/report.json");
    let golden = std::fs::read_to_string(&golden_path).expect("read golden report");
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    // Relative paths keep the report machine-independent; scrambled
    // argument order proves the sort, not the CLI, fixes the ordering.
    let out = Command::new(env!("CARGO_BIN_EXE_uavdc-lint"))
        .current_dir(&dir)
        .args([
            "--json",
            "unit_unwrap.rs_fixture",
            "env_read.rs_fixture",
            "raw_quantity.rs_fixture",
            "float_eq.rs_fixture",
        ])
        .output()
        .expect("spawn uavdc-lint");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        stdout.as_ref(),
        golden,
        "JSON report drifted from tests/golden/report.json; if the change \
         is intentional, regenerate the snapshot with:\n  \
         cd crates/lint/tests/fixtures && cargo run -q -p uavdc-lint -- \
         --json raw_quantity.rs_fixture float_eq.rs_fixture \
         unit_unwrap.rs_fixture env_read.rs_fixture 2>/dev/null \
         > ../golden/report.json"
    );
}

#[test]
fn list_rules_names_all_seventeen() {
    let (code, stdout) = run_lint(&["--list-rules"]);
    assert_eq!(code, 0);
    let rules: Vec<&str> = stdout.lines().collect();
    assert_eq!(
        rules,
        [
            "float-ord",
            "panic-site",
            "nondeterminism",
            "raw-quantity",
            "unit-unwrap",
            "float-eq",
            "env-read",
            "effect-taint",
            "panic-reach",
            "unit-flow",
            "obs-twin",
            "par-purity",
            "lock-across-spawn",
            "atomic-ordering",
            "shared-accumulator",
            "unused-allow",
            "malformed-allow",
        ],
        "stdout:\n{stdout}"
    );
}

/// Golden test for the CI gate: a full workspace scan must match the
/// committed snapshot byte-for-byte — today that is the clean document
/// (schema 4, all rules, zero findings). A drift here means either a new
/// finding slipped in or the schema changed without regenerating
/// `tests/golden/workspace_report.json`.
#[test]
fn workspace_json_matches_golden_snapshot() {
    let golden_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/workspace_report.json");
    let golden = std::fs::read_to_string(&golden_path).expect("read workspace golden");
    let findings =
        uavdc_lint::scan_workspace(&uavdc_lint::workspace_root()).expect("workspace scan");
    let mut doc = uavdc_lint::report_json(&findings);
    doc.push('\n');
    assert_eq!(
        doc, golden,
        "workspace report drifted from tests/golden/workspace_report.json; \
         if intentional, regenerate with:\n  \
         cargo run -q -p uavdc-lint -- --json > crates/lint/tests/golden/workspace_report.json"
    );
}

#[test]
fn par_purity_fixture_fails_with_witness_path() {
    let out = expect_rule("par_purity.rs_fixture", "par-purity");
    assert!(
        out.contains("writes captured `acc`"),
        "capture write flagged:\n{out}"
    );
    assert!(
        out.contains("calls `stamp`") && out.contains("via stamp -> noisy"),
        "effectful closure flagged with witness path:\n{out}"
    );
    assert_eq!(out.matches(": par-purity:").count(), 2, "stdout:\n{out}");
}

#[test]
fn lock_across_spawn_fixture_fails_all_three_ways() {
    let out = expect_rule("lock_across_spawn.rs_fixture", "lock-across-spawn");
    assert!(
        out.contains("still live across the spawn"),
        "guard-across-spawn flagged:\n{out}"
    );
    assert!(
        out.contains("re-locks") && out.contains("via audit -> locked"),
        "re-entrant lock flagged with witness path:\n{out}"
    );
    assert_eq!(
        out.matches("lock-order cycle").count(),
        2,
        "both halves of the inverted lock order flagged:\n{out}"
    );
}

#[test]
fn atomic_ordering_fixture_fails_with_witness_path() {
    let out = expect_rule("atomic_ordering.rs_fixture", "atomic-ordering");
    assert!(
        out.contains("via plan_entry -> pick"),
        "witness call path printed:\n{out}"
    );
    assert!(
        out.contains("Ordering::Relaxed") && out.contains("atomic_ordering.rs_fixture:11"),
        "source site named with file:line:\n{out}"
    );
    // The pragma-justified timing counter in `tick` stays quiet.
    assert_eq!(
        out.matches(": atomic-ordering:").count(),
        1,
        "stdout:\n{out}"
    );
}

#[test]
fn shared_accumulator_fixture_fails_both_patterns() {
    let out = expect_rule("shared_accumulator.rs_fixture", "shared-accumulator");
    assert!(
        out.contains("`fetch_add` on a shared atomic"),
        "atomic accumulation flagged:\n{out}"
    );
    assert!(
        out.contains("`lock().push`"),
        "mutex-vec accumulation flagged:\n{out}"
    );
    assert_eq!(
        out.matches(": shared-accumulator:").count(),
        2,
        "stdout:\n{out}"
    );
}

#[test]
fn graph_dump_annotates_spawn_edges() {
    let path = fixture("lock_across_spawn.rs_fixture");
    let (code, stdout) = run_lint(&["--graph", path.to_str().unwrap()]);
    assert_eq!(code, 0, "--graph is a dump, not a lint:\n{stdout}");
    assert!(
        stdout.contains("spawns=[l24]"),
        "spawn site listed on the spawning fn:\n{stdout}"
    );
    assert!(
        stdout.contains("spawn-> [") && stdout.contains("consume@l24"),
        "closure-local call edge inside the spawn body annotated:\n{stdout}"
    );
    assert!(
        stdout.contains("locks=1+0"),
        "lock inventory rendered:\n{stdout}"
    );
}

/// Golden test for the SARIF output mode: byte-for-byte against the
/// committed snapshot so the code-scanning upload format cannot drift
/// silently.
#[test]
fn sarif_report_matches_golden_snapshot() {
    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/report.sarif");
    let golden = std::fs::read_to_string(&golden_path).expect("read golden sarif");
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let out = Command::new(env!("CARGO_BIN_EXE_uavdc-lint"))
        .current_dir(&dir)
        .args([
            "--sarif",
            "atomic_ordering.rs_fixture",
            "shared_accumulator.rs_fixture",
        ])
        .output()
        .expect("spawn uavdc-lint");
    assert_eq!(out.status.code(), Some(1), "findings still drive exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        stdout.as_ref(),
        golden,
        "SARIF report drifted from tests/golden/report.sarif; if the change \
         is intentional, regenerate the snapshot with:\n  \
         cd crates/lint/tests/fixtures && cargo run -q -p uavdc-lint -- \
         --sarif atomic_ordering.rs_fixture shared_accumulator.rs_fixture \
         2>/dev/null > ../golden/report.sarif"
    );
    assert!(
        stdout.contains("\"version\":\"2.1.0\"")
            && stdout.contains("\"ruleId\":\"atomic-ordering\""),
        "SARIF envelope sane:\n{stdout}"
    );
}

#[test]
fn fix_unused_check_mode_fails_on_stale_pragmas() {
    // CI gate: `--fix-unused --check` exits 1 while stale pragmas exist
    // (with an actionable message), 0 once they are gone. The plain
    // dry-run keeps exiting 0 either way.
    let copy = scratch_copy("unused_pragma_check.rs_fixture.tmp");
    std::fs::copy(fixture("unused_pragma.rs_fixture"), &copy).expect("copy");
    let out = Command::new(env!("CARGO_BIN_EXE_uavdc-lint"))
        .args(["--fix-unused", "--check", copy.to_str().unwrap()])
        .output()
        .expect("spawn uavdc-lint");
    assert_eq!(
        out.status.code(),
        Some(1),
        "stale pragmas must fail --check"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--fix-unused --write"),
        "actionable message names the fix command:\n{stderr}"
    );
    let before = std::fs::read_to_string(&copy).unwrap();
    let (_, _) = run_lint(&["--fix-unused", "--write", copy.to_str().unwrap()]);
    let after = std::fs::read_to_string(&copy).unwrap();
    assert_ne!(before, after, "--write removed the stale pragmas");
    let out = Command::new(env!("CARGO_BIN_EXE_uavdc-lint"))
        .args(["--fix-unused", "--check", copy.to_str().unwrap()])
        .output()
        .expect("spawn uavdc-lint");
    assert_eq!(out.status.code(), Some(0), "clean file passes --check");
}

#[test]
fn whole_workspace_is_clean() {
    let findings =
        uavdc_lint::scan_workspace(&uavdc_lint::workspace_root()).expect("workspace scan");
    assert!(
        findings.is_empty(),
        "workspace must lint clean:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
