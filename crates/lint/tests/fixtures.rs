//! End-to-end tests of the `uavdc-lint` CLI over fixture files: one
//! fixture per violation class must drive a non-zero exit, the clean
//! fixture and the workspace itself must exit 0.

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Run the built CLI binary on explicit paths; returns (exit, stdout).
fn run_lint(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_uavdc-lint"))
        .args(args)
        .output()
        .expect("spawn uavdc-lint");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

fn expect_rule(name: &str, rule: &str) -> String {
    let path = fixture(name);
    let (code, stdout) = run_lint(&[path.to_str().unwrap()]);
    assert_eq!(code, 1, "{name} must exit 1, got {code}; stdout:\n{stdout}");
    assert!(
        stdout.contains(&format!(": {rule}:")),
        "{name} must report rule `{rule}`; stdout:\n{stdout}"
    );
    stdout
}

#[test]
fn float_ord_fixture_fails() {
    let out = expect_rule("float_ord.rs_fixture", "float-ord");
    assert!(
        out.contains("partial_cmp"),
        "flags the NaN-unsafe comparator:\n{out}"
    );
    assert!(
        out.contains("0.5"),
        "flags the exact float comparison:\n{out}"
    );
}

#[test]
fn panic_site_fixture_fails() {
    let out = expect_rule("panic_site.rs_fixture", "panic-site");
    // One finding per panicking construct: unwrap, expect, panic!.
    assert_eq!(out.matches(": panic-site:").count(), 3, "stdout:\n{out}");
}

#[test]
fn nondeterminism_fixture_fails() {
    let out = expect_rule("nondeterminism.rs_fixture", "nondeterminism");
    assert!(out.contains("HashMap"), "stdout:\n{out}");
}

#[test]
fn pragma_meta_rules_fire() {
    let out = expect_rule("bad_pragma.rs_fixture", "malformed-allow");
    assert!(
        out.contains("unused-allow"),
        "reason-less and unused pragmas both flagged:\n{out}"
    );
}

#[test]
fn raw_quantity_fixture_fails() {
    let out = expect_rule("raw_quantity.rs_fixture", "raw-quantity");
    // Mutation coverage: field, return type, and parameter each flagged.
    assert_eq!(out.matches(": raw-quantity:").count(), 3, "stdout:\n{out}");
    assert!(out.contains("Battery.capacity"), "field finding:\n{out}");
    assert!(out.contains("returns"), "return-type finding:\n{out}");
    assert!(out.contains("`distance`"), "parameter finding:\n{out}");
}

#[test]
fn unit_unwrap_fixture_fails() {
    let out = expect_rule("unit_unwrap.rs_fixture", "unit-unwrap");
    // Both escape hatches: `.value()` and the `Unit(..).0` tuple access.
    assert_eq!(out.matches(": unit-unwrap:").count(), 2, "stdout:\n{out}");
    assert!(out.contains(".value()"), "stdout:\n{out}");
    assert!(out.contains(".0"), "stdout:\n{out}");
}

#[test]
fn float_eq_fixture_fails() {
    let out = expect_rule("float_eq.rs_fixture", "float-eq");
    // `assert_eq!` on floats and a bare `==` on f64 symbols.
    assert_eq!(out.matches(": float-eq:").count(), 2, "stdout:\n{out}");
    assert!(out.contains("assert_eq!"), "stdout:\n{out}");
}

#[test]
fn env_read_fixture_fails() {
    let out = expect_rule("env_read.rs_fixture", "env-read");
    assert!(out.contains("ambient state"), "stdout:\n{out}");
}

#[test]
fn fault_config_from_env_fixture_fails() {
    // The fault-injection config must be constructor-injected (a
    // mission's faults are seeded, replayable inputs); building it from
    // env vars is exactly the ambient-state pattern env-read exists to
    // catch. The sanctioned real implementation lives in uavdc-net and
    // is covered by `whole_workspace_is_clean`.
    let out = expect_rule("fault_config_env.rs_fixture", "env-read");
    assert_eq!(
        out.matches(": env-read:").count(),
        3,
        "one finding per env read (var, var, var_os):\n{out}"
    );
}

#[test]
fn lexer_regression_fixture_is_clean() {
    // Rule-triggering text inside strings, comments, and doc comments —
    // plus `pair.0.1` tuple-field chains — must never produce findings.
    let path = fixture("lexer_regression.rs_fixture");
    let (code, stdout) = run_lint(&[path.to_str().unwrap()]);
    assert_eq!(code, 0, "lexer regression fixture must exit 0:\n{stdout}");
    assert!(stdout.is_empty());
}

#[test]
fn clean_fixture_passes() {
    let path = fixture("clean.rs_fixture");
    let (code, stdout) = run_lint(&[path.to_str().unwrap()]);
    assert_eq!(code, 0, "clean fixture must exit 0; stdout:\n{stdout}");
    assert!(stdout.is_empty());
}

#[test]
fn json_output_is_machine_readable() {
    let path = fixture("nondeterminism.rs_fixture");
    let (code, stdout) = run_lint(&["--json", path.to_str().unwrap()]);
    assert_eq!(code, 1);
    let doc = stdout.trim();
    assert!(
        doc.starts_with("{\"schema\":\"uavdc-lint/2\"") && doc.ends_with('}'),
        "single schema-tagged JSON document: {doc}"
    );
    assert!(doc.contains("\"rule\":\"nondeterminism\""), "doc: {doc}");
    assert!(doc.contains("\"count\":"), "doc: {doc}");
}

/// Golden test: `--json` over the four rule-mutation fixtures must emit
/// byte-for-byte the committed snapshot — stable schema tag, stable rule
/// list, findings sorted by (path, line, rule, message) regardless of
/// argument order.
#[test]
fn json_report_matches_golden_snapshot() {
    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/report.json");
    let golden = std::fs::read_to_string(&golden_path).expect("read golden report");
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    // Relative paths keep the report machine-independent; scrambled
    // argument order proves the sort, not the CLI, fixes the ordering.
    let out = Command::new(env!("CARGO_BIN_EXE_uavdc-lint"))
        .current_dir(&dir)
        .args([
            "--json",
            "unit_unwrap.rs_fixture",
            "env_read.rs_fixture",
            "raw_quantity.rs_fixture",
            "float_eq.rs_fixture",
        ])
        .output()
        .expect("spawn uavdc-lint");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        stdout.as_ref(),
        golden,
        "JSON report drifted from tests/golden/report.json; if the change \
         is intentional, regenerate the snapshot with:\n  \
         cd crates/lint/tests/fixtures && cargo run -q -p uavdc-lint -- \
         --json raw_quantity.rs_fixture float_eq.rs_fixture \
         unit_unwrap.rs_fixture env_read.rs_fixture 2>/dev/null \
         > ../golden/report.json"
    );
}

#[test]
fn list_rules_names_all_nine() {
    let (code, stdout) = run_lint(&["--list-rules"]);
    assert_eq!(code, 0);
    let rules: Vec<&str> = stdout.lines().collect();
    assert_eq!(
        rules,
        [
            "float-ord",
            "panic-site",
            "nondeterminism",
            "raw-quantity",
            "unit-unwrap",
            "float-eq",
            "env-read",
            "unused-allow",
            "malformed-allow",
        ],
        "stdout:\n{stdout}"
    );
}

#[test]
fn whole_workspace_is_clean() {
    let findings =
        uavdc_lint::scan_workspace(&uavdc_lint::workspace_root()).expect("workspace scan");
    assert!(
        findings.is_empty(),
        "workspace must lint clean:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
