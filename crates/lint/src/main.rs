fn main() {
    std::process::exit(uavdc_lint::run_cli());
}
