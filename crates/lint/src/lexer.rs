//! The single tokenizer behind every `uavdc-lint` rule.
//!
//! PR 1's scanner worked on a line-split code/comment channel, which kept
//! string and comment bytes out of the rules but left the rules matching
//! raw substrings (`code.contains("HashMap")`), with no notion of token
//! boundaries, operators, or literals. This lexer produces a proper token
//! stream — identifiers, numeric literals with float/int distinction,
//! strings (plain, raw, byte), char literals vs lifetimes, multi-character
//! operators — so rules match *tokens*, never bytes inside a literal,
//! comment, or larger identifier.
//!
//! Comments are captured out-of-band (with their starting line and
//! doc-ness) for the `lint:allow` pragma parser; their bytes never reach
//! the token stream the source rules scan.
//!
//! The lexer is dependency-free, never panics, and degrades gracefully on
//! malformed input: an unterminated literal is closed at end of input and
//! an unknown byte becomes a one-character punct token.

/// Token classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (includes raw identifiers, prefix stripped).
    Ident,
    /// Lifetime, e.g. `'a` (text keeps the quote).
    Lifetime,
    /// Integer literal (including hex/oct/bin and tuple-index positions).
    Int,
    /// Float literal (has a fractional dot, an exponent, or an `f32`/`f64`
    /// suffix).
    Float,
    /// String literal of any flavour; text is a placeholder `""`.
    Str,
    /// Char or byte literal; text is a placeholder `''`.
    Char,
    /// Operator or delimiter, longest-match (`==`, `->`, `::`, …).
    Punct,
}

/// One source token.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Classification.
    pub kind: TokKind,
    /// Token text (placeholders for string/char contents).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
}

impl Tok {
    /// Is this an identifier with exactly this text?
    #[inline]
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Is this a punct with exactly this text?
    #[inline]
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// One comment, captured outside the token stream.
#[derive(Clone, Debug)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: usize,
    /// Comment text without the `//`/`/*` markers, trimmed.
    pub text: String,
    /// Doc comment (`///`, `//!`, `/**`, `/*!`)?
    pub doc: bool,
}

/// A lexed source file: the rule-visible token stream plus the comments.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub toks: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Multi-character operators, longest first so maximal munch works.
const PUNCTS: [&str; 24] = [
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Recognises the string-literal prefixes `"`, `r"`, `r#"`, `b"`, `br#"`,
/// `rb"`, `c"`, `cr"` starting at `i`. Returns `(skip, raw_hashes)` where
/// `skip` is the length of the prefix *including* the opening quote and
/// `raw_hashes` is `Some(n)` for raw strings with `n` hashes.
fn string_prefix(chars: &[char], i: usize) -> Option<(usize, Option<u32>)> {
    let mut j = i;
    // Optional one or two prefix letters out of {b, r, c} with r marking raw.
    let mut raw = false;
    let mut letters = 0;
    while letters < 2 {
        match chars.get(j) {
            Some('r') => {
                raw = true;
                j += 1;
                letters += 1;
            }
            Some('b') | Some('c') if !raw => {
                j += 1;
                letters += 1;
            }
            _ => break,
        }
    }
    if raw {
        let mut hashes = 0u32;
        while chars.get(j) == Some(&'#') {
            hashes += 1;
            j += 1;
        }
        if chars.get(j) == Some(&'"') {
            return Some((j + 1 - i, Some(hashes)));
        }
        return None;
    }
    if chars.get(j) == Some(&'"') {
        return Some((j + 1 - i, None));
    }
    None
}

/// Tokenize one Rust source file.
pub fn lex(source: &str) -> Lexed {
    let chars: Vec<char> = source.chars().collect();
    let n = chars.len();
    let mut toks: Vec<Tok> = Vec::new();
    let mut comments: Vec<Comment> = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    while i < n {
        let c = chars[i];
        // Whitespace.
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start_line = line;
            let doc = matches!(chars.get(i + 2), Some(&'/') | Some(&'!'))
                && chars.get(i + 3) != Some(&'/'); // `////…` is not a doc comment
            let mut j = i + 2;
            while j < n && chars[j] != '\n' {
                j += 1;
            }
            let text: String = chars[i + 2..j].iter().collect();
            comments.push(Comment {
                line: start_line,
                text: text.trim_start_matches(['/', '!']).trim().to_string(),
                doc,
            });
            i = j;
            continue;
        }
        // Block comment (nested).
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let start_line = line;
            let doc = matches!(chars.get(i + 2), Some(&'*') | Some(&'!'))
                && chars.get(i + 3) != Some(&'/'); // `/**/` is empty, not doc
            let mut depth = 1u32;
            let mut j = i + 2;
            let mut text = String::new();
            while j < n && depth > 0 {
                if chars[j] == '\n' {
                    line += 1;
                    text.push('\n');
                    j += 1;
                } else if chars[j] == '*' && chars.get(j + 1) == Some(&'/') {
                    depth -= 1;
                    j += 2;
                } else if chars[j] == '/' && chars.get(j + 1) == Some(&'*') {
                    depth += 1;
                    j += 2;
                } else {
                    text.push(chars[j]);
                    j += 1;
                }
            }
            comments.push(Comment {
                line: start_line,
                text: text.trim_start_matches(['*', '!']).trim().to_string(),
                doc,
            });
            i = j;
            continue;
        }
        // String literals (with optional b/r/c prefixes).
        if let Some((skip, raw)) = string_prefix(&chars, i) {
            let start_line = line;
            i += skip;
            match raw {
                Some(hashes) => {
                    // Scan for `"` followed by `hashes` hashes.
                    while i < n {
                        if chars[i] == '\n' {
                            line += 1;
                            i += 1;
                        } else if chars[i] == '"'
                            && (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
                        {
                            i += 1 + hashes as usize;
                            break;
                        } else {
                            i += 1;
                        }
                    }
                }
                None => {
                    while i < n {
                        match chars[i] {
                            '\\' => {
                                if chars.get(i + 1) == Some(&'\n') {
                                    line += 1;
                                }
                                i = (i + 2).min(n);
                            }
                            '"' => {
                                i += 1;
                                break;
                            }
                            '\n' => {
                                line += 1;
                                i += 1;
                            }
                            _ => i += 1,
                        }
                    }
                }
            }
            toks.push(Tok {
                kind: TokKind::Str,
                text: "\"\"".into(),
                line: start_line,
            });
            continue;
        }
        // Raw identifier `r#ident` (string_prefix above already rejected
        // `r#"`), e.g. `r#fn`.
        if c == 'r'
            && chars.get(i + 1) == Some(&'#')
            && chars.get(i + 2).copied().is_some_and(is_ident_start)
        {
            let mut j = i + 2;
            while j < n && is_ident_continue(chars[j]) {
                j += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text: chars[i + 2..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        // Byte char literal `b'x'`.
        if c == 'b' && chars.get(i + 1) == Some(&'\'') {
            i += 1;
            // Falls through to the quote handling below on next loop turn
            // would misread; handle inline instead.
            i += lex_char_like(&chars, i, &mut toks, line);
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let consumed = lex_char_like(&chars, i, &mut toks, line);
            i += consumed;
            continue;
        }
        // Identifier / keyword.
        if is_ident_start(c) {
            let mut j = i;
            while j < n && is_ident_continue(chars[j]) {
                j += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text: chars[i..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        // Numeric literal.
        if c.is_ascii_digit() {
            let after_dot = toks.last().is_some_and(|t| t.is_punct("."));
            let (text, kind, len) = lex_number(&chars, i, after_dot);
            toks.push(Tok { kind, text, line });
            i += len;
            continue;
        }
        // Operators, longest match first.
        if let Some(op) = PUNCTS
            .iter()
            .find(|op| chars[i..].starts_with(&op.chars().collect::<Vec<_>>()[..]))
        {
            toks.push(Tok {
                kind: TokKind::Punct,
                text: (*op).to_string(),
                line,
            });
            i += op.chars().count();
            continue;
        }
        // Single-character punct (also the fallback for unknown bytes).
        toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    Lexed { toks, comments }
}

/// Lexes a `'`-introduced token at `i` (char literal or lifetime) into
/// `toks`; returns the number of chars consumed.
fn lex_char_like(chars: &[char], i: usize, toks: &mut Vec<Tok>, line: usize) -> usize {
    let n = chars.len();
    debug_assert_eq!(chars.get(i), Some(&'\''));
    // Escape sequence ⇒ char literal.
    if chars.get(i + 1) == Some(&'\\') {
        let mut j = i + 2;
        // Skip the escape payload up to the closing quote (handles \n, \',
        // \u{…}); cap the scan so a stray quote cannot run away.
        let mut steps = 0;
        while j < n && chars[j] != '\'' && chars[j] != '\n' && steps < 12 {
            j += 1;
            steps += 1;
        }
        if chars.get(j) == Some(&'\'') {
            j += 1;
        }
        toks.push(Tok {
            kind: TokKind::Char,
            text: "''".into(),
            line,
        });
        return j - i;
    }
    // `'x'` ⇒ char literal; `'ident` with no adjacent close ⇒ lifetime.
    if chars.get(i + 2) == Some(&'\'') && chars.get(i + 1).copied().is_some_and(|c| c != '\'') {
        toks.push(Tok {
            kind: TokKind::Char,
            text: "''".into(),
            line,
        });
        return 3;
    }
    if chars.get(i + 1).copied().is_some_and(is_ident_start) {
        let mut j = i + 1;
        while j < n && is_ident_continue(chars[j]) {
            j += 1;
        }
        toks.push(Tok {
            kind: TokKind::Lifetime,
            text: chars[i..j].iter().collect(),
            line,
        });
        return j - i;
    }
    // Lone quote (malformed); emit as punct and move on.
    toks.push(Tok {
        kind: TokKind::Punct,
        text: "'".into(),
        line,
    });
    1
}

/// Lexes a number starting at digit `i`. `after_dot` suppresses the
/// fractional part so tuple field access (`pair.0.1`) stays two integer
/// tokens instead of a bogus float.
fn lex_number(chars: &[char], i: usize, after_dot: bool) -> (String, TokKind, usize) {
    let n = chars.len();
    let mut j = i;
    let mut is_float = false;
    // Radix prefixes: integers only.
    if chars[i] == '0'
        && matches!(
            chars.get(i + 1),
            Some(&'x') | Some(&'X') | Some(&'o') | Some(&'O') | Some(&'b') | Some(&'B')
        )
    {
        j = i + 2;
        while j < n && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
            j += 1;
        }
        return (chars[i..j].iter().collect(), TokKind::Int, j - i);
    }
    while j < n && (chars[j].is_ascii_digit() || chars[j] == '_') {
        j += 1;
    }
    if !after_dot {
        // Fractional part: a dot NOT followed by an identifier (method
        // call `1.max(…)`) or a second dot (range `0..n`).
        if chars.get(j) == Some(&'.')
            && chars.get(j + 1) != Some(&'.')
            && !chars.get(j + 1).copied().is_some_and(is_ident_start)
        {
            is_float = true;
            j += 1;
            while j < n && (chars[j].is_ascii_digit() || chars[j] == '_') {
                j += 1;
            }
        }
        // Exponent.
        if matches!(chars.get(j), Some(&'e') | Some(&'E')) {
            let mut k = j + 1;
            if matches!(chars.get(k), Some(&'+') | Some(&'-')) {
                k += 1;
            }
            if chars.get(k).copied().is_some_and(|c| c.is_ascii_digit()) {
                is_float = true;
                j = k;
                while j < n && (chars[j].is_ascii_digit() || chars[j] == '_') {
                    j += 1;
                }
            }
        }
    }
    // Type suffix (f64, u32, usize, …).
    let suffix_start = j;
    while j < n && is_ident_continue(chars[j]) {
        j += 1;
    }
    let suffix: String = chars[suffix_start..j].iter().collect();
    if suffix == "f64" || suffix == "f32" {
        is_float = true;
    }
    (
        chars[i..j].iter().collect(),
        if is_float {
            TokKind::Float
        } else {
            TokKind::Int
        },
        j - i,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .toks
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn floats_vs_ints_vs_tuple_fields() {
        let t = kinds("let x = 1.0 + pair.0 + 2e-3 + 0xff + 1f64 + 1.max(2);");
        let f: Vec<&str> = t
            .iter()
            .filter(|(k, _)| *k == TokKind::Float)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(f, vec!["1.0", "2e-3", "1f64"]);
        assert!(t.iter().any(|(k, s)| *k == TokKind::Int && s == "0xff"));
        // `pair.0` keeps an Int 0 (field access), not a float.
        assert!(t.iter().any(|(k, s)| *k == TokKind::Int && s == "0"));
    }

    #[test]
    fn chained_tuple_access_is_not_a_float() {
        let t = kinds("a.0.1");
        assert_eq!(
            t,
            vec![
                (TokKind::Ident, "a".into()),
                (TokKind::Punct, ".".into()),
                (TokKind::Int, "0".into()),
                (TokKind::Punct, ".".into()),
                (TokKind::Int, "1".into()),
            ]
        );
    }

    #[test]
    fn strings_and_comments_leave_no_rule_visible_bytes() {
        let l = lex("let s = \"partial_cmp .unwrap() HashMap\"; // thread_rng\n/* env::var */");
        assert!(l.toks.iter().all(|t| !t.text.contains("partial_cmp")
            && !t.text.contains("unwrap")
            && !t.text.contains("HashMap")));
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].text.contains("thread_rng"));
    }

    #[test]
    fn raw_and_byte_strings_are_opaque() {
        let l = lex("let a = r#\"x \" .unwrap() \"#; let b = b\"HashMap\"; let c = rb\"y\";");
        assert_eq!(
            l.toks.iter().filter(|t| t.kind == TokKind::Str).count(),
            3,
            "{:?}",
            l.toks
        );
        assert!(l.toks.iter().any(|t| t.is_ident("a")));
        assert!(l.toks.iter().all(|t| !t.text.contains("unwrap")));
    }

    #[test]
    fn lifetimes_and_chars_disambiguate() {
        let l = lex("fn f<'a>(s: &'a str) -> char { let c = '\"'; let d = '\\''; 'x' }");
        let lifetimes: Vec<&str> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Char).count(), 3);
    }

    #[test]
    fn multichar_operators_lex_whole() {
        let t = kinds("a == b != c <= d >= e -> f => g :: h .. i ..= j");
        let ops: Vec<&str> = t
            .iter()
            .filter(|(k, _)| *k == TokKind::Punct)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(
            ops,
            vec!["==", "!=", "<=", ">=", "->", "=>", "::", "..", "..="]
        );
    }

    #[test]
    fn doc_comments_are_flagged_and_quadruple_slash_is_not() {
        let l = lex("/// doc\n//! inner\n// plain\n//// separator\n/** block doc */\n/*! inner block */\n/* plain block */");
        let docs: Vec<bool> = l.comments.iter().map(|c| c.doc).collect();
        assert_eq!(docs, vec![true, true, false, false, true, true, false]);
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "let a = \"multi\nline\";\nlet b = 1; /* c\nc */ let d = 2;";
        let l = lex(src);
        let b = l.toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 3);
        let d = l.toks.iter().find(|t| t.is_ident("d")).unwrap();
        assert_eq!(d.line, 4);
    }

    #[test]
    fn raw_identifiers_strip_prefix() {
        let t = kinds("let r#fn = 1;");
        assert!(t.iter().any(|(k, s)| *k == TokKind::Ident && s == "fn"));
    }

    #[test]
    fn escaped_quote_in_string_does_not_leak() {
        // A backslash-escaped quote must not terminate the string early.
        let l = lex("let s = \"a\\\"b.unwrap()\"; x");
        assert!(l.toks.iter().any(|t| t.is_ident("x")));
        assert!(l.toks.iter().all(|t| !t.text.contains("unwrap")));
    }

    #[test]
    fn raw_strings_with_multiple_hashes_close_on_matching_count() {
        // r##"..."## may contain `"#` without terminating; only `"##` closes.
        let l = lex("let a = r##\"inner \"# .unwrap() quote\"##; let tail = 1;");
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
        assert!(l.toks.iter().any(|t| t.is_ident("tail")));
        assert!(l.toks.iter().all(|t| !t.text.contains("unwrap")));
    }

    #[test]
    fn nested_block_comments_balance() {
        // Rust block comments nest; the lexer must track depth, not stop at
        // the first `*/`.
        let l = lex("/* outer /* inner .unwrap() */ still comment */ let live = 1;");
        assert!(l.toks.iter().any(|t| t.is_ident("live")));
        assert!(l.toks.iter().all(|t| !t.text.contains("unwrap")));
        assert!(l.comments.iter().any(|c| c.text.contains("inner")));
    }

    #[test]
    fn loop_labels_and_static_lifetime_are_not_chars() {
        // `'outer:` (loop label) and `'static` lex as lifetimes; `'a'` with
        // a one-letter payload is still a char literal.
        let l = lex("fn f() -> &'static str { 'outer: loop { let c = 'a'; break 'outer; } \"s\" }");
        let lifetimes: Vec<&str> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["'static", "'outer", "'outer"]);
        // Char payloads are deliberately scrubbed (stored as `''`, like
        // string contents) so literal bytes never leak into rule matching.
        let chars: Vec<&str> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(chars, vec!["''"]);
    }

    #[test]
    fn turbofish_in_call_position_lexes_as_path_then_angle() {
        // `collect::<Vec<f64>>()` closes two generic depths with a single
        // `>>` shift token; the parser/resolver angle-skippers decrement
        // depth by 2 for it, so the lexer must keep it whole.
        let t = kinds("xs.iter().collect::<Vec<f64>>()");
        let tail: Vec<&str> = t
            .iter()
            .skip_while(|(_, s)| s != "collect")
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(
            tail,
            vec!["collect", "::", "<", "Vec", "<", "f64", ">>", "(", ")"]
        );
    }
}
