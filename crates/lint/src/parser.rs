//! Item-level model of a Rust source file, built from the [`crate::lexer`]
//! token stream.
//!
//! This is not a full Rust parser — it is the minimum structure the
//! semantic rules need:
//!
//! * every `fn` signature (name, visibility, parameter names/types,
//!   return type, body token range),
//! * every named `struct`/`enum-variant` field (owner, name, type,
//!   visibility),
//! * which tokens sit inside a `#[cfg(test)]` region,
//! * per-function `f64` symbol tables (parameters and explicitly-typed
//!   `let` bindings) for the float-equality rule.
//!
//! The parser is brace/angle-tracked and never panics: on anything it does
//! not understand (macro definitions, exotic syntax) it simply advances,
//! so unknown constructs cost coverage, never correctness.

use crate::lexer::{Tok, TokKind};

/// One parsed parameter: the pattern's identifiers and the type tokens.
#[derive(Clone, Debug)]
pub struct Param {
    /// Identifiers bound by the pattern (empty for `self`).
    pub names: Vec<String>,
    /// Type as space-joined tokens (empty for untyped `self`).
    pub ty: String,
    /// Line of the parameter's first token.
    pub line: usize,
}

/// One parsed `fn` signature.
#[derive(Clone, Debug)]
pub struct FnSig {
    /// Function name.
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: usize,
    /// Unrestricted `pub` (not `pub(crate)`/`pub(super)`)?
    pub is_pub: bool,
    /// Inside a `#[cfg(test)]` region?
    pub in_test: bool,
    /// Parameters in order.
    pub params: Vec<Param>,
    /// Return type as space-joined tokens (`None` for `()`).
    pub ret: Option<String>,
    /// Token-index range `[start, end)` of the body between its braces
    /// (`None` for trait/extern declarations without a body).
    pub body: Option<(usize, usize)>,
}

/// One named field of a struct or enum variant.
#[derive(Clone, Debug)]
pub struct Field {
    /// `Type` or `Enum::Variant` owning the field.
    pub owner: String,
    /// Field name.
    pub name: String,
    /// Type as space-joined tokens.
    pub ty: String,
    /// Line of the field name.
    pub line: usize,
    /// Externally reachable: unrestricted `pub` on both the item and the
    /// field (enum variant fields inherit the enum's visibility).
    pub is_pub: bool,
    /// Inside a `#[cfg(test)]` region?
    pub in_test: bool,
}

/// The parsed model of one source file.
#[derive(Clone, Debug, Default)]
pub struct Model {
    /// All `fn` signatures, in source order.
    pub fns: Vec<FnSig>,
    /// All named fields, in source order.
    pub fields: Vec<Field>,
    /// `tok_in_test[i]` — does token `i` sit inside `#[cfg(test)]`?
    pub tok_in_test: Vec<bool>,
}

impl Model {
    /// Is the 1-based `line` inside a `#[cfg(test)]` region? (True when
    /// any token on that line is.)
    pub fn line_in_test(&self, toks: &[Tok], line: usize) -> bool {
        toks.iter()
            .zip(&self.tok_in_test)
            .any(|(t, &it)| t.line == line && it)
    }
}

/// Splits an identifier into lowercase words on `_` and camelCase
/// boundaries: `hoverEnergyTotal` → `["hover", "energy", "total"]`.
pub fn ident_words(name: &str) -> Vec<String> {
    let mut words = Vec::new();
    let mut cur = String::new();
    for c in name.chars() {
        if c == '_' {
            if !cur.is_empty() {
                words.push(std::mem::take(&mut cur));
            }
        } else if c.is_uppercase() && !cur.is_empty() {
            words.push(std::mem::take(&mut cur));
            cur.push(c.to_ascii_lowercase());
        } else {
            cur.push(c.to_ascii_lowercase());
        }
    }
    if !cur.is_empty() {
        words.push(cur);
    }
    words
}

/// Does the space-joined type string contain `f64` as a whole token?
pub fn type_has_f64(ty: &str) -> bool {
    ty.split(' ').any(|w| w == "f64")
}

struct Parser<'a> {
    toks: &'a [Tok],
    i: usize,
    depth: i64,
    /// While `Some(d)`, depth > d is a `#[cfg(test)]` region.
    test_above: Option<i64>,
    pending_cfg_test: bool,
    model: Model,
}

/// Parses a token stream into the item model.
pub fn parse(toks: &[Tok]) -> Model {
    let mut p = Parser {
        toks,
        i: 0,
        depth: 0,
        test_above: None,
        pending_cfg_test: false,
        model: Model {
            fns: Vec::new(),
            fields: Vec::new(),
            tok_in_test: vec![false; toks.len()],
        },
    };
    p.run();
    p.model
}

impl<'a> Parser<'a> {
    fn in_test(&self) -> bool {
        self.test_above.is_some_and(|d| self.depth > d)
    }

    fn tok(&self, i: usize) -> Option<&'a Tok> {
        self.toks.get(i)
    }

    /// Advances past one token, maintaining brace depth and the test
    /// region, and recording the token's test-ness.
    fn bump(&mut self) {
        if let Some(t) = self.tok(self.i) {
            self.model.tok_in_test[self.i] = self.in_test();
            if t.is_punct("{") {
                if self.pending_cfg_test && self.test_above.is_none() {
                    self.test_above = Some(self.depth);
                    self.pending_cfg_test = false;
                }
                self.depth += 1;
            } else if t.is_punct("}") {
                self.depth -= 1;
                if let Some(d) = self.test_above {
                    if self.depth <= d {
                        self.test_above = None;
                    }
                }
            }
        }
        self.i += 1;
    }

    /// Main loop: walk the stream, dispatching on item keywords.
    fn run(&mut self) {
        let mut pending_pub = false;
        while let Some(t) = self.tok(self.i) {
            if t.is_punct("#") {
                self.attr();
                continue;
            }
            if t.is_ident("pub") {
                pending_pub = self.vis();
                continue;
            }
            if t.is_ident("fn") {
                self.func(pending_pub);
                pending_pub = false;
                continue;
            }
            if t.is_ident("struct") || t.is_ident("enum") {
                let is_enum = t.is_ident("enum");
                self.adt(pending_pub, is_enum);
                pending_pub = false;
                continue;
            }
            // Function qualifiers sit between the visibility and the `fn`
            // keyword (`pub async fn`, `pub const unsafe fn`,
            // `pub extern "C" fn`); they must not reset a pending `pub`.
            if t.is_ident("async")
                || t.is_ident("unsafe")
                || t.is_ident("const")
                || t.is_ident("extern")
                || (pending_pub && t.kind == TokKind::Str)
            {
                self.bump();
                continue;
            }
            // Any other token resets a dangling visibility (e.g. `pub use`,
            // `pub mod`, `pub const` — items the rules don't model).
            if t.kind == TokKind::Ident || t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
                pending_pub = false;
            }
            self.bump();
        }
    }

    /// Consumes `#[...]` / `#![...]`; arms the cfg(test) region tracker
    /// when the attribute is `cfg(test)`.
    fn attr(&mut self) {
        self.bump(); // '#'
        if self.tok(self.i).is_some_and(|t| t.is_punct("!")) {
            self.bump();
        }
        if !self.tok(self.i).is_some_and(|t| t.is_punct("[")) {
            return;
        }
        let start = self.i;
        self.bump(); // '['
        let mut bd = 1;
        while bd > 0 {
            let Some(t) = self.tok(self.i) else { break };
            if t.is_punct("[") {
                bd += 1;
            } else if t.is_punct("]") {
                bd -= 1;
            }
            self.bump();
        }
        // cfg(test): tokens `cfg ( test )` inside the brackets.
        let inner = &self.toks[start..self.i.min(self.toks.len())];
        let is_cfg_test = inner.windows(4).any(|w| {
            w[0].is_ident("cfg")
                && w[1].is_punct("(")
                && w[2].is_ident("test")
                && w[3].is_punct(")")
        });
        if is_cfg_test && self.test_above.is_none() {
            self.pending_cfg_test = true;
        }
    }

    /// Consumes `pub` (+ optional restriction); returns true only for
    /// unrestricted `pub`.
    fn vis(&mut self) -> bool {
        self.bump(); // 'pub'
        if self.tok(self.i).is_some_and(|t| t.is_punct("(")) {
            // pub(crate) / pub(super) / pub(in path): restricted.
            let mut pd = 0;
            while let Some(t) = self.tok(self.i) {
                if t.is_punct("(") {
                    pd += 1;
                } else if t.is_punct(")") {
                    pd -= 1;
                    self.bump();
                    if pd == 0 {
                        break;
                    }
                    continue;
                }
                self.bump();
            }
            return false;
        }
        true
    }

    /// Skips a balanced `<...>` generics group starting at the current
    /// token (which must be `<`); tolerates `>>` closing two levels.
    fn generics(&mut self) {
        let mut ad: i64 = 0;
        while let Some(t) = self.tok(self.i) {
            if t.is_punct("<") || t.is_punct("<<") {
                ad += if t.text == "<<" { 2 } else { 1 };
            } else if t.is_punct(">") || t.is_punct(">>") {
                ad -= if t.text == ">>" { 2 } else { 1 };
                if ad <= 0 {
                    self.bump();
                    break;
                }
            } else if t.is_punct("{") || t.is_punct(";") {
                break; // malformed; bail without consuming the brace
            }
            self.bump();
        }
    }

    /// Parses `fn name<...>(params) -> Ret {body}` from the `fn` keyword.
    fn func(&mut self, is_pub: bool) {
        let line = self.toks[self.i].line;
        let in_test = self.in_test() || self.pending_cfg_test;
        self.bump(); // 'fn'
        let Some(name_tok) = self.tok(self.i) else {
            return;
        };
        if name_tok.kind != TokKind::Ident {
            return; // macro body fragment like `fn $name`; skip
        }
        let name = name_tok.text.clone();
        self.bump();
        if self.tok(self.i).is_some_and(|t| t.is_punct("<")) {
            self.generics();
        }
        if !self.tok(self.i).is_some_and(|t| t.is_punct("(")) {
            return;
        }
        // Collect parameter tokens between balanced parens.
        let params_start = self.i + 1;
        let mut pd = 0;
        while let Some(t) = self.tok(self.i) {
            if t.is_punct("(") {
                pd += 1;
            } else if t.is_punct(")") {
                pd -= 1;
                if pd == 0 {
                    break;
                }
            }
            self.bump();
        }
        let params_end = self.i;
        self.bump(); // ')'
        let params = split_params(&self.toks[params_start..params_end.min(self.toks.len())]);
        // Return type: up to `{`, `;`, or top-level `where`.
        let mut ret = None;
        if self.tok(self.i).is_some_and(|t| t.is_punct("->")) {
            self.bump();
            let ret_start = self.i;
            let mut ad: i64 = 0;
            let mut rpd: i64 = 0;
            while let Some(t) = self.tok(self.i) {
                if rpd == 0
                    && ad <= 0
                    && (t.is_punct("{") || t.is_punct(";") || t.is_ident("where"))
                {
                    break;
                }
                match t.text.as_str() {
                    "<" => ad += 1,
                    "<<" => ad += 2,
                    ">" => ad -= 1,
                    ">>" => ad -= 2,
                    "(" | "[" => rpd += 1,
                    ")" | "]" => rpd -= 1,
                    _ => {}
                }
                self.bump();
            }
            ret = Some(join(&self.toks[ret_start..self.i.min(self.toks.len())]));
        }
        // Skip a where clause.
        while let Some(t) = self.tok(self.i) {
            if t.is_punct("{") || t.is_punct(";") {
                break;
            }
            self.bump();
        }
        // Body range.
        let mut body = None;
        if self.tok(self.i).is_some_and(|t| t.is_punct("{")) {
            let body_start = self.i + 1;
            let mut bd = 0;
            while let Some(t) = self.tok(self.i) {
                if t.is_punct("{") {
                    bd += 1;
                } else if t.is_punct("}") {
                    bd -= 1;
                    if bd == 0 {
                        break;
                    }
                }
                self.bump();
            }
            body = Some((body_start, self.i.min(self.toks.len())));
            self.bump(); // '}'
        }
        self.model.fns.push(FnSig {
            name,
            line,
            is_pub,
            in_test,
            params,
            ret,
            body,
        });
    }

    /// Parses `struct`/`enum` bodies for named fields.
    fn adt(&mut self, item_pub: bool, is_enum: bool) {
        let in_test = self.in_test() || self.pending_cfg_test;
        self.bump(); // 'struct' | 'enum'
        let Some(name_tok) = self.tok(self.i) else {
            return;
        };
        if name_tok.kind != TokKind::Ident {
            return;
        }
        let owner = name_tok.text.clone();
        self.bump();
        if self.tok(self.i).is_some_and(|t| t.is_punct("<")) {
            self.generics();
        }
        // Skip where clause; stop at `{`, `(`, or `;`.
        while let Some(t) = self.tok(self.i) {
            if t.is_punct("{") || t.is_punct("(") || t.is_punct(";") {
                break;
            }
            self.bump();
        }
        let Some(open) = self.tok(self.i) else {
            return;
        };
        if open.is_punct("(") || open.is_punct(";") {
            // Tuple struct / unit struct: no named fields to model.
            return;
        }
        // Braced body.
        self.bump(); // '{'
        if is_enum {
            self.enum_variants(&owner, item_pub, in_test);
        } else {
            self.named_fields(&owner, item_pub, in_test, true);
        }
    }

    /// Parses named fields until the *closing* brace of the current body
    /// (which it consumes). `need_field_pub`: struct fields carry their own
    /// visibility; enum-variant fields inherit the enum's.
    fn named_fields(&mut self, owner: &str, item_pub: bool, in_test: bool, need_field_pub: bool) {
        loop {
            let Some(t) = self.tok(self.i) else { return };
            if t.is_punct("}") {
                self.bump();
                return;
            }
            if t.is_punct("#") {
                self.attr();
                continue;
            }
            let mut field_pub = !need_field_pub;
            if t.is_ident("pub") {
                field_pub = self.vis();
            }
            // name ':' type
            let Some(name_tok) = self.tok(self.i) else {
                return;
            };
            if name_tok.kind != TokKind::Ident {
                self.bump();
                continue;
            }
            let fname = name_tok.text.clone();
            let fline = name_tok.line;
            self.bump();
            if !self.tok(self.i).is_some_and(|t| t.is_punct(":")) {
                continue;
            }
            self.bump(); // ':'
            let ty_start = self.i;
            let mut ad: i64 = 0;
            let mut pd: i64 = 0;
            while let Some(t) = self.tok(self.i) {
                if ad <= 0 && pd == 0 && (t.is_punct(",") || t.is_punct("}")) {
                    break;
                }
                match t.text.as_str() {
                    "<" => ad += 1,
                    "<<" => ad += 2,
                    ">" => ad -= 1,
                    ">>" => ad -= 2,
                    "(" | "[" | "{" => pd += 1,
                    ")" | "]" | "}" => pd -= 1,
                    _ => {}
                }
                self.bump();
            }
            self.model.fields.push(Field {
                owner: owner.to_string(),
                name: fname,
                ty: join(&self.toks[ty_start..self.i.min(self.toks.len())]),
                line: fline,
                is_pub: item_pub && field_pub,
                in_test,
            });
            if self.tok(self.i).is_some_and(|t| t.is_punct(",")) {
                self.bump();
            }
        }
    }

    /// Parses enum variants until the enum's closing brace (consumed).
    fn enum_variants(&mut self, owner: &str, item_pub: bool, in_test: bool) {
        loop {
            let Some(t) = self.tok(self.i) else { return };
            if t.is_punct("}") {
                self.bump();
                return;
            }
            if t.is_punct("#") {
                self.attr();
                continue;
            }
            if t.kind != TokKind::Ident {
                self.bump();
                continue;
            }
            let variant = t.text.clone();
            self.bump();
            match self.tok(self.i) {
                Some(t) if t.is_punct("{") => {
                    self.bump();
                    let qual = format!("{owner}::{variant}");
                    self.named_fields(&qual, item_pub, in_test, false);
                }
                Some(t) if t.is_punct("(") => {
                    // Tuple variant: skip the balanced parens.
                    let mut pd = 0;
                    while let Some(t) = self.tok(self.i) {
                        if t.is_punct("(") {
                            pd += 1;
                        } else if t.is_punct(")") {
                            pd -= 1;
                            self.bump();
                            if pd == 0 {
                                break;
                            }
                            continue;
                        }
                        self.bump();
                    }
                }
                _ => {}
            }
            // Optional discriminant `= expr` then comma.
            while let Some(t) = self.tok(self.i) {
                if t.is_punct(",") {
                    self.bump();
                    break;
                }
                if t.is_punct("}") {
                    break;
                }
                self.bump();
            }
        }
    }
}

/// Splits a parameter token slice on top-level commas into [`Param`]s.
fn split_params(toks: &[Tok]) -> Vec<Param> {
    let mut params = Vec::new();
    let mut start = 0;
    let mut ad: i64 = 0;
    let mut pd: i64 = 0;
    let mut pieces: Vec<&[Tok]> = Vec::new();
    for (k, t) in toks.iter().enumerate() {
        match t.text.as_str() {
            "<" => ad += 1,
            "<<" => ad += 2,
            ">" => ad -= 1,
            ">>" => ad -= 2,
            "(" | "[" | "{" => pd += 1,
            ")" | "]" | "}" => pd -= 1,
            "," if ad <= 0 && pd == 0 => {
                pieces.push(&toks[start..k]);
                start = k + 1;
            }
            _ => {}
        }
    }
    if start < toks.len() {
        pieces.push(&toks[start..]);
    }
    for piece in pieces {
        if piece.is_empty() {
            continue;
        }
        // Top-level ':' splits pattern from type (absent for self).
        let mut colon = None;
        let mut ad: i64 = 0;
        let mut pd: i64 = 0;
        for (k, t) in piece.iter().enumerate() {
            match t.text.as_str() {
                "<" => ad += 1,
                ">" => ad -= 1,
                "(" | "[" | "{" => pd += 1,
                ")" | "]" | "}" => pd -= 1,
                ":" if ad <= 0 && pd == 0 => {
                    colon = Some(k);
                }
                _ => {}
            }
            if colon.is_some() {
                break;
            }
        }
        let (pat, ty) = match colon {
            Some(k) => (&piece[..k], join(&piece[k + 1..])),
            None => (piece, String::new()),
        };
        let names: Vec<String> = pat
            .iter()
            .filter(|t| {
                t.kind == TokKind::Ident && !matches!(t.text.as_str(), "mut" | "ref" | "self")
            })
            .map(|t| t.text.clone())
            .collect();
        params.push(Param {
            names,
            ty,
            line: piece[0].line,
        });
    }
    params
}

/// Space-joined token text.
fn join(toks: &[Tok]) -> String {
    toks.iter()
        .map(|t| t.text.as_str())
        .collect::<Vec<_>>()
        .join(" ")
}

/// Collects the identifiers of `f64`-typed values visible in a function:
/// parameters whose type mentions `f64` and `let` bindings with an
/// explicit `f64` annotation inside the body.
pub fn f64_symbols(sig: &FnSig, toks: &[Tok]) -> Vec<String> {
    let mut syms: Vec<String> = Vec::new();
    for p in &sig.params {
        if type_has_f64(&p.ty) {
            syms.extend(p.names.iter().cloned());
        }
    }
    if let Some((lo, hi)) = sig.body {
        let body = &toks[lo.min(toks.len())..hi.min(toks.len())];
        // `let [mut] name : … f64 … =` — explicit annotation only.
        let mut k = 0;
        while k + 3 < body.len() {
            if body[k].is_ident("let") {
                let mut j = k + 1;
                if body.get(j).is_some_and(|t| t.is_ident("mut")) {
                    j += 1;
                }
                if let (Some(name), Some(colon)) = (body.get(j), body.get(j + 1)) {
                    if name.kind == TokKind::Ident && colon.is_punct(":") {
                        // Annotation runs to the `=` or `;`.
                        let mut m = j + 2;
                        let mut has = false;
                        while let Some(t) = body.get(m) {
                            if t.is_punct("=") || t.is_punct(";") {
                                break;
                            }
                            if t.is_ident("f64") {
                                has = true;
                            }
                            m += 1;
                        }
                        if has {
                            syms.push(name.text.clone());
                        }
                    }
                }
            }
            k += 1;
        }
    }
    syms.sort();
    syms.dedup();
    syms
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn model(src: &str) -> (Model, Vec<Tok>) {
        let l = lex(src);
        (parse(&l.toks), l.toks)
    }

    #[test]
    fn fn_signature_is_modeled() {
        let (m, _) = model(
            "pub fn travel_energy(dist: f64, speed: f64) -> f64 { dist * speed }\nfn helper(x: u32) {}\n",
        );
        assert_eq!(m.fns.len(), 2);
        let f = &m.fns[0];
        assert!(f.is_pub);
        assert_eq!(f.name, "travel_energy");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].names, vec!["dist"]);
        assert_eq!(f.params[0].ty, "f64");
        assert_eq!(f.ret.as_deref(), Some("f64"));
        assert!(!m.fns[1].is_pub);
    }

    #[test]
    fn restricted_visibility_is_not_public() {
        let (m, _) = model("pub(crate) fn secret_energy(e: f64) {}\npub fn open() {}\n");
        assert!(!m.fns[0].is_pub);
        assert!(m.fns[1].is_pub);
    }

    #[test]
    fn generics_and_where_clauses_are_skipped() {
        let (m, _) = model(
            "pub fn pick<T: Ord, F>(items: Vec<Vec<T>>, f: F) -> Option<T> where F: Fn(&T) -> bool { None }",
        );
        assert_eq!(m.fns.len(), 1);
        assert_eq!(m.fns[0].params.len(), 2);
        assert_eq!(m.fns[0].ret.as_deref(), Some("Option < T >"));
    }

    #[test]
    fn struct_and_enum_fields_are_modeled() {
        let (m, _) = model(
            "pub struct Spec { pub energy: f64, name: String }\npub enum E { V { dist: f64 }, T(f64), U }\nstruct Private { pub t: f64 }\n",
        );
        let names: Vec<(&str, &str, bool)> = m
            .fields
            .iter()
            .map(|f| (f.owner.as_str(), f.name.as_str(), f.is_pub))
            .collect();
        assert_eq!(
            names,
            vec![
                ("Spec", "energy", true),
                ("Spec", "name", false),
                ("E::V", "dist", true),
                ("Private", "t", false),
            ]
        );
    }

    #[test]
    fn cfg_test_regions_cover_items() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    pub fn t_energy(t: f64) -> f64 { t }\n}\nfn live2() {}\n";
        let (m, toks) = model(src);
        let t_energy = m.fns.iter().find(|f| f.name == "t_energy").unwrap();
        assert!(t_energy.in_test);
        assert!(!m.fns.iter().find(|f| f.name == "live2").unwrap().in_test);
        assert!(m.line_in_test(&toks, 4));
        assert!(!m.line_in_test(&toks, 6));
    }

    #[test]
    fn f64_symbols_from_params_and_lets() {
        let src = "fn f(a: f64, b: u32, (c, d): (f64, f64)) { let e: f64 = 1.0; let g = 2.0; let mut h: Vec<f64> = vec![]; }";
        let (m, toks) = model(src);
        let syms = f64_symbols(&m.fns[0], &toks);
        // `g` has no annotation; `b` is not f64.
        assert_eq!(syms, vec!["a", "c", "d", "e", "h"]);
    }

    #[test]
    fn ident_word_splitting() {
        assert_eq!(
            ident_words("hover_energy_total"),
            vec!["hover", "energy", "total"]
        );
        assert_eq!(ident_words("tourLen"), vec!["tour", "len"]);
        assert_eq!(ident_words("t"), vec!["t"]);
    }

    #[test]
    fn macro_rules_bodies_do_not_derail() {
        let src = "macro_rules! unit { ($name:ident) => { pub struct $name(pub f64); impl $name { pub fn value(self) -> f64 { self.0 } } }; }\npub fn after() {}\n";
        let (m, _) = model(src);
        // `fn value` inside the macro body still parses (harmless); the
        // key property is that `after` is found and nothing panics.
        assert!(m.fns.iter().any(|f| f.name == "after"));
    }

    #[test]
    fn trait_methods_without_bodies_parse() {
        let (m, _) = model("pub trait P { fn plan(&self, budget: f64) -> f64; }\n");
        let f = m.fns.iter().find(|f| f.name == "plan").unwrap();
        assert!(f.body.is_none());
        assert_eq!(f.params.len(), 2);
    }

    #[test]
    fn fn_qualifiers_do_not_reset_visibility() {
        // `async`/`unsafe`/`const`/`extern "C"` sit between `pub` and `fn`;
        // the parser must carry the visibility across them.
        let (m, _) = model(concat!(
            "pub async fn fetch_batch(n: usize) -> f64 { n as f64 }\n",
            "pub const fn arity() -> usize { 2 }\n",
            "pub unsafe fn raw_read(p: *const f64) -> f64 { *p }\n",
            "pub extern \"C\" fn abi_hook(x: f64) -> f64 { x }\n",
            "async fn private_fetch() {}\n",
        ));
        let vis: Vec<(&str, bool)> = m.fns.iter().map(|f| (f.name.as_str(), f.is_pub)).collect();
        assert_eq!(
            vis,
            vec![
                ("fetch_batch", true),
                ("arity", true),
                ("raw_read", true),
                ("abi_hook", true),
                ("private_fetch", false),
            ]
        );
    }

    #[test]
    fn pub_const_item_does_not_leak_visibility() {
        // A `pub const NAME: T = ...;` item skips the `const` qualifier but
        // the item name must still clear the dangling `pub` so the next
        // private fn stays private.
        let (m, _) = model("pub const BUDGET_J: f64 = 1.0;\nfn consume() {}\n");
        let f = m.fns.iter().find(|f| f.name == "consume").unwrap();
        assert!(!f.is_pub);
    }

    #[test]
    fn impl_trait_return_is_modeled_verbatim() {
        let (m, _) = model(
            "pub fn route_iter(n: usize) -> impl Iterator<Item = f64> { (0..n).map(|i| i as f64) }\nfn after() {}\n",
        );
        let f = m.fns.iter().find(|f| f.name == "route_iter").unwrap();
        let ret = f.ret.as_deref().unwrap();
        assert!(ret.contains("impl"), "ret was {ret:?}");
        assert!(ret.contains("Iterator"), "ret was {ret:?}");
        // The opaque return type must not swallow the following item.
        assert!(m.fns.iter().any(|f| f.name == "after"));
    }

    #[test]
    fn nested_closures_stay_inside_owning_fn() {
        // Closures are deliberately opaque to the call graph: calls inside
        // them attribute to the owning fn, and closure params never become
        // fns of their own.
        let src = "fn score(xs: &[f64]) -> f64 {\n    let outer = |a: f64| {\n        let inner = |b: f64| b * 2.0;\n        inner(a) + 1.0\n    };\n    xs.iter().map(|x| outer(*x)).sum()\n}\nfn tail() {}\n";
        let (m, _) = model(src);
        let names: Vec<&str> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["score", "tail"]);
        let score = &m.fns[0];
        let (b0, b1) = score.body.unwrap();
        assert!(b1 > b0);
    }

    #[test]
    fn chained_generic_method_calls_do_not_derail() {
        // Method chains through turbofish generics (`collect::<Vec<_>>()`)
        // must not confuse the `<`/`>` skipper into eating the next item.
        let src = "pub fn gather(xs: &[u32]) -> Vec<f64> {\n    xs.iter().map(|x| *x as f64).filter(|v| *v > 0.0).collect::<Vec<f64>>()\n}\npub fn sentinel() {}\n";
        let (m, _) = model(src);
        let names: Vec<&str> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["gather", "sentinel"]);
        assert!(m.fns.iter().all(|f| f.is_pub));
    }
}
