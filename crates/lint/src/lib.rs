//! `uavdc-lint` — dependency-free static analysis for the uavdc workspace.
//!
//! The planners' correctness rests on numeric invariants from the paper
//! (energy feasibility, metric closure of the auxiliary orienteering
//! graph, data conservation across virtual hovering locations). Those
//! invariants are easy to violate silently with three recurring Rust
//! hazards, which this tool machine-checks on every `.rs` file in the
//! workspace:
//!
//! * [`Rule::FloatOrd`] — `partial_cmp` comparators (NaN-unsafe; panic
//!   or scramble orderings) and `==`/`!=` against float literals.
//!   The one approved home for float ordering is
//!   `uavdc_geom::{cmp_f64, cmp_f64_desc, TotalF64}`.
//! * [`Rule::PanicSite`] — `unwrap()/expect()/panic!/unreachable!/...`
//!   in library code, which can abort a planner mid-tour. Allowed in
//!   tests, benches, examples, and binaries.
//! * [`Rule::Nondeterminism`] — `thread_rng`/`from_entropy` (unseeded
//!   randomness) and `HashMap`/`HashSet` (iteration order can leak into
//!   planner output) in library code.
//!
//! Findings are reported as `path:line: rule: message`, one per line.
//! A finding is suppressed with a pragma comment on the same line or
//! the line directly above:
//!
//! ```text
//! // lint:allow(panic-site): index is in range by construction of `order`
//! ```
//!
//! The reason after the colon is mandatory, and pragmas that suppress
//! nothing are themselves reported ([`Rule::UnusedAllow`]), so stale
//! suppressions cannot accumulate.
//!
//! Exit codes of the CLI: `0` clean, `1` findings, `2` I/O or usage
//! error.

use std::fmt;
use std::path::{Path, PathBuf};

/// The violation classes checked by this tool.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Rule {
    /// NaN-unsafe float ordering: `partial_cmp` outside the approved
    /// helper module, or `==`/`!=` against a float literal.
    FloatOrd,
    /// `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!`
    /// in library code.
    PanicSite,
    /// Unseeded randomness or hash-order-dependent containers in
    /// library code.
    Nondeterminism,
    /// A `lint:allow` pragma that suppressed nothing.
    UnusedAllow,
    /// A `lint:allow` pragma without a rule name or without a reason.
    MalformedAllow,
}

impl Rule {
    /// Stable machine-readable rule name, as used inside `lint:allow(..)`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::FloatOrd => "float-ord",
            Rule::PanicSite => "panic-site",
            Rule::Nondeterminism => "nondeterminism",
            Rule::UnusedAllow => "unused-allow",
            Rule::MalformedAllow => "malformed-allow",
        }
    }

    /// Parse a rule name as written in a pragma.
    pub fn from_name(name: &str) -> Option<Rule> {
        match name {
            "float-ord" => Some(Rule::FloatOrd),
            "panic-site" => Some(Rule::PanicSite),
            "nondeterminism" => Some(Rule::Nondeterminism),
            "unused-allow" => Some(Rule::UnusedAllow),
            "malformed-allow" => Some(Rule::MalformedAllow),
            _ => None,
        }
    }

    /// All rules that scan source directly (pragma meta-rules excluded).
    pub fn all_source_rules() -> [Rule; 3] {
        [Rule::FloatOrd, Rule::PanicSite, Rule::Nondeterminism]
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How a file's contents are classified, which decides rule applicability.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileKind {
    /// Library source: every rule applies.
    Library,
    /// Tests, benches, examples, binaries: panic and nondeterminism
    /// rules are relaxed; float ordering still applies.
    TestLike,
}

/// Classify a workspace-relative path.
pub fn classify(path: &Path) -> FileKind {
    let p = path.to_string_lossy().replace('\\', "/");
    let test_like = ["/tests/", "/benches/", "/examples/", "/bin/"];
    if test_like.iter().any(|m| p.contains(m))
        || p.starts_with("tests/")
        || p.starts_with("benches/")
        || p.starts_with("examples/")
        || p.ends_with("/main.rs")
        || p.ends_with("build.rs")
    {
        FileKind::TestLike
    } else {
        FileKind::Library
    }
}

/// One reported violation.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Violated rule.
    pub rule: Rule,
    /// Human-readable explanation with the offending token.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

impl Finding {
    /// Machine-readable single-line JSON rendering.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"path\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
            json_escape(&self.path.to_string_lossy()),
            self.line,
            self.rule,
            json_escape(&self.message)
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A source line split into its code part and its comment part.
#[derive(Debug, Default, Clone)]
struct SplitLine {
    code: String,
    comment: String,
}

/// Strip strings and split comments from code, line by line. Handles
/// line comments, nested block comments, string literals (with escapes),
/// raw strings (`r"…"`, `r#"…"#`), char literals, and lifetimes well
/// enough for token-level linting. String/char contents are blanked
/// from the code channel so their bytes never match a rule.
fn split_source(source: &str) -> Vec<SplitLine> {
    #[derive(PartialEq)]
    enum State {
        Normal,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let mut out: Vec<SplitLine> = Vec::new();
    let mut cur = SplitLine::default();
    let mut state = State::Normal;
    let bytes: Vec<char> = source.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        if c == '\n' {
            if state == State::LineComment {
                state = State::Normal;
            }
            out.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match state {
            State::Normal => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    i += 2;
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    i += 2;
                }
                '"' => {
                    cur.code.push('"');
                    state = State::Str;
                    i += 1;
                }
                'r' if next == Some('"')
                    || (next == Some('#') && raw_str_hashes(&bytes, i + 1).is_some()) =>
                {
                    let hashes = if next == Some('"') {
                        0
                    } else {
                        raw_str_hashes(&bytes, i + 1).unwrap_or(0)
                    };
                    cur.code.push('"');
                    state = State::RawStr(hashes);
                    i += 2 + hashes as usize;
                }
                '\'' => {
                    // Distinguish char literal from lifetime: a lifetime
                    // is `'ident` not followed by a closing quote.
                    if is_char_literal(&bytes, i) {
                        cur.code.push('\'');
                        state = State::Char;
                    } else {
                        cur.code.push('\'');
                    }
                    i += 1;
                }
                c => {
                    cur.code.push(c);
                    i += 1;
                }
            },
            State::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Normal
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            State::Str => match c {
                '\\' => {
                    // Keep line numbers aligned across escaped-newline
                    // string continuations.
                    if next == Some('\n') {
                        out.push(std::mem::take(&mut cur));
                    }
                    i += 2;
                }
                '"' => {
                    cur.code.push('"');
                    state = State::Normal;
                    i += 1;
                }
                _ => i += 1,
            },
            State::RawStr(hashes) => {
                if c == '"' && closes_raw_str(&bytes, i, hashes) {
                    cur.code.push('"');
                    state = State::Normal;
                    i += 1 + hashes as usize;
                } else {
                    i += 1;
                }
            }
            State::Char => match c {
                '\\' => i += 2,
                '\'' => {
                    cur.code.push('\'');
                    state = State::Normal;
                    i += 1;
                }
                _ => i += 1,
            },
        }
    }
    out.push(cur);
    out
}

fn raw_str_hashes(bytes: &[char], from: usize) -> Option<u32> {
    let mut n = 0;
    let mut i = from;
    while bytes.get(i) == Some(&'#') {
        n += 1;
        i += 1;
    }
    if n > 0 && bytes.get(i) == Some(&'"') {
        Some(n)
    } else {
        None
    }
}

fn closes_raw_str(bytes: &[char], quote_at: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| bytes.get(quote_at + k) == Some(&'#'))
}

fn is_char_literal(bytes: &[char], quote_at: usize) -> bool {
    // 'x' or '\x' / '\u{..}': look for a closing quote within a short
    // window; lifetimes ('a, 'static) have none.
    let mut i = quote_at + 1;
    if bytes.get(i) == Some(&'\\') {
        return true;
    }
    let mut steps = 0;
    while let Some(&c) = bytes.get(i) {
        if c == '\'' {
            return steps == 1;
        }
        if c == '\n' || steps > 1 {
            return false;
        }
        i += 1;
        steps += 1;
    }
    false
}

/// A parsed `lint:allow(rule): reason` pragma.
#[derive(Debug)]
struct Allow {
    line: usize,
    rule: Option<Rule>,
    has_reason: bool,
    used: bool,
    raw: String,
}

fn parse_allows(lines: &[SplitLine]) -> Vec<Allow> {
    let mut allows = Vec::new();
    for (idx, l) in lines.iter().enumerate() {
        // Only a comment that *is* a pragma counts; prose that merely
        // mentions `lint:allow` (docs, this file) is ignored.
        let comment = l.comment.trim();
        if !comment.starts_with("lint:allow") {
            continue;
        }
        let pos = 0;
        let rest = &comment[pos + "lint:allow".len()..];
        let mut rule = None;
        let mut has_reason = false;
        if let Some(open) = rest.find('(') {
            if let Some(close) = rest.find(')') {
                if close > open {
                    rule = Rule::from_name(rest[open + 1..close].trim());
                    if let Some(colon) = rest[close..].find(':') {
                        has_reason = !rest[close + colon + 1..].trim().is_empty();
                    }
                }
            }
        }
        allows.push(Allow {
            line: idx + 1,
            rule,
            has_reason,
            used: false,
            raw: comment[pos..].trim().to_string(),
        });
    }
    allows
}

/// Check whether `finding_line` (1-based) is suppressed for `rule`,
/// marking the pragma used. A pragma acts on its own line and the line
/// directly below it.
fn is_allowed(allows: &mut [Allow], rule: Rule, finding_line: usize) -> bool {
    for a in allows.iter_mut() {
        if a.rule == Some(rule)
            && a.has_reason
            && (a.line == finding_line || a.line + 1 == finding_line)
        {
            a.used = true;
            return true;
        }
    }
    false
}

/// Token-level scan state shared by the rules: tracks brace depth and
/// `#[cfg(test)]` regions so in-file unit-test modules are exempt from
/// the library-only rules.
struct Regions {
    depth: i64,
    pending_cfg_test: bool,
    /// While `Some(d)`, code at depth > d belongs to a test region.
    test_above: Option<i64>,
}

impl Regions {
    fn new() -> Self {
        Regions {
            depth: 0,
            pending_cfg_test: false,
            test_above: None,
        }
    }

    /// Advance over one code line; returns whether the *start* of this
    /// line is inside a `#[cfg(test)]` region.
    fn advance(&mut self, code: &str) -> bool {
        let in_test_at_start = self.test_above.is_some_and(|d| self.depth > d);
        if code.contains("#[cfg(test)]") && self.test_above.is_none() {
            self.pending_cfg_test = true;
        }
        for c in code.chars() {
            match c {
                '{' => {
                    if self.pending_cfg_test && self.test_above.is_none() {
                        self.test_above = Some(self.depth);
                        self.pending_cfg_test = false;
                    }
                    self.depth += 1;
                }
                '}' => {
                    self.depth -= 1;
                    if let Some(d) = self.test_above {
                        if self.depth <= d {
                            self.test_above = None;
                        }
                    }
                }
                _ => {}
            }
        }
        in_test_at_start || self.test_above.is_some_and(|d| self.depth > d)
    }
}

/// Does this code line compare against a float literal with `==`/`!=`?
/// Returns the offending literal when found.
fn float_eq_literal(code: &str) -> Option<String> {
    let chars: Vec<char> = code.chars().collect();
    let n = chars.len();
    let mut i = 0;
    while i + 1 < n {
        let (a, b) = (chars[i], chars[i + 1]);
        let is_eq = (a == '=' || a == '!') && b == '=';
        // Skip `<=`, `>=`, `==` as part of `===`-like runs (not Rust),
        // and `=>`/`->`.
        let prev = if i > 0 { chars[i - 1] } else { ' ' };
        if is_eq && prev != '<' && prev != '>' && prev != '=' && chars.get(i + 2) != Some(&'=') {
            let left = token_before(&chars, i);
            let right = token_after(&chars, i + 2);
            for tok in [left, right].into_iter().flatten() {
                if is_float_literal(&tok) {
                    return Some(tok);
                }
            }
        }
        i += 1;
    }
    None
}

fn token_before(chars: &[char], mut i: usize) -> Option<String> {
    while i > 0 && chars[i - 1] == ' ' {
        i -= 1;
    }
    let end = i;
    while i > 0
        && (chars[i - 1].is_ascii_alphanumeric() || chars[i - 1] == '.' || chars[i - 1] == '_')
    {
        i -= 1;
    }
    if i == end {
        None
    } else {
        Some(chars[i..end].iter().collect())
    }
}

fn token_after(chars: &[char], mut i: usize) -> Option<String> {
    while i < chars.len() && chars[i] == ' ' {
        i += 1;
    }
    if chars.get(i) == Some(&'-') {
        i += 1;
    }
    let start = i;
    while i < chars.len()
        && (chars[i].is_ascii_alphanumeric() || chars[i] == '.' || chars[i] == '_')
    {
        i += 1;
    }
    if i == start {
        None
    } else {
        Some(chars[start..i].iter().collect())
    }
}

fn is_float_literal(tok: &str) -> bool {
    let t = tok
        .trim_end_matches("f64")
        .trim_end_matches("f32")
        .trim_end_matches('_');
    if t.is_empty() {
        return false;
    }
    let mut saw_digit = false;
    let mut saw_dot = false;
    for c in t.chars() {
        match c {
            '0'..='9' => saw_digit = true,
            '.' => {
                if saw_dot {
                    return false; // method chain like `a.b.c`
                }
                saw_dot = true;
            }
            '_' => {}
            'e' | 'E' => {} // exponent
            _ => return false,
        }
    }
    saw_digit && (saw_dot || tok.ends_with("f64") || tok.ends_with("f32"))
}

const PANIC_TOKENS: [&str; 6] = [
    ".unwrap()",
    ".expect(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
];

const NONDET_TOKENS: [&str; 5] = [
    "thread_rng",
    "from_entropy",
    "HashMap",
    "HashSet",
    "RandomState",
];

/// Paths (workspace-relative, `/`-separated) where `float-ord` does not
/// apply: the approved total-order helper itself.
const FLOAT_ORD_EXEMPT: [&str; 1] = ["crates/geom/src/order.rs"];

/// Scan one file's contents. `display_path` is used for reports and for
/// the `float-ord` exemption; `kind` decides which rules apply.
pub fn scan_source(display_path: &Path, source: &str, kind: FileKind) -> Vec<Finding> {
    let lines = split_source(source);
    let mut allows = parse_allows(&lines);
    let mut findings = Vec::new();
    let norm = display_path.to_string_lossy().replace('\\', "/");
    let float_ord_exempt = FLOAT_ORD_EXEMPT.iter().any(|p| norm.ends_with(p));
    let mut regions = Regions::new();

    for (idx, l) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let in_test = regions.advance(&l.code);
        let code = l.code.as_str();

        // float-ord: applies to all code, test or not.
        if !float_ord_exempt {
            if code.contains("partial_cmp") && !is_allowed(&mut allows, Rule::FloatOrd, lineno) {
                findings.push(Finding {
                    path: display_path.to_path_buf(),
                    line: lineno,
                    rule: Rule::FloatOrd,
                    message: "`partial_cmp` is NaN-unsafe; use uavdc_geom::cmp_f64 / cmp_f64_desc / TotalF64".into(),
                });
            }
            if let Some(lit) = float_eq_literal(code) {
                if !is_allowed(&mut allows, Rule::FloatOrd, lineno) {
                    findings.push(Finding {
                        path: display_path.to_path_buf(),
                        line: lineno,
                        rule: Rule::FloatOrd,
                        message: format!(
                            "exact float comparison against `{lit}`; compare with a tolerance (uavdc_geom::approx_eq) or justify with lint:allow"
                        ),
                    });
                }
            }
        }

        let library_code = kind == FileKind::Library && !in_test;

        if library_code {
            for tok in PANIC_TOKENS {
                if code.contains(tok) && !is_allowed(&mut allows, Rule::PanicSite, lineno) {
                    findings.push(Finding {
                        path: display_path.to_path_buf(),
                        line: lineno,
                        rule: Rule::PanicSite,
                        message: format!(
                            "`{}` in library code can abort a planner mid-tour; return a typed error or justify with lint:allow",
                            tok.trim_start_matches('.')
                        ),
                    });
                    break; // one panic finding per line is enough
                }
            }
            for tok in NONDET_TOKENS {
                if code.contains(tok) && !is_allowed(&mut allows, Rule::Nondeterminism, lineno) {
                    findings.push(Finding {
                        path: display_path.to_path_buf(),
                        line: lineno,
                        rule: Rule::Nondeterminism,
                        message: format!(
                            "`{tok}` is a nondeterminism hazard (unseeded RNG or hash-order iteration); use seeded RNGs / BTree containers or justify with lint:allow"
                        ),
                    });
                    break;
                }
            }
        }
    }

    // Meta-rules: malformed or unused pragmas.
    for a in &allows {
        if a.rule.is_none() || !a.has_reason {
            findings.push(Finding {
                path: display_path.to_path_buf(),
                line: a.line,
                rule: Rule::MalformedAllow,
                message: format!(
                    "pragma `{}` must be `lint:allow(<rule>): <reason>` with a known rule and a non-empty reason",
                    a.raw
                ),
            });
        } else if !a.used {
            findings.push(Finding {
                path: display_path.to_path_buf(),
                line: a.line,
                rule: Rule::UnusedAllow,
                message: format!("pragma `{}` suppresses nothing; remove it", a.raw),
            });
        }
    }

    findings.sort_by_key(|x| x.line);
    findings
}

/// Recursively collect workspace `.rs` files under `root`, skipping
/// build output and VCS metadata.
pub fn collect_rs_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target"
                    || name == ".git"
                    || name == "results"
                    || name == "results_quick"
                {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Scan every `.rs` file under `root` (classification by path) and
/// return all findings, sorted by path then line.
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for file in collect_rs_files(root)? {
        let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
        let source = std::fs::read_to_string(&file)?;
        findings.extend(scan_source(&rel, &source, classify(&rel)));
    }
    findings.sort_by(|a, b| a.path.cmp(&b.path).then(a.line.cmp(&b.line)));
    Ok(findings)
}

/// CLI entry point. Returns the process exit code.
///
/// Usage: `uavdc-lint [--json] [--list-rules] [paths…]`. With no paths,
/// scans the workspace this crate is part of. Explicit paths are
/// scanned with `Library` strictness regardless of location, so
/// fixture files under `tests/` still produce findings.
pub fn run_cli() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    for a in &args {
        match a.as_str() {
            "--json" => json = true,
            "--list-rules" => {
                for r in Rule::all_source_rules() {
                    println!("{r}");
                }
                println!("{}", Rule::UnusedAllow);
                println!("{}", Rule::MalformedAllow);
                return 0;
            }
            "--help" | "-h" => {
                println!("usage: uavdc-lint [--json] [--list-rules] [paths...]");
                println!("exit codes: 0 clean, 1 findings, 2 error");
                return 0;
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag: {flag}");
                return 2;
            }
            p => paths.push(PathBuf::from(p)),
        }
    }

    let findings = if paths.is_empty() {
        let root = workspace_root();
        match scan_workspace(&root) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("uavdc-lint: scanning {}: {e}", root.display());
                return 2;
            }
        }
    } else {
        let mut all = Vec::new();
        for p in &paths {
            let targets = if p.is_dir() {
                match collect_rs_files(p) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("uavdc-lint: reading {}: {e}", p.display());
                        return 2;
                    }
                }
            } else {
                vec![p.clone()]
            };
            for t in targets {
                match std::fs::read_to_string(&t) {
                    Ok(src) => all.extend(scan_source(&t, &src, FileKind::Library)),
                    Err(e) => {
                        eprintln!("uavdc-lint: reading {}: {e}", t.display());
                        return 2;
                    }
                }
            }
        }
        all
    };

    for f in &findings {
        if json {
            println!("{}", f.to_json());
        } else {
            println!("{f}");
        }
    }
    if findings.is_empty() {
        eprintln!("uavdc-lint: clean");
        0
    } else {
        eprintln!("uavdc-lint: {} finding(s)", findings.len());
        1
    }
}

/// The workspace root, resolved from this crate's manifest directory at
/// compile time (`crates/lint` → two levels up).
pub fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan_lib(src: &str) -> Vec<Finding> {
        scan_source(Path::new("crates/demo/src/lib.rs"), src, FileKind::Library)
    }

    #[test]
    fn flags_float_ord_hazards() {
        let src = "fn f(v: &mut Vec<f64>) {\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n    if v[0] == 0.5 {}\n}\n";
        let f = scan_lib(src);
        assert!(f.iter().any(|x| x.rule == Rule::FloatOrd && x.line == 2));
        assert!(f.iter().any(|x| x.rule == Rule::FloatOrd && x.line == 3));
        // line 2 also has .unwrap() => panic-site
        assert!(f.iter().any(|x| x.rule == Rule::PanicSite && x.line == 2));
    }

    #[test]
    fn float_eq_detects_literals_not_ints_or_methods() {
        assert!(float_eq_literal("x == 0.0").is_some());
        assert!(float_eq_literal("0.5f64 != y").is_some());
        assert!(float_eq_literal("x == 1e-9").is_none()); // no dot, suffix-less: ambiguous, skipped
        assert!(float_eq_literal("n == 3").is_none());
        assert!(float_eq_literal("a.b == c.d").is_none());
        assert!(float_eq_literal("x <= 0.5").is_none());
        assert!(float_eq_literal("x >= 0.5").is_none());
    }

    #[test]
    fn panic_rule_skips_tests_benches_and_cfg_test_modules() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u8>.unwrap(); }\n}\n";
        assert!(
            scan_lib(src).iter().all(|x| x.rule != Rule::PanicSite),
            "cfg(test) module must be exempt"
        );
        let f = scan_source(
            Path::new("crates/demo/tests/t.rs"),
            "fn g() { None::<u8>.unwrap(); }\n",
            classify(Path::new("crates/demo/tests/t.rs")),
        );
        assert!(f.is_empty(), "integration tests are exempt: {f:?}");
    }

    #[test]
    fn nondeterminism_rule_flags_hash_containers_and_unseeded_rngs() {
        let src = "use std::collections::HashMap;\nfn f() { let _ = rand::thread_rng(); }\n";
        let f = scan_lib(src);
        assert_eq!(
            f.iter().filter(|x| x.rule == Rule::Nondeterminism).count(),
            2
        );
    }

    #[test]
    fn allow_pragma_suppresses_and_requires_reason() {
        let ok = "fn f(x: Option<u8>) -> u8 {\n    // lint:allow(panic-site): checked non-empty above\n    x.unwrap()\n}\n";
        assert!(scan_lib(ok).is_empty(), "{:?}", scan_lib(ok));

        let no_reason =
            "fn f(x: Option<u8>) -> u8 {\n    // lint:allow(panic-site)\n    x.unwrap()\n}\n";
        let f = scan_lib(no_reason);
        assert!(f.iter().any(|x| x.rule == Rule::MalformedAllow));
        assert!(
            f.iter().any(|x| x.rule == Rule::PanicSite),
            "malformed pragma must not suppress"
        );

        let unused = "// lint:allow(panic-site): nothing here\nfn f() {}\n";
        let f = scan_lib(unused);
        assert!(f.iter().any(|x| x.rule == Rule::UnusedAllow));
    }

    #[test]
    fn comments_and_strings_never_match() {
        let src = "// a.partial_cmp(b).unwrap() in a comment\nfn f() -> &'static str { \"partial_cmp .unwrap() HashMap\" }\n/* block .expect( */\n";
        assert!(scan_lib(src).is_empty(), "{:?}", scan_lib(src));
    }

    #[test]
    fn char_literals_and_lifetimes_do_not_confuse_the_lexer() {
        let src = "fn f<'a>(s: &'a str) -> char {\n    let c = '\"';\n    let _x: &'static str = s;\n    c\n}\nfn g() { None::<u8>.unwrap(); }\n";
        let f = scan_lib(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::PanicSite);
        assert_eq!(f[0].line, 6);
    }

    #[test]
    fn classify_paths() {
        assert_eq!(
            classify(Path::new("crates/core/src/alg1.rs")),
            FileKind::Library
        );
        assert_eq!(
            classify(Path::new("crates/core/tests/x.rs")),
            FileKind::TestLike
        );
        assert_eq!(
            classify(Path::new("crates/bench/benches/fig3.rs")),
            FileKind::TestLike
        );
        assert_eq!(
            classify(Path::new("examples/smart_city.rs")),
            FileKind::TestLike
        );
        assert_eq!(classify(Path::new("src/bin/uavdc.rs")), FileKind::TestLike);
        assert_eq!(classify(Path::new("src/lib.rs")), FileKind::Library);
        assert_eq!(
            classify(Path::new("tests/energy_feasibility.rs")),
            FileKind::TestLike
        );
    }
}
