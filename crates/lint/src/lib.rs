//! `uavdc-lint` — dependency-free semantic analysis for the uavdc
//! workspace.
//!
//! The planners' correctness rests on numeric invariants from the paper
//! (energy feasibility, metric closure of the auxiliary orienteering
//! graph, data conservation across virtual hovering locations). Those
//! invariants are easy to violate silently with recurring Rust hazards,
//! which this tool machine-checks on every `.rs` file in the workspace.
//!
//! Since PR 3 the tool is a lightweight *semantic* analyzer, not a token
//! grepper: a real lexer ([`lexer`]) produces the single token stream all
//! rules consume (string/comment bytes can never match a rule), and an
//! item-level parser ([`parser`]) models `fn` signatures, `struct`/`enum`
//! fields, and `#[cfg(test)]` regions so rules can reason about
//! visibility, types, and parameter names.
//!
//! Rules:
//!
//! * [`Rule::FloatOrd`] — `partial_cmp` comparators (NaN-unsafe) and
//!   `==`/`!=` against float literals. The one approved home for float
//!   ordering is `uavdc_geom::{cmp_f64, cmp_f64_desc, TotalF64}`.
//! * [`Rule::PanicSite`] — `unwrap()/expect()/panic!/unreachable!/...`
//!   in library code, which can abort a planner mid-tour.
//! * [`Rule::Nondeterminism`] — `thread_rng`/`from_entropy` (unseeded
//!   randomness) and `HashMap`/`HashSet` (iteration order can leak into
//!   planner output) in library code.
//! * [`Rule::RawQuantity`] — public signatures/fields in the planner
//!   crates that take or return bare `f64` under a dimension-vocabulary
//!   name (`energy`, `budget`, `dist`, `len`, `speed`, …) instead of the
//!   `uavdc-net::units` newtypes (`Joules`, `Meters`, `Seconds`, …).
//! * [`Rule::UnitUnwrap`] — `.value()` / `Unit(..).0` escapes from the
//!   unit layer outside the declared perf-critical modules.
//! * [`Rule::FloatEq`] — `==`/`!=`/`assert_eq!` on `f64` values outside
//!   `#[cfg(test)]`.
//! * [`Rule::EnvRead`] — `env::var` outside the sanctioned threading
//!   helper, so planner behaviour cannot depend on ambient state.
//!
//! Since PR 6 the tool is *workspace-wide*: a resolver ([`resolve`])
//! maps every `fn` to a `(crate, module)` coordinate and resolves call
//! sites across crates, a call-graph builder ([`callgraph`]) attaches
//! local hazard sites to each function, and a fixed-point dataflow
//! layer ([`dataflow`]) propagates them. Four interprocedural rules run
//! on top (introduced with JSON schema `uavdc-lint/3`):
//!
//! * [`Rule::EffectTaint`] — nondeterminism sources (time, unseeded
//!   RNG, hash-order iteration, env reads) reachable from public
//!   planner entry points, with the shortest witness call path.
//! * [`Rule::PanicReach`] — panic and non-audited indexing sites
//!   reachable from planner entry points, same witness format.
//! * [`Rule::UnitFlow`] — raw `f64` produced by `.value()` escapes
//!   tracked across function boundaries until re-wrapped in a unit
//!   newtype.
//! * [`Rule::ObsTwin`] — every `_obs` twin must have a plain sibling
//!   that cleanly delegates to it (recorder invisibility coherence).
//!
//! Since PR 8 a concurrency layer ([`concurrency`], JSON schema
//! `uavdc-lint/4`) adds spawn/lock/atomic hazard inventories to the
//! call graph and four more interprocedural rules:
//!
//! * [`Rule::ParPurity`] — closures and comparators handed to the
//!   chunked parallel engines must be capture-clean and effect-pure.
//! * [`Rule::LockAcrossSpawn`] — no guard live across a spawn, no
//!   re-entrant lock, no lock-order cycle.
//! * [`Rule::AtomicOrdering`] — no `Ordering::Relaxed` reachable from a
//!   planner entry point (timing-only counters are pragma-allowlisted).
//! * [`Rule::SharedAccumulator`] — no scheduler-order-dependent
//!   `fetch_add` / `lock().push()` accumulation inside spawned closures.
//!
//! Findings are reported as `path:line: rule: message`, one per line.
//! A finding is suppressed with a pragma comment on the same line or the
//! line directly above (doc comments are never pragmas):
//!
//! ```text
//! // lint:allow(panic-site): index is in range by construction of `order`
//! ```
//!
//! The reason after the colon is mandatory, and pragmas that suppress
//! nothing are themselves reported ([`Rule::UnusedAllow`]), so stale
//! suppressions cannot accumulate.
//!
//! Exit codes of the CLI: `0` clean, `1` findings, `2` I/O or usage
//! error.

pub mod callgraph;
pub mod concurrency;
pub mod dataflow;
pub mod lexer;
pub mod parser;
pub mod resolve;

use lexer::{Comment, Tok, TokKind};
use std::fmt;
use std::path::{Path, PathBuf};

/// The violation classes checked by this tool.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rule {
    /// NaN-unsafe float ordering: `partial_cmp` outside the approved
    /// helper module, or `==`/`!=` against a float literal.
    FloatOrd,
    /// `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!`
    /// in library code.
    PanicSite,
    /// Unseeded randomness or hash-order-dependent containers in
    /// library code.
    Nondeterminism,
    /// Bare `f64` under a dimension-vocabulary name in a public
    /// signature or field of a planner crate.
    RawQuantity,
    /// `.value()` / `Unit(..).0` escape from the unit layer outside a
    /// declared perf-critical module.
    UnitUnwrap,
    /// `==`/`!=`/`assert_eq!` on `f64` values outside `#[cfg(test)]`.
    FloatEq,
    /// `env::var` outside the sanctioned configuration helpers.
    EnvRead,
    /// A nondeterminism source (time, unseeded RNG, hash order, env)
    /// reachable from a public planner entry point through the call
    /// graph.
    EffectTaint,
    /// A panic or indexing site reachable from a public planner entry
    /// point through the call graph.
    PanicReach,
    /// A raw `f64` produced by a unit escape (`.value()` / `Unit(..).0`)
    /// crossing a function boundary without re-entering a unit newtype.
    UnitFlow,
    /// An `_obs` twin whose plain wrapper does not cleanly delegate to
    /// it (recorder-invisibility coherence).
    ObsTwin,
    /// A closure (or named comparator) passed to a chunked parallel
    /// engine that captures interior-mutable state, writes its captures,
    /// or can reach an effect source through the call graph.
    ParPurity,
    /// A `MutexGuard` live across a spawn site, a re-entrant lock
    /// acquisition while the guard is held, or a lock-order cycle.
    LockAcrossSpawn,
    /// An `Ordering::Relaxed` atomic access reachable from a public
    /// planner entry point.
    AtomicOrdering,
    /// A `fetch_add`-family or `lock().push()` accumulation inside a
    /// spawned closure whose merge order is scheduler-dependent.
    SharedAccumulator,
    /// A `lint:allow` pragma that suppressed nothing.
    UnusedAllow,
    /// A `lint:allow` pragma without a rule name or without a reason.
    MalformedAllow,
}

impl Rule {
    /// Stable machine-readable rule name, as used inside `lint:allow(..)`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::FloatOrd => "float-ord",
            Rule::PanicSite => "panic-site",
            Rule::Nondeterminism => "nondeterminism",
            Rule::RawQuantity => "raw-quantity",
            Rule::UnitUnwrap => "unit-unwrap",
            Rule::FloatEq => "float-eq",
            Rule::EnvRead => "env-read",
            Rule::EffectTaint => "effect-taint",
            Rule::PanicReach => "panic-reach",
            Rule::UnitFlow => "unit-flow",
            Rule::ObsTwin => "obs-twin",
            Rule::ParPurity => "par-purity",
            Rule::LockAcrossSpawn => "lock-across-spawn",
            Rule::AtomicOrdering => "atomic-ordering",
            Rule::SharedAccumulator => "shared-accumulator",
            Rule::UnusedAllow => "unused-allow",
            Rule::MalformedAllow => "malformed-allow",
        }
    }

    /// Parse a rule name as written in a pragma.
    pub fn from_name(name: &str) -> Option<Rule> {
        match name {
            "float-ord" => Some(Rule::FloatOrd),
            "panic-site" => Some(Rule::PanicSite),
            "nondeterminism" => Some(Rule::Nondeterminism),
            "raw-quantity" => Some(Rule::RawQuantity),
            "unit-unwrap" => Some(Rule::UnitUnwrap),
            "float-eq" => Some(Rule::FloatEq),
            "env-read" => Some(Rule::EnvRead),
            "effect-taint" => Some(Rule::EffectTaint),
            "panic-reach" => Some(Rule::PanicReach),
            "unit-flow" => Some(Rule::UnitFlow),
            "obs-twin" => Some(Rule::ObsTwin),
            "par-purity" => Some(Rule::ParPurity),
            "lock-across-spawn" => Some(Rule::LockAcrossSpawn),
            "atomic-ordering" => Some(Rule::AtomicOrdering),
            "shared-accumulator" => Some(Rule::SharedAccumulator),
            "unused-allow" => Some(Rule::UnusedAllow),
            "malformed-allow" => Some(Rule::MalformedAllow),
            _ => None,
        }
    }

    /// All rules that scan source directly (pragma meta-rules excluded):
    /// the seven per-file rules, the four interprocedural rules of
    /// schema `uavdc-lint/3`, and the four concurrency rules added by
    /// schema `uavdc-lint/4`.
    pub fn all_source_rules() -> [Rule; 15] {
        [
            Rule::FloatOrd,
            Rule::PanicSite,
            Rule::Nondeterminism,
            Rule::RawQuantity,
            Rule::UnitUnwrap,
            Rule::FloatEq,
            Rule::EnvRead,
            Rule::EffectTaint,
            Rule::PanicReach,
            Rule::UnitFlow,
            Rule::ObsTwin,
            Rule::ParPurity,
            Rule::LockAcrossSpawn,
            Rule::AtomicOrdering,
            Rule::SharedAccumulator,
        ]
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How a file's contents are classified, which decides rule applicability.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileKind {
    /// Library source: every rule applies.
    Library,
    /// Tests, benches, examples, binaries: panic and nondeterminism
    /// rules are relaxed; float ordering still applies.
    TestLike,
}

/// Whether path-based crate scoping applies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScanScope {
    /// Workspace scan: the crate-scoped rules (`raw-quantity`,
    /// `unit-unwrap`) only fire inside their declared crates.
    Workspace,
    /// Explicit-path scan (CLI arguments, fixtures): every rule fires
    /// regardless of crate, so fixture files exercise all rules.
    ForceAll,
}

/// Classify a workspace-relative path.
pub fn classify(path: &Path) -> FileKind {
    let p = path.to_string_lossy().replace('\\', "/");
    let test_like = ["/tests/", "/benches/", "/examples/", "/bin/"];
    if test_like.iter().any(|m| p.contains(m))
        || p.starts_with("tests/")
        || p.starts_with("benches/")
        || p.starts_with("examples/")
        || p.ends_with("/main.rs")
        || p.ends_with("build.rs")
    {
        FileKind::TestLike
    } else {
        FileKind::Library
    }
}

/// One reported violation.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Violated rule.
    pub rule: Rule,
    /// Human-readable explanation with the offending token.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

impl Finding {
    /// Machine-readable single-line JSON rendering.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"path\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
            json_escape(&self.path.to_string_lossy()),
            self.line,
            self.rule,
            json_escape(&self.message)
        )
    }
}

/// The full machine-readable report for a scan: a single JSON document
/// with a schema tag, the enabled rules, and the sorted findings.
pub fn report_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\"schema\":\"uavdc-lint/4\",\"rules\":[");
    let mut first = true;
    for r in Rule::all_source_rules() {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('"');
        out.push_str(r.name());
        out.push('"');
    }
    out.push_str("],\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&f.to_json());
    }
    out.push_str(&format!("],\"count\":{}}}", findings.len()));
    out
}

/// The findings rendered as a SARIF 2.1.0 document, the interchange
/// format GitHub code scanning ingests. Single-line, deterministic
/// (rules in `all_source_rules` order plus the meta-rules, results in
/// the already-sorted findings order), and dependency-free like the
/// JSON reporter.
pub fn report_sarif(findings: &[Finding]) -> String {
    let mut out = String::from(
        "{\"version\":\"2.1.0\",\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\"runs\":[{\"tool\":{\"driver\":{\"name\":\"uavdc-lint\",\"informationUri\":\"https://github.com/uavdc/uavdc\",\"rules\":[",
    );
    let mut first = true;
    for r in Rule::all_source_rules()
        .into_iter()
        .chain([Rule::UnusedAllow, Rule::MalformedAllow])
    {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("{{\"id\":\"{}\"}}", r.name()));
    }
    out.push_str("]}},\"results\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"ruleId\":\"{}\",\"level\":\"error\",\"message\":{{\"text\":\"{}\"}},\"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":\"{}\"}},\"region\":{{\"startLine\":{}}}}}}}]}}",
            f.rule.name(),
            json_escape(&f.message),
            json_escape(&f.path.display().to_string().replace('\\', "/")),
            f.line,
        ));
    }
    out.push_str("]}]}");
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A parsed `lint:allow(rule): reason` pragma.
#[derive(Debug)]
struct Allow {
    line: usize,
    rule: Option<Rule>,
    has_reason: bool,
    used: bool,
    raw: String,
}

/// Extract pragmas from the comment stream. Doc comments never count:
/// a pragma is an instruction to the tool, not documentation, so prose
/// in `///` docs that quotes the syntax is ignored.
fn parse_allows(comments: &[Comment]) -> Vec<Allow> {
    let mut allows = Vec::new();
    for c in comments {
        if c.doc || !c.text.starts_with("lint:allow") {
            continue;
        }
        let rest = &c.text["lint:allow".len()..];
        let mut rule = None;
        let mut has_reason = false;
        if let Some(open) = rest.find('(') {
            if let Some(close) = rest.find(')') {
                if close > open {
                    rule = Rule::from_name(rest[open + 1..close].trim());
                    if let Some(colon) = rest[close..].find(':') {
                        has_reason = !rest[close + colon + 1..].trim().is_empty();
                    }
                }
            }
        }
        allows.push(Allow {
            line: c.line,
            rule,
            has_reason,
            used: false,
            raw: c.text.clone(),
        });
    }
    allows
}

/// Check whether `finding_line` (1-based) is suppressed for `rule`,
/// marking the pragma used. A pragma acts on its own line and the line
/// directly below it.
fn is_allowed(allows: &mut [Allow], rule: Rule, finding_line: usize) -> bool {
    for a in allows.iter_mut() {
        if a.rule == Some(rule)
            && a.has_reason
            && (a.line == finding_line || a.line + 1 == finding_line)
        {
            a.used = true;
            return true;
        }
    }
    false
}

/// Like [`is_allowed`] but without consuming the pragma: used when a
/// per-file rule already owns (and marks) the pragma and an
/// interprocedural rule merely honours it.
fn allowed_peek(allows: &[Allow], rule: Rule, finding_line: usize) -> bool {
    allows.iter().any(|a| {
        a.rule == Some(rule)
            && a.has_reason
            && (a.line == finding_line || a.line + 1 == finding_line)
    })
}

/// Paths (workspace-relative, `/`-separated suffixes) where `float-ord`
/// does not apply: the approved total-order helper itself.
const FLOAT_ORD_EXEMPT: [&str; 1] = ["crates/geom/src/order.rs"];

/// Crates whose *public* API boundaries must speak the `units` newtypes.
const RAW_QUANTITY_CRATES: [&str; 4] = [
    "crates/core/src/",
    "crates/graph/src/",
    "crates/orienteering/src/",
    "crates/sim/src/",
];

/// Where `unit-unwrap` patrols: the planner core, which owns the hot
/// paths that are allowed to drop to raw `f64` — but only inside the
/// declared perf-critical modules below.
const UNIT_UNWRAP_CRATES: [&str; 1] = ["crates/core/src/"];

/// Declared perf-critical modules (see DESIGN.md §9): inner loops here
/// may hold raw `f64` and call `.value()` freely; the unit types guard
/// their *boundaries* instead.
pub const PERF_CRITICAL_MODULES: [&str; 9] = [
    "crates/core/src/greedy.rs",
    "crates/core/src/alg2.rs",
    "crates/core/src/alg3.rs",
    "crates/core/src/benchmark.rs",
    "crates/core/src/tourutil.rs",
    "crates/core/src/multi.rs",
    "crates/core/src/sweep.rs",
    "crates/core/src/polish.rs",
    "crates/core/src/repair.rs",
];

/// The sanctioned homes for `env::var`: the threading configuration
/// helper (`UAVDC_THREADS`) and the observability toggle (`UAVDC_OBS`,
/// read once through `uavdc_obs::env_enabled`).
const ENV_READ_SANCTIONED: [&str; 2] = ["crates/core/src/greedy.rs", "crates/obs/src/lib.rs"];

/// Is `env::var` sanctioned in this file? Shared with the call-graph
/// hazard collector so `effect-taint` and `env-read` agree on the
/// boundary.
pub(crate) fn env_read_sanctioned(norm: &str) -> bool {
    path_ends(norm, &ENV_READ_SANCTIONED)
}

/// Crates whose public functions are planner entry points for the
/// interprocedural rules (effect-taint, panic-reach): the algorithm
/// core, the orienteering solvers, and the mission simulator.
const ENTRY_CRATES: [&str; 3] = [
    "crates/core/src/",
    "crates/orienteering/src/",
    "crates/sim/src/",
];

/// Bounds-audited modules for `panic-reach`: indexing in these files is
/// accepted as in-range by construction, backed by the invariant and
/// property suites that already patrol them (energy feasibility, metric
/// closure, matching validity, incremental-tour edge-cache exactness —
/// see DESIGN.md §13 and §16). This is a *ratchet*:
/// new files start outside the list, so fresh indexing-heavy code must
/// either be audited in or carry per-site pragmas.
const INDEX_AUDITED: [&str; 52] = [
    "crates/bench/src/json.rs",
    "crates/bench/src/lib.rs",
    "crates/core/src/alg1.rs",
    "crates/core/src/alg2.rs",
    "crates/core/src/alg3.rs",
    "crates/core/src/auxgraph.rs",
    "crates/core/src/benchmark.rs",
    "crates/core/src/candidates.rs",
    "crates/core/src/greedy.rs",
    "crates/core/src/multi.rs",
    "crates/core/src/plan.rs",
    "crates/core/src/polish.rs",
    "crates/core/src/repair.rs",
    "crates/core/src/sweep.rs",
    "crates/core/src/tourutil.rs",
    "crates/core/src/validate.rs",
    "crates/geom/src/aabb.rs",
    "crates/geom/src/hull.rs",
    "crates/geom/src/kdtree.rs",
    "crates/geom/src/order.rs",
    "crates/geom/src/polyline.rs",
    "crates/geom/src/spatial.rs",
    "crates/graph/src/christofides.rs",
    "crates/graph/src/construction.rs",
    "crates/graph/src/euler.rs",
    "crates/graph/src/exact.rs",
    "crates/graph/src/improve.rs",
    "crates/graph/src/incremental.rs",
    "crates/graph/src/matching.rs",
    "crates/graph/src/matching/blossom.rs",
    "crates/graph/src/matrix.rs",
    "crates/graph/src/mst.rs",
    "crates/graph/src/tour.rs",
    "crates/net/src/generator.rs",
    "crates/net/src/io.rs",
    "crates/net/src/lib.rs",
    "crates/net/src/scenario.rs",
    "crates/net/src/topology.rs",
    "crates/orienteering/src/bnb.rs",
    "crates/orienteering/src/exact.rs",
    "crates/orienteering/src/grasp.rs",
    "crates/orienteering/src/greedy.rs",
    "crates/orienteering/src/lib.rs",
    "crates/orienteering/src/local.rs",
    "crates/orienteering/src/problem.rs",
    "crates/orienteering/src/team.rs",
    "crates/sim/src/controller.rs",
    "crates/sim/src/event.rs",
    "crates/sim/src/periodic.rs",
    "crates/sim/src/report.rs",
    "crates/sim/src/sim.rs",
    "src/viz.rs",
];

/// Is indexing in this file covered by the bounds-audited baseline?
pub(crate) fn index_audited(norm: &str) -> bool {
    path_ends(norm, &INDEX_AUDITED)
}

/// Dimension vocabulary for `raw-quantity`: an identifier *word* (after
/// `_`/camelCase splitting) matching one of these marks the identifier
/// as dimension-named. Plural forms are listed explicitly.
const DIMENSION_WORDS: [&str; 36] = [
    "energy",
    "energies",
    "budget",
    "budgets",
    "dist",
    "dists",
    "distance",
    "distances",
    "len",
    "lens",
    "length",
    "lengths",
    "t",
    "time",
    "times",
    "duration",
    "durations",
    "sojourn",
    "speed",
    "speeds",
    "velocity",
    "rate",
    "rates",
    "bandwidth",
    "radius",
    "radii",
    "power",
    "capacity",
    "capacities",
    "vol",
    "volume",
    "volumes",
    "meters",
    "joules",
    "seconds",
    "headroom",
];

/// The unit newtypes exported by `uavdc-net::units`.
const UNIT_TYPES: [&str; 8] = [
    "Joules",
    "Seconds",
    "Meters",
    "MegaBytes",
    "Watts",
    "MetersPerSecond",
    "MegaBytesPerSecond",
    "JoulesPerMeter",
];

fn is_dimension_named(ident: &str) -> bool {
    parser::ident_words(ident)
        .iter()
        .any(|w| DIMENSION_WORDS.contains(&w.as_str()))
}

fn path_in(norm: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| norm.contains(p))
}

fn path_ends(norm: &str, suffixes: &[&str]) -> bool {
    suffixes.iter().any(|p| norm.ends_with(p))
}

const PANIC_IDENTS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
const NONDET_IDENTS: [&str; 5] = [
    "thread_rng",
    "from_entropy",
    "HashMap",
    "HashSet",
    "RandomState",
];
const FLOAT_ASSERTS: [&str; 4] = [
    "assert_eq",
    "assert_ne",
    "debug_assert_eq",
    "debug_assert_ne",
];

/// Is token `j` (skipping one leading unary minus) a float literal?
fn float_lit_at(toks: &[Tok], mut j: usize) -> Option<&Tok> {
    if toks.get(j).is_some_and(|t| t.is_punct("-")) {
        j += 1;
    }
    toks.get(j).filter(|t| t.kind == TokKind::Float)
}

/// Do the tokens ending at `i` (exclusive) spell `.value()`?
fn value_call_ends_at(toks: &[Tok], i: usize) -> bool {
    i >= 4
        && toks[i - 1].is_punct(")")
        && toks[i - 2].is_punct("(")
        && toks[i - 3].is_ident("value")
        && toks[i - 4].is_punct(".")
}

/// Do the tokens starting at `j` (skipping a unary minus) begin an
/// `ident.value()` chain?
fn value_call_starts_at(toks: &[Tok], mut j: usize) -> bool {
    if toks.get(j).is_some_and(|t| t.is_punct("-")) {
        j += 1;
    }
    toks.get(j).is_some_and(|t| t.kind == TokKind::Ident)
        && toks.get(j + 1).is_some_and(|t| t.is_punct("."))
        && toks.get(j + 2).is_some_and(|t| t.is_ident("value"))
        && toks.get(j + 3).is_some_and(|t| t.is_punct("("))
}

/// Scan one file's contents in isolation. `display_path` is used for
/// reports and for the path-scoped rules; `kind` decides which rules
/// apply; `scope` decides whether crate scoping restricts the dimension
/// rules. The interprocedural rules see a one-file workspace here, so
/// only their intra-file findings can fire; use [`analyze`] (or the
/// CLI) for whole-workspace analysis.
pub fn scan_source(
    display_path: &Path,
    source: &str,
    kind: FileKind,
    scope: ScanScope,
) -> Vec<Finding> {
    analyze(
        vec![AnalysisInput {
            path: display_path.to_path_buf(),
            source: source.to_string(),
            kind,
        }],
        scope,
    )
}

/// One file handed to [`analyze`].
pub struct AnalysisInput {
    /// Display path (workspace-relative for workspace scans).
    pub path: PathBuf,
    /// File contents.
    pub source: String,
    /// Library vs test-like classification.
    pub kind: FileKind,
}

/// Lex/parse every input into a [`resolve::FileCtx`] plus its pragmas.
fn build_contexts(inputs: Vec<AnalysisInput>) -> (Vec<resolve::FileCtx>, Vec<Vec<Allow>>) {
    let mut ctxs = Vec::with_capacity(inputs.len());
    let mut allows = Vec::with_capacity(inputs.len());
    for inp in inputs {
        let lexed = lexer::lex(&inp.source);
        let model = parser::parse(&lexed.toks);
        let norm = inp.path.to_string_lossy().replace('\\', "/");
        let (crate_ident, mods) = resolve::crate_and_module(&norm);
        allows.push(parse_allows(&lexed.comments));
        ctxs.push(resolve::FileCtx {
            path: inp.path,
            norm,
            kind: inp.kind,
            lexed,
            model,
            crate_ident,
            mods,
        });
    }
    (ctxs, allows)
}

/// Full analysis pipeline over a set of files: the per-file rules, then
/// the interprocedural rules over the resolved workspace, then the
/// pragma meta-rules last (so interprocedural justifications count as
/// "used"). Findings come back sorted by (path, line, rule, message).
pub fn analyze(inputs: Vec<AnalysisInput>, scope: ScanScope) -> Vec<Finding> {
    let (ctxs, mut allows) = build_contexts(inputs);
    let ws = resolve::Workspace::build(ctxs);
    let mut findings = Vec::new();
    for (fi, ctx) in ws.files.iter().enumerate() {
        findings.extend(per_file_rules(ctx, scope, &mut allows[fi]));
    }
    findings.extend(interprocedural_rules(&ws, scope, &mut allows));
    for (fi, ctx) in ws.files.iter().enumerate() {
        findings.extend(meta_rules(ctx, &allows[fi]));
    }
    findings.sort_by(|a, b| {
        a.path
            .cmp(&b.path)
            .then(a.line.cmp(&b.line))
            .then(a.rule.cmp(&b.rule))
            .then(a.message.cmp(&b.message))
    });
    findings.dedup_by(|a, b| a.path == b.path && a.line == b.line && a.rule == b.rule);
    findings
}

/// The seven per-file rules (schema 2 semantics, unchanged).
fn per_file_rules(
    ctx: &resolve::FileCtx,
    scope: ScanScope,
    allows: &mut Vec<Allow>,
) -> Vec<Finding> {
    let toks = &ctx.lexed.toks[..];
    let model = &ctx.model;
    let display_path = ctx.path.as_path();
    let kind = ctx.kind;
    let norm = ctx.norm.as_str();
    let mut findings: Vec<Finding> = Vec::new();

    let float_ord_exempt = path_ends(norm, &FLOAT_ORD_EXEMPT);
    let force = scope == ScanScope::ForceAll;
    let raw_quantity_in_scope = force || path_in(norm, &RAW_QUANTITY_CRATES);
    let unit_unwrap_in_scope =
        (force || path_in(norm, &UNIT_UNWRAP_CRATES)) && !path_ends(norm, &PERF_CRITICAL_MODULES);
    let env_sanctioned = env_read_sanctioned(norm);
    let library = kind == FileKind::Library;

    let mut push = |allows: &mut [Allow], line: usize, rule: Rule, message: String| {
        if !is_allowed(allows, rule, line) {
            findings.push(Finding {
                path: display_path.to_path_buf(),
                line,
                rule,
                message,
            });
        }
    };

    // --- Token-stream rules -------------------------------------------
    for (i, t) in toks.iter().enumerate() {
        let in_test = model.tok_in_test[i];
        let lib_code = library && !in_test;

        // float-ord: applies to all code, test or not.
        if !float_ord_exempt {
            if t.is_ident("partial_cmp") {
                push(
                    &mut *allows,
                    t.line,
                    Rule::FloatOrd,
                    "`partial_cmp` is NaN-unsafe; use uavdc_geom::cmp_f64 / cmp_f64_desc / TotalF64"
                        .into(),
                );
            }
            if t.is_punct("==") || t.is_punct("!=") {
                let lit = (i > 0 && toks[i - 1].kind == TokKind::Float)
                    .then(|| toks[i - 1].text.clone())
                    .or_else(|| float_lit_at(toks, i + 1).map(|x| x.text.clone()));
                if let Some(lit) = lit {
                    push(
                        &mut *allows,
                        t.line,
                        Rule::FloatOrd,
                        format!(
                            "exact float comparison against `{lit}`; compare with a tolerance (uavdc_geom::approx_eq) or justify with lint:allow"
                        ),
                    );
                }
            }
        }

        if lib_code {
            // panic-site.
            if t.kind == TokKind::Ident
                && PANIC_IDENTS.contains(&t.text.as_str())
                && toks.get(i + 1).is_some_and(|x| x.is_punct("!"))
            {
                push(
                    &mut *allows,
                    t.line,
                    Rule::PanicSite,
                    format!(
                        "`{}!` in library code can abort a planner mid-tour; return a typed error or justify with lint:allow",
                        t.text
                    ),
                );
            }
            if t.is_punct(".")
                && toks
                    .get(i + 1)
                    .is_some_and(|x| x.is_ident("unwrap") || x.is_ident("expect"))
                && toks.get(i + 2).is_some_and(|x| x.is_punct("("))
            {
                push(
                    &mut *allows,
                    toks[i + 1].line,
                    Rule::PanicSite,
                    format!(
                        "`{}()` in library code can abort a planner mid-tour; return a typed error or justify with lint:allow",
                        toks[i + 1].text
                    ),
                );
            }

            // nondeterminism.
            if t.kind == TokKind::Ident && NONDET_IDENTS.contains(&t.text.as_str()) {
                push(
                    &mut *allows,
                    t.line,
                    Rule::Nondeterminism,
                    format!(
                        "`{}` is a nondeterminism hazard (unseeded RNG or hash-order iteration); use seeded RNGs / BTree containers or justify with lint:allow",
                        t.text
                    ),
                );
            }

            // env-read. `var_os`/`vars` are the same ambient-state read
            // through a different accessor (a fault-injection config
            // probed via `env::var_os`, say, is exactly as non-replayable
            // as one parsed from `env::var`).
            if !env_sanctioned
                && t.is_ident("env")
                && toks.get(i + 1).is_some_and(|x| x.is_punct("::"))
                && toks.get(i + 2).is_some_and(|x| {
                    x.is_ident("var") || x.is_ident("var_os") || x.is_ident("vars")
                })
            {
                push(
                    &mut *allows,
                    t.line,
                    Rule::EnvRead,
                    "`env::var` makes planner behaviour depend on ambient state; thread configuration through explicit parameters or justify with lint:allow"
                        .into(),
                );
            }

            // unit-unwrap.
            if unit_unwrap_in_scope {
                if t.is_punct(".")
                    && toks.get(i + 1).is_some_and(|x| x.is_ident("value"))
                    && toks.get(i + 2).is_some_and(|x| x.is_punct("("))
                    && toks.get(i + 3).is_some_and(|x| x.is_punct(")"))
                {
                    push(
                        &mut *allows,
                        t.line,
                        Rule::UnitUnwrap,
                        "`.value()` escapes the unit layer; keep raw-f64 math inside a declared perf-critical module (DESIGN.md \u{a7}9) or justify with lint:allow"
                            .into(),
                    );
                }
                // `Unit(expr).0`: close paren directly before `.0`, whose
                // matching open is preceded by a unit type name.
                if t.is_punct(".")
                    && toks
                        .get(i + 1)
                        .is_some_and(|x| x.kind == TokKind::Int && x.text == "0")
                    && i > 0
                    && toks[i - 1].is_punct(")")
                {
                    let mut depth = 0i64;
                    let mut k = i - 1;
                    loop {
                        match toks[k].text.as_str() {
                            ")" => depth += 1,
                            "(" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        if k == 0 {
                            break;
                        }
                        k -= 1;
                    }
                    if k > 0
                        && toks[k - 1].kind == TokKind::Ident
                        && UNIT_TYPES.contains(&toks[k - 1].text.as_str())
                    {
                        push(
                            &mut *allows,
                            t.line,
                            Rule::UnitUnwrap,
                            format!(
                                "`{}(..).0` escapes the unit layer; keep raw-f64 math inside a declared perf-critical module (DESIGN.md \u{a7}9) or justify with lint:allow",
                                toks[k - 1].text
                            ),
                        );
                    }
                }
            }
        }
    }

    // --- Item-model rules ---------------------------------------------
    if raw_quantity_in_scope {
        for f in &model.fns {
            if !f.is_pub || f.in_test || !library {
                continue;
            }
            for p in &f.params {
                if parser::type_has_f64(&p.ty) && p.names.iter().any(|n| is_dimension_named(n)) {
                    let name = p
                        .names
                        .iter()
                        .find(|n| is_dimension_named(n))
                        .cloned()
                        .unwrap_or_default();
                    push(
                        &mut *allows,
                        p.line,
                        Rule::RawQuantity,
                        format!(
                            "public fn `{}` takes dimension-named `{name}` as bare f64; use the uavdc-net units newtypes (Joules, Meters, Seconds, \u{2026}) at API boundaries",
                            f.name
                        ),
                    );
                }
            }
            if let Some(ret) = &f.ret {
                if parser::type_has_f64(ret) && is_dimension_named(&f.name) {
                    push(
                        &mut *allows,
                        f.line,
                        Rule::RawQuantity,
                        format!(
                            "public fn `{}` returns a dimension-named quantity as bare f64; use the uavdc-net units newtypes at API boundaries",
                            f.name
                        ),
                    );
                }
            }
        }
        for fld in &model.fields {
            if fld.is_pub
                && !fld.in_test
                && library
                && parser::type_has_f64(&fld.ty)
                && is_dimension_named(&fld.name)
            {
                push(
                    &mut *allows,
                    fld.line,
                    Rule::RawQuantity,
                    format!(
                        "public field `{}.{}` holds a dimension-named quantity as bare f64; use the uavdc-net units newtypes",
                        fld.owner, fld.name
                    ),
                );
            }
        }
    }

    // float-eq: per-function f64 symbol tables.
    if library {
        for f in &model.fns {
            if f.in_test {
                continue;
            }
            let Some((lo, hi)) = f.body else { continue };
            let syms = parser::f64_symbols(f, toks);
            let is_sym = |t: &Tok| t.kind == TokKind::Ident && syms.iter().any(|s| s == &t.text);
            // A symbol directly followed by `.` or `(` is a method call /
            // field access / call whose result type is unknown — not an
            // f64 operand (`data.len()` must not count as float).
            let sym_operand = |j: usize| {
                toks.get(j).is_some_and(&is_sym)
                    && !toks
                        .get(j + 1)
                        .is_some_and(|t| t.is_punct(".") || t.is_punct("(") || t.is_punct("::"))
            };
            let mut i = lo;
            while i < hi.min(toks.len()) {
                let t = &toks[i];
                if (t.is_punct("==") || t.is_punct("!=")) && !model.tok_in_test[i] {
                    // Literal comparisons are float-ord's territory.
                    let lit_adjacent = (i > 0 && toks[i - 1].kind == TokKind::Float)
                        || float_lit_at(toks, i + 1).is_some();
                    let left = i > 0 && (sym_operand(i - 1) || value_call_ends_at(toks, i));
                    let right = {
                        let j = if toks.get(i + 1).is_some_and(|t| t.is_punct("-")) {
                            i + 2
                        } else {
                            i + 1
                        };
                        sym_operand(j) || value_call_starts_at(toks, i + 1)
                    };
                    if !lit_adjacent && (left || right) {
                        push(
                            &mut *allows,
                            t.line,
                            Rule::FloatEq,
                            format!(
                                "`{}` on f64 values outside #[cfg(test)]; compare with a tolerance (uavdc_geom::approx_eq) or justify with lint:allow",
                                t.text
                            ),
                        );
                    }
                }
                // assert_eq!/assert_ne! on float operands in library code.
                if t.kind == TokKind::Ident
                    && FLOAT_ASSERTS.contains(&t.text.as_str())
                    && toks.get(i + 1).is_some_and(|x| x.is_punct("!"))
                    && toks.get(i + 2).is_some_and(|x| x.is_punct("("))
                    && !model.tok_in_test[i]
                {
                    let mut depth = 0i64;
                    let mut j = i + 2;
                    let mut floaty = false;
                    while j < hi.min(toks.len()) {
                        match toks[j].text.as_str() {
                            "(" => depth += 1,
                            ")" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        if toks[j].kind == TokKind::Float
                            || sym_operand(j)
                            || (toks[j].is_ident("value")
                                && toks.get(j + 1).is_some_and(|x| x.is_punct("(")))
                        {
                            floaty = true;
                        }
                        j += 1;
                    }
                    if floaty {
                        push(
                            &mut *allows,
                            t.line,
                            Rule::FloatEq,
                            format!(
                                "`{}!` on float operands outside #[cfg(test)]; use a tolerance check or justify with lint:allow",
                                t.text
                            ),
                        );
                    }
                    i = j;
                    continue;
                }
                i += 1;
            }
        }
    }

    findings
}

/// Meta-rules over the pragma stream: malformed pragmas, and pragmas
/// that suppressed nothing anywhere in the pipeline. Runs last so that
/// pragmas consumed by the interprocedural rules count as used.
fn meta_rules(ctx: &resolve::FileCtx, allows: &[Allow]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for a in allows {
        if a.rule.is_none() || !a.has_reason {
            findings.push(Finding {
                path: ctx.path.clone(),
                line: a.line,
                rule: Rule::MalformedAllow,
                message: format!(
                    "pragma `{}` must be `lint:allow(<rule>): <reason>` with a known rule and a non-empty reason",
                    a.raw
                ),
            });
        } else if !a.used {
            findings.push(Finding {
                path: ctx.path.clone(),
                line: a.line,
                rule: Rule::UnusedAllow,
                message: format!("pragma `{}` suppresses nothing; remove it", a.raw),
            });
        }
    }
    findings
}

/// Renders a witness call path (`entry -> … -> site fn`) from the BFS
/// breadcrumbs, as fn names joined by ` -> `.
fn witness_names<P: Clone>(
    ws: &resolve::Workspace,
    g: &callgraph::CallGraph,
    reach: &[Option<dataflow::ReachInfo<P>>],
    from: usize,
) -> String {
    dataflow::witness_path(reach, from)
        .iter()
        .map(|&n| {
            let (fi, ni) = g.nodes[n].id;
            ws.files[fi].model.fns[ni].name.clone()
        })
        .collect::<Vec<_>>()
        .join(" -> ")
}

/// Is this node a planner entry point for the reachability rules?
fn is_entry(ws: &resolve::Workspace, node: &callgraph::Node, scope: ScanScope) -> bool {
    node.is_public_api
        && (scope == ScanScope::ForceAll || path_in(&ws.files[node.id.0].norm, &ENTRY_CRATES))
}

/// The whole-workspace rules: the schema-3 four (effect-taint,
/// panic-reach, unit-flow, obs-twin; DESIGN.md §13) plus the schema-4
/// concurrency layer (par-purity, lock-across-spawn, atomic-ordering,
/// shared-accumulator; DESIGN.md §14).
fn interprocedural_rules(
    ws: &resolve::Workspace,
    scope: ScanScope,
    allows: &mut [Vec<Allow>],
) -> Vec<Finding> {
    let graph = callgraph::CallGraph::build(
        ws,
        |fi, rule, line, mark| {
            if mark {
                is_allowed(&mut allows[fi], rule, line)
            } else {
                allowed_peek(&allows[fi], rule, line)
            }
        },
        index_audited,
    );
    let mut findings = Vec::new();
    let entries: Vec<usize> = (0..graph.nodes.len())
        .filter(|&n| is_entry(ws, &graph.nodes[n], scope))
        .collect();

    // --- effect-taint: nearest unjustified effect source reachable from
    // each entry point, reported at the entry point with the shortest
    // witness call path.
    let effect_sources: Vec<(usize, (callgraph::EffectKind, callgraph::Site))> = graph
        .nodes
        .iter()
        .enumerate()
        .filter_map(|(n, node)| {
            node.effect_sites
                .iter()
                .find(|(_, s)| !s.justified)
                .map(|(k, s)| (n, (*k, s.clone())))
        })
        .collect();
    let effect_reach = dataflow::reach(&graph, &effect_sources);
    for &e in &entries {
        let Some(info) = &effect_reach[e] else {
            continue;
        };
        let (kind, site) = &info.payload;
        let (fi, ni) = graph.nodes[e].id;
        let fun = &ws.files[fi].model.fns[ni];
        let src_file = &ws.files[graph.nodes[info.source].id.0];
        if !is_allowed(&mut allows[fi], Rule::EffectTaint, fun.line) {
            findings.push(Finding {
                path: ws.files[fi].path.clone(),
                line: fun.line,
                rule: Rule::EffectTaint,
                message: format!(
                    "public planner entry `{}` can reach {} ({} at {}:{}) via {}; make the chain effect-clean or justify with lint:allow(effect-taint)",
                    fun.name,
                    kind.label(),
                    site.what,
                    src_file.path.display(),
                    site.line,
                    witness_names(ws, &graph, &effect_reach, e),
                ),
            });
        }
    }

    // --- panic-reach: same shape over panic and (non-audited) indexing
    // sites.
    let panic_sources: Vec<(usize, callgraph::Site)> = graph
        .nodes
        .iter()
        .enumerate()
        .filter_map(|(n, node)| {
            node.panic_sites
                .iter()
                .chain(node.index_sites.iter())
                .filter(|s| !s.justified)
                .min_by_key(|s| s.line)
                .map(|s| (n, s.clone()))
        })
        .collect();
    let panic_reach = dataflow::reach(&graph, &panic_sources);
    for &e in &entries {
        let Some(info) = &panic_reach[e] else {
            continue;
        };
        let site = &info.payload;
        let (fi, ni) = graph.nodes[e].id;
        let fun = &ws.files[fi].model.fns[ni];
        let src_file = &ws.files[graph.nodes[info.source].id.0];
        if !is_allowed(&mut allows[fi], Rule::PanicReach, fun.line) {
            findings.push(Finding {
                path: ws.files[fi].path.clone(),
                line: fun.line,
                rule: Rule::PanicReach,
                message: format!(
                    "public planner entry `{}` can reach a panic site ({} at {}:{}) via {}; prove the site unreachable (pragma at the site) or justify with lint:allow(panic-reach)",
                    fun.name,
                    site.what,
                    src_file.path.display(),
                    site.line,
                    witness_names(ws, &graph, &panic_reach, e),
                ),
            });
        }
    }

    // --- unit-flow: a call that receives raw f64 from a transitive
    // `.value()` escape without immediately re-wrapping it in a unit
    // newtype. Perf-critical modules are exempt (they own raw-f64
    // math); method calls are opaque (receiver types untracked).
    let raw = dataflow::raw_producers(&graph);
    for n in 0..graph.nodes.len() {
        let (fi, ni) = graph.nodes[n].id;
        let ctx = &ws.files[fi];
        let fun = &ctx.model.fns[ni];
        if ctx.kind != FileKind::Library || fun.in_test {
            continue;
        }
        let force = scope == ScanScope::ForceAll;
        let in_scope = (force || path_in(&ctx.norm, &UNIT_UNWRAP_CRATES))
            && !path_ends(&ctx.norm, &PERF_CRITICAL_MODULES);
        if !in_scope {
            continue;
        }
        for (call, targets) in &graph.nodes[n].calls {
            if call.method {
                continue;
            }
            let Some(&producer) = targets.iter().find(|&&t| {
                t != graph.nodes[n].id && graph.node_of(t).is_some_and(|ix| raw[ix].is_some())
            }) else {
                continue;
            };
            // `Joules(f(..))`-style immediate re-wrap launders cleanly.
            let call_start = call.name_tok.saturating_sub(2 * call.quals.len());
            let toks = &ctx.lexed.toks;
            let wrapped = call_start >= 2
                && toks[call_start - 1].is_punct("(")
                && toks[call_start - 2].kind == TokKind::Ident
                && UNIT_TYPES.contains(&toks[call_start - 2].text.as_str());
            if wrapped {
                continue;
            }
            let pix = graph.node_of(producer).unwrap_or(n);
            let Some(pinfo) = &raw[pix] else { continue };
            let src_file = &ws.files[graph.nodes[pinfo.source].id.0];
            if !is_allowed(&mut allows[fi], Rule::UnitFlow, call.line) {
                findings.push(Finding {
                    path: ctx.path.clone(),
                    line: call.line,
                    rule: Rule::UnitFlow,
                    message: format!(
                        "`{}` in `{}` receives raw f64 laundered from a unit escape ({}:{}, chain {}) without re-entering a unit newtype; wrap the call (e.g. Joules(..)) or justify with lint:allow(unit-flow)",
                        call.name,
                        fun.name,
                        src_file.path.display(),
                        pinfo.payload,
                        witness_names(ws, &graph, &raw, pix),
                    ),
                });
            }
        }
    }

    // --- obs-twin coherence: every `X_obs` twin must have a same-file
    // plain sibling that cleanly delegates to it (all non-plumbing
    // callees of the sibling are the twin itself), so the recorder
    // invisibility property cannot silently rot.
    for (fi, ctx) in ws.files.iter().enumerate() {
        if ctx.kind != FileKind::Library || callgraph::obs_sanctioned(&ctx.norm) {
            continue;
        }
        for (ni, fun) in ctx.model.fns.iter().enumerate() {
            if fun.in_test {
                continue;
            }
            let Some(base) = fun.name.strip_suffix("_obs") else {
                continue;
            };
            // `christofides_with_obs` pairs with `christofides`.
            let base_short = base.strip_suffix("_with");
            let sibs: Vec<usize> = ctx
                .model
                .fns
                .iter()
                .enumerate()
                .filter(|(si, s)| {
                    *si != ni
                        && !s.in_test
                        && (s.name == base || Some(s.name.as_str()) == base_short)
                })
                .map(|(si, _)| si)
                .collect();
            if sibs.is_empty() {
                if !is_allowed(&mut allows[fi], Rule::ObsTwin, fun.line) {
                    findings.push(Finding {
                        path: ctx.path.clone(),
                        line: fun.line,
                        rule: Rule::ObsTwin,
                        message: format!(
                            "`{}` has no plain sibling `{}` in this file; every _obs twin needs a recorder-free wrapper (or justify with lint:allow(obs-twin))",
                            fun.name, base,
                        ),
                    });
                }
                continue;
            }
            let delegates = sibs.iter().any(|&si| {
                let Some(nx) = graph.node_of((fi, si)) else {
                    return false;
                };
                let node = &graph.nodes[nx];
                let mut calls_twin = false;
                let mut clean = true;
                for (call, targets) in &node.calls {
                    if call.name == fun.name {
                        calls_twin = true;
                        continue;
                    }
                    // Recorder plumbing (NOOP recorder construction,
                    // obs/compat callees) does not break coherence.
                    let plumbing = targets.is_empty()
                        || targets
                            .iter()
                            .all(|&(cfi, _)| callgraph::obs_sanctioned(&ws.files[cfi].norm));
                    if !plumbing {
                        clean = false;
                    }
                }
                calls_twin && clean
            });
            if !delegates {
                let s0 = &ctx.model.fns[sibs[0]];
                if !is_allowed(&mut allows[fi], Rule::ObsTwin, s0.line) {
                    findings.push(Finding {
                        path: ctx.path.clone(),
                        line: s0.line,
                        rule: Rule::ObsTwin,
                        message: format!(
                            "plain `{}` does not cleanly delegate to its twin `{}` (same callees modulo recorder plumbing required); re-align the pair or justify with lint:allow(obs-twin)",
                            s0.name, fun.name,
                        ),
                    });
                }
            }
        }
    }

    // --- concurrency layer (schema 4): par-purity, lock-across-spawn,
    // atomic-ordering, shared-accumulator. Reuses the graph, the entry
    // set, and the effect-taint fixed point. See DESIGN.md §14.
    findings.extend(concurrency::check(
        ws,
        &graph,
        &entries,
        &effect_reach,
        |fi, rule, line| is_allowed(&mut allows[fi], rule, line),
    ));

    findings
}

/// Recursively collect workspace `.rs` files under `root`, skipping
/// build output and VCS metadata.
pub fn collect_rs_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target"
                    || name == ".git"
                    || name == "results"
                    || name == "results_quick"
                {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Read every `.rs` file under `root` into [`AnalysisInput`]s with
/// workspace-relative display paths and path-based classification.
pub fn workspace_inputs(root: &Path) -> std::io::Result<Vec<AnalysisInput>> {
    let mut inputs = Vec::new();
    for file in collect_rs_files(root)? {
        let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
        let source = std::fs::read_to_string(&file)?;
        let kind = classify(&rel);
        inputs.push(AnalysisInput {
            path: rel,
            source,
            kind,
        });
    }
    Ok(inputs)
}

/// Scan every `.rs` file under `root` (classification by path) through
/// the full pipeline — per-file, interprocedural, meta — and return all
/// findings, sorted by path, line, rule, message.
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    Ok(analyze(workspace_inputs(root)?, ScanScope::Workspace))
}

/// The `--graph` dump for a set of inputs: builds the same call graph
/// the interprocedural rules use (pragmas honoured, never consumed) and
/// renders it deterministically.
pub fn graph_dump(inputs: Vec<AnalysisInput>) -> String {
    let (ctxs, allows) = build_contexts(inputs);
    let ws = resolve::Workspace::build(ctxs);
    let graph = callgraph::CallGraph::build(
        &ws,
        |fi, rule, line, _mark| allowed_peek(&allows[fi], rule, line),
        index_audited,
    );
    graph.dump(&ws)
}

/// Gather the analysis inputs for a CLI invocation: the workspace when
/// no paths are given, otherwise exactly the named files/directories
/// with `Library` strictness (display paths as written).
fn cli_inputs(paths: &[PathBuf]) -> Result<(Vec<AnalysisInput>, ScanScope, PathBuf), String> {
    if paths.is_empty() {
        let root = workspace_root();
        let inputs =
            workspace_inputs(&root).map_err(|e| format!("scanning {}: {e}", root.display()))?;
        return Ok((inputs, ScanScope::Workspace, root));
    }
    let mut inputs = Vec::new();
    for p in paths {
        let targets = if p.is_dir() {
            collect_rs_files(p).map_err(|e| format!("reading {}: {e}", p.display()))?
        } else {
            vec![p.clone()]
        };
        for t in targets {
            let source =
                std::fs::read_to_string(&t).map_err(|e| format!("reading {}: {e}", t.display()))?;
            inputs.push(AnalysisInput {
                path: t,
                source,
                kind: FileKind::Library,
            });
        }
    }
    Ok((inputs, ScanScope::ForceAll, PathBuf::from(".")))
}

/// Deletes the `// lint:allow(..)` comment reported by an
/// `unused-allow` finding from its line: the whole line when the pragma
/// stands alone, otherwise just the trailing comment. Returns the
/// removed pragma text, or `None` when the line does not contain a line
/// comment (block-comment pragmas are left for manual cleanup).
fn strip_pragma_line(line: &str) -> Option<(String, Option<String>)> {
    let at = line.find("//")?;
    if !line[at..].contains("lint:allow") {
        return None;
    }
    let removed = line[at..].trim().to_string();
    if line[..at].trim().is_empty() {
        Some((removed, None))
    } else {
        Some((removed, Some(line[..at].trim_end().to_string())))
    }
}

/// `--fix-unused` driver: removes every `unused-allow` pragma found by
/// the given scan. Dry-run prints what it would do; `write` applies the
/// edits. Returns the number of pragmas removed (or removable).
fn fix_unused(findings: &[Finding], root: &Path, write: bool) -> std::io::Result<usize> {
    use std::collections::BTreeMap;
    let mut by_file: BTreeMap<&Path, Vec<usize>> = BTreeMap::new();
    for f in findings {
        if f.rule == Rule::UnusedAllow {
            by_file.entry(f.path.as_path()).or_default().push(f.line);
        }
    }
    let mut removed = 0usize;
    for (rel, mut lines) in by_file {
        let on_disk = if rel.is_absolute() || rel.exists() {
            rel.to_path_buf()
        } else {
            root.join(rel)
        };
        let content = std::fs::read_to_string(&on_disk)?;
        let mut out: Vec<Option<String>> = content.lines().map(|l| Some(l.to_string())).collect();
        lines.sort_unstable();
        lines.dedup();
        for &ln in &lines {
            let Some(slot) = out.get_mut(ln - 1) else {
                continue;
            };
            let Some(text) = slot.clone() else { continue };
            match strip_pragma_line(&text) {
                Some((pragma, rest)) => {
                    removed += 1;
                    let action = if write { "removed" } else { "would remove" };
                    println!("{}:{}: {action} `{pragma}`", rel.display(), ln);
                    *slot = rest;
                }
                None => {
                    eprintln!(
                        "{}:{}: pragma not on a `//` comment; skipping",
                        rel.display(),
                        ln
                    );
                }
            }
        }
        if write {
            let mut new_content: String = out.into_iter().flatten().collect::<Vec<_>>().join("\n");
            if content.ends_with('\n') {
                new_content.push('\n');
            }
            std::fs::write(&on_disk, new_content)?;
        }
    }
    Ok(removed)
}

/// CLI entry point. Returns the process exit code.
///
/// Usage: `uavdc-lint [--json] [--sarif] [--graph]
/// [--fix-unused [--write|--check]] [--list-rules] [paths…]`. With no
/// paths, scans the workspace this crate is part of. Explicit paths are
/// scanned with `Library` strictness and `ForceAll` scope regardless of
/// location, so fixture files under `tests/` still produce findings for
/// every rule.
pub fn run_cli() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut sarif = false;
    let mut graph = false;
    let mut fix = false;
    let mut write = false;
    let mut check = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    for a in &args {
        match a.as_str() {
            "--json" => json = true,
            "--sarif" => sarif = true,
            "--graph" => graph = true,
            "--fix-unused" => fix = true,
            "--write" => write = true,
            "--check" => check = true,
            "--list-rules" => {
                for r in Rule::all_source_rules() {
                    println!("{r}");
                }
                println!("{}", Rule::UnusedAllow);
                println!("{}", Rule::MalformedAllow);
                return 0;
            }
            "--help" | "-h" => {
                println!(
                    "usage: uavdc-lint [--json] [--sarif] [--graph] [--fix-unused [--write|--check]] [--list-rules] [paths...]"
                );
                println!("  --json        machine-readable report (schema uavdc-lint/4)");
                println!("  --sarif       SARIF 2.1.0 report for code-scanning upload");
                println!("  --graph       dump the workspace call graph instead of linting");
                println!("  --fix-unused  delete unused-allow pragmas (dry-run; --write applies,");
                println!("                --check exits 1 when stale pragmas exist, for CI)");
                println!("exit codes: 0 clean, 1 findings, 2 error");
                return 0;
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag: {flag}");
                return 2;
            }
            p => paths.push(PathBuf::from(p)),
        }
    }
    if (write || check) && !fix {
        eprintln!("--write/--check only make sense with --fix-unused");
        return 2;
    }
    if write && check {
        eprintln!("--write and --check are mutually exclusive");
        return 2;
    }

    let (inputs, scope, root) = match cli_inputs(&paths) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("uavdc-lint: {e}");
            return 2;
        }
    };

    if graph {
        print!("{}", graph_dump(inputs));
        return 0;
    }

    let findings = analyze(inputs, scope);

    if fix {
        return match fix_unused(&findings, &root, write) {
            Ok(0) => {
                eprintln!("uavdc-lint: no unused pragmas");
                0
            }
            Ok(n) if write => {
                eprintln!("uavdc-lint: removed {n} unused pragma(s)");
                0
            }
            Ok(n) if check => {
                eprintln!(
                    "uavdc-lint: {n} stale pragma(s) suppress nothing; run `cargo run -p uavdc-lint -- --fix-unused --write` locally and commit the result"
                );
                1
            }
            Ok(n) => {
                eprintln!("uavdc-lint: {n} unused pragma(s); re-run with --write to remove");
                0
            }
            Err(e) => {
                eprintln!("uavdc-lint: fixing: {e}");
                2
            }
        };
    }

    if sarif {
        println!("{}", report_sarif(&findings));
    } else if json {
        println!("{}", report_json(&findings));
    } else {
        for f in &findings {
            println!("{f}");
        }
    }
    if findings.is_empty() {
        eprintln!("uavdc-lint: clean");
        0
    } else {
        eprintln!("uavdc-lint: {} finding(s)", findings.len());
        1
    }
}

/// The workspace root, resolved from this crate's manifest directory at
/// compile time (`crates/lint` → two levels up).
pub fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan_lib(src: &str) -> Vec<Finding> {
        scan_source(
            Path::new("crates/demo/src/lib.rs"),
            src,
            FileKind::Library,
            ScanScope::ForceAll,
        )
    }

    fn scan_scoped(path: &str, src: &str) -> Vec<Finding> {
        scan_source(
            Path::new(path),
            src,
            classify(Path::new(path)),
            ScanScope::Workspace,
        )
    }

    #[test]
    fn flags_float_ord_hazards() {
        let src = "fn f(v: &mut Vec<f64>) {\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n    if v[0] == 0.5 {}\n}\n";
        let f = scan_lib(src);
        assert!(f.iter().any(|x| x.rule == Rule::FloatOrd && x.line == 2));
        assert!(f.iter().any(|x| x.rule == Rule::FloatOrd && x.line == 3));
        // line 2 also has .unwrap() => panic-site
        assert!(f.iter().any(|x| x.rule == Rule::PanicSite && x.line == 2));
    }

    #[test]
    fn float_eq_literal_detection_via_tokens() {
        // Literals (including exponent-only forms) are flagged; ints,
        // tuple-field access, and ordered comparisons are not.
        assert!(scan_lib("fn f(x: f64) -> bool { x == 0.0 }\n")
            .iter()
            .any(|x| x.rule == Rule::FloatOrd));
        assert!(scan_lib("fn f(y: f64) -> bool { 0.5f64 != y }\n")
            .iter()
            .any(|x| x.rule == Rule::FloatOrd));
        assert!(scan_lib("fn f(x: f64) -> bool { x == 1e-9 }\n")
            .iter()
            .any(|x| x.rule == Rule::FloatOrd));
        assert!(scan_lib("fn f(n: u32) -> bool { n == 3 }\n")
            .iter()
            .all(|x| x.rule != Rule::FloatOrd));
        assert!(
            scan_lib("fn f(a: (u8, (u8, u8))) -> bool { a.1.0 == a.1.1 }\n")
                .iter()
                .all(|x| x.rule != Rule::FloatOrd)
        );
        assert!(scan_lib("fn f(x: f64) -> bool { x <= 0.5 }\n")
            .iter()
            .all(|x| x.rule != Rule::FloatOrd));
    }

    #[test]
    fn panic_rule_skips_tests_benches_and_cfg_test_modules() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u8>.unwrap(); }\n}\n";
        assert!(
            scan_lib(src).iter().all(|x| x.rule != Rule::PanicSite),
            "cfg(test) module must be exempt"
        );
        let f = scan_source(
            Path::new("crates/demo/tests/t.rs"),
            "fn g() { None::<u8>.unwrap(); }\n",
            classify(Path::new("crates/demo/tests/t.rs")),
            ScanScope::Workspace,
        );
        assert!(f.is_empty(), "integration tests are exempt: {f:?}");
    }

    #[test]
    fn nondeterminism_rule_flags_hash_containers_and_unseeded_rngs() {
        let src = "use std::collections::HashMap;\nfn f() { let _ = rand::thread_rng(); }\n";
        let f = scan_lib(src);
        assert_eq!(
            f.iter().filter(|x| x.rule == Rule::Nondeterminism).count(),
            2
        );
    }

    #[test]
    fn allow_pragma_suppresses_and_requires_reason() {
        let ok = "fn f(x: Option<u8>) -> u8 {\n    // lint:allow(panic-site): checked non-empty above\n    x.unwrap()\n}\n";
        assert!(scan_lib(ok).is_empty(), "{:?}", scan_lib(ok));

        let no_reason =
            "fn f(x: Option<u8>) -> u8 {\n    // lint:allow(panic-site)\n    x.unwrap()\n}\n";
        let f = scan_lib(no_reason);
        assert!(f.iter().any(|x| x.rule == Rule::MalformedAllow));
        assert!(
            f.iter().any(|x| x.rule == Rule::PanicSite),
            "malformed pragma must not suppress"
        );

        let unused = "// lint:allow(panic-site): nothing here\nfn f() {}\n";
        let f = scan_lib(unused);
        assert!(f.iter().any(|x| x.rule == Rule::UnusedAllow));
    }

    #[test]
    fn doc_comments_are_never_pragmas() {
        // Doc prose quoting the pragma syntax must not register as an
        // (unused) pragma.
        let src = "/// Suppress with `lint:allow(panic-site): reason`.\nfn f() {}\n";
        assert!(scan_lib(src).is_empty(), "{:?}", scan_lib(src));
    }

    #[test]
    fn comments_and_strings_never_match() {
        let src = "// a.partial_cmp(b).unwrap() in a comment\nfn f() -> &'static str { \"partial_cmp .unwrap() HashMap\" }\n/* block .expect( */\n";
        assert!(scan_lib(src).is_empty(), "{:?}", scan_lib(src));
    }

    #[test]
    fn char_literals_and_lifetimes_do_not_confuse_the_lexer() {
        let src = "fn f<'a>(s: &'a str) -> char {\n    let c = '\"';\n    let _x: &'static str = s;\n    c\n}\nfn g() { None::<u8>.unwrap(); }\n";
        let f = scan_lib(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::PanicSite);
        assert_eq!(f[0].line, 6);
    }

    #[test]
    fn raw_quantity_flags_dimension_named_f64_apis() {
        let src = "pub fn tour_energy(order: &[usize]) -> f64 { 0.0 }\npub fn plan(budget: f64) {}\npub struct S { pub dist: f64, pub count: usize, dist_private: f64 }\n";
        let f = scan_lib(src);
        assert!(f.iter().any(|x| x.rule == Rule::RawQuantity && x.line == 1));
        assert!(f.iter().any(|x| x.rule == Rule::RawQuantity && x.line == 2));
        assert!(f.iter().any(|x| x.rule == Rule::RawQuantity && x.line == 3));
        // `count: usize` and the private field are fine.
        assert_eq!(f.iter().filter(|x| x.rule == Rule::RawQuantity).count(), 3);
    }

    #[test]
    fn raw_quantity_ignores_unit_typed_and_restricted_apis() {
        let src = "pub fn tour_energy(order: &[usize]) -> Joules { Joules::ZERO }\npub(crate) fn helper(budget: f64) {}\nfn private(dist: f64) {}\n";
        let f = scan_lib(src);
        assert!(f.iter().all(|x| x.rule != Rule::RawQuantity), "{f:?}");
    }

    #[test]
    fn raw_quantity_respects_crate_scope_in_workspace_mode() {
        let src = "pub fn travel_time(dist: f64) -> f64 { dist }\n";
        // net is not a dimension-checked crate…
        assert!(scan_scoped("crates/net/src/x.rs", src)
            .iter()
            .all(|x| x.rule != Rule::RawQuantity));
        // …core is.
        assert!(scan_scoped("crates/core/src/x.rs", src)
            .iter()
            .any(|x| x.rule == Rule::RawQuantity));
    }

    #[test]
    fn unit_unwrap_flags_value_calls_outside_perf_modules() {
        let src = "fn f(e: Joules) -> f64 { e.value() }\n";
        assert!(scan_lib(src).iter().any(|x| x.rule == Rule::UnitUnwrap));
        // Inside a declared perf-critical module nothing fires.
        assert!(scan_scoped("crates/core/src/greedy.rs", src)
            .iter()
            .all(|x| x.rule != Rule::UnitUnwrap));
        // With a justified pragma nothing fires either.
        let allowed = "fn f(e: Joules) -> f64 {\n    // lint:allow(unit-unwrap): boundary formatting only\n    e.value()\n}\n";
        assert!(scan_lib(allowed).is_empty(), "{:?}", scan_lib(allowed));
    }

    #[test]
    fn unit_unwrap_flags_tuple_field_escape() {
        let src = "fn f(x: f64) -> f64 { Joules(x).0 }\n";
        assert!(scan_lib(src).iter().any(|x| x.rule == Rule::UnitUnwrap));
        // Ordinary tuple access is not an escape.
        let ok = "fn g(p: (f64, f64)) -> f64 { p.0 }\n";
        assert!(scan_lib(ok).iter().all(|x| x.rule != Rule::UnitUnwrap));
    }

    #[test]
    fn float_eq_flags_known_f64_comparisons_outside_tests() {
        let src = "fn f(a: f64, b: f64) -> bool { a == b }\n";
        assert!(scan_lib(src).iter().any(|x| x.rule == Rule::FloatEq));
        let src = "fn f(e: Joules, g: Joules) -> bool { e.value() == g.value() }\n";
        assert!(scan_lib(src).iter().any(|x| x.rule == Rule::FloatEq));
        let src = "fn f(e: f64) { assert_eq!(e, 1.5); }\n";
        assert!(scan_lib(src).iter().any(|x| x.rule == Rule::FloatEq));
        // Int comparisons and test code are exempt.
        assert!(scan_lib("fn f(a: usize, b: usize) -> bool { a == b }\n")
            .iter()
            .all(|x| x.rule != Rule::FloatEq));
        let test_src =
            "#[cfg(test)]\nmod tests {\n    fn f(a: f64, b: f64) -> bool { a == b }\n}\n";
        assert!(scan_lib(test_src).iter().all(|x| x.rule != Rule::FloatEq));
    }

    #[test]
    fn env_read_flags_ambient_configuration() {
        let src = "fn f() { let _ = std::env::var(\"UAVDC_THREADS\"); }\n";
        assert!(scan_lib(src).iter().any(|x| x.rule == Rule::EnvRead));
        // The sanctioned threading helper is exempt by path.
        assert!(scan_scoped("crates/core/src/greedy.rs", src)
            .iter()
            .all(|x| x.rule != Rule::EnvRead));
        // So is the observability toggle (`UAVDC_OBS` in env_enabled).
        let obs_src = "fn f() { let _ = std::env::var(\"UAVDC_OBS\"); }\n";
        assert!(scan_scoped("crates/obs/src/lib.rs", obs_src)
            .iter()
            .all(|x| x.rule != Rule::EnvRead));
        // The exemption is by exact path, not the whole crate.
        assert!(scan_scoped("crates/obs/src/other.rs", obs_src)
            .iter()
            .any(|x| x.rule == Rule::EnvRead));
    }

    #[test]
    fn report_json_has_stable_schema() {
        let f = vec![Finding {
            path: PathBuf::from("a.rs"),
            line: 3,
            rule: Rule::FloatOrd,
            message: "m".into(),
        }];
        let j = report_json(&f);
        assert!(j.starts_with("{\"schema\":\"uavdc-lint/4\""));
        assert!(j.contains("\"rules\":[\"float-ord\",\"panic-site\",\"nondeterminism\",\"raw-quantity\",\"unit-unwrap\",\"float-eq\",\"env-read\",\"effect-taint\",\"panic-reach\",\"unit-flow\",\"obs-twin\",\"par-purity\",\"lock-across-spawn\",\"atomic-ordering\",\"shared-accumulator\"]"));
        assert!(j.ends_with("\"count\":1}"));
    }

    #[test]
    fn classify_paths() {
        assert_eq!(
            classify(Path::new("crates/core/src/alg1.rs")),
            FileKind::Library
        );
        assert_eq!(
            classify(Path::new("crates/core/tests/x.rs")),
            FileKind::TestLike
        );
        assert_eq!(
            classify(Path::new("crates/bench/benches/fig3.rs")),
            FileKind::TestLike
        );
        assert_eq!(
            classify(Path::new("examples/smart_city.rs")),
            FileKind::TestLike
        );
        assert_eq!(classify(Path::new("src/bin/uavdc.rs")), FileKind::TestLike);
        assert_eq!(classify(Path::new("src/lib.rs")), FileKind::Library);
        assert_eq!(
            classify(Path::new("tests/energy_feasibility.rs")),
            FileKind::TestLike
        );
    }
}
