//! Workspace call graph plus per-function hazard sites.
//!
//! Built on [`crate::resolve`]: one node per parsed `fn`, one edge per
//! resolved call site (deduplicated, deterministic order). Alongside the
//! edges, each node records the *local* hazard sites the interprocedural
//! rules propagate:
//!
//! * panic sites (`unwrap`/`expect`/`panic!`-family) and indexing sites,
//! * effect sites (time reads, unseeded RNG, hash-order containers,
//!   ambient env reads),
//! * unit escapes (`.value()` / `Unit(..).0`) for raw-`f64` flow.
//!
//! A site that carries a justified pragma is collected with
//! `justified = true`: it still exists in the graph (the `--graph` dump
//! shows it) but never propagates. Test-like files and `#[cfg(test)]`
//! regions contribute edges but no hazard sites — planners cannot call
//! into them.

use crate::lexer::TokKind;
use crate::resolve::{extract_calls, CallSite, FileCtx, FnId, Workspace};
use crate::{FileKind, Rule};
use std::fmt::Write as _;

/// Classification of an effect source for messages and pragma mapping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EffectKind {
    /// `Instant::now` / `SystemTime::now`.
    Time,
    /// `thread_rng` / `from_entropy`.
    Rng,
    /// `HashMap` / `HashSet` / `RandomState`.
    HashOrder,
    /// `env::var` / `var_os` / `vars`.
    Env,
}

impl EffectKind {
    /// Human label used in witness messages (with article).
    pub fn label(self) -> &'static str {
        match self {
            EffectKind::Time => "a wall-clock read",
            EffectKind::Rng => "an unseeded RNG",
            EffectKind::HashOrder => "a hash-order container",
            EffectKind::Env => "an ambient env read",
        }
    }
}

/// One local hazard site inside a function body.
#[derive(Clone, Debug)]
pub struct Site {
    /// 1-based line.
    pub line: usize,
    /// Offending construct, for the message (`` `unwrap()` ``).
    pub what: String,
    /// Suppressed by a pragma (or an audit list): never propagates.
    pub justified: bool,
}

/// One call-graph node: a parsed `fn` plus its local hazards.
pub struct Node {
    /// Owning (file, fn) id.
    pub id: FnId,
    /// Resolved callees, deduplicated, deterministic order.
    pub callees: Vec<FnId>,
    /// Call sites that resolved to nothing (opaque), for the dump.
    pub opaque_calls: usize,
    /// Raw call sites (kept for wrap detection in unit-flow).
    pub calls: Vec<(CallSite, Vec<FnId>)>,
    /// Panic-family sites (`unwrap`/`expect`/macros).
    pub panic_sites: Vec<Site>,
    /// Indexing sites (`expr[..]`).
    pub index_sites: Vec<Site>,
    /// Effect sites with their kind.
    pub effect_sites: Vec<(EffectKind, Site)>,
    /// Spawn sites (`scope.spawn` / `thread::spawn`) with closure body
    /// ranges (lint v4 concurrency layer).
    pub spawn_sites: Vec<crate::concurrency::SpawnSite>,
    /// Direct `.lock()` acquisitions with guard-liveness ranges.
    pub lock_sites: Vec<crate::concurrency::LockSite>,
    /// `Ordering::Relaxed` atomic-access sites.
    pub atomic_sites: Vec<Site>,
    /// Body contains a `.value()` / `Unit(..).0` unit escape.
    pub unit_escape: Option<usize>,
    /// Return type mentions `f64`.
    pub returns_f64: bool,
    /// Public, non-test, library-classified fn (entry-point candidate).
    pub is_public_api: bool,
}

/// The assembled graph.
pub struct CallGraph {
    /// Node per fn, indexed in (file, fn) iteration order.
    pub nodes: Vec<Node>,
    /// `(file, fn)` → node index.
    index: std::collections::BTreeMap<FnId, usize>,
    /// Reverse edges: for each node, the nodes that call it.
    pub callers: Vec<Vec<usize>>,
}

/// Decides whether a file's hazard sites are collected at all: fns in
/// sanctioned observability code are effect/panic *sinks* — the recorder
/// invisibility property (DESIGN.md §10, property-proven) guarantees
/// they cannot influence planner output, so taint must not flow out of
/// them into every `_obs` twin's caller.
pub fn obs_sanctioned(norm: &str) -> bool {
    norm.contains("crates/obs/src/") || norm.contains("crates/compat/")
}

impl CallGraph {
    /// Node index for a fn id, if the fn was parsed.
    pub fn node_of(&self, id: FnId) -> Option<usize> {
        self.index.get(&id).copied()
    }

    /// Builds the graph and collects hazard sites.
    ///
    /// `allowed(file, rule, line, mark)` reports whether a pragma
    /// suppresses `rule` at `line`; with `mark = true` the pragma is
    /// also marked used (so site justifications count against the
    /// unused-allow meta-rule). `index_audited(norm)` implements the
    /// bounds-audited baseline for indexing sites.
    pub fn build(
        ws: &Workspace,
        mut allowed: impl FnMut(usize, Rule, usize, bool) -> bool,
        index_audited: impl Fn(&str) -> bool,
    ) -> CallGraph {
        let mut nodes = Vec::new();
        let mut index = std::collections::BTreeMap::new();
        for (fi, file) in ws.files.iter().enumerate() {
            for (ni, fun) in file.model.fns.iter().enumerate() {
                let id = (fi, ni);
                let mut node = Node {
                    id,
                    callees: Vec::new(),
                    opaque_calls: 0,
                    calls: Vec::new(),
                    panic_sites: Vec::new(),
                    index_sites: Vec::new(),
                    effect_sites: Vec::new(),
                    spawn_sites: Vec::new(),
                    lock_sites: Vec::new(),
                    atomic_sites: Vec::new(),
                    unit_escape: None,
                    returns_f64: fun.ret.as_deref().is_some_and(crate::parser::type_has_f64),
                    is_public_api: fun.is_pub && !fun.in_test && file.kind == FileKind::Library,
                };
                if let Some((lo, hi)) = fun.body {
                    for call in extract_calls(&file.lexed.toks, lo, hi) {
                        let targets = ws.resolve(fi, &call);
                        if targets.is_empty() {
                            node.opaque_calls += 1;
                        }
                        for t in &targets {
                            if !node.callees.contains(t) {
                                node.callees.push(*t);
                            }
                        }
                        node.calls.push((call, targets));
                    }
                    node.callees.sort_unstable();
                    let hazard_scope = file.kind == FileKind::Library
                        && !fun.in_test
                        && !obs_sanctioned(&file.norm);
                    if hazard_scope {
                        collect_hazards(
                            file,
                            lo,
                            hi,
                            &mut node,
                            |rule, line, mark| allowed(fi, rule, line, mark),
                            &index_audited,
                        );
                    }
                    // Concurrency hazards are collected even in
                    // sanctioned obs/compat code — the recorder's Mutex
                    // and the shim's spawns are exactly what the lock
                    // rules patrol.
                    if file.kind == FileKind::Library && !fun.in_test {
                        crate::concurrency::collect_sites(
                            file,
                            lo,
                            hi,
                            &mut node,
                            |rule, line, mark| allowed(fi, rule, line, mark),
                        );
                    }
                }
                index.insert(id, nodes.len());
                nodes.push(node);
            }
        }
        let mut callers: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        for (i, n) in nodes.iter().enumerate() {
            for c in &n.callees {
                if let Some(&j) = index.get(c) {
                    if !callers[j].contains(&i) {
                        callers[j].push(i);
                    }
                }
            }
        }
        for c in &mut callers {
            c.sort_unstable();
        }
        CallGraph {
            nodes,
            index,
            callers,
        }
    }

    /// Deterministic plain-text dump of the graph for `--graph`: one line
    /// per fn with its coordinate, callees, opaque-call count, and local
    /// hazard summary. Debugging aid and CI failure artifact.
    pub fn dump(&self, ws: &Workspace) -> String {
        let mut out = String::new();
        for node in &self.nodes {
            let (fi, ni) = node.id;
            let file = &ws.files[fi];
            let fun = &file.model.fns[ni];
            let mut coord = file.crate_ident.clone();
            for m in &file.mods {
                coord.push_str("::");
                coord.push_str(m);
            }
            let _ = write!(
                out,
                "{}::{} [{}:{}]",
                coord,
                fun.name,
                file.path.display(),
                fun.line
            );
            let callees: Vec<String> = node
                .callees
                .iter()
                .map(|&(cfi, cni)| {
                    let cf = &ws.files[cfi];
                    format!("{}::{}", cf.crate_ident, cf.model.fns[cni].name)
                })
                .collect();
            let _ = write!(out, " -> [{}]", callees.join(", "));
            if node.opaque_calls > 0 {
                let _ = write!(out, " opaque={}", node.opaque_calls);
            }
            let live = |sites: &[Site]| sites.iter().filter(|s| !s.justified).count();
            let justified = |sites: &[Site]| sites.iter().filter(|s| s.justified).count();
            let effects: Vec<Site> = node.effect_sites.iter().map(|(_, s)| s.clone()).collect();
            let _ = write!(
                out,
                " panics={}+{} indexing={}+{} effects={}+{}{}",
                live(&node.panic_sites),
                justified(&node.panic_sites),
                live(&node.index_sites),
                justified(&node.index_sites),
                live(&effects),
                justified(&effects),
                if node.unit_escape.is_some() {
                    " unit-escape"
                } else {
                    ""
                },
            );
            if !node.lock_sites.is_empty() {
                let _ = write!(
                    out,
                    " locks={}+{}",
                    node.lock_sites.iter().filter(|s| !s.justified).count(),
                    node.lock_sites.iter().filter(|s| s.justified).count(),
                );
            }
            if !node.atomic_sites.is_empty() {
                let _ = write!(
                    out,
                    " relaxed={}+{}",
                    live(&node.atomic_sites),
                    justified(&node.atomic_sites),
                );
            }
            if !node.spawn_sites.is_empty() {
                let lines: Vec<String> = node
                    .spawn_sites
                    .iter()
                    .map(|s| format!("l{}", s.line))
                    .collect();
                let _ = write!(out, " spawns=[{}]", lines.join(", "));
                // Spawn-edge annotation: resolved callees whose call
                // site sits inside a spawned closure body, so witness
                // paths through spawned closures are reproducible from
                // the artifact alone.
                let mut spawn_edges: Vec<String> = Vec::new();
                for (call, targets) in &node.calls {
                    let Some(site) = node.spawn_sites.iter().find(|s| s.covers(call.name_tok))
                    else {
                        continue;
                    };
                    for &(cfi, cni) in targets {
                        let cf = &ws.files[cfi];
                        let label = format!(
                            "{}::{}@l{}",
                            cf.crate_ident, cf.model.fns[cni].name, site.line
                        );
                        if !spawn_edges.contains(&label) {
                            spawn_edges.push(label);
                        }
                    }
                }
                if !spawn_edges.is_empty() {
                    let _ = write!(out, " spawn-> [{}]", spawn_edges.join(", "));
                }
            }
            out.push('\n');
        }
        out
    }
}

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Scans a body token range for hazard sites. `allowed(rule, line, mark)`
/// checks (and with `mark = true`, consumes) a pragma.
fn collect_hazards(
    file: &FileCtx,
    lo: usize,
    hi: usize,
    node: &mut Node,
    mut allowed: impl FnMut(Rule, usize, bool) -> bool,
    index_audited: &impl Fn(&str) -> bool,
) {
    let toks = &file.lexed.toks;
    let hi = hi.min(toks.len());
    let env_sanctioned = crate::env_read_sanctioned(&file.norm);
    let audited = index_audited(&file.norm);
    for i in lo..hi {
        if file.model.tok_in_test.get(i).copied().unwrap_or(false) {
            continue;
        }
        let t = &toks[i];
        // Panic-family macro.
        if t.kind == TokKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|x| x.is_punct("!"))
        {
            let justified =
                allowed(Rule::PanicSite, t.line, false) || allowed(Rule::PanicReach, t.line, true);
            node.panic_sites.push(Site {
                line: t.line,
                what: format!("`{}!`", t.text),
                justified,
            });
        }
        // `.unwrap()` / `.expect(`.
        if t.is_punct(".")
            && toks
                .get(i + 1)
                .is_some_and(|x| x.is_ident("unwrap") || x.is_ident("expect"))
            && toks.get(i + 2).is_some_and(|x| x.is_punct("("))
        {
            let line = toks[i + 1].line;
            let justified =
                allowed(Rule::PanicSite, line, false) || allowed(Rule::PanicReach, line, true);
            node.panic_sites.push(Site {
                line,
                what: format!("`{}()`", toks[i + 1].text),
                justified,
            });
        }
        // Indexing: `ident[` / `)[` / `][`.
        if t.is_punct("[")
            && i > 0
            && (toks[i - 1].kind == TokKind::Ident
                || toks[i - 1].is_punct(")")
                || toks[i - 1].is_punct("]"))
        {
            let justified = audited || allowed(Rule::PanicReach, t.line, true);
            node.index_sites.push(Site {
                line: t.line,
                what: "indexing".into(),
                justified,
            });
        }
        // Effects.
        let mut effect: Option<(EffectKind, String, Rule, usize)> = None;
        if t.kind == TokKind::Ident {
            match t.text.as_str() {
                "thread_rng" | "from_entropy" => {
                    effect = Some((
                        EffectKind::Rng,
                        format!("`{}`", t.text),
                        Rule::Nondeterminism,
                        t.line,
                    ));
                }
                "HashMap" | "HashSet" | "RandomState" => {
                    effect = Some((
                        EffectKind::HashOrder,
                        format!("`{}`", t.text),
                        Rule::Nondeterminism,
                        t.line,
                    ));
                }
                "Instant" | "SystemTime"
                    if toks.get(i + 1).is_some_and(|x| x.is_punct("::"))
                        && toks.get(i + 2).is_some_and(|x| x.is_ident("now")) =>
                {
                    effect = Some((
                        EffectKind::Time,
                        format!("`{}::now`", t.text),
                        Rule::EffectTaint,
                        t.line,
                    ));
                }
                "env"
                    if !env_sanctioned
                        && toks.get(i + 1).is_some_and(|x| x.is_punct("::"))
                        && toks.get(i + 2).is_some_and(|x| {
                            x.is_ident("var") || x.is_ident("var_os") || x.is_ident("vars")
                        }) =>
                {
                    effect = Some((EffectKind::Env, "`env::var`".into(), Rule::EnvRead, t.line));
                }
                _ => {}
            }
        }
        if let Some((kind, what, site_rule, line)) = effect {
            // A pragma for the per-file rule that also covers this site
            // (nondeterminism, env-read) is honoured without re-marking;
            // an `effect-taint` pragma is marked used here.
            let justified = (site_rule != Rule::EffectTaint && allowed(site_rule, line, false))
                || allowed(Rule::EffectTaint, line, true);
            node.effect_sites.push((
                kind,
                Site {
                    line,
                    what,
                    justified,
                },
            ));
        }
        // Unit escapes: `.value()` and `Unit(..).0`.
        if node.unit_escape.is_none() {
            if t.is_punct(".")
                && toks.get(i + 1).is_some_and(|x| x.is_ident("value"))
                && toks.get(i + 2).is_some_and(|x| x.is_punct("("))
                && toks.get(i + 3).is_some_and(|x| x.is_punct(")"))
            {
                node.unit_escape = Some(t.line);
            }
            if t.kind == TokKind::Ident
                && crate::UNIT_TYPES.contains(&t.text.as_str())
                && toks.get(i + 1).is_some_and(|x| x.is_punct("("))
            {
                // `Joules(x).0` — confirm the tuple access follows the
                // matching close paren.
                let mut depth = 0i64;
                let mut j = i + 1;
                while j < hi {
                    match toks[j].text.as_str() {
                        "(" => depth += 1,
                        ")" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if toks.get(j + 1).is_some_and(|x| x.is_punct("."))
                    && toks
                        .get(j + 2)
                        .is_some_and(|x| x.kind == TokKind::Int && x.text == "0")
                {
                    node.unit_escape = Some(t.line);
                }
            }
        }
    }
}
