//! Concurrency and shared-state analysis (lint v4).
//!
//! The scale-out path (`chunked_argmax_with` / `chunked_map_with` scoped
//! spawns, the Mutex-backed recorder, atomic clocks) moves shared mutable
//! state across thread boundaries, and the paper's headline claim —
//! bit-identical plans for every thread count — only holds while that
//! state stays schedule-independent. This module adds three hazard
//! inventories to the call graph (spawn sites with the spawned closure's
//! body range, lock/guard acquisitions with a token-range liveness
//! approximation, `Ordering::Relaxed` atomic accesses) and four
//! interprocedural rules on top of the v3 dataflow layer:
//!
//! * **par-purity** — closures handed to the chunked engines must not
//!   capture `Cell`/`RefCell` state, write through their captures, or use
//!   interior mutability, and every function they call (including a named
//!   `better` comparator) must be call-graph-unreachable from an effect
//!   source (reusing the effect-taint fixed point and its witness paths).
//! * **lock-across-spawn** — no `MutexGuard` live across a spawn site,
//!   no call into another locking function while a guard on the same
//!   lock is held (re-entrant deadlock), and no pair of locks acquired
//!   in opposite orders anywhere in the workspace (lock-order cycle over
//!   a per-lock-identity graph).
//! * **atomic-ordering** — a `Relaxed` atomic access reachable from a
//!   public planner entry point; timing-only counters are allowlisted at
//!   the site with `lint:allow(atomic-ordering)`.
//! * **shared-accumulator** — `fetch_add`-family or `lock().push()`
//!   accumulation inside a spawned closure, whose merge order is
//!   scheduler-dependent unless proven order-insensitive.
//!
//! Soundness boundaries (see DESIGN.md §14): the capture set is a token
//! approximation (identifiers that resolve to an enclosing binding);
//! read-only reborrows of `&mut` bindings are deliberately accepted (the
//! `Fn` bound already forbids writing through them without interior
//! mutability, which is flagged separately); guard liveness is the
//! enclosing block for `let`-bound guards (truncated at `drop(guard)`)
//! and the enclosing statement for temporaries; lock identity is the
//! receiver's trailing field name qualified by the defining crate.

use crate::callgraph::{CallGraph, EffectKind, Node, Site};
use crate::dataflow::{self, ReachInfo};
use crate::lexer::{Tok, TokKind};
use crate::resolve::{CallSite, FileCtx, Workspace};
use crate::{FileKind, Finding, Rule};
use std::collections::{BTreeMap, BTreeSet};

/// One `spawn(..)` call site inside a function body.
#[derive(Clone, Debug)]
pub struct SpawnSite {
    /// 1-based line of the `spawn` token.
    pub line: usize,
    /// Token index of the `spawn` identifier.
    pub tok: usize,
    /// Token range `[lo, hi)` of the spawned closure's body; empty when
    /// the spawn argument is not a closure literal.
    pub body: (usize, usize),
}

impl SpawnSite {
    /// Is token index `t` inside the spawned closure's body?
    pub fn covers(&self, t: usize) -> bool {
        self.body.0 < self.body.1 && t >= self.body.0 && t < self.body.1
    }
}

/// One direct `.lock()` acquisition inside a function body.
#[derive(Clone, Debug)]
pub struct LockSite {
    /// 1-based line of the `lock` token.
    pub line: usize,
    /// Token index of the `lock` identifier.
    pub tok: usize,
    /// Receiver's trailing identifier, naming the lock (`inner` in
    /// `self.inner.lock()`).
    pub what: String,
    /// Guard liveness as a token range `[lo, hi)`.
    pub live: (usize, usize),
    /// Suppressed by a `lint:allow(lock-across-spawn)` pragma at the
    /// acquisition: never propagates.
    pub justified: bool,
}

const FETCH_OPS: [&str; 7] = [
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_min",
    "fetch_max",
];

const INTERIOR_MUT_OPS: [&str; 11] = [
    "lock",
    "borrow_mut",
    "store",
    "swap",
    "compare_exchange",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_update",
];

/// The chunked-engine entry points whose function arguments par-purity
/// patrols.
const PAR_TARGETS: [&str; 4] = [
    "chunked_argmax",
    "chunked_argmax_with",
    "chunked_map",
    "chunked_map_with",
];

// ---------------------------------------------------------------------------
// Hazard collection (called from CallGraph::build)
// ---------------------------------------------------------------------------

/// Scans a body token range for concurrency hazard sites. Unlike the v3
/// hazard collector this is *not* gated by `obs_sanctioned` — the
/// recorder's Mutex and the compat shim's spawns are exactly what the
/// lock rules must see. `allowed(rule, line, mark)` checks (and with
/// `mark = true`, consumes) a pragma.
pub(crate) fn collect_sites(
    file: &FileCtx,
    lo: usize,
    hi: usize,
    node: &mut Node,
    mut allowed: impl FnMut(Rule, usize, bool) -> bool,
) {
    let toks = &file.lexed.toks;
    let hi = hi.min(toks.len());
    for i in lo..hi {
        if file.model.tok_in_test.get(i).copied().unwrap_or(false) {
            continue;
        }
        let t = &toks[i];
        // Spawn site: `scope.spawn(..)`, `thread::spawn(..)`, `spawn(..)`.
        if t.is_ident("spawn") && toks.get(i + 1).is_some_and(|x| x.is_punct("(")) {
            node.spawn_sites.push(SpawnSite {
                line: t.line,
                tok: i,
                body: closure_body(toks, i + 1, hi),
            });
        }
        // Direct lock acquisition: `recv.lock(..)`.
        if t.is_punct(".")
            && toks.get(i + 1).is_some_and(|x| x.is_ident("lock"))
            && toks.get(i + 2).is_some_and(|x| x.is_punct("("))
        {
            let line = toks[i + 1].line;
            node.lock_sites.push(LockSite {
                line,
                tok: i + 1,
                what: receiver_tail(toks, i),
                live: guard_live_range(toks, hi, i + 1),
                justified: allowed(Rule::LockAcrossSpawn, line, true),
            });
        }
        // Relaxed atomic ordering.
        if t.is_ident("Relaxed")
            && i >= 2
            && toks[i - 1].is_punct("::")
            && toks[i - 2].is_ident("Ordering")
        {
            node.atomic_sites.push(Site {
                line: t.line,
                what: "`Ordering::Relaxed`".into(),
                justified: allowed(Rule::AtomicOrdering, t.line, true),
            });
        }
    }
}

/// Token range `[lo, hi)` of the closure body in a `spawn(move |..| ..)`
/// argument, where `open` is the spawn call's opening paren. Empty when
/// the argument is not a closure literal.
fn closure_body(toks: &[Tok], open: usize, hi: usize) -> (usize, usize) {
    let mut j = open + 1;
    if toks.get(j).is_some_and(|x| x.is_ident("move")) {
        j += 1;
    }
    if toks.get(j).is_some_and(|x| x.is_punct("||")) {
        j += 1;
    } else if toks.get(j).is_some_and(|x| x.is_punct("|")) {
        j += 1;
        while j < hi && !toks[j].is_punct("|") {
            j += 1;
        }
        j += 1;
    } else {
        return (0, 0);
    }
    if toks.get(j).is_some_and(|x| x.is_punct("{")) {
        // Brace-block body: everything inside the matching braces.
        let mut depth = 0i64;
        let mut k = j;
        while k < hi {
            match toks[k].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return (j + 1, k);
                    }
                }
                _ => {}
            }
            k += 1;
        }
        (j + 1, hi)
    } else {
        // Expression body: up to the paren that closes the spawn call.
        let mut depth = 1i64;
        let mut k = open + 1;
        while k < hi {
            match toks[k].text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        return (j, k);
                    }
                }
                _ => {}
            }
            k += 1;
        }
        (j, hi)
    }
}

/// The identifier directly before the `.` at `dot` (`inner` in
/// `self.inner.lock()`); `"<temp>"` for expression receivers.
fn receiver_tail(toks: &[Tok], dot: usize) -> String {
    if dot > 0 && toks[dot - 1].kind == TokKind::Ident {
        toks[dot - 1].text.clone()
    } else {
        "<temp>".to_string()
    }
}

/// Approximates the token range over which the guard produced by the
/// call whose name token is `name_tok` stays live: the enclosing block
/// (truncated at `drop(binding)`) when the statement is a simple
/// `let [mut] binding = ..;`, otherwise the enclosing statement.
pub(crate) fn guard_live_range(toks: &[Tok], hi: usize, name_tok: usize) -> (usize, usize) {
    let hi = hi.min(toks.len());
    // Statement end: next `;` at depth 0, or the `}`/`)` closing the
    // enclosing group.
    let mut depth = 0i64;
    let mut stmt_end = hi;
    let mut k = name_tok;
    while k < hi {
        match toks[k].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth < 0 {
                    stmt_end = k;
                    break;
                }
            }
            ";" if depth == 0 => {
                stmt_end = k;
                break;
            }
            _ => {}
        }
        k += 1;
    }
    // Statement start: walk back to the nearest `;` / `{` / `}`.
    let mut b = name_tok;
    while b > 0 {
        let prev = &toks[b - 1];
        if prev.is_punct(";") || prev.is_punct("{") || prev.is_punct("}") {
            break;
        }
        b -= 1;
    }
    let binding = if toks.get(b).is_some_and(|x| x.is_ident("let")) {
        let mut p = b + 1;
        if toks.get(p).is_some_and(|x| x.is_ident("mut")) {
            p += 1;
        }
        if toks.get(p).is_some_and(|x| x.kind == TokKind::Ident)
            && toks.get(p + 1).is_some_and(|x| x.is_punct("="))
        {
            Some(toks[p].text.clone())
        } else {
            None
        }
    } else {
        None
    };
    let Some(name) = binding else {
        return (name_tok, stmt_end);
    };
    // `let`-bound: live to the end of the enclosing block, or until an
    // explicit `drop(name)`.
    let mut depth = 0i64;
    let mut k = name_tok;
    while k < hi {
        match toks[k].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth < 0 {
                    return (name_tok, k);
                }
            }
            "drop"
                if toks.get(k + 1).is_some_and(|x| x.is_punct("("))
                    && toks.get(k + 2).is_some_and(|x| x.text == name)
                    && toks.get(k + 3).is_some_and(|x| x.is_punct(")")) =>
            {
                return (name_tok, k);
            }
            _ => {}
        }
        k += 1;
    }
    (name_tok, hi)
}

// ---------------------------------------------------------------------------
// The four rules
// ---------------------------------------------------------------------------

/// Runs the four concurrency rules over the built graph. `effect_reach`
/// is the effect-taint fixed point already computed by the caller (the
/// par-purity effect check reuses it); `entries` are the planner entry
/// nodes; `allowed(file, rule, line)` checks and consumes a pragma.
pub(crate) fn check(
    ws: &Workspace,
    graph: &CallGraph,
    entries: &[usize],
    effect_reach: &[Option<ReachInfo<(EffectKind, Site)>>],
    mut allowed: impl FnMut(usize, Rule, usize) -> bool,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let in_scope = |n: usize| {
        let (fi, ni) = graph.nodes[n].id;
        let ctx = &ws.files[fi];
        ctx.kind == FileKind::Library && !ctx.model.fns[ni].in_test
    };

    // --- par-purity -------------------------------------------------------
    for n in 0..graph.nodes.len() {
        if !in_scope(n) {
            continue;
        }
        let (fi, ni) = graph.nodes[n].id;
        let ctx = &ws.files[fi];
        let fun = &ctx.model.fns[ni];
        let toks = &ctx.lexed.toks;
        let Some((_, body_hi)) = fun.body else {
            continue;
        };
        let body_hi = body_hi.min(toks.len());
        for (call, _) in &graph.nodes[n].calls {
            if !PAR_TARGETS.contains(&call.name.as_str()) {
                continue;
            }
            let Some(open) = call_open_paren(toks, call.name_tok, body_hi) else {
                continue;
            };
            let env = FnEnv::build(ctx, fun);
            for (alo, ahi) in split_args(toks, open, body_hi) {
                par_purity_arg(
                    ws,
                    graph,
                    n,
                    &env,
                    call,
                    (alo, ahi),
                    effect_reach,
                    &mut |line| allowed(fi, Rule::ParPurity, line),
                    &mut findings,
                );
            }
        }
    }

    // --- lock-across-spawn ------------------------------------------------
    // Sources: every function with an unjustified direct lock site,
    // keyed by lock identity (defining crate + receiver field).
    let lock_sources: Vec<(usize, (String, usize))> = graph
        .nodes
        .iter()
        .enumerate()
        .filter_map(|(n, node)| {
            node.lock_sites.iter().find(|s| !s.justified).map(|s| {
                let key = format!("{}::{}", ws.files[node.id.0].crate_ident, s.what);
                (n, (key, s.line))
            })
        })
        .collect();
    let lock_reach = dataflow::reach(graph, &lock_sources);
    // Lock-order graph: held-lock -> acquired-lock, with the first
    // witnessing site (deterministic: nodes and calls in scan order).
    let mut lock_edges: BTreeMap<(String, String), (usize, usize)> = BTreeMap::new();
    for n in 0..graph.nodes.len() {
        if !in_scope(n) {
            continue;
        }
        let (fi, ni) = graph.nodes[n].id;
        let ctx = &ws.files[fi];
        let fun = &ctx.model.fns[ni];
        let toks = &ctx.lexed.toks;
        let Some((_, body_hi)) = fun.body else {
            continue;
        };
        let body_hi = body_hi.min(toks.len());
        // All acquisitions in this body: direct `.lock()` sites plus
        // calls into guard-returning lock wrappers.
        struct Acq {
            line: usize,
            tok: usize,
            key: String,
            live: (usize, usize),
        }
        let mut acqs: Vec<Acq> = graph.nodes[n]
            .lock_sites
            .iter()
            .filter(|s| !s.justified)
            .map(|s| Acq {
                line: s.line,
                tok: s.tok,
                key: format!("{}::{}", ctx.crate_ident, s.what),
                live: s.live,
            })
            .collect();
        for (call, targets) in &graph.nodes[n].calls {
            let Some(tix) = targets.iter().find_map(|&t| {
                let (tfi, tni) = t;
                let ret = ws.files[tfi].model.fns[tni].ret.as_deref().unwrap_or("");
                if ret.split(' ').any(|w| w == "MutexGuard") {
                    graph.node_of(t).filter(|&ix| lock_reach[ix].is_some())
                } else {
                    None
                }
            }) else {
                continue;
            };
            let key = lock_reach[tix].as_ref().map(|r| r.payload.0.clone());
            if let Some(key) = key {
                if !allowed(fi, Rule::LockAcrossSpawn, call.line) {
                    acqs.push(Acq {
                        line: call.line,
                        tok: call.name_tok,
                        key,
                        live: guard_live_range(toks, body_hi, call.name_tok),
                    });
                }
            }
        }
        for acq in &acqs {
            // (1) Guard live across a spawn site.
            for s in &graph.nodes[n].spawn_sites {
                if s.tok > acq.tok && s.tok < acq.live.1 {
                    findings.push(Finding {
                        path: ctx.path.clone(),
                        line: acq.line,
                        rule: Rule::LockAcrossSpawn,
                        message: format!(
                            "`MutexGuard` on `{}` acquired in `{}` is still live across the spawn at line {}; narrow the guard (drop it before spawning) or justify with lint:allow(lock-across-spawn)",
                            acq.key, fun.name, s.line,
                        ),
                    });
                }
            }
            // (2) Guard held while calling into another locking function.
            for (call, targets) in &graph.nodes[n].calls {
                if call.name_tok <= acq.tok || call.name_tok >= acq.live.1 {
                    continue;
                }
                let Some(tix) = targets
                    .iter()
                    .filter_map(|&t| graph.node_of(t))
                    .find(|&ix| ix != n && lock_reach[ix].is_some())
                else {
                    continue;
                };
                let Some(tinfo) = &lock_reach[tix] else {
                    continue;
                };
                let tkey = &tinfo.payload.0;
                if *tkey == acq.key {
                    if !allowed(fi, Rule::LockAcrossSpawn, call.line) {
                        findings.push(Finding {
                            path: ctx.path.clone(),
                            line: call.line,
                            rule: Rule::LockAcrossSpawn,
                            message: format!(
                                "calling `{}` here re-locks `{}` while the guard from line {} is still held (self-deadlock) via {}; drop the guard first or justify with lint:allow(lock-across-spawn)",
                                call.name,
                                acq.key,
                                acq.line,
                                witness(ws, graph, &lock_reach, tix),
                            ),
                        });
                    }
                } else {
                    lock_edges
                        .entry((acq.key.clone(), tkey.clone()))
                        .or_insert((n, call.line));
                }
            }
        }
    }
    // (3) Lock-order cycles: an edge A -> B participates in a cycle when
    // B reaches A through the edge set.
    let edge_keys: BTreeSet<(String, String)> = lock_edges.keys().cloned().collect();
    for ((a, b), &(n, line)) in &lock_edges {
        if a != b && lock_order_reaches(&edge_keys, b, a) {
            let (fi, _) = graph.nodes[n].id;
            let ctx = &ws.files[fi];
            if !allowed(fi, Rule::LockAcrossSpawn, line) {
                findings.push(Finding {
                    path: ctx.path.clone(),
                    line,
                    rule: Rule::LockAcrossSpawn,
                    message: format!(
                        "lock-order cycle: `{a}` is held here while acquiring `{b}`, but another call path acquires them in the opposite order; establish one global lock order or justify with lint:allow(lock-across-spawn)",
                    ),
                });
            }
        }
    }

    // --- atomic-ordering --------------------------------------------------
    let atomic_sources: Vec<(usize, Site)> = graph
        .nodes
        .iter()
        .enumerate()
        .filter_map(|(n, node)| {
            node.atomic_sites
                .iter()
                .find(|s| !s.justified)
                .map(|s| (n, s.clone()))
        })
        .collect();
    let atomic_reach = dataflow::reach(graph, &atomic_sources);
    for &e in entries {
        let Some(info) = &atomic_reach[e] else {
            continue;
        };
        let site = &info.payload;
        let (fi, ni) = graph.nodes[e].id;
        let fun = &ws.files[fi].model.fns[ni];
        let src_file = &ws.files[graph.nodes[info.source].id.0];
        if !allowed(fi, Rule::AtomicOrdering, fun.line) {
            findings.push(Finding {
                path: ws.files[fi].path.clone(),
                line: fun.line,
                rule: Rule::AtomicOrdering,
                message: format!(
                    "public planner entry `{}` can reach a relaxed atomic access ({} at {}:{}) via {}; plan-affecting atomics need SeqCst or acquire/release, or justify a timing-only counter with lint:allow(atomic-ordering)",
                    fun.name,
                    site.what,
                    src_file.path.display(),
                    site.line,
                    witness(ws, graph, &atomic_reach, e),
                ),
            });
        }
    }

    // --- shared-accumulator -----------------------------------------------
    for n in 0..graph.nodes.len() {
        if !in_scope(n) {
            continue;
        }
        let (fi, _) = graph.nodes[n].id;
        let ctx = &ws.files[fi];
        let toks = &ctx.lexed.toks;
        for s in &graph.nodes[n].spawn_sites {
            let (blo, bhi) = s.body;
            for k in blo..bhi.min(toks.len()) {
                if !toks[k].is_punct(".") {
                    continue;
                }
                let Some(m) = toks.get(k + 1) else { continue };
                if m.kind != TokKind::Ident || !toks.get(k + 2).is_some_and(|x| x.is_punct("(")) {
                    continue;
                }
                if FETCH_OPS.contains(&m.text.as_str()) {
                    if !allowed(fi, Rule::SharedAccumulator, m.line) {
                        findings.push(Finding {
                            path: ctx.path.clone(),
                            line: m.line,
                            rule: Rule::SharedAccumulator,
                            message: format!(
                                "`{}` on a shared atomic inside the closure spawned at line {} merges in scheduler order; accumulate into a per-thread slot and combine after join, prove the result order-insensitive, or justify with lint:allow(shared-accumulator)",
                                m.text, s.line,
                            ),
                        });
                    }
                } else if m.is_ident("lock") {
                    if let Some(push) = locked_push_after(toks, k + 2, bhi) {
                        let line = toks[push].line;
                        if !allowed(fi, Rule::SharedAccumulator, line) {
                            findings.push(Finding {
                                path: ctx.path.clone(),
                                line,
                                rule: Rule::SharedAccumulator,
                                message: format!(
                                    "`lock().{}` inside the closure spawned at line {} appends in scheduler order; collect per-thread and merge deterministically after join, or justify with lint:allow(shared-accumulator)",
                                    toks[push].text, s.line,
                                ),
                            });
                        }
                    }
                }
            }
        }
    }

    findings
}

/// Does the lock-order edge set contain a path `from -> … -> to`?
fn lock_order_reaches(edges: &BTreeSet<(String, String)>, from: &str, to: &str) -> bool {
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    let mut stack = vec![from];
    while let Some(cur) = stack.pop() {
        if cur == to {
            return true;
        }
        if !seen.insert(cur) {
            continue;
        }
        for (a, b) in edges {
            if a == cur {
                stack.push(b);
            }
        }
    }
    false
}

/// After `lock(` at `open`, skip the argument list and optional
/// `.unwrap()` / `.expect(..)`, and return the token index of a
/// following `push`/`insert`/`extend`/`append` method name, if any.
fn locked_push_after(toks: &[Tok], open: usize, hi: usize) -> Option<usize> {
    let hi = hi.min(toks.len());
    let mut j = skip_group(toks, open, hi)?;
    loop {
        if !toks.get(j).is_some_and(|x| x.is_punct(".")) {
            return None;
        }
        let m = toks.get(j + 1)?;
        if m.is_ident("unwrap") || m.is_ident("expect") || m.is_ident("unwrap_or_else") {
            j = skip_group(toks, j + 2, hi)?;
            continue;
        }
        if (m.is_ident("push")
            || m.is_ident("insert")
            || m.is_ident("extend")
            || m.is_ident("append"))
            && toks.get(j + 2).is_some_and(|x| x.is_punct("("))
        {
            return Some(j + 1);
        }
        return None;
    }
}

/// Skips a balanced paren group whose `(` is at `open`; returns the
/// index just past the matching `)`.
fn skip_group(toks: &[Tok], open: usize, hi: usize) -> Option<usize> {
    if !toks.get(open).is_some_and(|x| x.is_punct("(")) {
        return None;
    }
    let mut depth = 0i64;
    let mut k = open;
    while k < hi {
        match toks[k].text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return Some(k + 1);
                }
            }
            _ => {}
        }
        k += 1;
    }
    None
}

/// The opening paren of the call whose name token is `name_tok`,
/// skipping an optional turbofish.
fn call_open_paren(toks: &[Tok], name_tok: usize, hi: usize) -> Option<usize> {
    let mut j = name_tok + 1;
    if toks.get(j).is_some_and(|x| x.is_punct("::"))
        && toks.get(j + 1).is_some_and(|x| x.is_punct("<"))
    {
        let mut depth = 0i64;
        j += 1;
        while j < hi {
            match toks[j].text.as_str() {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth <= 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    toks.get(j).filter(|x| x.is_punct("(")).map(|_| j)
}

/// Splits the argument list of the call whose `(` is at `open` into
/// top-level argument token ranges `[lo, hi)`.
fn split_args(toks: &[Tok], open: usize, hi: usize) -> Vec<(usize, usize)> {
    let hi = hi.min(toks.len());
    let mut args = Vec::new();
    let mut depth = 1i64;
    let mut start = open + 1;
    let mut k = open + 1;
    while k < hi {
        match toks[k].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    if k > start {
                        args.push((start, k));
                    }
                    return args;
                }
            }
            "," if depth == 1 => {
                if k > start {
                    args.push((start, k));
                }
                start = k + 1;
            }
            _ => {}
        }
        k += 1;
    }
    args
}

/// Rust keywords and common value-position idents that are never
/// captures.
const NON_CAPTURE: [&str; 24] = [
    "let", "mut", "if", "else", "match", "for", "while", "loop", "return", "in", "move", "ref",
    "as", "break", "continue", "self", "Self", "true", "false", "fn", "impl", "use", "where",
    "usize",
];

/// The enclosing function's binding environment, as par-purity's capture
/// analysis needs it: which names are bound, which are `let mut`, and
/// which have a `Cell`/`RefCell`/`&mut` type.
struct FnEnv {
    params: BTreeSet<String>,
    locals: BTreeSet<String>,
    mut_locals: BTreeSet<String>,
    cellish: BTreeSet<String>,
    mut_refs: BTreeSet<String>,
}

impl FnEnv {
    fn build(ctx: &FileCtx, fun: &crate::parser::FnSig) -> FnEnv {
        let mut env = FnEnv {
            params: BTreeSet::new(),
            locals: BTreeSet::new(),
            mut_locals: BTreeSet::new(),
            cellish: BTreeSet::new(),
            mut_refs: BTreeSet::new(),
        };
        for p in &fun.params {
            let words: Vec<&str> = p.ty.split(' ').collect();
            for name in &p.names {
                env.params.insert(name.clone());
                if words.contains(&"Cell") || words.contains(&"RefCell") {
                    env.cellish.insert(name.clone());
                }
                if words.contains(&"mut") {
                    env.mut_refs.insert(name.clone());
                }
            }
        }
        if let Some((lo, hi)) = fun.body {
            let toks = &ctx.lexed.toks;
            let hi = hi.min(toks.len());
            let mut k = lo;
            while k < hi {
                if toks[k].is_ident("let") {
                    let mut p = k + 1;
                    let is_mut = toks.get(p).is_some_and(|x| x.is_ident("mut"));
                    if is_mut {
                        p += 1;
                    }
                    if let Some(name) = toks.get(p).filter(|x| x.kind == TokKind::Ident) {
                        env.locals.insert(name.text.clone());
                        if is_mut {
                            env.mut_locals.insert(name.text.clone());
                        }
                        // `let x: RefCell<..> = ..` / `let x = RefCell::new(..)`.
                        let mut q = p + 1;
                        while q < hi && !toks[q].is_punct(";") && q < p + 12 {
                            if toks[q].is_ident("Cell") || toks[q].is_ident("RefCell") {
                                env.cellish.insert(name.text.clone());
                                break;
                            }
                            q += 1;
                        }
                    }
                }
                k += 1;
            }
        }
        env
    }
}

/// Checks one argument of a chunked-engine call for par-purity. A
/// closure-literal argument gets the full capture/write/interior-
/// mutability/effect analysis; a bare-identifier argument naming a
/// workspace function (the `better` comparator pattern) gets the effect
/// check through the call graph.
#[allow(clippy::too_many_arguments)]
fn par_purity_arg(
    ws: &Workspace,
    graph: &CallGraph,
    n: usize,
    env: &FnEnv,
    call: &CallSite,
    (alo, ahi): (usize, usize),
    effect_reach: &[Option<ReachInfo<(EffectKind, Site)>>],
    allowed: &mut impl FnMut(usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    let (fi, _) = graph.nodes[n].id;
    let ctx = &ws.files[fi];
    let toks = &ctx.lexed.toks;

    // Bare identifier: a named function (or a local binding, which the
    // item model cannot see through — skipped, documented caveat).
    if ahi == alo + 1 && toks[alo].kind == TokKind::Ident {
        let name = &toks[alo].text;
        if env.params.contains(name) || env.locals.contains(name) {
            return;
        }
        let probe = CallSite {
            name: name.clone(),
            quals: Vec::new(),
            method: false,
            line: toks[alo].line,
            name_tok: alo,
        };
        for t in ws.resolve(fi, &probe) {
            let Some(ix) = graph.node_of(t) else { continue };
            if let Some(info) = &effect_reach[ix] {
                let (kind, site) = &info.payload;
                let src_file = &ws.files[graph.nodes[info.source].id.0];
                if !allowed(toks[alo].line) {
                    findings.push(Finding {
                        path: ctx.path.clone(),
                        line: toks[alo].line,
                        rule: Rule::ParPurity,
                        message: format!(
                            "`{}` passed to `{}` can reach {} ({} at {}:{}) via {}; parallel arguments must be effect-pure, or justify with lint:allow(par-purity)",
                            name,
                            call.name,
                            kind.label(),
                            site.what,
                            src_file.path.display(),
                            site.line,
                            witness(ws, graph, effect_reach, ix),
                        ),
                    });
                }
                return;
            }
        }
        return;
    }

    // Closure literal?
    let mut j = alo;
    if toks.get(j).is_some_and(|x| x.is_ident("move")) {
        j += 1;
    }
    let params: BTreeSet<String>;
    if toks.get(j).is_some_and(|x| x.is_punct("||")) {
        params = BTreeSet::new();
        j += 1;
    } else if toks.get(j).is_some_and(|x| x.is_punct("|")) {
        let mut names = BTreeSet::new();
        j += 1;
        while j < ahi && !toks[j].is_punct("|") {
            if toks[j].kind == TokKind::Ident && !toks[j].is_ident("mut") {
                names.insert(toks[j].text.clone());
            }
            j += 1;
        }
        j += 1;
        params = names;
    } else {
        return;
    }
    let (blo, bhi) = (j, ahi);

    // Closure-local `let` bindings never count as captures.
    let mut closure_locals: BTreeSet<String> = BTreeSet::new();
    for k in blo..bhi {
        if toks[k].is_ident("let") {
            let mut p = k + 1;
            if toks.get(p).is_some_and(|x| x.is_ident("mut")) {
                p += 1;
            }
            if let Some(name) = toks.get(p).filter(|x| x.kind == TokKind::Ident) {
                closure_locals.insert(name.text.clone());
            }
        }
    }
    let is_capture = |name: &str| {
        !params.contains(name)
            && !closure_locals.contains(name)
            && !NON_CAPTURE.contains(&name)
            && (env.params.contains(name) || env.locals.contains(name))
    };

    let mut effect_reported = false;
    for k in blo..bhi {
        let t = &toks[k];
        if t.kind == TokKind::Ident {
            let followed_by = |p: &str| toks.get(k + 1).is_some_and(|x| x.is_punct(p));
            let preceded_by = |p: &str| k > 0 && toks[k - 1].is_punct(p);
            let value_pos = !followed_by("(")
                && !followed_by("::")
                && !followed_by("!")
                && !preceded_by(".")
                && !preceded_by("::");
            // Cell / RefCell capture.
            if value_pos && is_capture(&t.text) && env.cellish.contains(&t.text) {
                if !allowed(t.line) {
                    findings.push(Finding {
                        path: ctx.path.clone(),
                        line: t.line,
                        rule: Rule::ParPurity,
                        message: format!(
                            "parallel closure passed to `{}` captures `{}`, which has interior mutability (Cell/RefCell); shared per-item state must be plain data, or justify with lint:allow(par-purity)",
                            call.name, t.text,
                        ),
                    });
                }
                continue;
            }
            // Write to a capture: `x = ..`, `x += ..`, `*x = ..`.
            let assigned = toks.get(k + 1).is_some_and(|x| {
                x.is_punct("=")
                    || matches!(
                        x.text.as_str(),
                        "+=" | "-=" | "*=" | "/=" | "%=" | "^=" | "&=" | "|=" | "<<=" | ">>="
                    )
            });
            let deref_write = preceded_by("*");
            if assigned
                && !preceded_by(".")
                && !(k > 0 && (toks[k - 1].is_ident("let") || toks[k - 1].is_ident("mut")))
                && is_capture(&t.text)
                && (deref_write
                    || env.mut_locals.contains(&t.text)
                    || env.mut_refs.contains(&t.text)
                    || env.params.contains(&t.text)
                    || env.locals.contains(&t.text))
                && !allowed(t.line)
            {
                findings.push(Finding {
                    path: ctx.path.clone(),
                    line: t.line,
                    rule: Rule::ParPurity,
                    message: format!(
                        "parallel closure passed to `{}` writes captured `{}`; per-item results must flow through the return value (the engine's merge is the only sanctioned write), or justify with lint:allow(par-purity)",
                        call.name, t.text,
                    ),
                });
                continue;
            }
        }
        // Interior mutability operations inside the closure body.
        if t.is_punct(".")
            && toks
                .get(k + 1)
                .is_some_and(|x| INTERIOR_MUT_OPS.contains(&x.text.as_str()))
            && toks.get(k + 2).is_some_and(|x| x.is_punct("("))
        {
            let m = &toks[k + 1];
            if !allowed(m.line) {
                findings.push(Finding {
                    path: ctx.path.clone(),
                    line: m.line,
                    rule: Rule::ParPurity,
                    message: format!(
                        "parallel closure passed to `{}` uses interior mutability (`{}`); chunk results must merge through the engine, or justify with lint:allow(par-purity)",
                        call.name, m.text,
                    ),
                });
            }
        }
    }

    // Effect cleanliness: every call out of the closure body must be
    // effect-unreachable (reusing the effect-taint fixed point).
    if !effect_reported {
        for (c2, targets) in &graph.nodes[n].calls {
            if c2.name_tok < blo || c2.name_tok >= bhi {
                continue;
            }
            for &t in targets {
                let Some(ix) = graph.node_of(t) else { continue };
                let Some(info) = &effect_reach[ix] else {
                    continue;
                };
                let (kind, site) = &info.payload;
                let src_file = &ws.files[graph.nodes[info.source].id.0];
                if !allowed(c2.line) {
                    findings.push(Finding {
                        path: ctx.path.clone(),
                        line: c2.line,
                        rule: Rule::ParPurity,
                        message: format!(
                            "parallel closure passed to `{}` calls `{}`, which can reach {} ({} at {}:{}) via {}; parallel arguments must be effect-pure, or justify with lint:allow(par-purity)",
                            call.name,
                            c2.name,
                            kind.label(),
                            site.what,
                            src_file.path.display(),
                            site.line,
                            witness(ws, graph, effect_reach, ix),
                        ),
                    });
                }
                effect_reported = true;
                break;
            }
            if effect_reported {
                break;
            }
        }
    }
}

/// Witness call path rendered as fn names joined by ` -> `.
fn witness<P: Clone>(
    ws: &Workspace,
    g: &CallGraph,
    reach: &[Option<ReachInfo<P>>],
    from: usize,
) -> String {
    dataflow::witness_path(reach, from)
        .iter()
        .map(|&n| {
            let (fi, ni) = g.nodes[n].id;
            ws.files[fi].model.fns[ni].name.clone()
        })
        .collect::<Vec<_>>()
        .join(" -> ")
}
