//! Fixed-point dataflow over the workspace call graph.
//!
//! Two propagation shapes cover all four interprocedural rules:
//!
//! * [`reach`] — multi-source BFS over *reverse* edges: given functions
//!   that locally contain a hazard site, compute for every function the
//!   nearest reachable site, with enough breadcrumbs to reconstruct the
//!   shortest witness call path (entry → … → site). Effect-taint and
//!   panic-reach report this at public planner entry points.
//! * [`raw_producers`] — the same BFS gated at every hop by "returns
//!   `f64`": a function launders units if it returns raw `f64` and either
//!   unwraps a unit itself or calls another launderer. Unit-flow flags
//!   un-wrapped calls to launderers outside the perf-critical modules.
//!
//! Everything is deterministic: sources are seeded in node-index order,
//! the BFS queue is FIFO, and the first writer to a node wins, so witness
//! paths are stable across runs and platforms (the `--json` goldens rely
//! on this).

use crate::callgraph::CallGraph;

/// Per-node reachability record.
#[derive(Clone, Debug)]
pub struct ReachInfo<P: Clone> {
    /// Call-chain hops from this node to the source site (0 = the site
    /// is local).
    pub dist: usize,
    /// Next node on the shortest path toward the source (`None` when the
    /// site is local to this node).
    pub next: Option<usize>,
    /// Node that contains the source site.
    pub source: usize,
    /// Rule-specific payload describing the site.
    pub payload: P,
}

/// Multi-source BFS over reverse call edges. `sources` seeds nodes that
/// locally contain a hazard; the result gives every node its nearest
/// reachable source (ties broken by seeding order, then FIFO order).
pub fn reach<P: Clone>(g: &CallGraph, sources: &[(usize, P)]) -> Vec<Option<ReachInfo<P>>> {
    let mut out: Vec<Option<ReachInfo<P>>> = vec![None; g.nodes.len()];
    let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    for (n, payload) in sources {
        if out[*n].is_none() {
            out[*n] = Some(ReachInfo {
                dist: 0,
                next: None,
                source: *n,
                payload: payload.clone(),
            });
            queue.push_back(*n);
        }
    }
    while let Some(n) = queue.pop_front() {
        let Some(info) = out[n].clone() else { continue };
        for &caller in &g.callers[n] {
            if out[caller].is_none() {
                out[caller] = Some(ReachInfo {
                    dist: info.dist + 1,
                    next: Some(n),
                    source: info.source,
                    payload: info.payload.clone(),
                });
                queue.push_back(caller);
            }
        }
    }
    out
}

/// Reconstructs the witness call path from `from` to the source, as node
/// indices `[from, …, source]`. Capped defensively; the BFS structure
/// guarantees termination but a cap keeps a future bug from hanging.
pub fn witness_path<P: Clone>(reach: &[Option<ReachInfo<P>>], from: usize) -> Vec<usize> {
    let mut path = vec![from];
    let mut cur = from;
    for _ in 0..reach.len() {
        match reach.get(cur).and_then(|r| r.as_ref()).and_then(|r| r.next) {
            Some(next) => {
                path.push(next);
                cur = next;
            }
            None => break,
        }
    }
    path
}

/// Unit-laundering fixed point: `Some(info)` when the node returns raw
/// `f64` and (transitively) sources it from a `.value()` / `Unit(..).0`
/// escape. `payload` is the line of the originating escape.
pub fn raw_producers(g: &CallGraph) -> Vec<Option<ReachInfo<usize>>> {
    let mut out: Vec<Option<ReachInfo<usize>>> = vec![None; g.nodes.len()];
    let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    for (n, node) in g.nodes.iter().enumerate() {
        if node.returns_f64 {
            if let Some(line) = node.unit_escape {
                out[n] = Some(ReachInfo {
                    dist: 0,
                    next: None,
                    source: n,
                    payload: line,
                });
                queue.push_back(n);
            }
        }
    }
    while let Some(n) = queue.pop_front() {
        let Some(info) = out[n].clone() else { continue };
        for &caller in &g.callers[n] {
            // The raw value only keeps flowing if the caller itself
            // hands back bare f64.
            if out[caller].is_none() && g.nodes[caller].returns_f64 {
                out[caller] = Some(ReachInfo {
                    dist: info.dist + 1,
                    next: Some(n),
                    source: info.source,
                    payload: info.payload,
                });
                queue.push_back(caller);
            }
        }
    }
    out
}
