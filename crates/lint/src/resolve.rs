//! Workspace name resolution for the interprocedural rules.
//!
//! [`crate::parser::Model`] sees one file at a time; the whole-workspace
//! rules (effect-taint, panic-reach, unit-flow, obs-twin) need to know
//! which *function* a call lands in, across crate boundaries. This module
//! maps every parsed file to a `(crate, module-path)` coordinate, indexes
//! every `fn` by name, extracts call sites from body token streams, and
//! resolves each site to a set of candidate workspace functions.
//!
//! Resolution is deliberately an *over-approximation* with three declared
//! escape hatches (see DESIGN.md §13 for the soundness argument):
//!
//! * **Path calls** (`crate::tourutil::f(..)`, `greedy::chunked_map(..)`)
//!   resolve by suffix-matching the written qualifier against each
//!   candidate's `[crate, modules…]` coordinate, after normalising
//!   `crate`/`self`/`super`.
//! * **Type-qualified and method calls** (`CandidateSet::build(..)`,
//!   `x.plan(..)`) resolve to *every* workspace `fn` with that name —
//!   receiver types are not tracked. A short deny list of ubiquitous
//!   std-trait names ([`METHOD_DENY`]) keeps `clone`/`fmt`/`next`-style
//!   calls from fanning out to unrelated impls; calls through those
//!   names are treated as opaque.
//! * **Unresolved calls are opaque**: a call that matches no workspace
//!   `fn` contributes no edge (std and external callees cannot panic
//!   into our analysis). Opaque-call counts are surfaced in the
//!   `--graph` dump so the blind spots stay visible.

use crate::lexer::{Lexed, Tok, TokKind};
use crate::parser::Model;
use crate::FileKind;
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Identifier of one function: `(file index, fn index within file)`.
pub type FnId = (usize, usize);

/// One parsed file plus its workspace coordinate.
pub struct FileCtx {
    /// Display path (workspace-relative for workspace scans).
    pub path: PathBuf,
    /// `/`-normalised path string used by all path-scoped decisions.
    pub norm: String,
    /// Library vs test-like classification.
    pub kind: FileKind,
    /// Token stream and comments.
    pub lexed: Lexed,
    /// Item model.
    pub model: Model,
    /// Crate identifier (`uavdc_core`, `rand`, `uavdc`).
    pub crate_ident: String,
    /// Module path within the crate (`["matching", "blossom"]`).
    pub mods: Vec<String>,
}

/// Maps a normalised workspace path to `(crate identifier, module path)`.
///
/// `crates/<name>/src/a/b.rs` → (`uavdc_<name>`, `["a", "b"]`);
/// `crates/compat/<name>/…` → (`<name>`, …); the root `src/` tree is the
/// `uavdc` facade crate. `lib.rs`/`mod.rs`/`main.rs` name no module of
/// their own; `src/bin/x.rs` is its own root module.
pub fn crate_and_module(norm: &str) -> (String, Vec<String>) {
    let (crate_ident, rest) = if let Some(r) = norm.split_once("crates/compat/") {
        let (name, tail) = r.1.split_once('/').unwrap_or((r.1, ""));
        (name.replace('-', "_"), tail)
    } else if let Some(r) = norm.split_once("crates/") {
        let (name, tail) = r.1.split_once('/').unwrap_or((r.1, ""));
        (format!("uavdc_{}", name.replace('-', "_")), tail)
    } else {
        ("uavdc".to_string(), norm)
    };
    let rest = rest.strip_prefix("src/").unwrap_or(rest);
    let mut mods: Vec<String> = rest
        .trim_end_matches(".rs")
        .split('/')
        .filter(|s| !s.is_empty() && *s != "lib" && *s != "mod" && *s != "main" && *s != "bin")
        .map(|s| s.to_string())
        .collect();
    // `tests/foo.rs`, `benches/foo.rs`: integration targets are their own
    // root; drop the directory component.
    if mods
        .first()
        .is_some_and(|m| m == "tests" || m == "benches" || m == "examples")
    {
        mods.remove(0);
    }
    (crate_ident, mods)
}

/// Method/type-qualified call names that are never resolved: ubiquitous
/// std-trait or std-container names where name-only matching would fan
/// out to unrelated impls across the workspace. Calls through these are
/// opaque to the interprocedural rules (documented soundness boundary).
pub const METHOD_DENY: [&str; 26] = [
    "build",
    "clone",
    "cmp",
    "default",
    "deref",
    "drop",
    "eq",
    "fmt",
    "from",
    "get",
    "hash",
    "index",
    "insert",
    "into",
    "is_empty",
    "iter",
    "len",
    "min",
    "max",
    "ne",
    "new",
    "next",
    "parse",
    "push",
    "value",
    "partial_cmp",
];

/// One syntactic call site inside a function body.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// Called name (last path segment / method name).
    pub name: String,
    /// Path qualifiers before the name (empty for bare and method calls).
    pub quals: Vec<String>,
    /// Method-call syntax (`recv.name(..)`)?
    pub method: bool,
    /// 1-based line of the call.
    pub line: usize,
    /// Token index of the call's name token (for wrap detection).
    pub name_tok: usize,
}

/// Keywords that look like `ident (` but are not calls.
const CALL_KEYWORDS: [&str; 9] = [
    "if", "while", "match", "for", "loop", "return", "else", "in", "move",
];

/// Extracts call sites from a body token range `[lo, hi)`.
pub fn extract_calls(toks: &[Tok], lo: usize, hi: usize) -> Vec<CallSite> {
    let hi = hi.min(toks.len());
    let mut out = Vec::new();
    let mut i = lo;
    while i < hi {
        let t = &toks[i];
        // Method call: `. name (` or `. name :: <…> (` (turbofish).
        if t.is_punct(".")
            && toks.get(i + 1).is_some_and(|x| x.kind == TokKind::Ident)
            && i + 2 < hi
        {
            let name = &toks[i + 1];
            let mut j = i + 2;
            if toks[j].is_punct("::") && toks.get(j + 1).is_some_and(|x| x.is_punct("<")) {
                j = skip_angles(toks, j + 1, hi);
            }
            if toks.get(j).is_some_and(|x| x.is_punct("(")) {
                out.push(CallSite {
                    name: name.text.clone(),
                    quals: Vec::new(),
                    method: true,
                    line: name.line,
                    name_tok: i + 1,
                });
            }
            i += 2;
            continue;
        }
        // Path / bare call: `seg (:: seg)* [::<…>] (`, not preceded by `.`
        // (method receiver) or `fn` (definition).
        if t.kind == TokKind::Ident
            && !(i > 0 && (toks[i - 1].is_punct(".") || toks[i - 1].is_ident("fn")))
            && !(i > 0 && toks[i - 1].is_punct("::"))
        {
            let mut segs: Vec<(usize, String)> = vec![(i, t.text.clone())];
            let mut j = i + 1;
            while toks.get(j).is_some_and(|x| x.is_punct("::"))
                && toks.get(j + 1).is_some_and(|x| x.kind == TokKind::Ident)
            {
                segs.push((j + 1, toks[j + 1].text.clone()));
                j += 2;
            }
            // Optional turbofish between the path and the argument list.
            if toks.get(j).is_some_and(|x| x.is_punct("::"))
                && toks.get(j + 1).is_some_and(|x| x.is_punct("<"))
            {
                j = skip_angles(toks, j + 1, hi);
            }
            let (last_tok, last_name) = match segs.last() {
                Some(s) => (s.0, s.1.clone()),
                None => {
                    i += 1;
                    continue;
                }
            };
            if toks.get(j).is_some_and(|x| x.is_punct("("))
                && !CALL_KEYWORDS.contains(&last_name.as_str())
            {
                out.push(CallSite {
                    name: last_name,
                    quals: segs[..segs.len() - 1].iter().map(|s| s.1.clone()).collect(),
                    method: false,
                    line: toks[last_tok].line,
                    name_tok: last_tok,
                });
            }
            i = j.max(i + 1);
            continue;
        }
        i += 1;
    }
    out
}

/// Skips a balanced `<…>` group whose opening `<` is at `i`; returns the
/// index just past the closing `>`. Bails at `(`/`;`/`{` (malformed).
fn skip_angles(toks: &[Tok], i: usize, hi: usize) -> usize {
    let mut depth: i64 = 0;
    let mut j = i;
    while j < hi {
        match toks[j].text.as_str() {
            "<" => depth += 1,
            "<<" => depth += 2,
            ">" => {
                depth -= 1;
                if depth <= 0 {
                    return j + 1;
                }
            }
            ">>" => {
                depth -= 2;
                if depth <= 0 {
                    return j + 1;
                }
            }
            ";" | "{" => return j,
            _ => {}
        }
        j += 1;
    }
    j
}

/// The resolved workspace: all files plus a name → functions index.
pub struct Workspace {
    /// All files, in scan order.
    pub files: Vec<FileCtx>,
    /// Every `fn` by bare name, in deterministic (file, fn) order.
    name_index: BTreeMap<String, Vec<FnId>>,
}

impl Workspace {
    /// Builds the symbol table over the given files.
    pub fn build(files: Vec<FileCtx>) -> Workspace {
        let mut name_index: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        for (fi, f) in files.iter().enumerate() {
            for (ni, fun) in f.model.fns.iter().enumerate() {
                name_index
                    .entry(fun.name.clone())
                    .or_default()
                    .push((fi, ni));
            }
        }
        Workspace { files, name_index }
    }

    /// Functions with this bare name, in deterministic order.
    pub fn by_name(&self, name: &str) -> &[FnId] {
        self.name_index.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Resolves a call site in `caller_file` to candidate functions.
    ///
    /// Returns an empty set for opaque calls (std/external, denied names,
    /// or unmatched qualifiers).
    pub fn resolve(&self, caller_file: usize, call: &CallSite) -> Vec<FnId> {
        let cands = self.by_name(&call.name);
        if cands.is_empty() {
            return Vec::new();
        }
        if call.method {
            if METHOD_DENY.contains(&call.name.as_str()) {
                return Vec::new();
            }
            return cands.to_vec();
        }
        if call.quals.is_empty() {
            // Bare call: same-file functions win; otherwise fall back to
            // the name index (imports are not tracked per se — the
            // over-approximation subsumes them).
            let local: Vec<FnId> = cands
                .iter()
                .copied()
                .filter(|&(fi, _)| fi == caller_file)
                .collect();
            if !local.is_empty() {
                return local;
            }
            if METHOD_DENY.contains(&call.name.as_str()) {
                return Vec::new();
            }
            return cands.to_vec();
        }
        // Type-qualified call (`CandidateSet::build`): the qualifier is a
        // type name our item model does not track; resolve by name.
        if call
            .quals
            .last()
            .is_some_and(|q| q.chars().next().is_some_and(|c| c.is_uppercase()))
        {
            if METHOD_DENY.contains(&call.name.as_str()) {
                return Vec::new();
            }
            return cands.to_vec();
        }
        // Module-qualified call: suffix-match the normalised qualifier
        // against each candidate's `[crate, modules…]` coordinate.
        let caller = &self.files[caller_file];
        let mut quals: Vec<String> = Vec::new();
        for (k, q) in call.quals.iter().enumerate() {
            match q.as_str() {
                "crate" if k == 0 => quals.push(caller.crate_ident.clone()),
                "self" if k == 0 => {
                    quals.push(caller.crate_ident.clone());
                    quals.extend(caller.mods.iter().cloned());
                }
                "super" if k == 0 => {
                    quals.push(caller.crate_ident.clone());
                    let keep = caller.mods.len().saturating_sub(1);
                    quals.extend(caller.mods[..keep].iter().cloned());
                }
                _ => quals.push(q.replace('-', "_")),
            }
        }
        cands
            .iter()
            .copied()
            .filter(|&(fi, _)| {
                let f = &self.files[fi];
                let mut full: Vec<&str> = Vec::with_capacity(1 + f.mods.len());
                full.push(f.crate_ident.as_str());
                full.extend(f.mods.iter().map(String::as_str));
                full.len() >= quals.len()
                    && full[full.len() - quals.len()..]
                        .iter()
                        .zip(&quals)
                        .all(|(a, b)| *a == b)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;
    use std::path::Path;

    fn ctx(path: &str, src: &str) -> FileCtx {
        let lexed = lex(src);
        let model = parse(&lexed.toks);
        let norm = path.to_string();
        let (crate_ident, mods) = crate_and_module(&norm);
        FileCtx {
            path: Path::new(path).to_path_buf(),
            norm,
            kind: crate::classify(Path::new(path)),
            lexed,
            model,
            crate_ident,
            mods,
        }
    }

    #[test]
    fn crate_coordinates() {
        assert_eq!(
            crate_and_module("crates/core/src/alg2.rs"),
            ("uavdc_core".into(), vec!["alg2".to_string()])
        );
        assert_eq!(
            crate_and_module("crates/graph/src/matching/blossom.rs"),
            (
                "uavdc_graph".into(),
                vec!["matching".to_string(), "blossom".to_string()]
            )
        );
        assert_eq!(
            crate_and_module("crates/core/src/lib.rs"),
            ("uavdc_core".into(), vec![])
        );
        assert_eq!(
            crate_and_module("src/viz.rs"),
            ("uavdc".into(), vec!["viz".to_string()])
        );
        assert_eq!(
            crate_and_module("src/bin/uavdc.rs"),
            ("uavdc".into(), vec!["uavdc".to_string()])
        );
        assert_eq!(
            crate_and_module("crates/compat/rand/src/lib.rs"),
            ("rand".into(), vec![])
        );
    }

    #[test]
    fn call_extraction_forms() {
        let l = lex("fn f() { g(); a::b::h(1); x.m(2); y.collect::<Vec<_>>(); if x { } vec![1]; Point2::new(0.0, 0.0); }");
        let m = parse(&l.toks);
        let (lo, hi) = m.fns[0].body.unwrap();
        let calls = extract_calls(&l.toks, lo, hi);
        let names: Vec<(&str, bool)> = calls.iter().map(|c| (c.name.as_str(), c.method)).collect();
        assert_eq!(
            names,
            vec![
                ("g", false),
                ("h", false),
                ("m", true),
                ("collect", true),
                ("new", false)
            ]
        );
        assert_eq!(calls[1].quals, vec!["a", "b"]);
        assert_eq!(calls[4].quals, vec!["Point2"]);
    }

    #[test]
    fn turbofish_in_call_position_resolves_the_path() {
        let l = lex("fn f() { parse::<u32>(s); m::g::<T>(x); }");
        let m = parse(&l.toks);
        let (lo, hi) = m.fns[0].body.unwrap();
        let calls = extract_calls(&l.toks, lo, hi);
        assert_eq!(calls.len(), 2, "{calls:?}");
        assert_eq!(calls[0].name, "parse");
        assert_eq!(calls[1].name, "g");
        assert_eq!(calls[1].quals, vec!["m"]);
    }

    #[test]
    fn resolution_by_suffix_and_name() {
        let ws = Workspace::build(vec![
            ctx("crates/core/src/alg2.rs", "fn caller() { crate::tourutil::order(); tourutil::order(); helper(); S::assemble(); }\nfn helper() {}\n"),
            ctx("crates/core/src/tourutil.rs", "pub fn order() {}\npub fn assemble() {}\n"),
            ctx("crates/graph/src/tour.rs", "pub fn order() {}\n"),
        ]);
        let (lo, hi) = ws.files[0].model.fns[0].body.unwrap();
        let calls = extract_calls(&ws.files[0].lexed.toks, lo, hi);
        // crate::tourutil::order → exactly the core fn.
        assert_eq!(ws.resolve(0, &calls[0]), vec![(1, 0)]);
        // tourutil::order suffix-matches core::tourutil only.
        assert_eq!(ws.resolve(0, &calls[1]), vec![(1, 0)]);
        // bare helper → same file.
        assert_eq!(ws.resolve(0, &calls[2]), vec![(0, 1)]);
        // S::assemble is type-qualified → name-wide over-approximation.
        assert_eq!(ws.resolve(0, &calls[3]), vec![(1, 1)]);
    }

    #[test]
    fn denied_and_external_calls_are_opaque() {
        let ws = Workspace::build(vec![
            ctx(
                "crates/core/src/a.rs",
                "fn f(v: &V) { v.clone(); v.plan(); std::mem::take(x); }\n",
            ),
            ctx(
                "crates/core/src/b.rs",
                "pub fn plan() {}\npub fn clone() {}\n",
            ),
        ]);
        let (lo, hi) = ws.files[0].model.fns[0].body.unwrap();
        let calls = extract_calls(&ws.files[0].lexed.toks, lo, hi);
        assert!(ws.resolve(0, &calls[0]).is_empty(), "clone is denied");
        assert_eq!(ws.resolve(0, &calls[1]), vec![(1, 0)]);
        assert!(ws.resolve(0, &calls[2]).is_empty(), "std is opaque");
    }
}
