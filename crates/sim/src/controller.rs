//! Closed-loop mission execution with online plan repair.
//!
//! The open-loop simulator flies a plan blind: a gust that overdraws the
//! budget simply kills the mission mid-air. [`MissionController`] wraps
//! the same physics in a decision loop that keeps the safe-return
//! invariant
//!
//! ```text
//! energy_left  >=  wc · d(pos, depot) · η_per_m  +  reserve
//! ```
//!
//! at every decision point, where `wc` is the *worst-case* travel
//! multiplier (`WindModel::max_factor() × FaultPlan::worst_leg_factor()`).
//! The invariant holds at launch (the UAV is at the depot), and each
//! action re-establishes it:
//!
//! * **Leg commitment** — the leg to stop `s` is flown only if
//!   `energy_left >= wc·(d(pos,s) + d(s,depot))·η + reserve`; since the
//!   realised leg factor never exceeds `wc`, arrival re-establishes the
//!   invariant at `s`. Otherwise the stop is dropped.
//! * **Hover trimming** — the sojourn at `s` is truncated so the hover
//!   cannot eat into `wc·d(s,depot)·η + reserve`; collection degrades to
//!   the P2-style fraction the shortened window allows.
//! * **Direct return** — with no stops left, the return leg costs at
//!   most `wc·d(pos,depot)·η`, which the invariant has kept affordable.
//!
//! By induction `BatteryDepleted` is unreachable whenever the depot is
//! physically reachable at decision time — the property-test harness
//! (`crates/sim/tests/controller_props.rs`) drives thousands of seeded
//! (scenario × plan × fault) triples through this argument.
//!
//! Separately from the (worst-case priced) safety gates, the controller
//! *re-estimates* remaining mission cost from live consumption: an EWMA
//! of observed leg factors prices the nominal remainder of the plan, and
//! when it no longer fits the remaining budget the plan is repaired
//! online by [`uavdc_core::repair::drop_to_fit`] — the lazy-greedy
//! insertion deltas run in reverse, dropping the lowest-value stops in
//! O(1) each. Repairs are economics, not safety: a mission that never
//! repairs is still safe, it just wastes energy flying toward stops it
//! must then abandon at the commitment gate.

use crate::event::{SimEvent, SimTrace};
use crate::sim::{collect_uploads, fly_leg, SimConfig, SimOutcome};
use uavdc_core::repair::{drop_to_fit, RepairStop};
use uavdc_core::{CollectionPlan, HoverStop};
use uavdc_geom::Point2;
use uavdc_net::units::{Joules, JoulesPerMeter, MegaBytes, Seconds};
use uavdc_net::Scenario;

/// Reserve-margin policy for [`MissionController`].
#[derive(Clone, Debug)]
pub struct ControllerConfig {
    /// Fraction of battery capacity kept as an untouchable reserve on
    /// top of the worst-case return cost. Clamped to `[0, 1]`; a small
    /// absolute floor (1e-6 J) is always kept so that accumulated
    /// floating-point slack in the decision gates can never outrun the
    /// reserve.
    pub reserve_frac: f64,
    /// EWMA weight of the newest observed leg factor in the live
    /// consumption estimate, in `[0, 1]`. The estimate only prices
    /// *repairs* (never the safety gates, which use the worst case).
    pub estimate_alpha: f64,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            reserve_frac: 0.02,
            estimate_alpha: 0.5,
        }
    }
}

/// Result of a closed-loop mission.
#[derive(Clone, Debug)]
pub struct ControlOutcome {
    /// The physical outcome (trace, energy, volume). `completed` is true
    /// by construction except in the measure-zero case where the depot
    /// was unreachable within budget from the start.
    pub outcome: SimOutcome,
    /// The as-flown plan: stops actually hovered, with realised sojourns
    /// and collected volumes.
    pub executed: CollectionPlan,
    /// Times the live estimate said the nominal remainder no longer fits
    /// and the plan was repaired.
    pub replans: u64,
    /// Hovers truncated below their planned sojourn by the safety gate.
    pub trimmed_hovers: u64,
    /// Stops abandoned (by repair or by the commitment gate).
    pub dropped_stops: u64,
    /// The reserve the controller protected.
    pub reserve: Joules,
    /// Energy still in the battery at mission end.
    pub final_margin: Joules,
}

/// Closed-loop executor for a [`CollectionPlan`].
#[derive(Clone, Debug, Default)]
pub struct MissionController {
    cfg: ControllerConfig,
}

impl MissionController {
    /// A controller with the given reserve policy.
    pub fn new(cfg: ControllerConfig) -> Self {
        MissionController { cfg }
    }

    /// Flies `plan` closed-loop under `sim_config`'s disturbances.
    pub fn fly(
        &self,
        scenario: &Scenario,
        plan: &CollectionPlan,
        sim_config: &SimConfig,
    ) -> ControlOutcome {
        self.fly_obs(scenario, plan, sim_config, &uavdc_obs::NOOP)
    }

    /// Like [`fly`](Self::fly), reporting a `ctrl` span, decision
    /// counters (`ctrl.legs`, `ctrl.replans`, `ctrl.trims`,
    /// `ctrl.drops`) and a reserve-margin histogram
    /// (`ctrl.margin_j`, observed after every hover) to `rec`. The
    /// recorder never influences the mission.
    pub fn fly_obs(
        &self,
        scenario: &Scenario,
        plan: &CollectionPlan,
        sim_config: &SimConfig,
        rec: &dyn uavdc_obs::Recorder,
    ) -> ControlOutcome {
        let span = uavdc_obs::Span::root(rec, "ctrl");
        let mut wind = sim_config.wind.clone();
        let mut link = sim_config.link.clone();
        let mut fault = sim_config.fault.clone();
        let dropped_devices = fault.draw_dropouts(scenario.num_devices());

        let speed = scenario.uav.speed.value();
        let eta_h = scenario.uav.hover_power.value();
        let per_m = scenario.uav.travel_energy_per_meter().value();
        let capacity = scenario.uav.capacity.value();
        let b = scenario.radio.bandwidth.value();
        let r0 = scenario.coverage_radius().value();
        let depot = scenario.depot;

        // Worst-case travel multiplier: what the safety gates budget for.
        let wc = wind.max_factor() * fault.worst_leg_factor();
        let reserve = (self.cfg.reserve_frac.clamp(0.0, 1.0) * capacity)
            .max(1e-6)
            .min(capacity);
        let alpha = self.cfg.estimate_alpha.clamp(0.0, 1.0);
        // Economic-repair slack, matching CollectionPlan::validate's
        // feasibility tolerance so a freshly validated plan is never
        // repaired at launch under calm conditions.
        let fit_slack = 1e-6 * capacity + 1e-6;

        let mut residual: Vec<f64> = scenario.devices.iter().map(|d| d.data.value()).collect();
        let mut per_device = vec![0.0f64; scenario.num_devices()];
        let mut trace = SimTrace::default();
        let mut t = 0.0f64;
        let mut energy = 0.0f64;
        let mut hover_used = 0.0f64;
        let mut pos = depot;
        let mut est = 1.0f64; // live estimate of the travel factor
        let mut pending: Vec<HoverStop> = plan.stops.clone();
        let mut executed: Vec<HoverStop> = Vec::new();

        let mut legs = 0u64;
        let mut replans = 0u64;
        let mut trims = 0u64;
        let mut drops = 0u64;
        let mut aborted = false;

        loop {
            // --- Decision point: live re-estimate & repair ------------
            // Hovers are trimmable down to zero (partial collection), so
            // only the *travel* of the remaining route can force a drop:
            // a stop is worth keeping as long as its detour fits, however
            // short its hover window has become.
            let budget = capacity - energy - reserve;
            let projected = route_travel_cost(pos, &pending, depot, per_m * est);
            if projected > budget + fit_slack && !pending.is_empty() {
                replans += 1;
                let stops: Vec<RepairStop> = pending
                    .iter()
                    .map(|h| RepairStop {
                        pos: h.pos,
                        hover_energy: Joules::ZERO,
                        score: MegaBytes(h.collected.iter().map(|(_, v)| v.value()).sum()),
                    })
                    .collect();
                let repaired = drop_to_fit(
                    pos,
                    depot,
                    &stops,
                    JoulesPerMeter(per_m * est),
                    Joules(budget),
                );
                drops += repaired.dropped.len() as u64;
                let mut kept = repaired.kept.iter().peekable();
                pending = pending
                    .into_iter()
                    .enumerate()
                    .filter_map(|(i, h)| {
                        if kept.peek() == Some(&&i) {
                            kept.next();
                            Some(h)
                        } else {
                            None
                        }
                    })
                    .collect();
            }

            // --- Decision point: leg commitment (worst-case priced) ---
            let Some(next_stop) = pending.first() else {
                break;
            };
            let commit_cost =
                wc * per_m * (pos.distance(next_stop.pos) + next_stop.pos.distance(depot));
            if capacity - energy + 1e-9 < commit_cost + reserve {
                // Even reaching this stop would endanger the return.
                pending.remove(0);
                drops += 1;
                continue;
            }

            // --- Fly the leg ------------------------------------------
            legs += 1;
            let stop = pending.remove(0);
            // Same draw order and multiplication association as the
            // open-loop simulator, so calm missions replay bit-for-bit.
            let wind_factor = wind.next_leg_factor();
            let fault_factor = fault.next_leg_factor();
            let leg_factor = wind_factor * fault_factor;
            if !fly_leg(
                &mut t,
                &mut energy,
                &mut pos,
                stop.pos,
                speed,
                per_m * wind_factor * fault_factor,
                capacity,
                &mut trace,
            ) {
                // Unreachable under the commitment gate (the realised
                // factor is bounded by wc); kept as a defensive abort so
                // the controller is total even on adversarial inputs.
                aborted = true;
                break;
            }
            est = (alpha * leg_factor + (1.0 - alpha) * est).min(wc);

            // --- Hover, trimmed to protect the return -----------------
            let sojourn = stop.sojourn.value();
            let return_cost = wc * per_m * stop.pos.distance(depot);
            let hover_budget = capacity - energy - return_cost - reserve + 1e-9;
            let affordable = if eta_h > 0.0 {
                (hover_budget / eta_h).max(0.0)
            } else {
                sojourn
            };
            let actual_sojourn = sojourn.min(affordable);
            if actual_sojourn + 1e-12 < sojourn {
                trims += 1;
            }
            let eff_b = b * link.next_stop_factor();
            let mut uploads = collect_uploads(
                sim_config.policy,
                &stop,
                scenario,
                r0,
                eff_b,
                actual_sojourn,
                &mut residual,
                &mut per_device,
                &dropped_devices,
                &mut fault,
            );
            if sim_config.record_uploads {
                uploads.sort_by(|a, b2| uavdc_geom::cmp_f64(a.0, b2.0));
                for &(dt, dev, got) in &uploads {
                    trace.push(SimEvent::Uploaded {
                        t: Seconds(t + dt),
                        device: dev,
                        amount: MegaBytes(got),
                    });
                }
            }
            t += actual_sojourn;
            energy += actual_sojourn * eta_h;
            hover_used += actual_sojourn * eta_h;
            trace.push(SimEvent::HoverEnded {
                t: Seconds(t),
                pos: stop.pos,
                energy_used: Joules(energy),
            });
            executed.push(HoverStop {
                pos: stop.pos,
                sojourn: Seconds(actual_sojourn),
                collected: uploads
                    .iter()
                    .map(|&(_, dev, got)| (dev, MegaBytes(got)))
                    .collect(),
            });
            let margin = (capacity - energy - wc * per_m * pos.distance(depot) - reserve).max(0.0);
            rec.observe("ctrl.margin_j", margin as u64);
        }

        // --- Direct return leg ------------------------------------------
        if !aborted {
            legs += 1;
            let wind_factor = wind.next_leg_factor();
            let fault_factor = fault.next_leg_factor();
            if fly_leg(
                &mut t,
                &mut energy,
                &mut pos,
                depot,
                speed,
                per_m * wind_factor * fault_factor,
                capacity,
                &mut trace,
            ) {
                trace.push(SimEvent::ReturnedToDepot {
                    t: Seconds(t),
                    energy_used: Joules(energy),
                });
            } else {
                aborted = true;
            }
        }

        let (collected, per_device) = if aborted {
            (
                MegaBytes::ZERO,
                vec![MegaBytes::ZERO; scenario.num_devices()],
            )
        } else {
            (
                MegaBytes(per_device.iter().sum()),
                per_device.into_iter().map(MegaBytes).collect(),
            )
        };
        rec.add("ctrl.legs", legs);
        rec.add("ctrl.replans", replans);
        rec.add("ctrl.trims", trims);
        rec.add("ctrl.drops", drops);
        drop(span);
        ControlOutcome {
            outcome: SimOutcome {
                collected,
                per_device,
                energy_used: Joules(energy),
                hover_energy_used: Joules(hover_used),
                mission_time: Seconds(t),
                completed: !aborted,
                trace,
            },
            executed: CollectionPlan { stops: executed },
            replans,
            trimmed_hovers: trims,
            dropped_stops: drops,
            reserve: Joules(reserve),
            final_margin: Joules(capacity - energy),
        }
    }
}

/// Travel energy of the route `pos → stops… → depot` priced at
/// `per_m_priced` (hover costs are excluded: hovers trim, travel does
/// not).
fn route_travel_cost(pos: Point2, stops: &[HoverStop], depot: Point2, per_m_priced: f64) -> f64 {
    let mut cost = 0.0;
    let mut at = pos;
    for s in stops {
        cost += at.distance(s.pos) * per_m_priced;
        at = s.pos;
    }
    cost + at.distance(depot) * per_m_priced
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{simulate, CollectionPolicy};
    use crate::wind::{LinkModel, WindModel};
    use crate::FaultPlan;
    use uavdc_geom::Aabb;
    use uavdc_net::units::{MegaBytesPerSecond, Meters};
    use uavdc_net::{DeviceId, FaultConfig, IotDevice, RadioModel, UavSpec};

    fn scenario(capacity: f64) -> Scenario {
        Scenario {
            region: Aabb::square(200.0),
            devices: vec![
                IotDevice {
                    pos: Point2::new(30.0, 40.0),
                    data: MegaBytes(300.0),
                },
                IotDevice {
                    pos: Point2::new(33.0, 40.0),
                    data: MegaBytes(600.0),
                },
            ],
            depot: Point2::new(0.0, 0.0),
            radio: RadioModel::new(Meters(20.0), MegaBytesPerSecond(150.0)),
            uav: UavSpec {
                capacity: Joules(capacity),
                ..UavSpec::paper_default()
            },
        }
    }

    fn one_stop_plan() -> CollectionPlan {
        CollectionPlan {
            stops: vec![HoverStop {
                pos: Point2::new(30.0, 40.0),
                sojourn: Seconds(4.0),
                collected: vec![
                    (DeviceId(0), MegaBytes(300.0)),
                    (DeviceId(1), MegaBytes(600.0)),
                ],
            }],
        }
    }

    fn zero_reserve() -> MissionController {
        MissionController::new(ControllerConfig {
            reserve_frac: 0.0,
            ..ControllerConfig::default()
        })
    }

    #[test]
    fn calm_mission_matches_open_loop_bit_for_bit() {
        let s = scenario(10_000.0);
        let plan = one_stop_plan();
        let open = simulate(&s, &plan, &SimConfig::default());
        let ctrl = zero_reserve().fly(&s, &plan, &SimConfig::default());
        assert!(ctrl.outcome.completed);
        assert_eq!(ctrl.replans + ctrl.trimmed_hovers + ctrl.dropped_stops, 0);
        assert_eq!(
            ctrl.outcome.energy_used.value().to_bits(),
            open.energy_used.value().to_bits()
        );
        assert_eq!(
            ctrl.outcome.mission_time.value().to_bits(),
            open.mission_time.value().to_bits()
        );
        assert_eq!(ctrl.outcome.trace.fingerprint(), open.trace.fingerprint());
        assert!(ctrl.outcome.agrees_with_plan(&plan, &s));
    }

    #[test]
    fn survives_the_wind_that_kills_the_open_loop() {
        // Calm needs 1600 J; 1650 J dies open-loop under 1.5x wind but
        // the controller must come home.
        let s = scenario(1650.0);
        let plan = one_stop_plan();
        let cfg = SimConfig {
            wind: WindModel::uniform(1.5, 1.5, 2),
            ..SimConfig::default()
        };
        assert!(!simulate(&s, &plan, &cfg).completed);
        let ctrl = zero_reserve().fly(&s, &plan, &cfg);
        assert!(ctrl.outcome.completed);
        assert!(ctrl.outcome.energy_used.value() <= 1650.0 + 1e-9);
        assert_eq!(ctrl.outcome.trace.check_well_formed(), Ok(()));
        assert!(ctrl.dropped_stops > 0 || ctrl.trimmed_hovers > 0);
    }

    #[test]
    fn trims_the_hover_to_a_partial_collection() {
        // Enough to reach the stop and come home under calm air, but not
        // for the full 4 s hover: 1000 J travel + 600 J hover > 1300 J.
        let s = scenario(1300.0);
        let plan = one_stop_plan();
        let ctrl = zero_reserve().fly(&s, &plan, &SimConfig::default());
        assert!(ctrl.outcome.completed);
        assert_eq!(ctrl.trimmed_hovers, 1);
        assert!(ctrl.outcome.collected.value() > 0.0, "partial, not zero");
        assert!(ctrl.outcome.collected.value() < 900.0 - 1e-6);
        assert!(ctrl.outcome.energy_used.value() <= 1300.0 + 1e-9);
        // The executed plan records the truncated sojourn.
        assert!(ctrl.executed.stops[0].sojourn.value() < 4.0);
    }

    #[test]
    fn hopeless_stop_is_dropped_for_a_direct_return() {
        // Cannot even reach the stop: the commitment gate drops it and
        // the mission degenerates to staying at the depot.
        let s = scenario(300.0);
        let plan = one_stop_plan();
        let ctrl = zero_reserve().fly(&s, &plan, &SimConfig::default());
        assert!(ctrl.outcome.completed);
        assert_eq!(ctrl.dropped_stops, 1);
        assert_eq!(ctrl.outcome.collected, MegaBytes::ZERO);
        assert!(ctrl.outcome.energy_used.value() <= 1e-9);
        assert_eq!(ctrl.outcome.trace.events.len(), 1); // ReturnedToDepot
    }

    #[test]
    fn reserve_margin_is_protected() {
        let s = scenario(1650.0);
        let plan = one_stop_plan();
        let ctrl = MissionController::new(ControllerConfig {
            reserve_frac: 0.10,
            ..ControllerConfig::default()
        })
        .fly(&s, &plan, &SimConfig::default());
        assert!(ctrl.outcome.completed);
        assert!(
            ctrl.final_margin.value() >= ctrl.reserve.value() - 1e-9,
            "landed with {} J, promised reserve {} J",
            ctrl.final_margin.value(),
            ctrl.reserve.value()
        );
    }

    #[test]
    fn replay_is_bit_identical() {
        let s = scenario(1800.0);
        let plan = one_stop_plan();
        let cfg = SimConfig {
            wind: WindModel::uniform(1.0, 1.5, 11),
            link: LinkModel::uniform(0.5, 1.0, 12),
            fault: FaultPlan::new(
                FaultConfig {
                    gust_onset: 0.4,
                    gust_legs: (1, 2),
                    gust_severity: (1.1, 1.4),
                    upload_fail: 0.3,
                    max_retries: 1,
                    retry_backoff: Seconds(0.2),
                    dropout: 0.1,
                },
                13,
            ),
            ..SimConfig::default()
        };
        let ctl = MissionController::default();
        let a = ctl.fly(&s, &plan, &cfg);
        let b = ctl.fly(&s, &plan, &cfg);
        assert_eq!(a.outcome.trace.fingerprint(), b.outcome.trace.fingerprint());
        assert_eq!(
            a.outcome.energy_used.value().to_bits(),
            b.outcome.energy_used.value().to_bits()
        );
        assert_eq!(a.replans, b.replans);
        assert_eq!(a.dropped_stops, b.dropped_stops);
        assert_eq!(a.executed.fingerprint(), b.executed.fingerprint());
    }

    #[test]
    fn opportunistic_policy_flies_closed_loop_too() {
        let s = scenario(10_000.0);
        let mut plan = one_stop_plan();
        plan.stops[0].collected = vec![(DeviceId(0), MegaBytes(300.0))];
        plan.stops[0].sojourn = Seconds(2.0);
        let cfg = SimConfig {
            policy: CollectionPolicy::Opportunistic,
            ..SimConfig::default()
        };
        let ctrl = zero_reserve().fly(&s, &plan, &cfg);
        let open = simulate(&s, &plan, &cfg);
        assert_eq!(
            ctrl.outcome.collected.value().to_bits(),
            open.collected.value().to_bits()
        );
    }
}
