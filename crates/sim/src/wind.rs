//! Seeded travel-energy disturbance ("wind") for robustness studies.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Multiplicative noise on travel power, drawn independently per leg.
///
/// A factor of `1.0` is calm air; `1.2` means that leg costs 20% more
/// energy than the planner budgeted. Hover power is unaffected (hovering
/// power draw varies far less with wind than translational flight).
#[derive(Clone, Debug)]
pub struct WindModel {
    rng: SmallRng,
    lo: f64,
    hi: f64,
}

impl WindModel {
    /// Uniform per-leg factor in `[lo, hi]`.
    ///
    /// # Panics
    /// Panics unless `0 < lo <= hi` and both are finite.
    pub fn uniform(lo: f64, hi: f64, seed: u64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo > 0.0 && lo <= hi,
            "wind factors must satisfy 0 < lo <= hi, got [{lo}, {hi}]"
        );
        WindModel {
            rng: SmallRng::seed_from_u64(seed),
            lo,
            hi,
        }
    }

    /// Calm air: every leg costs exactly its nominal energy.
    pub fn calm() -> Self {
        WindModel::uniform(1.0, 1.0, 0)
    }

    /// Draws the factor for the next leg.
    ///
    /// **Stream contract:** the k-th call consumes exactly one RNG value
    /// regardless of the current range, so draw k is a function of
    /// `(seed, k)` alone. Degenerate ranges (`lo == hi`) return exactly
    /// `lo` — the underlying inclusive-range sampler computes
    /// `lo + u·(hi−lo)` which is exact for `hi == lo` — so calm air still
    /// yields `1.0` bit-for-bit while keeping the stream position in
    /// lockstep with any other range. Changing the range (including
    /// calm→uniform) therefore never shifts subsequent draws.
    pub fn next_leg_factor(&mut self) -> f64 {
        self.rng.gen_range(self.lo..=self.hi)
    }

    /// The largest factor a leg can draw — what a safe controller must
    /// budget for.
    pub fn max_factor(&self) -> f64 {
        self.hi
    }

    /// Re-ranges the model mid-stream (e.g. a weather front arriving
    /// part-way through an experiment) without touching the RNG: by the
    /// stream contract of [`next_leg_factor`](Self::next_leg_factor),
    /// draws after the switch match a same-seed model that had the new
    /// range all along.
    ///
    /// # Panics
    /// Same contract as [`uniform`](Self::uniform).
    pub fn set_range(&mut self, lo: f64, hi: f64) {
        assert!(
            lo.is_finite() && hi.is_finite() && lo > 0.0 && lo <= hi,
            "wind factors must satisfy 0 < lo <= hi, got [{lo}, {hi}]"
        );
        self.lo = lo;
        self.hi = hi;
    }
}

/// Multiplicative noise on the uplink bandwidth, drawn independently per
/// hover stop.
///
/// A factor below `1.0` models interference/fading: devices upload slower
/// than the planner assumed, so a strict-policy mission brings home less
/// than planned even though the tour itself completes.
#[derive(Clone, Debug)]
pub struct LinkModel {
    rng: SmallRng,
    lo: f64,
    hi: f64,
}

impl LinkModel {
    /// Uniform per-stop factor in `[lo, hi]`.
    ///
    /// # Panics
    /// Panics unless `0 < lo <= hi <= 1` (a link never beats its nominal
    /// bandwidth) and both are finite.
    pub fn uniform(lo: f64, hi: f64, seed: u64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo > 0.0 && lo <= hi && hi <= 1.0,
            "link factors must satisfy 0 < lo <= hi <= 1, got [{lo}, {hi}]"
        );
        LinkModel {
            rng: SmallRng::seed_from_u64(seed),
            lo,
            hi,
        }
    }

    /// Nominal link: every stop gets the full bandwidth.
    pub fn nominal() -> Self {
        LinkModel {
            rng: SmallRng::seed_from_u64(0),
            lo: 1.0,
            hi: 1.0,
        }
    }

    /// Draws the factor for the next stop.
    ///
    /// Same stream contract as [`WindModel::next_leg_factor`]: one RNG
    /// value per call unconditionally, degenerate ranges return exactly
    /// `lo`.
    pub fn next_stop_factor(&mut self) -> f64 {
        self.rng.gen_range(self.lo..=self.hi)
    }

    /// The smallest factor a stop can draw (the worst bandwidth
    /// degradation under this model).
    pub fn min_factor(&self) -> f64 {
        self.lo
    }

    /// Re-ranges the model mid-stream without touching the RNG; see
    /// [`WindModel::set_range`].
    ///
    /// # Panics
    /// Same contract as [`uniform`](Self::uniform).
    pub fn set_range(&mut self, lo: f64, hi: f64) {
        assert!(
            lo.is_finite() && hi.is_finite() && lo > 0.0 && lo <= hi && hi <= 1.0,
            "link factors must satisfy 0 < lo <= hi <= 1, got [{lo}, {hi}]"
        );
        self.lo = lo;
        self.hi = hi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_link_is_always_one() {
        let mut l = LinkModel::nominal();
        for _ in 0..10 {
            assert_eq!(l.next_stop_factor(), 1.0);
        }
    }

    #[test]
    fn link_factors_stay_in_range_and_are_seeded() {
        let mut a = LinkModel::uniform(0.4, 0.9, 3);
        let mut b = LinkModel::uniform(0.4, 0.9, 3);
        for _ in 0..50 {
            let f = a.next_stop_factor();
            assert!((0.4..=0.9).contains(&f));
            assert_eq!(f, b.next_stop_factor());
        }
    }

    #[test]
    #[should_panic(expected = "link factors")]
    fn link_above_one_rejected() {
        let _ = LinkModel::uniform(0.5, 1.5, 0);
    }

    #[test]
    fn calm_is_always_one() {
        let mut w = WindModel::calm();
        for _ in 0..10 {
            assert_eq!(w.next_leg_factor(), 1.0);
        }
    }

    #[test]
    fn factors_stay_in_range_and_are_seeded() {
        let mut a = WindModel::uniform(1.0, 1.5, 42);
        let mut b = WindModel::uniform(1.0, 1.5, 42);
        for _ in 0..100 {
            let fa = a.next_leg_factor();
            assert!((1.0..=1.5).contains(&fa));
            assert_eq!(fa, b.next_leg_factor(), "same seed must give same draws");
        }
    }

    #[test]
    #[should_panic(expected = "wind factors")]
    fn bad_range_rejected() {
        let _ = WindModel::uniform(1.5, 1.0, 0);
    }

    /// The regression for the old `lo == hi` short-circuit: a degenerate
    /// draw must still advance the RNG, so a model that spends its first
    /// k draws calm and is then widened stays in lockstep with a
    /// same-seed model that was wide from the start.
    #[test]
    fn degenerate_draws_advance_the_stream() {
        let mut wide = WindModel::uniform(1.0, 1.5, 7);
        let mut staged = WindModel::uniform(1.0, 1.0, 7);
        for _ in 0..5 {
            let _ = wide.next_leg_factor();
            assert_eq!(staged.next_leg_factor(), 1.0);
        }
        staged.set_range(1.0, 1.5);
        for i in 0..50 {
            assert_eq!(
                wide.next_leg_factor(),
                staged.next_leg_factor(),
                "draw {i} diverged after calm->uniform switch"
            );
        }
    }

    #[test]
    fn link_degenerate_draws_advance_the_stream() {
        let mut wide = LinkModel::uniform(0.5, 1.0, 11);
        let mut staged = LinkModel::uniform(1.0, 1.0, 11);
        for _ in 0..3 {
            let _ = wide.next_stop_factor();
            assert_eq!(staged.next_stop_factor(), 1.0);
        }
        staged.set_range(0.5, 1.0);
        for _ in 0..50 {
            assert_eq!(wide.next_stop_factor(), staged.next_stop_factor());
        }
    }

    /// Seed-stability golden values: the exact bit patterns of the first
    /// draws for a fixed seed. Any change to the sampler, the seeding, or
    /// the draw-per-call contract flips these bits and must be a
    /// deliberate, baseline-refreshing decision (committed BENCH_*.json
    /// artefacts embed outcomes of these streams).
    #[test]
    fn seed_stability_golden_draws() {
        let mut w = WindModel::uniform(1.0, 1.5, 42);
        let got: Vec<u64> = (0..4).map(|_| w.next_leg_factor().to_bits()).collect();
        let want = [
            0x3ff683b26a7a23b3u64,
            0x3ff28cf20ba2bb7a,
            0x3ff7df03e7d86127,
            0x3ff59becfb0066c2,
        ];
        assert_eq!(got, want, "wind draw stream changed for seed 42");
    }

    #[test]
    fn max_and_min_factor_expose_the_range() {
        assert_eq!(WindModel::uniform(1.0, 1.5, 0).max_factor(), 1.5);
        assert_eq!(WindModel::calm().max_factor(), 1.0);
        assert_eq!(LinkModel::uniform(0.4, 0.9, 0).min_factor(), 0.4);
        assert_eq!(LinkModel::nominal().min_factor(), 1.0);
    }
}
