//! Seeded travel-energy disturbance ("wind") for robustness studies.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Multiplicative noise on travel power, drawn independently per leg.
///
/// A factor of `1.0` is calm air; `1.2` means that leg costs 20% more
/// energy than the planner budgeted. Hover power is unaffected (hovering
/// power draw varies far less with wind than translational flight).
#[derive(Clone, Debug)]
pub struct WindModel {
    rng: SmallRng,
    lo: f64,
    hi: f64,
}

impl WindModel {
    /// Uniform per-leg factor in `[lo, hi]`.
    ///
    /// # Panics
    /// Panics unless `0 < lo <= hi` and both are finite.
    pub fn uniform(lo: f64, hi: f64, seed: u64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo > 0.0 && lo <= hi,
            "wind factors must satisfy 0 < lo <= hi, got [{lo}, {hi}]"
        );
        WindModel {
            rng: SmallRng::seed_from_u64(seed),
            lo,
            hi,
        }
    }

    /// Calm air: every leg costs exactly its nominal energy.
    pub fn calm() -> Self {
        WindModel::uniform(1.0, 1.0, 0)
    }

    /// Draws the factor for the next leg.
    pub fn next_leg_factor(&mut self) -> f64 {
        if self.lo == self.hi {
            self.lo
        } else {
            self.rng.gen_range(self.lo..=self.hi)
        }
    }
}

/// Multiplicative noise on the uplink bandwidth, drawn independently per
/// hover stop.
///
/// A factor below `1.0` models interference/fading: devices upload slower
/// than the planner assumed, so a strict-policy mission brings home less
/// than planned even though the tour itself completes.
#[derive(Clone, Debug)]
pub struct LinkModel {
    rng: SmallRng,
    lo: f64,
    hi: f64,
}

impl LinkModel {
    /// Uniform per-stop factor in `[lo, hi]`.
    ///
    /// # Panics
    /// Panics unless `0 < lo <= hi <= 1` (a link never beats its nominal
    /// bandwidth) and both are finite.
    pub fn uniform(lo: f64, hi: f64, seed: u64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo > 0.0 && lo <= hi && hi <= 1.0,
            "link factors must satisfy 0 < lo <= hi <= 1, got [{lo}, {hi}]"
        );
        LinkModel {
            rng: SmallRng::seed_from_u64(seed),
            lo,
            hi,
        }
    }

    /// Nominal link: every stop gets the full bandwidth.
    pub fn nominal() -> Self {
        LinkModel {
            rng: SmallRng::seed_from_u64(0),
            lo: 1.0,
            hi: 1.0,
        }
    }

    /// Draws the factor for the next stop.
    pub fn next_stop_factor(&mut self) -> f64 {
        if self.lo == self.hi {
            self.lo
        } else {
            self.rng.gen_range(self.lo..=self.hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_link_is_always_one() {
        let mut l = LinkModel::nominal();
        for _ in 0..10 {
            assert_eq!(l.next_stop_factor(), 1.0);
        }
    }

    #[test]
    fn link_factors_stay_in_range_and_are_seeded() {
        let mut a = LinkModel::uniform(0.4, 0.9, 3);
        let mut b = LinkModel::uniform(0.4, 0.9, 3);
        for _ in 0..50 {
            let f = a.next_stop_factor();
            assert!((0.4..=0.9).contains(&f));
            assert_eq!(f, b.next_stop_factor());
        }
    }

    #[test]
    #[should_panic(expected = "link factors")]
    fn link_above_one_rejected() {
        let _ = LinkModel::uniform(0.5, 1.5, 0);
    }

    #[test]
    fn calm_is_always_one() {
        let mut w = WindModel::calm();
        for _ in 0..10 {
            assert_eq!(w.next_leg_factor(), 1.0);
        }
    }

    #[test]
    fn factors_stay_in_range_and_are_seeded() {
        let mut a = WindModel::uniform(1.0, 1.5, 42);
        let mut b = WindModel::uniform(1.0, 1.5, 42);
        for _ in 0..100 {
            let fa = a.next_leg_factor();
            assert!((1.0..=1.5).contains(&fa));
            assert_eq!(fa, b.next_leg_factor(), "same seed must give same draws");
        }
    }

    #[test]
    #[should_panic(expected = "wind factors")]
    fn bad_range_rejected() {
        let _ = WindModel::uniform(1.5, 1.0, 0);
    }
}
