//! Simulation event log.

use uavdc_geom::Point2;
use uavdc_net::units::{Joules, MegaBytes, Seconds};
use uavdc_net::DeviceId;

/// One timestamped event of a simulated mission.
#[derive(Clone, Debug, PartialEq)]
pub enum SimEvent {
    /// The UAV left a position heading for another.
    Departed {
        /// Mission time at departure.
        t: Seconds,
        /// Where from.
        from: Point2,
        /// Where to.
        to: Point2,
    },
    /// The UAV arrived at a hovering position.
    Arrived {
        /// Mission time at arrival.
        t: Seconds,
        /// The position reached.
        pos: Point2,
    },
    /// A device finished (or truncated) its upload during a hover.
    Uploaded {
        /// Mission time when the transfer ended.
        t: Seconds,
        /// Uploading device.
        device: DeviceId,
        /// Volume transferred during this hover.
        amount: MegaBytes,
    },
    /// A hover ended and the UAV is ready to move on.
    HoverEnded {
        /// Mission time.
        t: Seconds,
        /// Hover position.
        pos: Point2,
        /// Energy used so far.
        energy_used: Joules,
    },
    /// The battery ran dry before the mission finished.
    BatteryDepleted {
        /// Mission time of depletion.
        t: Seconds,
        /// Where the UAV was (interpolated along the current leg).
        pos: Point2,
    },
    /// Mission completed: the UAV is back at the depot.
    ReturnedToDepot {
        /// Total mission time.
        t: Seconds,
        /// Total energy used.
        energy_used: Joules,
    },
}

impl SimEvent {
    /// Timestamp of the event.
    pub fn time(&self) -> Seconds {
        match self {
            SimEvent::Departed { t, .. }
            | SimEvent::Arrived { t, .. }
            | SimEvent::Uploaded { t, .. }
            | SimEvent::HoverEnded { t, .. }
            | SimEvent::BatteryDepleted { t, .. }
            | SimEvent::ReturnedToDepot { t, .. } => *t,
        }
    }
}

/// Chronological event log of one mission.
#[derive(Clone, Debug, Default)]
pub struct SimTrace {
    /// Events in non-decreasing time order.
    pub events: Vec<SimEvent>,
}

impl SimTrace {
    /// Appends an event, checking monotonicity in debug builds.
    pub fn push(&mut self, e: SimEvent) {
        debug_assert!(
            self.events
                .last()
                .is_none_or(|last| last.time() <= e.time() + Seconds(1e-9)),
            "event log must be chronological"
        );
        self.events.push(e);
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events were logged.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All upload events, in order.
    pub fn uploads(&self) -> impl Iterator<Item = (&Seconds, &DeviceId, &MegaBytes)> {
        self.events.iter().filter_map(|e| match e {
            SimEvent::Uploaded { t, device, amount } => Some((t, device, amount)),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_chronological() {
        let mut tr = SimTrace::default();
        tr.push(SimEvent::Departed {
            t: Seconds(0.0),
            from: Point2::ORIGIN,
            to: Point2::ORIGIN,
        });
        tr.push(SimEvent::Arrived {
            t: Seconds(5.0),
            pos: Point2::ORIGIN,
        });
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.events[1].time(), Seconds(5.0));
    }

    #[test]
    #[should_panic(expected = "chronological")]
    #[cfg(debug_assertions)]
    fn out_of_order_event_panics_in_debug() {
        let mut tr = SimTrace::default();
        tr.push(SimEvent::Arrived {
            t: Seconds(5.0),
            pos: Point2::ORIGIN,
        });
        tr.push(SimEvent::Arrived {
            t: Seconds(1.0),
            pos: Point2::ORIGIN,
        });
    }

    #[test]
    fn uploads_filter() {
        let mut tr = SimTrace::default();
        tr.push(SimEvent::Uploaded {
            t: Seconds(1.0),
            device: DeviceId(3),
            amount: MegaBytes(5.0),
        });
        tr.push(SimEvent::HoverEnded {
            t: Seconds(2.0),
            pos: Point2::ORIGIN,
            energy_used: Joules(1.0),
        });
        assert_eq!(tr.uploads().count(), 1);
    }
}
