//! Simulation event log.

use uavdc_geom::Point2;
use uavdc_net::units::{Joules, MegaBytes, Seconds};
use uavdc_net::DeviceId;

/// One timestamped event of a simulated mission.
#[derive(Clone, Debug, PartialEq)]
pub enum SimEvent {
    /// The UAV left a position heading for another.
    Departed {
        /// Mission time at departure.
        t: Seconds,
        /// Where from.
        from: Point2,
        /// Where to.
        to: Point2,
    },
    /// The UAV arrived at a hovering position.
    Arrived {
        /// Mission time at arrival.
        t: Seconds,
        /// The position reached.
        pos: Point2,
    },
    /// A device finished (or truncated) its upload during a hover.
    Uploaded {
        /// Mission time when the transfer ended.
        t: Seconds,
        /// Uploading device.
        device: DeviceId,
        /// Volume transferred during this hover.
        amount: MegaBytes,
    },
    /// A hover ended and the UAV is ready to move on.
    HoverEnded {
        /// Mission time.
        t: Seconds,
        /// Hover position.
        pos: Point2,
        /// Energy used so far.
        energy_used: Joules,
    },
    /// The battery ran dry before the mission finished.
    BatteryDepleted {
        /// Mission time of depletion.
        t: Seconds,
        /// Where the UAV was (interpolated along the current leg).
        pos: Point2,
    },
    /// Mission completed: the UAV is back at the depot.
    ReturnedToDepot {
        /// Total mission time.
        t: Seconds,
        /// Total energy used.
        energy_used: Joules,
    },
}

impl SimEvent {
    /// Timestamp of the event.
    pub fn time(&self) -> Seconds {
        match self {
            SimEvent::Departed { t, .. }
            | SimEvent::Arrived { t, .. }
            | SimEvent::Uploaded { t, .. }
            | SimEvent::HoverEnded { t, .. }
            | SimEvent::BatteryDepleted { t, .. }
            | SimEvent::ReturnedToDepot { t, .. } => *t,
        }
    }
}

/// Chronological event log of one mission.
#[derive(Clone, Debug, Default)]
pub struct SimTrace {
    /// Events in non-decreasing time order.
    pub events: Vec<SimEvent>,
}

impl SimTrace {
    /// Appends an event, checking monotonicity in debug builds.
    pub fn push(&mut self, e: SimEvent) {
        debug_assert!(
            self.events
                .last()
                .is_none_or(|last| last.time() <= e.time() + Seconds(1e-9)),
            "event log must be chronological"
        );
        self.events.push(e);
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events were logged.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All upload events, in order.
    pub fn uploads(&self) -> impl Iterator<Item = (&Seconds, &DeviceId, &MegaBytes)> {
        self.events.iter().filter_map(|e| match e {
            SimEvent::Uploaded { t, device, amount } => Some((t, device, amount)),
            _ => None,
        })
    }

    /// Checks the grammar every simulated mission must obey; returns a
    /// description of the first violation.
    ///
    /// * Timestamps are finite, non-negative and non-decreasing (1e-9 s
    ///   slack, matching [`push`](Self::push)).
    /// * `Departed` opens a leg that must be closed by an `Arrived` at
    ///   the departure's destination (or by `BatteryDepleted` mid-leg)
    ///   before any other event.
    /// * `Uploaded` and `HoverEnded` happen only inside a hover: after
    ///   an `Arrived`, or directly from travel state for a zero-length
    ///   leg (the simulator emits no `Departed`/`Arrived` pair when the
    ///   next stop is the current position).
    /// * `BatteryDepleted` and `ReturnedToDepot` are terminal — nothing
    ///   follows them, and a non-empty trace must end in one of them.
    pub fn check_well_formed(&self) -> Result<(), String> {
        #[derive(Clone, Copy, PartialEq)]
        enum St {
            Travel,
            Leg,
            Hover,
            Done,
        }
        if self.events.is_empty() {
            return Err("trace has no terminal event".into());
        }
        let mut st = St::Travel;
        let mut leg_to: Option<Point2> = None;
        let mut last_t = 0.0f64;
        for (i, e) in self.events.iter().enumerate() {
            let t = e.time().value();
            if !t.is_finite() || t < 0.0 {
                return Err(format!("event {i}: bad timestamp {t}"));
            }
            if t + 1e-9 < last_t {
                return Err(format!("event {i}: time {t} before {last_t}"));
            }
            last_t = last_t.max(t);
            if st == St::Done {
                return Err(format!("event {i}: {e:?} after a terminal event"));
            }
            st = match (st, e) {
                (St::Travel, SimEvent::Departed { to, .. }) => {
                    leg_to = Some(*to);
                    St::Leg
                }
                (St::Leg, SimEvent::Arrived { pos, .. }) => {
                    // The simulator assigns the destination into the
                    // position on arrival, so the match is exact.
                    let matches_leg = leg_to.is_some_and(|to| {
                        to.x.to_bits() == pos.x.to_bits() && to.y.to_bits() == pos.y.to_bits()
                    });
                    if !matches_leg {
                        return Err(format!(
                            "event {i}: arrived at {pos:?}, leg departed for {leg_to:?}"
                        ));
                    }
                    St::Hover
                }
                (St::Leg, SimEvent::BatteryDepleted { .. }) => St::Done,
                // Zero-length legs emit no Departed/Arrived pair, so a
                // hover (or a depletion mid-hover, or the final return)
                // may open directly from travel state.
                (St::Travel | St::Hover, SimEvent::Uploaded { .. }) => St::Hover,
                (St::Travel | St::Hover, SimEvent::HoverEnded { .. }) => St::Travel,
                (St::Travel | St::Hover, SimEvent::BatteryDepleted { .. }) => St::Done,
                (St::Travel | St::Hover, SimEvent::ReturnedToDepot { .. }) => St::Done,
                (_, e) => return Err(format!("event {i}: {e:?} illegal in this state")),
            };
        }
        if st != St::Done {
            return Err("trace does not end in a terminal event".into());
        }
        Ok(())
    }

    /// FNV-1a fingerprint over the exact bit patterns of every event.
    /// Two traces fingerprint equal iff they are bit-identical, making
    /// replay determinism checkable without storing whole traces.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |word: u64| {
            for byte in word.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(PRIME);
            }
        };
        for e in &self.events {
            match e {
                SimEvent::Departed { t, from, to } => {
                    eat(0);
                    eat(t.value().to_bits());
                    eat(from.x.to_bits());
                    eat(from.y.to_bits());
                    eat(to.x.to_bits());
                    eat(to.y.to_bits());
                }
                SimEvent::Arrived { t, pos } => {
                    eat(1);
                    eat(t.value().to_bits());
                    eat(pos.x.to_bits());
                    eat(pos.y.to_bits());
                }
                SimEvent::Uploaded { t, device, amount } => {
                    eat(2);
                    eat(t.value().to_bits());
                    eat(u64::from(device.0));
                    eat(amount.value().to_bits());
                }
                SimEvent::HoverEnded {
                    t,
                    pos,
                    energy_used,
                } => {
                    eat(3);
                    eat(t.value().to_bits());
                    eat(pos.x.to_bits());
                    eat(pos.y.to_bits());
                    eat(energy_used.value().to_bits());
                }
                SimEvent::BatteryDepleted { t, pos } => {
                    eat(4);
                    eat(t.value().to_bits());
                    eat(pos.x.to_bits());
                    eat(pos.y.to_bits());
                }
                SimEvent::ReturnedToDepot { t, energy_used } => {
                    eat(5);
                    eat(t.value().to_bits());
                    eat(energy_used.value().to_bits());
                }
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_chronological() {
        let mut tr = SimTrace::default();
        tr.push(SimEvent::Departed {
            t: Seconds(0.0),
            from: Point2::ORIGIN,
            to: Point2::ORIGIN,
        });
        tr.push(SimEvent::Arrived {
            t: Seconds(5.0),
            pos: Point2::ORIGIN,
        });
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.events[1].time(), Seconds(5.0));
    }

    #[test]
    #[should_panic(expected = "chronological")]
    #[cfg(debug_assertions)]
    fn out_of_order_event_panics_in_debug() {
        let mut tr = SimTrace::default();
        tr.push(SimEvent::Arrived {
            t: Seconds(5.0),
            pos: Point2::ORIGIN,
        });
        tr.push(SimEvent::Arrived {
            t: Seconds(1.0),
            pos: Point2::ORIGIN,
        });
    }

    fn leg(tr: &mut SimTrace, t0: f64, from: Point2, to: Point2, t1: f64) {
        tr.push(SimEvent::Departed {
            t: Seconds(t0),
            from,
            to,
        });
        tr.push(SimEvent::Arrived {
            t: Seconds(t1),
            pos: to,
        });
    }

    #[test]
    fn well_formed_mission_accepted() {
        let stop = Point2::new(30.0, 40.0);
        let mut tr = SimTrace::default();
        leg(&mut tr, 0.0, Point2::ORIGIN, stop, 5.0);
        tr.push(SimEvent::Uploaded {
            t: Seconds(6.0),
            device: DeviceId(0),
            amount: MegaBytes(10.0),
        });
        tr.push(SimEvent::HoverEnded {
            t: Seconds(7.0),
            pos: stop,
            energy_used: Joules(100.0),
        });
        leg(&mut tr, 7.0, stop, Point2::ORIGIN, 12.0);
        tr.push(SimEvent::ReturnedToDepot {
            t: Seconds(12.0),
            energy_used: Joules(200.0),
        });
        assert_eq!(tr.check_well_formed(), Ok(()));
    }

    #[test]
    fn upload_mid_leg_rejected() {
        let mut tr = SimTrace::default();
        tr.push(SimEvent::Departed {
            t: Seconds(0.0),
            from: Point2::ORIGIN,
            to: Point2::new(1.0, 0.0),
        });
        tr.push(SimEvent::Uploaded {
            t: Seconds(1.0),
            device: DeviceId(0),
            amount: MegaBytes(1.0),
        });
        assert!(tr.check_well_formed().is_err(), "upload outside a hover");
    }

    #[test]
    fn arrival_must_match_departure_target() {
        let mut tr = SimTrace::default();
        tr.push(SimEvent::Departed {
            t: Seconds(0.0),
            from: Point2::ORIGIN,
            to: Point2::new(1.0, 0.0),
        });
        tr.push(SimEvent::Arrived {
            t: Seconds(1.0),
            pos: Point2::new(2.0, 0.0),
        });
        assert!(tr.check_well_formed().is_err());
    }

    #[test]
    fn nothing_may_follow_a_terminal_event() {
        let mut tr = SimTrace::default();
        tr.push(SimEvent::ReturnedToDepot {
            t: Seconds(0.0),
            energy_used: Joules(0.0),
        });
        tr.push(SimEvent::HoverEnded {
            t: Seconds(1.0),
            pos: Point2::ORIGIN,
            energy_used: Joules(0.0),
        });
        assert!(tr.check_well_formed().is_err());
    }

    #[test]
    fn truncated_or_empty_traces_rejected() {
        assert!(SimTrace::default().check_well_formed().is_err());
        let mut tr = SimTrace::default();
        leg(&mut tr, 0.0, Point2::ORIGIN, Point2::new(1.0, 0.0), 1.0);
        assert!(tr.check_well_formed().is_err(), "no terminal event");
    }

    #[test]
    fn fingerprint_is_bit_sensitive() {
        let mut a = SimTrace::default();
        a.push(SimEvent::ReturnedToDepot {
            t: Seconds(1.0),
            energy_used: Joules(10.0),
        });
        let mut b = a.clone();
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.events[0] = SimEvent::ReturnedToDepot {
            t: Seconds(1.0),
            energy_used: Joules(10.0 + 1e-12),
        };
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn uploads_filter() {
        let mut tr = SimTrace::default();
        tr.push(SimEvent::Uploaded {
            t: Seconds(1.0),
            device: DeviceId(3),
            amount: MegaBytes(5.0),
        });
        tr.push(SimEvent::HoverEnded {
            t: Seconds(2.0),
            pos: Point2::ORIGIN,
            energy_used: Joules(1.0),
        });
        assert_eq!(tr.uploads().count(), 1);
    }
}
