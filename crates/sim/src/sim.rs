//! The mission simulator.

use crate::event::{SimEvent, SimTrace};
use crate::fault::FaultPlan;
use crate::wind::{LinkModel, WindModel};
use uavdc_core::{CollectionPlan, HoverStop};
use uavdc_geom::Point2;
use uavdc_net::units::{Joules, MegaBytes, Seconds};
use uavdc_net::{DeviceId, Scenario};

/// What the UAV collects while hovering.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CollectionPolicy {
    /// Collect exactly what the plan scheduled at each stop (capped by
    /// physics). The mode used to validate planner accounting.
    #[default]
    PlanStrict,
    /// Collect from *every* device within coverage at each stop for the
    /// planned sojourn, bandwidth-capped — what an opportunistic UAV
    /// radio would actually do. Never collects less than `PlanStrict`.
    Opportunistic,
}

/// Simulator configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Collection behaviour while hovering.
    pub policy: CollectionPolicy,
    /// Travel-energy disturbance.
    pub wind: WindModel,
    /// Per-stop uplink-bandwidth disturbance.
    pub link: LinkModel,
    /// Seeded fault injection (gust bursts, upload failures, device
    /// dropout); [`FaultPlan::none`] by default, which is bit-identical
    /// to the fault-free simulator.
    pub fault: FaultPlan,
    /// Record per-device upload events (disable for big sweeps).
    pub record_uploads: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            policy: CollectionPolicy::PlanStrict,
            wind: WindModel::calm(),
            link: LinkModel::nominal(),
            fault: FaultPlan::none(),
            record_uploads: true,
        }
    }
}

/// Result of a simulated mission.
#[derive(Clone, Debug)]
pub struct SimOutcome {
    /// Volume brought back to the depot.
    pub collected: MegaBytes,
    /// Per-device collected volumes.
    pub per_device: Vec<MegaBytes>,
    /// Energy consumed.
    pub energy_used: Joules,
    /// Portion of `energy_used` spent hovering (the rest is travel).
    pub hover_energy_used: Joules,
    /// Mission duration (until completion or battery depletion).
    pub mission_time: Seconds,
    /// True when the UAV made it back to the depot.
    pub completed: bool,
    /// Chronological event log.
    pub trace: SimTrace,
}

impl SimOutcome {
    /// Checks that this (strict-policy, calm-wind) outcome matches the
    /// plan's own accounting: completed, same collected volume (1e-6 MB
    /// tolerance), same energy (1e-6 J relative tolerance).
    pub fn agrees_with_plan(&self, plan: &CollectionPlan, scenario: &Scenario) -> bool {
        if !self.completed {
            return false;
        }
        let claimed = plan.collected_volume();
        let energy = plan.total_energy(scenario);
        (self.collected.value() - claimed.value()).abs() < 1e-6 * (1.0 + claimed.value())
            && (self.energy_used.value() - energy.value()).abs() < 1e-6 * (1.0 + energy.value())
    }
}

/// Simulates flying `plan` over `scenario` under `config`.
///
/// The mission aborts the moment the battery would go negative; partial
/// legs and hovers consume exactly the energy available.
pub fn simulate(scenario: &Scenario, plan: &CollectionPlan, config: &SimConfig) -> SimOutcome {
    simulate_obs(scenario, plan, config, &uavdc_obs::NOOP)
}

/// Like [`simulate`], reporting a `sim` span plus end-of-mission counters
/// (`sim.legs`, `sim.stops`, `sim.events`) to `rec`. Counters are
/// accumulated locally and flushed once after the mission, so the
/// recorder adds no work to the event loop. The recorder never influences
/// the mission: for any `rec` the outcome is bit-identical to `simulate`.
pub fn simulate_obs(
    scenario: &Scenario,
    plan: &CollectionPlan,
    config: &SimConfig,
    rec: &dyn uavdc_obs::Recorder,
) -> SimOutcome {
    let span = uavdc_obs::Span::root(rec, "sim");
    let mut legs = 0u64;
    let mut stops_visited = 0u64;
    let mut wind = config.wind.clone();
    let mut link = config.link.clone();
    let mut fault = config.fault.clone();
    let dropped_devices = fault.draw_dropouts(scenario.num_devices());
    let speed = scenario.uav.speed.value();
    let eta_h = scenario.uav.hover_power.value();
    let per_m_nominal = scenario.uav.travel_energy_per_meter().value();
    let capacity = scenario.uav.capacity.value();
    let b = scenario.radio.bandwidth.value();
    let r0 = scenario.coverage_radius().value();

    let mut residual: Vec<f64> = scenario.devices.iter().map(|d| d.data.value()).collect();
    let mut per_device = vec![0.0f64; scenario.num_devices()];
    let mut trace = SimTrace::default();
    let mut t = 0.0f64;
    let mut energy = 0.0f64;
    let mut hover_used = 0.0f64;
    let mut pos = scenario.depot;

    // Waypoints: every stop, then back to the depot.
    let mut aborted = false;
    'mission: {
        for stop in &plan.stops {
            // --- Fly to the stop -------------------------------------
            legs += 1;
            stops_visited += 1;
            if !fly_leg(
                &mut t,
                &mut energy,
                &mut pos,
                stop.pos,
                speed,
                per_m_nominal * wind.next_leg_factor() * fault.next_leg_factor(),
                capacity,
                &mut trace,
            ) {
                aborted = true;
                break 'mission;
            }
            // --- Hover and collect ------------------------------------
            let sojourn = stop.sojourn.value();
            let affordable = ((capacity - energy) / eta_h).max(0.0);
            let actual_sojourn = sojourn.min(affordable);
            let truncated = actual_sojourn + 1e-12 < sojourn;

            // Determine the upload schedule for this hover. Devices
            // upload concurrently, so their finish times are unordered;
            // buffer and sort before logging. Link noise degrades this
            // stop's effective bandwidth.
            let eff_b = b * link.next_stop_factor();
            let mut uploads = collect_uploads(
                config.policy,
                stop,
                scenario,
                r0,
                eff_b,
                actual_sojourn,
                &mut residual,
                &mut per_device,
                &dropped_devices,
                &mut fault,
            );
            if config.record_uploads {
                uploads.sort_by(|a, b2| uavdc_geom::cmp_f64(a.0, b2.0));
                for (dt, dev, got) in uploads {
                    trace.push(SimEvent::Uploaded {
                        t: Seconds(t + dt),
                        device: dev,
                        amount: MegaBytes(got),
                    });
                }
            }
            t += actual_sojourn;
            energy += actual_sojourn * eta_h;
            hover_used += actual_sojourn * eta_h;
            if truncated {
                trace.push(SimEvent::BatteryDepleted {
                    t: Seconds(t),
                    pos: stop.pos,
                });
                aborted = true;
                break 'mission;
            }
            trace.push(SimEvent::HoverEnded {
                t: Seconds(t),
                pos: stop.pos,
                energy_used: Joules(energy),
            });
        }
        // --- Return to depot ------------------------------------------
        legs += 1;
        if !fly_leg(
            &mut t,
            &mut energy,
            &mut pos,
            scenario.depot,
            speed,
            per_m_nominal * wind.next_leg_factor() * fault.next_leg_factor(),
            capacity,
            &mut trace,
        ) {
            aborted = true;
            break 'mission;
        }
        trace.push(SimEvent::ReturnedToDepot {
            t: Seconds(t),
            energy_used: Joules(energy),
        });
    }

    // Data only counts if it made it home.
    let (collected, per_device) = if aborted {
        (
            MegaBytes::ZERO,
            vec![MegaBytes::ZERO; scenario.num_devices()],
        )
    } else {
        (
            MegaBytes(per_device.iter().sum()),
            per_device.into_iter().map(MegaBytes).collect(),
        )
    };
    rec.add("sim.legs", legs);
    rec.add("sim.stops", stops_visited);
    rec.add("sim.events", trace.events.len() as u64);
    drop(span);
    SimOutcome {
        collected,
        per_device,
        energy_used: Joules(energy),
        hover_energy_used: Joules(hover_used),
        mission_time: Seconds(t),
        completed: !aborted,
        trace,
    }
}

/// Collects uploads for one hover: applies the policy, the effective
/// bandwidth, device dropout and per-transfer retry/backoff faults, and
/// returns `(finish-offset, device, volume)` triples (unordered — the
/// caller sorts before logging). Mutates `residual`/`per_device`.
///
/// With an inert `fault` and no dropouts this computes bit-identically
/// to the fault-free simulator: zero waste subtracts exactly nothing
/// from the hover window.
#[allow(clippy::too_many_arguments)]
pub(crate) fn collect_uploads(
    policy: CollectionPolicy,
    stop: &HoverStop,
    scenario: &Scenario,
    r0: f64,
    eff_b: f64,
    actual_sojourn: f64,
    residual: &mut [f64],
    per_device: &mut [f64],
    dropped_devices: &[bool],
    fault: &mut FaultPlan,
) -> Vec<(f64, DeviceId, f64)> {
    let mut uploads: Vec<(f64, DeviceId, f64)> = Vec::new();
    let attempt = |dev: DeviceId,
                   want: f64,
                   residual: &mut [f64],
                   per_device: &mut [f64],
                   fault: &mut FaultPlan,
                   uploads: &mut Vec<(f64, DeviceId, f64)>| {
        if dropped_devices[dev.index()] {
            return;
        }
        let outcome = fault.next_upload_outcome();
        if !outcome.delivered {
            return;
        }
        let usable = (actual_sojourn - outcome.wasted.value()).max(0.0);
        let can = (eff_b * usable).min(residual[dev.index()]);
        let got = want.min(can);
        if got > 0.0 {
            residual[dev.index()] -= got;
            per_device[dev.index()] += got;
            let finished = (outcome.wasted.value() + got / eff_b).min(actual_sojourn);
            uploads.push((finished, dev, got));
        }
    };
    match policy {
        CollectionPolicy::PlanStrict => {
            // Per-device totals scheduled at this stop.
            let mut scheduled: Vec<(DeviceId, f64)> = Vec::new();
            for &(dev, amount) in &stop.collected {
                match scheduled.iter_mut().find(|(d, _)| *d == dev) {
                    Some((_, a)) => *a += amount.value(),
                    None => scheduled.push((dev, amount.value())),
                }
            }
            for (dev, want) in scheduled {
                attempt(dev, want, residual, per_device, fault, &mut uploads);
            }
        }
        CollectionPolicy::Opportunistic => {
            for (i, dev) in scenario.devices.iter().enumerate() {
                if dev.pos.distance(stop.pos) <= r0 + 1e-9 {
                    let want = residual[i];
                    attempt(
                        DeviceId(i as u32),
                        want,
                        residual,
                        per_device,
                        fault,
                        &mut uploads,
                    );
                }
            }
        }
    }
    uploads
}

/// Flies one leg; returns false when the battery dies en route (position
/// is interpolated to the point of depletion).
#[allow(clippy::too_many_arguments)]
pub(crate) fn fly_leg(
    t: &mut f64,
    energy: &mut f64,
    pos: &mut Point2,
    to: Point2,
    speed: f64,
    per_m: f64,
    capacity: f64,
    trace: &mut SimTrace,
) -> bool {
    let dist = pos.distance(to);
    if dist <= 0.0 {
        // Already at the target (distance is non-negative).
        return true;
    }
    trace.push(SimEvent::Departed {
        t: Seconds(*t),
        from: *pos,
        to,
    });
    let cost = dist * per_m;
    let budget = capacity - *energy;
    if cost > budget + 1e-9 {
        // Battery dies after travelling `budget / per_m` metres.
        let reach = if per_m > 0.0 {
            (budget / per_m).max(0.0)
        } else {
            dist
        };
        let frac = (reach / dist).clamp(0.0, 1.0);
        let died_at = pos.lerp(to, frac);
        *t += reach / speed;
        *energy += reach * per_m;
        *pos = died_at;
        trace.push(SimEvent::BatteryDepleted {
            t: Seconds(*t),
            pos: died_at,
        });
        return false;
    }
    *t += dist / speed;
    *energy += cost;
    *pos = to;
    trace.push(SimEvent::Arrived {
        t: Seconds(*t),
        pos: to,
    });
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use uavdc_geom::Aabb;
    use uavdc_net::units::{MegaBytesPerSecond, Meters};
    use uavdc_net::{IotDevice, RadioModel, UavSpec};

    fn scenario(capacity: f64) -> Scenario {
        Scenario {
            region: Aabb::square(200.0),
            devices: vec![
                IotDevice {
                    pos: Point2::new(30.0, 40.0),
                    data: MegaBytes(300.0),
                },
                IotDevice {
                    pos: Point2::new(33.0, 40.0),
                    data: MegaBytes(600.0),
                },
            ],
            depot: Point2::new(0.0, 0.0),
            radio: RadioModel::new(Meters(20.0), MegaBytesPerSecond(150.0)),
            uav: UavSpec {
                capacity: Joules(capacity),
                ..UavSpec::paper_default()
            },
        }
    }

    fn one_stop_plan() -> CollectionPlan {
        CollectionPlan {
            stops: vec![HoverStop {
                pos: Point2::new(30.0, 40.0),
                sojourn: Seconds(4.0), // 600 MB / 150 MB/s
                collected: vec![
                    (DeviceId(0), MegaBytes(300.0)),
                    (DeviceId(1), MegaBytes(600.0)),
                ],
            }],
        }
    }

    /// Simulate and assert the trace grammar — every sim test goes
    /// through this so `SimTrace::check_well_formed` guards them all.
    fn checked(s: &Scenario, plan: &CollectionPlan, cfg: &SimConfig) -> SimOutcome {
        let out = simulate(s, plan, cfg);
        out.trace.check_well_formed().expect("well-formed trace");
        out
    }

    #[test]
    fn nominal_mission_matches_plan_accounting() {
        let s = scenario(10_000.0);
        let plan = one_stop_plan();
        plan.validate(&s).unwrap();
        let out = checked(&s, &plan, &SimConfig::default());
        assert!(out.completed);
        assert!(out.agrees_with_plan(&plan, &s));
        // Out-and-back 50 m legs at 10 J/m, plus 4 s at 150 J/s.
        assert!((out.energy_used.value() - (1000.0 + 600.0)).abs() < 1e-6);
        assert!((out.mission_time.value() - (10.0 + 4.0)).abs() < 1e-9);
        assert_eq!(out.collected, MegaBytes(900.0));
    }

    #[test]
    fn trace_tells_the_story() {
        let s = scenario(10_000.0);
        let out = checked(&s, &one_stop_plan(), &SimConfig::default());
        let kinds: Vec<&str> = out
            .trace
            .events
            .iter()
            .map(|e| match e {
                SimEvent::Departed { .. } => "dep",
                SimEvent::Arrived { .. } => "arr",
                SimEvent::Uploaded { .. } => "up",
                SimEvent::HoverEnded { .. } => "hov",
                SimEvent::BatteryDepleted { .. } => "dead",
                SimEvent::ReturnedToDepot { .. } => "home",
            })
            .collect();
        assert_eq!(
            kinds,
            vec!["dep", "arr", "up", "up", "hov", "dep", "arr", "home"]
        );
    }

    #[test]
    fn battery_dies_mid_leg() {
        // 50 m to the stop costs 500 J; give it 300 J.
        let s = scenario(300.0);
        let out = checked(&s, &one_stop_plan(), &SimConfig::default());
        assert!(!out.completed);
        assert_eq!(
            out.collected,
            MegaBytes::ZERO,
            "data must not count if the UAV is lost"
        );
        assert!((out.energy_used.value() - 300.0).abs() < 1e-9);
        // Died 30 m along the 50 m leg.
        let dead = out.trace.events.iter().find_map(|e| match e {
            SimEvent::BatteryDepleted { pos, .. } => Some(*pos),
            _ => None,
        });
        let p = dead.expect("depletion event");
        assert!((p.distance(Point2::ORIGIN) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn battery_dies_mid_hover() {
        // Reach the stop (500 J) then hover: 4 s would need 600 J; give
        // 500 + 150 = 650 J total → 1 s of hover.
        let s = scenario(650.0);
        let out = checked(&s, &one_stop_plan(), &SimConfig::default());
        assert!(!out.completed);
        assert!((out.energy_used.value() - 650.0).abs() < 1e-9);
        assert!((out.mission_time.value() - (5.0 + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn strict_policy_never_exceeds_plan() {
        let s = scenario(10_000.0);
        let mut plan = one_stop_plan();
        plan.stops[0].collected = vec![(DeviceId(0), MegaBytes(100.0))]; // partial
        plan.stops[0].sojourn = Seconds(1.0);
        let out = checked(&s, &plan, &SimConfig::default());
        assert!(out.completed);
        assert_eq!(out.collected, MegaBytes(100.0));
    }

    #[test]
    fn opportunistic_collects_at_least_strict() {
        let s = scenario(10_000.0);
        let mut plan = one_stop_plan();
        // Plan only claims device 0, but device 1 is also in range.
        plan.stops[0].collected = vec![(DeviceId(0), MegaBytes(300.0))];
        plan.stops[0].sojourn = Seconds(2.0);
        let strict = checked(&s, &plan, &SimConfig::default());
        let opp = checked(
            &s,
            &plan,
            &SimConfig {
                policy: CollectionPolicy::Opportunistic,
                ..SimConfig::default()
            },
        );
        assert!(opp.collected.value() >= strict.collected.value());
        // Device 1 uploads 2 s * 150 MB/s = 300 MB opportunistically.
        assert_eq!(opp.collected, MegaBytes(600.0));
    }

    #[test]
    fn headwind_costs_more_energy() {
        let s = scenario(10_000.0);
        let plan = one_stop_plan();
        let calm = checked(&s, &plan, &SimConfig::default());
        let windy = checked(
            &s,
            &plan,
            &SimConfig {
                wind: WindModel::uniform(1.3, 1.3, 1),
                ..SimConfig::default()
            },
        );
        assert!(windy.energy_used.value() > calm.energy_used.value());
        // Exactly 30% more on travel: 1300 vs 1000 J, hover unchanged.
        assert!((windy.energy_used.value() - (1300.0 + 600.0)).abs() < 1e-6);
    }

    #[test]
    fn windy_mission_can_fail_where_calm_succeeds() {
        let s = scenario(1650.0); // calm needs 1600 J
        let plan = one_stop_plan();
        assert!(checked(&s, &plan, &SimConfig::default()).completed);
        let windy = checked(
            &s,
            &plan,
            &SimConfig {
                wind: WindModel::uniform(1.5, 1.5, 2),
                ..SimConfig::default()
            },
        );
        assert!(!windy.completed);
    }

    #[test]
    fn degraded_link_collects_less_but_flies_the_same() {
        let s = scenario(10_000.0);
        let plan = one_stop_plan();
        let nominal = checked(&s, &plan, &SimConfig::default());
        let degraded = checked(
            &s,
            &plan,
            &SimConfig {
                link: crate::wind::LinkModel::uniform(0.5, 0.5, 9),
                ..SimConfig::default()
            },
        );
        assert!(degraded.completed, "link noise must not affect flight");
        assert_eq!(degraded.energy_used.value(), nominal.energy_used.value());
        // Half bandwidth for the 4 s sojourn: each device uploads at
        // 75 MB/s, so 300 MB device 0 and 600 MB device 1 both truncate.
        assert!(degraded.collected.value() < nominal.collected.value());
        assert!((degraded.collected.value() - (300.0 + 300.0)).abs() < 1e-6);
    }

    #[test]
    fn empty_plan_is_a_noop_mission() {
        let s = scenario(100.0);
        let out = checked(&s, &CollectionPlan::empty(), &SimConfig::default());
        assert!(out.completed);
        assert_eq!(out.energy_used, Joules::ZERO);
        assert_eq!(out.mission_time, Seconds::ZERO);
        assert_eq!(out.trace.events.len(), 1); // ReturnedToDepot
    }

    #[test]
    fn per_device_totals_match_aggregate() {
        let s = scenario(10_000.0);
        let out = checked(&s, &one_stop_plan(), &SimConfig::default());
        let sum: f64 = out.per_device.iter().map(|v| v.value()).sum();
        assert!((sum - out.collected.value()).abs() < 1e-9);
    }

    #[test]
    fn inert_fault_plan_is_bit_identical() {
        let s = scenario(10_000.0);
        let plan = one_stop_plan();
        let base = checked(&s, &plan, &SimConfig::default());
        let with_inert = checked(
            &s,
            &plan,
            &SimConfig {
                fault: FaultPlan::new(uavdc_net::FaultConfig::none(), 123),
                ..SimConfig::default()
            },
        );
        assert_eq!(
            base.energy_used.value().to_bits(),
            with_inert.energy_used.value().to_bits()
        );
        assert_eq!(
            base.mission_time.value().to_bits(),
            with_inert.mission_time.value().to_bits()
        );
        assert_eq!(
            base.collected.value().to_bits(),
            with_inert.collected.value().to_bits()
        );
        assert_eq!(base.trace.fingerprint(), with_inert.trace.fingerprint());
    }

    #[test]
    fn dropout_suppresses_a_device() {
        let s = scenario(10_000.0);
        let plan = one_stop_plan();
        // dropout = 1: every device is gone; the tour still flies.
        let out = checked(
            &s,
            &plan,
            &SimConfig {
                fault: FaultPlan::new(
                    uavdc_net::FaultConfig {
                        dropout: 1.0,
                        ..uavdc_net::FaultConfig::none()
                    },
                    7,
                ),
                ..SimConfig::default()
            },
        );
        assert!(out.completed);
        assert_eq!(out.collected, MegaBytes::ZERO);
        assert_eq!(out.trace.uploads().count(), 0);
    }

    #[test]
    fn upload_failures_waste_hover_time() {
        let s = scenario(10_000.0);
        let plan = one_stop_plan();
        // Certain failure with zero retries: nothing is delivered, but
        // the mission itself (travel + hover energy) is unchanged.
        let out = checked(
            &s,
            &plan,
            &SimConfig {
                fault: FaultPlan::new(
                    uavdc_net::FaultConfig {
                        upload_fail: 1.0,
                        max_retries: 0,
                        retry_backoff: Seconds(0.5),
                        ..uavdc_net::FaultConfig::none()
                    },
                    7,
                ),
                ..SimConfig::default()
            },
        );
        assert!(out.completed);
        assert_eq!(out.collected, MegaBytes::ZERO);
        let nominal = checked(&s, &plan, &SimConfig::default());
        assert_eq!(out.energy_used.value(), nominal.energy_used.value());
    }

    #[test]
    fn gusts_compose_with_wind() {
        let s = scenario(10_000.0);
        let plan = one_stop_plan();
        // Deterministic gust (onset 1, severity exactly 1.2) on top of a
        // constant 1.3 wind: travel costs 1.3 * 1.2 = 1.56x nominal.
        let out = checked(
            &s,
            &plan,
            &SimConfig {
                wind: WindModel::uniform(1.3, 1.3, 1),
                fault: FaultPlan::new(
                    uavdc_net::FaultConfig {
                        gust_onset: 1.0,
                        gust_legs: (1, 1),
                        gust_severity: (1.2, 1.2),
                        ..uavdc_net::FaultConfig::none()
                    },
                    7,
                ),
                ..SimConfig::default()
            },
        );
        assert!(out.completed);
        // 100 m round trip at 10 J/m * 1.56, plus the 600 J hover.
        assert!((out.energy_used.value() - (1560.0 + 600.0)).abs() < 1e-6);
    }

    #[test]
    fn fault_replay_is_deterministic() {
        let s = scenario(2_500.0);
        let plan = one_stop_plan();
        let cfg = SimConfig {
            wind: WindModel::uniform(1.0, 1.4, 5),
            link: LinkModel::uniform(0.6, 1.0, 6),
            fault: FaultPlan::new(
                uavdc_net::FaultConfig {
                    gust_onset: 0.5,
                    gust_legs: (1, 3),
                    gust_severity: (1.1, 1.6),
                    upload_fail: 0.4,
                    max_retries: 2,
                    retry_backoff: Seconds(0.3),
                    dropout: 0.2,
                },
                99,
            ),
            ..SimConfig::default()
        };
        let a = checked(&s, &plan, &cfg);
        let b = checked(&s, &plan, &cfg);
        assert_eq!(a.trace.fingerprint(), b.trace.fingerprint());
        assert_eq!(
            a.energy_used.value().to_bits(),
            b.energy_used.value().to_bits()
        );
        assert_eq!(a.collected.value().to_bits(), b.collected.value().to_bits());
    }
}
