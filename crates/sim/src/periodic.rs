//! Periodic data collection over many rounds.
//!
//! The paper's premise is that aggregate nodes are drained
//! *periodically*; its optimization covers a single round. This module
//! closes the loop: devices generate data at per-device rates, the UAV
//! flies one planned tour per period, whatever is not collected stays as
//! backlog for the next round, and bounded device buffers drop data on
//! overflow. Exposes the steady-state questions a deployment cares
//! about — does the backlog stabilise, how much data is lost, how stale
//! is it on arrival?

use crate::sim::{simulate, SimConfig, SimOutcome};
use uavdc_core::{CollectionPlan, Planner};
use uavdc_net::units::{MegaBytes, MegaBytesPerSecond, Seconds};
use uavdc_net::Scenario;

/// Configuration of a periodic campaign.
#[derive(Clone, Debug)]
pub struct PeriodicConfig {
    /// Number of collection rounds to simulate.
    pub rounds: usize,
    /// Nominal time between tour starts. When a mission overruns the
    /// period, the next round starts when the UAV lands (and the extra
    /// generation time is accounted for).
    pub period: Seconds,
    /// Per-device data generation rates (one per scenario device).
    pub generation_rates: Vec<MegaBytesPerSecond>,
    /// Per-device buffer capacity; data beyond it is dropped (counted).
    /// `None` = unbounded buffers.
    pub buffer_capacity: Option<MegaBytes>,
    /// Simulator settings used for each mission.
    pub sim: SimConfig,
}

/// Statistics of one round.
#[derive(Clone, Debug)]
pub struct RoundStats {
    /// Round index, from 0.
    pub round: usize,
    /// Backlog when the UAV took off.
    pub stored_before: MegaBytes,
    /// Volume collected this round.
    pub collected: MegaBytes,
    /// Backlog immediately after the mission (before new generation).
    pub backlog_after: MegaBytes,
    /// Data dropped to buffer overflow while this round's generation
    /// accumulated.
    pub dropped: MegaBytes,
    /// Mission duration.
    pub mission_time: Seconds,
}

/// Result of a periodic campaign.
#[derive(Clone, Debug)]
pub struct PeriodicOutcome {
    /// Per-round statistics, in order.
    pub rounds: Vec<RoundStats>,
    /// Total generated over the campaign (including the initial stored
    /// volumes).
    pub total_generated: MegaBytes,
    /// Total collected over all rounds.
    pub total_collected: MegaBytes,
    /// Total dropped to buffer overflow.
    pub total_dropped: MegaBytes,
    /// Backlog remaining on the devices at the end.
    pub final_backlog: MegaBytes,
}

impl PeriodicOutcome {
    /// Conservation check: everything generated is either collected,
    /// dropped, or still stored. Exact up to float tolerance.
    pub fn conserves_data(&self) -> bool {
        let lhs = self.total_generated.value();
        let rhs =
            self.total_collected.value() + self.total_dropped.value() + self.final_backlog.value();
        (lhs - rhs).abs() < 1e-6 * (1.0 + lhs)
    }

    /// True when the backlog in the last quarter of the campaign never
    /// exceeded `bound` — a practical steady-state criterion.
    pub fn backlog_bounded_by(&self, bound: MegaBytes) -> bool {
        let start = self.rounds.len() - self.rounds.len() / 4 - 1;
        self.rounds[start..]
            .iter()
            .all(|r| r.backlog_after.value() <= bound.value() + 1e-9)
    }
}

/// Runs a periodic campaign: plan → fly → drain → accumulate, `rounds`
/// times. The planner sees the *current* backlog each round.
///
/// # Panics
/// Panics when `generation_rates` does not match the device count, or
/// `rounds == 0`, or the period is non-positive.
pub fn run_periodic<P: Planner>(
    scenario: &Scenario,
    planner: &P,
    cfg: &PeriodicConfig,
) -> PeriodicOutcome {
    assert!(cfg.rounds > 0, "need at least one round");
    assert!(cfg.period.value() > 0.0, "period must be positive");
    assert_eq!(
        cfg.generation_rates.len(),
        scenario.num_devices(),
        "one generation rate per device"
    );
    let mut backlog: Vec<f64> = scenario.devices.iter().map(|d| d.data.value()).collect();
    let mut total_generated: f64 = backlog.iter().sum();
    let mut total_collected = 0.0;
    let mut total_dropped = 0.0;
    let mut rounds = Vec::with_capacity(cfg.rounds);

    for round in 0..cfg.rounds {
        // Planner sees the current backlog.
        let mut current = scenario.clone();
        for (dev, &stored) in current.devices.iter_mut().zip(&backlog) {
            dev.data = MegaBytes(stored);
        }
        let plan: CollectionPlan = planner.plan(&current);
        debug_assert!(plan.validate(&current).is_ok());
        let outcome: SimOutcome = simulate(&current, &plan, &cfg.sim);

        // Drain what the mission brought home.
        let mut collected_round = 0.0;
        for (stored, got) in backlog.iter_mut().zip(&outcome.per_device) {
            let g = got.value().min(*stored);
            *stored -= g;
            collected_round += g;
        }
        total_collected += collected_round;
        let backlog_after: f64 = backlog.iter().sum();

        // Generation until the next takeoff.
        let gen_time = cfg.period.value().max(outcome.mission_time.value());
        let mut dropped_round = 0.0;
        for (stored, rate) in backlog.iter_mut().zip(&cfg.generation_rates) {
            let fresh = rate.value() * gen_time;
            total_generated += fresh;
            *stored += fresh;
            if let Some(cap) = cfg.buffer_capacity {
                if *stored > cap.value() {
                    dropped_round += *stored - cap.value();
                    *stored = cap.value();
                }
            }
        }
        total_dropped += dropped_round;

        rounds.push(RoundStats {
            round,
            stored_before: current.total_data(),
            collected: MegaBytes(collected_round),
            backlog_after: MegaBytes(backlog_after),
            dropped: MegaBytes(dropped_round),
            mission_time: outcome.mission_time,
        });
    }
    PeriodicOutcome {
        rounds,
        total_generated: MegaBytes(total_generated),
        total_collected: MegaBytes(total_collected),
        total_dropped: MegaBytes(total_dropped),
        final_backlog: MegaBytes(backlog.iter().sum()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uavdc_core::Alg2Planner;
    use uavdc_geom::{Aabb, Point2};
    use uavdc_net::units::{Joules, Meters};
    use uavdc_net::{IotDevice, RadioModel, UavSpec};

    fn scenario(capacity: f64) -> Scenario {
        Scenario {
            region: Aabb::square(200.0),
            devices: (0..6)
                .map(|i| IotDevice {
                    pos: Point2::new(30.0 + 25.0 * i as f64, 100.0),
                    data: MegaBytes(200.0),
                })
                .collect(),
            depot: Point2::new(100.0, 100.0),
            radio: RadioModel::new(Meters(20.0), MegaBytesPerSecond(150.0)),
            uav: UavSpec {
                capacity: Joules(capacity),
                ..UavSpec::paper_default()
            },
        }
    }

    fn cfg(rounds: usize, rate: f64, cap: Option<f64>) -> PeriodicConfig {
        PeriodicConfig {
            rounds,
            period: Seconds(600.0),
            generation_rates: vec![MegaBytesPerSecond(rate); 6],
            buffer_capacity: cap.map(MegaBytes),
            sim: SimConfig::default(),
        }
    }

    #[test]
    fn conservation_holds_with_and_without_caps() {
        let s = scenario(20_000.0);
        let planner = Alg2Planner::default();
        for cap in [None, Some(400.0)] {
            let out = run_periodic(&s, &planner, &cfg(6, 0.5, cap));
            assert!(out.conserves_data(), "conservation failed for cap {cap:?}");
        }
    }

    #[test]
    fn ample_capacity_reaches_low_steady_state() {
        // UAV can easily drain everything each round: the backlog right
        // after each mission should be ~0 and nothing is dropped.
        let s = scenario(50_000.0);
        let out = run_periodic(&s, &Alg2Planner::default(), &cfg(8, 0.2, None));
        assert_eq!(out.total_dropped, MegaBytes::ZERO);
        let last = out.rounds.last().unwrap();
        assert!(
            last.backlog_after.value() < 1.0,
            "backlog should be drained, got {}",
            last.backlog_after
        );
        assert!(out.backlog_bounded_by(MegaBytes(1.0)));
    }

    #[test]
    fn starved_uav_accumulates_backlog_then_buffers_overflow() {
        // Tiny battery: the UAV cannot keep up with generation.
        let s = scenario(2_000.0);
        let unbounded = run_periodic(&s, &Alg2Planner::default(), &cfg(8, 1.0, None));
        let first = unbounded.rounds.first().unwrap().backlog_after.value();
        let last = unbounded.rounds.last().unwrap().backlog_after.value();
        assert!(
            last > first,
            "backlog should grow when starved: {first} -> {last}"
        );
        assert_eq!(unbounded.total_dropped, MegaBytes::ZERO);

        let bounded = run_periodic(&s, &Alg2Planner::default(), &cfg(8, 1.0, Some(800.0)));
        assert!(
            bounded.total_dropped.value() > 0.0,
            "bounded buffers must drop"
        );
        assert!(bounded.conserves_data());
        // Backlog cannot exceed the total buffer capacity.
        assert!(bounded.final_backlog.value() <= 6.0 * 800.0 + 1e-6);
    }

    #[test]
    fn zero_rates_reduce_to_repeated_oneshot() {
        let s = scenario(50_000.0);
        let out = run_periodic(&s, &Alg2Planner::default(), &cfg(3, 0.0, None));
        // Everything collected in round 0; later rounds collect nothing.
        assert!(out.rounds[0].collected.value() > 0.0);
        assert!(out.rounds[1].collected.value() < 1e-9);
        assert!(out.rounds[2].collected.value() < 1e-9);
        assert!((out.total_generated.value() - 1200.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "one generation rate per device")]
    fn mismatched_rates_rejected() {
        let s = scenario(10_000.0);
        let mut c = cfg(2, 0.1, None);
        c.generation_rates.pop();
        let _ = run_periodic(&s, &Alg2Planner::default(), &c);
    }

    #[test]
    fn round_stats_are_internally_consistent() {
        let s = scenario(20_000.0);
        let out = run_periodic(&s, &Alg2Planner::default(), &cfg(5, 0.5, None));
        for r in &out.rounds {
            assert!(r.collected.value() <= r.stored_before.value() + 1e-6);
            assert!(
                (r.stored_before.value() - r.collected.value() - r.backlog_after.value()).abs()
                    < 1e-6,
                "round {}: stored {} - collected {} != backlog {}",
                r.round,
                r.stored_before,
                r.collected,
                r.backlog_after
            );
        }
    }
}
