//! Post-mission analysis: aggregate statistics and trace export.

use crate::event::SimEvent;
use crate::sim::SimOutcome;
use uavdc_net::units::{megabytes_as_gb, Joules, MegaBytes, Seconds};
use uavdc_net::Scenario;

/// Digest of one simulated mission, for tables and CSV logs.
#[derive(Clone, Debug, PartialEq)]
pub struct MissionReport {
    /// Did the UAV make it home?
    pub completed: bool,
    /// Volume delivered to the depot.
    pub collected: MegaBytes,
    /// Total energy used.
    pub energy_used: Joules,
    /// Hovering share of the energy.
    pub hover_energy: Joules,
    /// Travel share of the energy.
    pub travel_energy: Joules,
    /// Mission duration.
    pub mission_time: Seconds,
    /// Number of hovering stops actually reached.
    pub stops_reached: usize,
    /// Number of flight legs flown (including the return leg).
    pub legs_flown: usize,
    /// Volume-weighted mean *collection latency*: how long, on average, a
    /// delivered megabyte sat on its device after mission start before
    /// being uplinked. Lower = fresher data.
    pub mean_collection_latency: Seconds,
    /// Fraction of the battery left unused (0 for a depleted mission).
    // lint:allow(raw-quantity): dimensionless fraction of capacity (0..1), not joules
    pub energy_headroom: f64,
}

impl MissionReport {
    /// Builds a report from an outcome.
    pub fn new(outcome: &SimOutcome, scenario: &Scenario) -> Self {
        let mut stops = 0;
        let mut legs = 0;
        let mut weighted_latency = 0.0;
        let mut weight = 0.0;
        for e in &outcome.trace.events {
            match e {
                SimEvent::HoverEnded { .. } => stops += 1,
                SimEvent::Departed { .. } => legs += 1,
                SimEvent::Uploaded { t, amount, .. } => {
                    weighted_latency += t.value() * amount.value();
                    weight += amount.value();
                }
                _ => {}
            }
        }
        let capacity = scenario.uav.capacity.value();
        MissionReport {
            completed: outcome.completed,
            collected: outcome.collected,
            energy_used: outcome.energy_used,
            hover_energy: outcome.hover_energy_used,
            travel_energy: outcome.energy_used - outcome.hover_energy_used,
            mission_time: outcome.mission_time,
            stops_reached: stops,
            legs_flown: legs,
            mean_collection_latency: Seconds(if weight > 0.0 {
                weighted_latency / weight
            } else {
                0.0
            }),
            energy_headroom: if outcome.completed && capacity > 0.0 {
                (1.0 - outcome.energy_used.value() / capacity).max(0.0)
            } else {
                0.0
            },
        }
    }

    /// CSV header matching [`MissionReport::csv_row`].
    pub fn csv_header() -> &'static str {
        "completed,collected_gb,energy_j,hover_j,travel_j,time_s,stops,legs,latency_s,headroom"
    }

    /// One CSV row.
    pub fn csv_row(&self) -> String {
        format!(
            "{},{:.4},{:.1},{:.1},{:.1},{:.2},{},{},{:.2},{:.4}",
            self.completed,
            megabytes_as_gb(self.collected),
            self.energy_used.value(),
            self.hover_energy.value(),
            self.travel_energy.value(),
            self.mission_time.value(),
            self.stops_reached,
            self.legs_flown,
            self.mean_collection_latency.value(),
            self.energy_headroom,
        )
    }
}

impl std::fmt::Display for MissionReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "mission {}: {:.2} GB in {:.0} s over {} stops",
            if self.completed {
                "completed"
            } else {
                "ABORTED"
            },
            megabytes_as_gb(self.collected),
            self.mission_time.value(),
            self.stops_reached,
        )?;
        write!(
            f,
            "  energy {:.0} J ({:.0} hover / {:.0} travel), headroom {:.1}%, mean latency {:.0} s",
            self.energy_used.value(),
            self.hover_energy.value(),
            self.travel_energy.value(),
            100.0 * self.energy_headroom,
            self.mean_collection_latency.value(),
        )
    }
}

/// Writes the full event trace as CSV (`time_s,event,x,y,device,amount_mb`).
pub fn write_trace_csv(path: &std::path::Path, outcome: &SimOutcome) -> std::io::Result<()> {
    use std::io::Write;
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "time_s,event,x,y,device,amount_mb")?;
    for e in &outcome.trace.events {
        match e {
            SimEvent::Departed { t, from, .. } => {
                writeln!(f, "{:.3},departed,{:.2},{:.2},,", t.value(), from.x, from.y)?
            }
            SimEvent::Arrived { t, pos } => {
                writeln!(f, "{:.3},arrived,{:.2},{:.2},,", t.value(), pos.x, pos.y)?
            }
            SimEvent::Uploaded { t, device, amount } => writeln!(
                f,
                "{:.3},uploaded,,,{},{:.3}",
                t.value(),
                device.0,
                amount.value()
            )?,
            SimEvent::HoverEnded { t, pos, .. } => writeln!(
                f,
                "{:.3},hover_ended,{:.2},{:.2},,",
                t.value(),
                pos.x,
                pos.y
            )?,
            SimEvent::BatteryDepleted { t, pos } => writeln!(
                f,
                "{:.3},battery_depleted,{:.2},{:.2},,",
                t.value(),
                pos.x,
                pos.y
            )?,
            SimEvent::ReturnedToDepot { t, .. } => writeln!(f, "{:.3},returned,,,,", t.value())?,
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{simulate, SimConfig};
    use uavdc_core::{CollectionPlan, HoverStop};
    use uavdc_geom::{Aabb, Point2};
    use uavdc_net::units::{MegaBytesPerSecond, Meters};
    use uavdc_net::{DeviceId, IotDevice, RadioModel, UavSpec};

    fn scenario() -> Scenario {
        Scenario {
            region: Aabb::square(200.0),
            devices: vec![
                IotDevice {
                    pos: Point2::new(30.0, 40.0),
                    data: MegaBytes(300.0),
                },
                IotDevice {
                    pos: Point2::new(100.0, 40.0),
                    data: MegaBytes(150.0),
                },
            ],
            depot: Point2::new(0.0, 0.0),
            radio: RadioModel::new(Meters(20.0), MegaBytesPerSecond(150.0)),
            uav: UavSpec {
                capacity: Joules(10_000.0),
                ..UavSpec::paper_default()
            },
        }
    }

    fn plan() -> CollectionPlan {
        CollectionPlan {
            stops: vec![
                HoverStop {
                    pos: Point2::new(30.0, 40.0),
                    sojourn: Seconds(2.0),
                    collected: vec![(DeviceId(0), MegaBytes(300.0))],
                },
                HoverStop {
                    pos: Point2::new(100.0, 40.0),
                    sojourn: Seconds(1.0),
                    collected: vec![(DeviceId(1), MegaBytes(150.0))],
                },
            ],
        }
    }

    #[test]
    fn report_splits_energy_correctly() {
        let s = scenario();
        let out = simulate(&s, &plan(), &SimConfig::default());
        let r = MissionReport::new(&out, &s);
        assert!(r.completed);
        // Hover: 3 s * 150 J/s.
        assert!((r.hover_energy.value() - 450.0).abs() < 1e-9);
        assert!(
            (r.hover_energy.value() + r.travel_energy.value() - r.energy_used.value()).abs() < 1e-9
        );
        assert_eq!(r.stops_reached, 2);
        assert_eq!(r.legs_flown, 3); // two stops + return
        assert!(r.energy_headroom > 0.0 && r.energy_headroom < 1.0);
    }

    #[test]
    fn latency_is_volume_weighted_and_ordered() {
        let s = scenario();
        let out = simulate(&s, &plan(), &SimConfig::default());
        let r = MissionReport::new(&out, &s);
        // First upload finishes at t=5+2, second around t>12: mean must
        // lie between the two upload completion times.
        let times: Vec<f64> = out.trace.uploads().map(|(t, _, _)| t.value()).collect();
        assert_eq!(times.len(), 2);
        assert!(r.mean_collection_latency.value() >= times[0] - 1e-9);
        assert!(r.mean_collection_latency.value() <= times[1] + 1e-9);
    }

    #[test]
    fn aborted_mission_has_no_headroom() {
        let mut s = scenario();
        s.uav.capacity = Joules(100.0);
        let out = simulate(&s, &plan(), &SimConfig::default());
        let r = MissionReport::new(&out, &s);
        assert!(!r.completed);
        assert_eq!(r.energy_headroom, 0.0);
        assert_eq!(r.collected, MegaBytes::ZERO);
    }

    #[test]
    fn csv_row_matches_header_field_count() {
        let s = scenario();
        let out = simulate(&s, &plan(), &SimConfig::default());
        let r = MissionReport::new(&out, &s);
        let header_fields = MissionReport::csv_header().split(',').count();
        let row_fields = r.csv_row().split(',').count();
        assert_eq!(header_fields, row_fields);
    }

    #[test]
    fn trace_csv_round_trips_event_count() {
        let s = scenario();
        let out = simulate(&s, &plan(), &SimConfig::default());
        let dir = std::env::temp_dir().join("uavdc_trace_test");
        let path = dir.join("trace.csv");
        write_trace_csv(&path, &out).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), out.trace.len() + 1);
        assert!(text.starts_with("time_s,event"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn display_mentions_the_essentials() {
        let s = scenario();
        let out = simulate(&s, &plan(), &SimConfig::default());
        let text = MissionReport::new(&out, &s).to_string();
        assert!(text.contains("completed"));
        assert!(text.contains("GB"));
        assert!(text.contains("hover"));
    }
}
