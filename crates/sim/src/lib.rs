//! Discrete-event simulation of UAV data-collection missions.
//!
//! The planners in `uavdc-core` reason about a mission analytically; this
//! crate *executes* a `CollectionPlan` leg by leg and stop by stop:
//!
//! * the UAV flies at constant speed, draining `η_t` joules per second;
//! * at each stop it hovers for the planned sojourn, draining `η_h`,
//!   while every device scheduled there uploads concurrently at bandwidth
//!   `B` (the paper's OFDMA model), truncated by the device's remaining
//!   data;
//! * the battery is tracked continuously — if it empties mid-leg or
//!   mid-hover the mission aborts on the spot and everything collected so
//!   far is what the UAV brings home.
//!
//! The simulator is the *independent* check on the planners: it shares no
//! accounting code with them, so a plan whose simulated outcome matches
//! its claimed volume and energy is validated end to end
//! ([`SimOutcome::agrees_with_plan`]).
//!
//! [`WindModel`] adds seeded per-leg headwind noise for robustness
//! studies: planners budget nominal energy, reality costs more, and the
//! completion-rate-vs-margin trade-off is measured by the bench harness.
//! [`FaultPlan`] layers deterministic fault injection on top (gust
//! bursts, upload retry/backoff, device dropout), and
//! [`MissionController`] closes the loop: it re-estimates remaining cost
//! in flight, repairs the plan online (trimming hovers, dropping
//! low-value stops) and guarantees a safe return to the depot whenever
//! one is physically possible.

//!
//! # Example
//!
//! ```
//! use uavdc_net::generator::{uniform, ScenarioParams};
//! use uavdc_core::{Alg2Planner, Planner};
//! use uavdc_sim::{simulate, MissionReport, SimConfig};
//!
//! let scenario = uniform(&ScenarioParams::default().scaled(0.05), 1);
//! let plan = Alg2Planner::default().plan(&scenario);
//! let outcome = simulate(&scenario, &plan, &SimConfig::default());
//! assert!(outcome.completed);
//! assert!(outcome.agrees_with_plan(&plan, &scenario));
//! let report = MissionReport::new(&outcome, &scenario);
//! assert!(report.energy_headroom >= 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod controller;
mod event;
mod fault;
mod periodic;
mod report;
mod sim;
mod wind;

pub use controller::{ControlOutcome, ControllerConfig, MissionController};
pub use event::{SimEvent, SimTrace};
pub use fault::{FaultPlan, UploadFault};
pub use periodic::{run_periodic, PeriodicConfig, PeriodicOutcome, RoundStats};
pub use report::{write_trace_csv, MissionReport};
pub use sim::{simulate, simulate_obs, CollectionPolicy, SimConfig, SimOutcome};
pub use wind::{LinkModel, WindModel};
