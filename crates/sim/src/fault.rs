//! Seeded, deterministic fault injection for mission execution.
//!
//! [`FaultPlan`] is the runtime half of `uavdc-net`'s pure-data
//! [`FaultConfig`]: it owns the RNG and draws gust bursts, upload
//! failures and device dropout on demand, in the fixed order the mission
//! consumes them. It composes *multiplicatively* with the existing
//! noise models — gust factors stack on top of `WindModel` leg factors,
//! upload failures eat into the hover window that `LinkModel`-degraded
//! bandwidth then fills — and it keeps its own RNG, so enabling faults
//! never perturbs the wind/link streams of an existing experiment.
//!
//! An inert plan ([`FaultPlan::none`], or any config where
//! [`FaultConfig::is_none`] holds) draws no randomness and returns exact
//! identities (`1.0` factors, zero waste), so the default `SimConfig`
//! behaviour is bit-identical to the pre-fault simulator.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use uavdc_net::units::Seconds;
use uavdc_net::FaultConfig;

/// Outcome of the fault draw for one `(stop, device)` upload.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UploadFault {
    /// Hover time wasted on failed attempts before the transfer could
    /// start (or before it was abandoned).
    pub wasted: Seconds,
    /// False when every attempt failed and the transfer was abandoned.
    pub delivered: bool,
}

impl UploadFault {
    /// The no-fault outcome: transfer starts immediately.
    pub const CLEAN: UploadFault = UploadFault {
        wasted: Seconds::ZERO,
        delivered: true,
    };
}

/// Deterministic fault injector for one mission.
///
/// Cloning a `FaultPlan` clones its RNG state, so a cloned plan replays
/// the identical fault sequence — this is how the property harness
/// proves bit-identical mission replay.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    cfg: FaultConfig,
    rng: SmallRng,
    active: bool,
    burst_legs_left: u32,
    burst_severity: f64,
}

impl FaultPlan {
    /// Builds an injector for `cfg`, drawing from `seed`.
    ///
    /// # Panics
    /// Panics when `cfg` fails [`FaultConfig::validate`].
    pub fn new(cfg: FaultConfig, seed: u64) -> Self {
        if let Err(e) = cfg.validate() {
            // lint:allow(panic-site): constructor contract violation, mirrors WindModel::uniform
            panic!("invalid FaultConfig: {e}");
        }
        let active = !cfg.is_none();
        FaultPlan {
            cfg,
            rng: SmallRng::seed_from_u64(seed),
            active,
            burst_legs_left: 0,
            burst_severity: 1.0,
        }
    }

    /// The inert injector: no faults, no RNG consumption, exact
    /// identity factors.
    pub fn none() -> Self {
        FaultPlan::new(FaultConfig::none(), 0)
    }

    /// True when this plan can perturb a mission at all.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// The configuration this plan draws from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// The largest travel multiplier any leg can suffer — what a safe
    /// controller must budget for ([`FaultConfig::worst_leg_severity`]).
    pub fn worst_leg_factor(&self) -> f64 {
        if self.active {
            self.cfg.worst_leg_severity()
        } else {
            1.0
        }
    }

    /// Draws the gust multiplier for the next leg (exactly `1.0` when
    /// calm or inert). Burst state machine: in calm state, one onset
    /// draw per leg; an onset additionally draws a duration and a
    /// severity that then apply to the following legs without further
    /// RNG consumption.
    pub fn next_leg_factor(&mut self) -> f64 {
        if !self.active || self.cfg.gust_onset <= 0.0 {
            return 1.0;
        }
        if self.burst_legs_left > 0 {
            self.burst_legs_left -= 1;
            return self.burst_severity;
        }
        if self.rng.gen_range(0.0..=1.0) < self.cfg.gust_onset {
            let (llo, lhi) = self.cfg.gust_legs;
            let legs = self.rng.gen_range(llo..=lhi);
            let (slo, shi) = self.cfg.gust_severity;
            self.burst_severity = self.rng.gen_range(slo..=shi);
            // This leg is the first of the burst.
            self.burst_legs_left = legs.saturating_sub(1);
            return self.burst_severity;
        }
        1.0
    }

    /// Decides, once at launch, which of `n` devices dropped out for
    /// the whole mission. Inert plans return all-false without touching
    /// the RNG.
    pub fn draw_dropouts(&mut self, n: usize) -> Vec<bool> {
        if !self.active || self.cfg.dropout <= 0.0 {
            return vec![false; n];
        }
        (0..n)
            .map(|_| self.rng.gen_range(0.0..=1.0) < self.cfg.dropout)
            .collect()
    }

    /// Draws the retry/backoff outcome for the next `(stop, device)`
    /// upload. Each attempt fails independently with the configured
    /// probability; each failure wastes one backoff interval; after
    /// `max_retries` retries the transfer is abandoned.
    pub fn next_upload_outcome(&mut self) -> UploadFault {
        if !self.active || self.cfg.upload_fail <= 0.0 {
            return UploadFault::CLEAN;
        }
        let mut wasted = 0.0f64;
        for _ in 0..=self.cfg.max_retries {
            if self.rng.gen_range(0.0..=1.0) >= self.cfg.upload_fail {
                return UploadFault {
                    wasted: Seconds(wasted),
                    delivered: true,
                };
            }
            wasted += self.cfg.retry_backoff.value();
        }
        UploadFault {
            wasted: Seconds(wasted),
            delivered: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gusty() -> FaultConfig {
        FaultConfig {
            gust_onset: 0.5,
            gust_legs: (2, 4),
            gust_severity: (1.2, 1.5),
            ..FaultConfig::none()
        }
    }

    #[test]
    fn inert_plan_is_exactly_identity() {
        let mut f = FaultPlan::none();
        assert!(!f.is_active());
        assert_eq!(f.worst_leg_factor(), 1.0);
        for _ in 0..5 {
            assert_eq!(f.next_leg_factor(), 1.0);
            assert_eq!(f.next_upload_outcome(), UploadFault::CLEAN);
        }
        assert_eq!(f.draw_dropouts(4), vec![false; 4]);
    }

    #[test]
    fn same_seed_replays_identically() {
        let cfg = FaultConfig {
            upload_fail: 0.3,
            max_retries: 2,
            retry_backoff: Seconds(0.5),
            dropout: 0.2,
            ..gusty()
        };
        let mut a = FaultPlan::new(cfg.clone(), 9);
        let mut b = FaultPlan::new(cfg, 9);
        assert_eq!(a.draw_dropouts(10), b.draw_dropouts(10));
        for _ in 0..40 {
            assert_eq!(a.next_leg_factor(), b.next_leg_factor());
            assert_eq!(a.next_upload_outcome(), b.next_upload_outcome());
        }
    }

    #[test]
    fn clone_resumes_the_same_stream() {
        let mut a = FaultPlan::new(gusty(), 3);
        let _ = a.next_leg_factor();
        let mut b = a.clone();
        for _ in 0..20 {
            assert_eq!(a.next_leg_factor(), b.next_leg_factor());
        }
    }

    #[test]
    fn gusts_stay_in_range_and_persist_for_the_burst() {
        let mut f = FaultPlan::new(gusty(), 17);
        assert_eq!(f.worst_leg_factor(), 1.5);
        let mut saw_burst = false;
        let mut i = 0;
        while i < 200 {
            let factor = f.next_leg_factor();
            if factor > 1.0 {
                saw_burst = true;
                assert!((1.2..=1.5).contains(&factor));
                // The drawn severity repeats for every remaining burst leg.
                let remaining = f.burst_legs_left;
                assert!(remaining <= 3, "bursts last at most 4 legs");
                for _ in 0..remaining {
                    assert_eq!(f.next_leg_factor(), factor);
                    i += 1;
                }
            } else {
                assert_eq!(factor, 1.0);
            }
            i += 1;
        }
        assert!(saw_burst, "onset 0.5 over 200 legs must fire");
    }

    #[test]
    fn retries_waste_bounded_backoff() {
        let cfg = FaultConfig {
            upload_fail: 0.9,
            max_retries: 3,
            retry_backoff: Seconds(0.25),
            ..FaultConfig::none()
        };
        let mut f = FaultPlan::new(cfg, 1);
        let mut saw_abandon = false;
        for _ in 0..100 {
            let u = f.next_upload_outcome();
            // At most (max_retries + 1) failures worth of backoff.
            assert!(u.wasted.value() <= 4.0 * 0.25 + 1e-12);
            if !u.delivered {
                saw_abandon = true;
                assert!((u.wasted.value() - 1.0).abs() < 1e-12);
            }
        }
        assert!(saw_abandon, "fail prob 0.9^4 over 100 stops must abandon");
    }

    #[test]
    fn dropout_marks_a_plausible_fraction() {
        let cfg = FaultConfig {
            dropout: 0.3,
            ..FaultConfig::none()
        };
        let mask = FaultPlan::new(cfg, 5).draw_dropouts(1000);
        let count = mask.iter().filter(|&&d| d).count();
        assert!((200..=400).contains(&count), "got {count} dropouts of 1000");
    }

    #[test]
    #[should_panic(expected = "invalid FaultConfig")]
    fn invalid_config_rejected() {
        let _ = FaultPlan::new(
            FaultConfig {
                gust_onset: 2.0,
                ..FaultConfig::none()
            },
            0,
        );
    }
}
