//! Property harness for the closed-loop [`MissionController`]: the
//! safe-return guarantee, proven over thousands of seeded
//! (scenario × plan × fault-plan) triples.
//!
//! For every triple the controller must
//!
//! 1. end the mission at the depot (`ReturnedToDepot` terminal event,
//!    `completed == true`),
//! 2. never emit `BatteryDepleted`,
//! 3. land with `energy_used ≤ E` (up to the simulator's per-leg 1e-9 J
//!    commitment slack),
//! 4. deliver at least the pessimal direct-return baseline (the mission
//!    that gives up immediately and flies straight home), and
//! 5. replay bit-identically from the same seeds — same trace
//!    fingerprint, same energy bits, same decision counters.
//!
//! Under calm conditions with no controller intervention the closed
//! loop must additionally match the open-loop simulator bit-for-bit.
//!
//! The CI `sim-robustness` job runs this suite with the `validate`
//! feature, which raises the case count to 512 (× 4 fault levels ⇒
//! 2048 triples); the default profile keeps `cargo test -q` quick while
//! still covering 512 triples. On failure the offending triple is
//! appended to `<target>/tmp/controller-failing-seeds.txt`, which CI
//! uploads as an artifact.

use std::io::Write as _;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use proptest::prelude::*;
use uavdc_core::{
    Alg2Config, Alg2Planner, Alg3Config, Alg3Planner, BenchmarkPlanner, CollectionPlan, EngineMode,
    Planner,
};
use uavdc_net::generator::{uniform, ScenarioParams};
use uavdc_net::units::Seconds;
use uavdc_net::{FaultConfig, Scenario};
use uavdc_sim::{
    simulate, ControllerConfig, FaultPlan, LinkModel, MissionController, SimConfig, SimEvent,
    WindModel,
};

const CASES: u32 = if cfg!(feature = "validate") { 512 } else { 128 };

const FAILING_SEEDS: &str = concat!(env!("CARGO_TARGET_TMPDIR"), "/controller-failing-seeds.txt");

/// Fault-intensity ladder: level 0 is exactly undisturbed, each step up
/// widens the wind band, degrades the link and intensifies the faults.
fn disturbances(level: u64, seed: u64) -> SimConfig {
    let wind_seed = seed ^ 0x5eed_0001;
    let link_seed = seed ^ 0x5eed_0002;
    let fault_seed = seed ^ 0x5eed_0003;
    match level {
        0 => SimConfig::default(),
        1 => SimConfig {
            wind: WindModel::uniform(1.0, 1.2, wind_seed),
            link: LinkModel::uniform(0.8, 1.0, link_seed),
            fault: FaultPlan::new(
                FaultConfig {
                    upload_fail: 0.1,
                    max_retries: 2,
                    retry_backoff: Seconds(0.2),
                    dropout: 0.05,
                    ..FaultConfig::none()
                },
                fault_seed,
            ),
            ..SimConfig::default()
        },
        2 => SimConfig {
            wind: WindModel::uniform(1.0, 1.35, wind_seed),
            link: LinkModel::uniform(0.6, 1.0, link_seed),
            fault: FaultPlan::new(
                FaultConfig {
                    gust_onset: 0.3,
                    gust_legs: (1, 3),
                    gust_severity: (1.1, 1.5),
                    upload_fail: 0.2,
                    max_retries: 1,
                    retry_backoff: Seconds(0.3),
                    dropout: 0.1,
                },
                fault_seed,
            ),
            ..SimConfig::default()
        },
        _ => SimConfig {
            wind: WindModel::uniform(1.0, 1.5, wind_seed),
            link: LinkModel::uniform(0.4, 0.9, link_seed),
            fault: FaultPlan::new(
                FaultConfig {
                    gust_onset: 0.6,
                    gust_legs: (2, 5),
                    gust_severity: (1.3, 2.0),
                    upload_fail: 0.4,
                    max_retries: 3,
                    retry_backoff: Seconds(0.5),
                    dropout: 0.3,
                },
                fault_seed,
            ),
            ..SimConfig::default()
        },
    }
}

fn plan_for(scenario: &Scenario, planner_idx: u64, seed: u64) -> (CollectionPlan, &'static str) {
    let engine = if seed.is_multiple_of(2) {
        EngineMode::Lazy
    } else {
        EngineMode::Exhaustive
    };
    match planner_idx % 3 {
        0 => (
            Alg2Planner::new(Alg2Config {
                engine,
                ..Alg2Config::default()
            })
            .plan_with_stats(scenario)
            .0,
            "alg2",
        ),
        1 => (
            Alg3Planner::new(Alg3Config {
                engine,
                ..Alg3Config::default()
            })
            .plan_with_stats(scenario)
            .0,
            "alg3",
        ),
        _ => (
            BenchmarkPlanner.plan_with_stats(scenario, engine).0,
            "bench",
        ),
    }
}

/// The full safe-return check for one (scenario × plan × fault) triple.
fn check_triple(scenario: &Scenario, plan: &CollectionPlan, cfg: &SimConfig, level: u64) {
    let capacity = scenario.uav.capacity.value();
    let controller = MissionController::new(ControllerConfig::default());

    let res = controller.fly(scenario, plan, cfg);

    // (1) The mission ends at the depot.
    assert!(
        res.outcome.completed,
        "mission did not complete (level {level})"
    );
    assert!(
        matches!(
            res.outcome.trace.events.last(),
            Some(SimEvent::ReturnedToDepot { .. })
        ),
        "mission must end with ReturnedToDepot"
    );
    res.outcome
        .trace
        .check_well_formed()
        .expect("controller trace must be well-formed");

    // (2) BatteryDepleted is unreachable.
    assert!(
        !res.outcome
            .trace
            .events
            .iter()
            .any(|e| matches!(e, SimEvent::BatteryDepleted { .. })),
        "controller emitted BatteryDepleted"
    );

    // (3) The battery is respected (per-leg commitment slack is 1e-9 J).
    assert!(
        res.outcome.energy_used.value() <= capacity * (1.0 + 1e-9) + 1e-6,
        "energy {} J exceeds capacity {} J",
        res.outcome.energy_used.value(),
        capacity
    );
    assert!(res.outcome.energy_used.value() >= 0.0);

    // (4) At least the pessimal direct-return baseline (give up at
    // launch, fly straight home, deliver nothing).
    let baseline = controller.fly(scenario, &CollectionPlan::empty(), cfg);
    assert!(baseline.outcome.completed);
    assert!(
        res.outcome.collected.value() >= baseline.outcome.collected.value(),
        "delivered less than the direct-return baseline"
    );

    // (5) Bit-identical replay from the same seeds.
    let replay = controller.fly(scenario, plan, cfg);
    assert_eq!(
        res.outcome.trace.fingerprint(),
        replay.outcome.trace.fingerprint(),
        "trace replay diverged"
    );
    assert_eq!(
        res.outcome.energy_used.value().to_bits(),
        replay.outcome.energy_used.value().to_bits()
    );
    assert_eq!(
        res.outcome.collected.value().to_bits(),
        replay.outcome.collected.value().to_bits()
    );
    assert_eq!(
        (res.replans, res.trimmed_hovers, res.dropped_stops),
        (replay.replans, replay.trimmed_hovers, replay.dropped_stops)
    );
    assert_eq!(res.executed.fingerprint(), replay.executed.fingerprint());

    // Calm equivalence: with no disturbances and no interventions the
    // closed loop is the open loop, bit for bit.
    if level == 0 && res.replans == 0 && res.trimmed_hovers == 0 && res.dropped_stops == 0 {
        let open = simulate(scenario, plan, cfg);
        assert_eq!(
            res.outcome.trace.fingerprint(),
            open.trace.fingerprint(),
            "calm uninterrupted mission must match the open loop"
        );
        assert_eq!(
            res.outcome.energy_used.value().to_bits(),
            open.energy_used.value().to_bits()
        );
        assert_eq!(
            res.outcome.collected.value().to_bits(),
            open.collected.value().to_bits()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    /// The safe-return guarantee across the fault ladder: every case is
    /// one scenario × plan pair driven through all four fault levels.
    #[test]
    fn controller_safe_return(
        seed in 0u64..0xffff_ffff,
        scale in 20u64..60,
        planner_idx in 0u64..3,
    ) {
        let scenario = uniform(
            &ScenarioParams::default().scaled(scale as f64 / 1000.0),
            seed,
        );
        let (plan, planner) = plan_for(&scenario, planner_idx, seed);
        plan.validate(&scenario).expect("planner emitted invalid plan");
        for level in 0..4u64 {
            let cfg = disturbances(level, seed);
            let result = catch_unwind(AssertUnwindSafe(|| {
                check_triple(&scenario, &plan, &cfg, level);
            }));
            if let Err(panic) = result {
                // Leave the triple where CI can pick it up as an artifact.
                if let Ok(mut f) = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(FAILING_SEEDS)
                {
                    let _ = writeln!(
                        f,
                        "seed={seed} scale={scale} planner={planner} level={level}"
                    );
                }
                resume_unwind(panic);
            }
        }
    }
}

/// A battery sized well below the plan's needs still comes home: the
/// controller repairs down to whatever fits, including the empty tour.
#[test]
fn starved_battery_still_returns() {
    for seed in 0..20u64 {
        let mut scenario = uniform(&ScenarioParams::default().scaled(0.03), seed);
        let plan = Alg2Planner::default().plan(&scenario);
        // Starve the battery *after* planning: the plan is now badly
        // over budget and the controller must shed load to survive.
        scenario.uav.capacity = plan.total_energy(&scenario) * 0.35;
        let cfg = disturbances(3, seed);
        let res = MissionController::default().fly(&scenario, &plan, &cfg);
        assert!(res.outcome.completed, "seed {seed}: mission died");
        assert!(
            res.outcome.energy_used.value() <= scenario.uav.capacity.value() * (1.0 + 1e-9) + 1e-6,
            "seed {seed}: battery overdrawn"
        );
        assert!(
            res.replans + res.dropped_stops + res.trimmed_hovers > 0,
            "seed {seed}: a 0.35x battery must force an intervention"
        );
    }
}
