//! Property tests tying the open-loop simulator to the planners'
//! accounting.
//!
//! Under undisturbed conditions (`WindModel::calm()` +
//! `LinkModel::nominal()` + `CollectionPolicy::PlanStrict`) the
//! simulator must reproduce the planner's accounting *bit-for-bit*. The
//! two sides fold floats in different orders (the plan sums tour length
//! before multiplying by η_t/v, the simulator accumulates leg by leg),
//! and float addition is not associative — so the bitwise oracle is a
//! **mission-order reference accountant**: the plan's own numbers
//! (distances, sojourns, scheduled volumes) folded in exactly the order
//! the mission executes them. The simulator shares no code with it (the
//! reference lives in this test file); any divergence in the physics,
//! the upload capping, or the RNG-identity contract of the calm models
//! flips bits here.
//!
//! The plan's aggregate accessors (`total_energy`, `duration`,
//! `collected_volume`) are additionally checked within the validator's
//! tolerance, closing the loop planner → plan → simulation.

use proptest::prelude::*;
use uavdc_core::{
    Alg2Config, Alg2Planner, Alg3Config, Alg3Planner, BenchmarkPlanner, CollectionPlan, EngineMode,
};
use uavdc_net::generator::{uniform, ScenarioParams};
use uavdc_net::Scenario;
use uavdc_sim::{simulate, SimConfig, SimOutcome};

/// Replays the plan's accounting in mission order: the exact op
/// sequence of the simulator, fed only by plan data and scenario
/// constants.
struct Reference {
    energy: f64,
    time: f64,
    volume: f64,
}

fn mission_order_reference(scenario: &Scenario, plan: &CollectionPlan) -> Reference {
    let speed = scenario.uav.speed.value();
    let eta_h = scenario.uav.hover_power.value();
    let per_m = scenario.uav.travel_energy_per_meter().value();
    let capacity = scenario.uav.capacity.value();
    let b = scenario.radio.bandwidth.value();

    let mut residual: Vec<f64> = scenario.devices.iter().map(|d| d.data.value()).collect();
    let mut per_device = vec![0.0f64; scenario.num_devices()];
    let mut t = 0.0f64;
    let mut energy = 0.0f64;
    let mut pos = scenario.depot;

    let leg = |pos: &mut uavdc_geom::Point2, to, t: &mut f64, energy: &mut f64| {
        let dist = pos.distance(to);
        if dist > 0.0 {
            *t += dist / speed;
            *energy += dist * per_m;
            *pos = to;
        }
    };
    for stop in &plan.stops {
        leg(&mut pos, stop.pos, &mut t, &mut energy);
        let sojourn = stop.sojourn.value();
        let affordable = ((capacity - energy) / eta_h).max(0.0);
        let actual_sojourn = sojourn.min(affordable);
        // PlanStrict: per-device totals scheduled at this stop, in plan
        // order, capped by bandwidth × window and the device's residual.
        let mut scheduled: Vec<(u32, f64)> = Vec::new();
        for &(dev, amount) in &stop.collected {
            match scheduled.iter_mut().find(|(d, _)| *d == dev.0) {
                Some((_, a)) => *a += amount.value(),
                None => scheduled.push((dev.0, amount.value())),
            }
        }
        for (dev, want) in scheduled {
            let i = dev as usize;
            let can = (b * actual_sojourn).min(residual[i]);
            let got = want.min(can);
            if got > 0.0 {
                residual[i] -= got;
                per_device[i] += got;
            }
        }
        t += actual_sojourn;
        energy += actual_sojourn * eta_h;
    }
    leg(&mut pos, scenario.depot, &mut t, &mut energy);
    Reference {
        energy,
        time: t,
        volume: per_device.iter().sum(),
    }
}

fn assert_matches_accounting(scenario: &Scenario, plan: &CollectionPlan, label: &str) {
    plan.validate(scenario)
        .unwrap_or_else(|e| panic!("{label}: planner emitted an invalid plan: {e:?}"));
    let out: SimOutcome = simulate(scenario, plan, &SimConfig::default());
    out.trace
        .check_well_formed()
        .unwrap_or_else(|e| panic!("{label}: malformed trace: {e}"));
    assert!(out.completed, "{label}: calm mission must complete");
    assert!(
        out.agrees_with_plan(plan, scenario),
        "{label}: outcome disagrees with plan"
    );

    let reference = mission_order_reference(scenario, plan);
    assert_eq!(
        out.energy_used.value().to_bits(),
        reference.energy.to_bits(),
        "{label}: energy differs from mission-order accounting ({} vs {})",
        out.energy_used.value(),
        reference.energy
    );
    assert_eq!(
        out.mission_time.value().to_bits(),
        reference.time.to_bits(),
        "{label}: time differs from mission-order accounting ({} vs {})",
        out.mission_time.value(),
        reference.time
    );
    assert_eq!(
        out.collected.value().to_bits(),
        reference.volume.to_bits(),
        "{label}: volume differs from mission-order accounting ({} vs {})",
        out.collected.value(),
        reference.volume
    );

    // And the plan's own aggregate accessors agree within the
    // validator's tolerance (they fold in a different order).
    let tol = 1e-6 * (1.0 + scenario.uav.capacity.value());
    assert!(
        (out.energy_used.value() - plan.total_energy(scenario).value()).abs() <= tol,
        "{label}: energy vs plan.total_energy"
    );
    assert!(
        (out.mission_time.value() - plan.duration(scenario).value()).abs()
            <= 1e-6 * (1.0 + plan.duration(scenario).value()),
        "{label}: time vs plan.duration"
    );
    assert!(
        (out.collected.value() - plan.collected_volume().value()).abs()
            <= 1e-6 * (1.0 + plan.collected_volume().value()),
        "{label}: volume vs plan.collected_volume"
    );
}

fn scenario_for(seed: u64, scale_pct: u64) -> Scenario {
    let params = ScenarioParams::default().scaled(scale_pct as f64 / 1000.0);
    uniform(&params, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Algorithm 2 (overlap-aware greedy insertion), both engines.
    #[test]
    fn alg2_accounting_is_bit_exact(seed in 0u64..1_000_000, scale in 20u64..60) {
        let scenario = scenario_for(seed, scale);
        for engine in [EngineMode::Lazy, EngineMode::Exhaustive] {
            let planner = Alg2Planner::new(Alg2Config {
                engine,
                ..Alg2Config::default()
            });
            let (plan, _) = planner.plan_with_stats(&scenario);
            assert_matches_accounting(&scenario, &plan, &format!("alg2/{engine:?}/seed={seed}"));
        }
    }

    /// Algorithm 3 (partial collection, K virtual stops), both engines.
    #[test]
    fn alg3_accounting_is_bit_exact(seed in 0u64..1_000_000, scale in 20u64..60) {
        let scenario = scenario_for(seed, scale);
        for engine in [EngineMode::Lazy, EngineMode::Exhaustive] {
            let planner = Alg3Planner::new(Alg3Config {
                engine,
                ..Alg3Config::default()
            });
            let (plan, _) = planner.plan_with_stats(&scenario);
            assert_matches_accounting(&scenario, &plan, &format!("alg3/{engine:?}/seed={seed}"));
        }
    }

    /// §VII.A benchmark (Christofides + prune-until-feasible), both engines.
    #[test]
    fn benchmark_accounting_is_bit_exact(seed in 0u64..1_000_000, scale in 20u64..60) {
        let scenario = scenario_for(seed, scale);
        for engine in [EngineMode::Lazy, EngineMode::Exhaustive] {
            let (plan, _) = BenchmarkPlanner.plan_with_stats(&scenario, engine);
            assert_matches_accounting(&scenario, &plan, &format!("bench/{engine:?}/seed={seed}"));
        }
    }
}
