//! Offline shim for the subset of `rand` 0.8 used by this workspace.
//!
//! The build environment has no network access and no vendored
//! registry, so the workspace replaces crates.io `rand` with this
//! path dependency. It implements exactly the API surface the
//! planners and generators use — `SmallRng`, `SeedableRng::seed_from_u64`,
//! and `Rng::gen_range` over half-open / inclusive ranges of the
//! numeric types that appear in the codebase — with a deterministic
//! xoshiro256++ generator so seeded scenarios stay reproducible.
//!
//! Determinism contract: `SmallRng::seed_from_u64(s)` produces the
//! same stream on every platform and every run. Nothing here reads
//! entropy from the OS; there is deliberately no `thread_rng`.

use std::ops::{Range, RangeInclusive};

/// Seedable generator constructors (shim of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling from a range, used by [`Rng::gen_range`].
pub trait SampleRange {
    type Output;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Raw 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// User-facing generator interface (shim of `rand::Rng`).
pub trait Rng: RngCore {
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(
            self.start < self.end,
            "gen_range called with empty range {:?}..{:?}",
            self.start,
            self.end
        );
        let u = unit_f64(rng.next_u64());
        let v = self.start + u * (self.end - self.start);
        // Floating rounding can land exactly on `end`; clamp back inside.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(
            lo <= hi,
            "gen_range called with empty range {lo:?}..={hi:?}"
        );
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "gen_range called with empty range {:?}..{:?}", self.start, self.end
                );
                let span = (self.end - self.start) as u64;
                self.start + (reduce(rng.next_u64(), span)) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range called with empty range {lo:?}..={hi:?}");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (reduce(rng.next_u64(), span + 1)) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, i64, i32);

/// Map a raw word to `[0, span)` (simple modulo; bias is negligible for
/// the small spans used by scenario generation and GRASP perturbation).
#[inline]
fn reduce(word: u64, span: u64) -> u64 {
    word % span
}

/// 53-bit mantissa to `[0, 1)`.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (shim of `rand::rngs::SmallRng`).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with splitmix64, as rand does.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.gen_range(0usize..1_000_000),
                b.gen_range(0usize..1_000_000)
            );
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(-3.0..7.5);
            assert!((-3.0..7.5).contains(&x), "{x} out of range");
            let y = rng.gen_range(2.0..=2.0);
            assert_eq!(y, 2.0);
        }
    }

    #[test]
    fn integer_ranges_cover_and_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let i = rng.gen_range(0usize..5);
            seen[i] = true;
            let j = rng.gen_range(10u64..=12);
            assert!((10..=12).contains(&j));
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }
}
