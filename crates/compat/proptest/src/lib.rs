//! Offline shim for the subset of `proptest` used by this workspace.
//!
//! The build environment has no network access, so the workspace
//! replaces crates.io `proptest` with this path dependency. It keeps
//! the call sites unchanged: the `proptest!` macro, range strategies
//! (`0.0f64..100.0`, `5usize..40`, `0u64..1000`), tuple strategies,
//! `proptest::collection::vec`, `.prop_map`, `Just`, weighted
//! `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`, `prop_assume!`,
//! and `ProptestConfig::with_cases(n)`.
//!
//! Differences from real proptest, by design:
//! - No shrinking: a failing case panics with the sampled inputs via
//!   the normal assert message instead of minimising them.
//! - Deterministic: the RNG is seeded from the test function's name,
//!   so a failure reproduces on every run and every machine.
//! - `prop_assume!` skips the current case (`continue`) rather than
//!   tracking a rejection quota.

pub mod test_runner {
    /// Shim of `proptest::test_runner::Config` (re-exported from the
    /// prelude as `ProptestConfig`).
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the brute-force
            // oracle comparisons in this suite fast while still
            // exercising a meaningful spread of instances.
            Config { cases: 64 }
        }
    }

    /// Deterministic splitmix64 stream used to sample strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test name so each property gets an independent
        /// but reproducible stream.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Shim of `proptest::strategy::Strategy`: anything that can
    /// produce a sampled value from the deterministic test RNG.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            let v = self.start + rng.unit_f64() * (self.end - self.start);
            if v >= self.end && self.start < self.end {
                self.start
            } else {
                v
            }
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.unit_f64() * (self.end() - self.start())
        }
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return lo + rng.next_u64() as $t;
                    }
                    lo + (rng.next_u64() % (span + 1)) as $t
                }
            }
        )*};
    }

    impl_int_strategy!(usize, u64, u32, u16, u8, i64, i32);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
        type Value = (A::Value, B::Value, C::Value, D::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.sample(rng),
                self.1.sample(rng),
                self.2.sample(rng),
                self.3.sample(rng),
            )
        }
    }

    /// Shim of `proptest::strategy::Just`.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// One weighted, type-erased sampling arm of a [`Union`].
    pub type WeightedArm<T> = (u32, Box<dyn Fn(&mut TestRng) -> T>);

    /// Strategy built by [`prop_oneof!`]: picks one of several weighted
    /// arms per sample. Arms are type-erased sampling closures so
    /// heterogeneous strategy types can share one value type.
    pub struct Union<T> {
        arms: Vec<WeightedArm<T>>,
        total: u64,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<WeightedArm<T>>) -> Self {
            let total = arms.iter().map(|&(w, _)| u64::from(w)).sum();
            assert!(total > 0, "prop_oneof! needs a positive total weight");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.next_u64() % self.total;
            // The pick always lands inside an arm (weights sum to the
            // sampled modulus); the last arm doubles as the fallback so
            // the loop needs no unreachable tail.
            let mut chosen = self.arms.len() - 1;
            for (i, (w, _)) in self.arms.iter().enumerate() {
                let w = u64::from(*w);
                if pick < w {
                    chosen = i;
                    break;
                }
                pick -= w;
            }
            (self.arms[chosen].1)(rng)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Shim of `proptest::collection::vec`: a vector whose length is
    /// drawn from `len` and whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Shim of `proptest!`: expands each `#[test] fn name(args in strategies)`
/// to a plain test that samples the strategies `cases` times from a
/// deterministic per-test RNG and runs the body on each sample.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::test_runner::Config as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Shim of `prop_oneof!`: a strategy that samples one of several arms,
/// optionally weighted (`weight => strategy`). All arms must produce the
/// same value type; unweighted arms get weight 1.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $({
                let __s = $strat;
                (
                    $weight,
                    ::std::boxed::Box::new(
                        move |__rng: &mut $crate::test_runner::TestRng| {
                            $crate::strategy::Strategy::sample(&__s, __rng)
                        },
                    ) as ::std::boxed::Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>,
                )
            }),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof!($(1u32 => $strat),+)
    };
}

/// Shim of `prop_assert!`: plain `assert!` (panics instead of
/// returning a `TestCaseError`; there is no shrinking to feed).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Shim of `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Shim of `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Shim of `prop_assume!`: skip the current sampled case when the
/// precondition fails. Expands to `continue` targeting the case loop,
/// so it must appear at the top level of the property body (which is
/// how every call site in this workspace uses it).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_sample_in_bounds(
            x in 0.0f64..10.0,
            n in 3usize..9,
            s in 0u64..100,
        ) {
            prop_assert!((0.0..10.0).contains(&x));
            prop_assert!((3..9).contains(&n));
            prop_assert!(s < 100);
        }

        #[test]
        fn oneof_respects_arm_set(
            v in prop_oneof![
                3 => (0u32..10).prop_map(|x| x as i64),
                1 => Just(-1i64),
            ],
        ) {
            prop_assert!(v == -1i64 || (0i64..10).contains(&v));
        }

        #[test]
        fn vec_and_map_compose(
            pts in crate::collection::vec((0.0f64..1.0, 0.0f64..1.0), 0..5)
                .prop_map(|mut v| { v.push((0.5, 0.5)); v })
        ) {
            prop_assert!(!pts.is_empty());
            prop_assume!(pts.len() > 1);
            prop_assert!(pts.len() <= 5);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::deterministic("abc");
        let mut b = crate::test_runner::TestRng::deterministic("abc");
        let mut c = crate::test_runner::TestRng::deterministic("abd");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
