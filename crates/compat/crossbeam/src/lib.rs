//! Offline shim for the subset of `crossbeam` used by this workspace.
//!
//! The build environment has no network access, so the workspace
//! replaces crates.io `crossbeam` with this path dependency backed by
//! `std::thread::scope` (stable since Rust 1.63). Only
//! `crossbeam::thread::scope` + `Scope::spawn` are provided — the
//! only crossbeam API the planners use.

pub mod thread {
    use std::thread::ScopedJoinHandle;

    /// Error type carried by [`scope`]'s `Result`, mirroring
    /// crossbeam's boxed panic payload.
    pub type ScopeError = Box<dyn std::any::Any + Send + 'static>;

    /// Shim of `crossbeam::thread::Scope`. Wraps the std scope so the
    /// crossbeam spawn signature (`FnOnce(&Scope) -> T`) keeps working.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Shim of `crossbeam::thread::scope`.
    ///
    /// Behavioural note: crossbeam returns `Err` when an un-joined
    /// child panicked; `std::thread::scope` re-raises such a panic at
    /// scope exit instead, so this shim always returns `Ok` and a
    /// child panic propagates directly. Every call site in this
    /// workspace immediately `.expect()`s the result, so the
    /// observable behaviour (panic with a message) is the same.
    pub fn scope<'env, F, R>(f: F) -> Result<R, ScopeError>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_spawn_writes_through_mut_slots() {
        let mut results = vec![0usize; 8];
        super::thread::scope(|scope| {
            for (i, slot) in results.iter_mut().enumerate() {
                scope.spawn(move |_| {
                    *slot = i * i;
                });
            }
        })
        .expect("scope should not fail");
        assert_eq!(results, vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let counter = std::sync::atomic::AtomicUsize::new(0);
        super::thread::scope(|scope| {
            scope.spawn(|inner| {
                counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                inner.spawn(|_| {
                    counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                });
            });
        })
        .expect("scope should not fail");
        assert_eq!(counter.load(std::sync::atomic::Ordering::SeqCst), 2);
    }
}
