//! Offline shim for the subset of `criterion` used by this workspace.
//!
//! The build environment has no network access, so the workspace
//! replaces crates.io `criterion` with this path dependency. Bench
//! sources compile unchanged; running a bench executes each closure a
//! fixed warm-up plus `sample_size` timed passes and prints a
//! mean/min/max summary line per benchmark. There is no statistical
//! analysis, outlier rejection, or HTML report — this shim exists so
//! `cargo bench` keeps producing comparable relative numbers offline
//! and so `cargo test`/`clippy --all-targets` can build bench targets.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Shim of `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("default");
        group.bench_function(name, f);
        group.finish();
    }
}

/// Shim of `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, |b| f(b));
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
    }

    pub fn finish(self) {}
}

/// Shim of `criterion::BenchmarkId`.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Shim of `criterion::Bencher`: `iter` times one batch of calls.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(label: &str, samples: usize, mut run: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up pass, also used to pick an iteration count that keeps
    // each sample around a millisecond without dragging the run out.
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 1,
    };
    run(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters = (Duration::from_millis(1).as_nanos() / per_iter.as_nanos()).clamp(1, 1000) as u64;

    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    let mut max = Duration::ZERO;
    for _ in 0..samples {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters,
        };
        run(&mut b);
        let per = b.elapsed / iters as u32;
        total += per;
        min = min.min(per);
        max = max.max(per);
    }
    let mean = total / samples as u32;
    println!("{label:<48} mean {mean:>12.2?}  min {min:>12.2?}  max {max:>12.2?}  ({samples} samples x {iters} iters)");
}

/// Shim of `criterion_group!` (plain `(name, targets...)` form).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Shim of `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_demo(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(2);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 3), &3u64, |b, &k| {
            b.iter(|| (0..100u64).map(|x| x * k).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn group_and_macros_run() {
        let mut criterion = Criterion::default();
        bench_demo(&mut criterion);
    }
}
