//! Tour construction heuristics: nearest neighbour and cheapest insertion.
//!
//! Cheapest insertion additionally exposes the O(|tour|) *insertion delta*
//! — the marginal tour-length cost of adding one vertex — which the fast
//! mode of the paper's Algorithm 2 uses to rank candidate hovering
//! locations without recomputing a full Christofides tour per candidate.

use crate::{DistMatrix, Tour};

/// Nearest-neighbour tour over all vertices, starting from `start`.
///
/// # Panics
/// Panics when `start` is out of range (unless the matrix is empty).
pub fn nearest_neighbor(m: &DistMatrix, start: usize) -> Tour {
    let n = m.len();
    if n == 0 {
        return Tour::new(Vec::new());
    }
    assert!(start < n, "start {start} out of range {n}");
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut cur = start;
    visited[cur] = true;
    order.push(cur);
    for _ in 1..n {
        let row = m.row(cur);
        let mut best = usize::MAX;
        let mut bd = f64::INFINITY;
        for v in 0..n {
            if !visited[v] && row[v] < bd {
                bd = row[v];
                best = v;
            }
        }
        visited[best] = true;
        order.push(best);
        cur = best;
    }
    Tour::new(order)
}

/// Marginal cost of inserting `v` into the closed tour `order` at the best
/// position, and that position.
///
/// Returns `(delta, pos)` where inserting before `order[pos]` increases
/// the tour length by `delta`; `pos == order.len()` appends at the end
/// (insertion on the closing edge), so `order[0]` is never displaced —
/// planners rely on the depot staying first. For an empty tour the delta
/// is `0.0`; for a singleton tour `{u}` it is the out-and-back cost
/// `2·w(u, v)`.
pub fn cheapest_insertion_delta(m: &DistMatrix, order: &[usize], v: usize) -> (f64, usize) {
    match order.len() {
        0 => (0.0, 0),
        1 => (2.0 * m.get(order[0], v), 1),
        n => {
            let mut best = f64::INFINITY;
            let mut pos = 0;
            for i in 0..n {
                let a = order[i];
                let b = order[(i + 1) % n];
                let delta = m.get(a, v) + m.get(v, b) - m.get(a, b);
                if delta < best {
                    best = delta;
                    pos = i + 1;
                }
            }
            (best, pos)
        }
    }
}

/// Inserts `v` into `tour` at the cheapest position and returns the length
/// increase.
pub fn insert_cheapest(tour: &mut Tour, m: &DistMatrix, v: usize) -> f64 {
    let (delta, pos) = cheapest_insertion_delta(m, tour.order(), v);
    tour.order_mut().insert(pos, v);
    delta
}

/// Cheapest-insertion tour grown from an arbitrary *seed tour* (e.g. the
/// convex hull of the vertex positions, computed with
/// `uavdc_geom::convex_hull`). In an optimal Euclidean tour the hull
/// vertices appear in hull order, so hull seeding fixes the boundary
/// before interior vertices are inserted — the classic "convex hull
/// insertion" heuristic.
///
/// # Panics
/// Panics when the seed contains duplicates or out-of-range vertices
/// (checked by [`Tour::new`]), or is empty while the matrix is not.
pub fn cheapest_insertion_from(m: &DistMatrix, seed: &[usize]) -> Tour {
    let n = m.len();
    if n == 0 {
        return Tour::new(Vec::new());
    }
    assert!(
        !seed.is_empty(),
        "seed tour must contain at least one vertex"
    );
    let mut tour = Tour::new(seed.to_vec());
    let mut in_tour = vec![false; n];
    for &v in seed {
        in_tour[v] = true;
    }
    let mut remaining: Vec<usize> = (0..n).filter(|&v| !in_tour[v]).collect();
    while !remaining.is_empty() {
        let mut best_i = 0;
        let mut best_delta = f64::INFINITY;
        for (i, &v) in remaining.iter().enumerate() {
            let (d, _) = cheapest_insertion_delta(m, tour.order(), v);
            if d < best_delta {
                best_delta = d;
                best_i = i;
            }
        }
        let v = remaining.swap_remove(best_i);
        insert_cheapest(&mut tour, m, v);
    }
    tour
}

/// Cheapest-insertion tour over all vertices, seeded from `start`.
pub fn cheapest_insertion(m: &DistMatrix, start: usize) -> Tour {
    let n = m.len();
    if n == 0 {
        return Tour::new(Vec::new());
    }
    assert!(start < n, "start {start} out of range {n}");
    let mut tour = Tour::new(vec![start]);
    let mut remaining: Vec<usize> = (0..n).filter(|&v| v != start).collect();
    while !remaining.is_empty() {
        // Pick the remaining vertex with the cheapest insertion delta.
        let mut best_i = 0;
        let mut best_delta = f64::INFINITY;
        for (i, &v) in remaining.iter().enumerate() {
            let (d, _) = cheapest_insertion_delta(m, tour.order(), v);
            if d < best_delta {
                best_delta = d;
                best_i = i;
            }
        }
        let v = remaining.swap_remove(best_i);
        insert_cheapest(&mut tour, m, v);
    }
    tour
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn square() -> DistMatrix {
        DistMatrix::from_euclidean(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)])
    }

    #[test]
    fn nn_on_empty_and_single() {
        assert!(nearest_neighbor(&DistMatrix::zeros(0), 0).is_empty());
        assert_eq!(nearest_neighbor(&DistMatrix::zeros(1), 0).order(), &[0]);
    }

    #[test]
    fn nn_visits_all_from_any_start() {
        let m = square();
        for start in 0..4 {
            let t = nearest_neighbor(&m, start);
            assert_eq!(t.len(), 4);
            assert_eq!(t.order()[0], start);
        }
    }

    #[test]
    fn nn_square_is_optimal() {
        let m = square();
        assert!((nearest_neighbor(&m, 0).length(&m) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn insertion_delta_empty_and_singleton() {
        let m = square();
        assert_eq!(cheapest_insertion_delta(&m, &[], 2), (0.0, 0));
        let (d, pos) = cheapest_insertion_delta(&m, &[0], 2);
        assert!((d - 2.0 * 2f64.sqrt()).abs() < 1e-12);
        assert_eq!(pos, 1);
    }

    #[test]
    fn insertion_delta_matches_recomputed_length() {
        let m = DistMatrix::from_euclidean(&[
            (0.0, 0.0),
            (4.0, 0.0),
            (4.0, 3.0),
            (0.0, 3.0),
            (2.0, 1.0),
        ]);
        let mut tour = Tour::new(vec![0, 1, 2, 3]);
        let before = tour.length(&m);
        let delta = insert_cheapest(&mut tour, &m, 4);
        let after = tour.length(&m);
        assert!((after - before - delta).abs() < 1e-12);
        assert_eq!(tour.len(), 5);
    }

    #[test]
    fn cheapest_insertion_square_optimal() {
        let m = square();
        let t = cheapest_insertion(&m, 0);
        assert!((t.length(&m) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn cheapest_insertion_visits_all() {
        let pts: Vec<(f64, f64)> = (0..15)
            .map(|i| ((i * 37 % 50) as f64, (i * 13 % 50) as f64))
            .collect();
        let m = DistMatrix::from_euclidean(&pts);
        let t = cheapest_insertion(&m, 3);
        let mut order = t.order().to_vec();
        order.sort_unstable();
        assert_eq!(order, (0..15).collect::<Vec<_>>());
    }

    #[test]
    fn seeded_insertion_visits_all_and_respects_seed_order() {
        let pts: Vec<(f64, f64)> = vec![
            (0.0, 0.0),
            (10.0, 0.0),
            (10.0, 10.0),
            (0.0, 10.0),
            (5.0, 5.0),
            (3.0, 7.0),
        ];
        let m = DistMatrix::from_euclidean(&pts);
        let t = cheapest_insertion_from(&m, &[0, 1, 2, 3]);
        let mut order = t.order().to_vec();
        order.sort_unstable();
        assert_eq!(order, (0..6).collect::<Vec<_>>());
        // Seed vertices keep their cyclic order (insertions never reorder).
        let pos: Vec<usize> = [0, 1, 2, 3]
            .iter()
            .map(|s| t.order().iter().position(|v| v == s).unwrap())
            .collect();
        let rotations = pos.windows(2).filter(|w| w[1] < w[0]).count();
        assert!(rotations <= 1, "seed order broken: {pos:?}");
    }

    #[test]
    fn hull_seed_never_worse_than_much_on_ring_instance() {
        // Points on a circle: the hull IS the optimal tour, so seeding
        // with it yields the optimum while plain cheapest insertion may
        // or may not.
        let pts: Vec<(f64, f64)> = (0..12)
            .map(|i| {
                let a = 2.0 * std::f64::consts::PI * (i as f64) / 12.0;
                (50.0 + 40.0 * a.cos(), 50.0 + 40.0 * a.sin())
            })
            .collect();
        let m = DistMatrix::from_euclidean(&pts);
        let hull_order: Vec<usize> = (0..12).collect(); // circle order is hull order
        let t = cheapest_insertion_from(&m, &hull_order);
        let optimal = crate::exact::held_karp(&m).unwrap().length(&m);
        assert!((t.length(&m) - optimal).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "seed tour")]
    fn empty_seed_rejected() {
        let m = DistMatrix::zeros(3);
        let _ = cheapest_insertion_from(&m, &[]);
    }

    proptest! {
        #[test]
        fn prop_insert_cheapest_delta_is_exact(
            pts in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 3..20),
        ) {
            let m = DistMatrix::from_euclidean(&pts);
            let n = pts.len();
            let mut tour = Tour::new((0..n - 1).collect());
            let before = tour.length(&m);
            let delta = insert_cheapest(&mut tour, &m, n - 1);
            prop_assert!((tour.length(&m) - before - delta).abs() < 1e-9);
        }

        #[test]
        fn prop_insertion_delta_nonnegative_for_metric(
            pts in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 3..15),
        ) {
            // For metric instances the cheapest insertion delta is >= 0.
            let m = DistMatrix::from_euclidean(&pts);
            let n = pts.len();
            let order: Vec<usize> = (0..n - 1).collect();
            let (d, _) = cheapest_insertion_delta(&m, &order, n - 1);
            prop_assert!(d >= -1e-9);
        }
    }
}
