//! Closed tours over the vertices of a [`DistMatrix`].

use crate::DistMatrix;

/// A closed tour: an ordering of a subset of vertices, visited cyclically.
///
/// The tour `[a, b, c]` traverses edges `(a,b)`, `(b,c)`, `(c,a)`.
/// Single-vertex and empty tours have length zero.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tour {
    order: Vec<usize>,
}

impl Tour {
    /// Wraps a visiting order.
    ///
    /// # Panics
    /// Panics when the order contains duplicate vertices.
    pub fn new(order: Vec<usize>) -> Self {
        let mut seen = vec![false; order.iter().copied().max().map_or(0, |m| m + 1)];
        for &v in &order {
            assert!(!seen[v], "vertex {v} appears twice in tour");
            seen[v] = true;
        }
        Tour { order }
    }

    /// The visiting order.
    #[inline]
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Mutable access for in-place improvement heuristics.
    #[inline]
    pub(crate) fn order_mut(&mut self) -> &mut Vec<usize> {
        &mut self.order
    }

    /// Number of visited vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when the tour visits no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Total cyclic length under `m`.
    // lint:allow(raw-quantity): DistMatrix weights are dimension-generic; uavdc-core assigns joules at the AuxGraph boundary
    pub fn length(&self, m: &DistMatrix) -> f64 {
        let n = self.order.len();
        if n < 2 {
            return 0.0;
        }
        let mut total = 0.0;
        for k in 0..n {
            total += m.get(self.order[k], self.order[(k + 1) % n]);
        }
        total
    }

    /// Rotates the order so that `start` comes first, preserving the cycle.
    ///
    /// # Panics
    /// Panics when `start` is not on the tour.
    pub fn rotate_to_start(&mut self, start: usize) {
        let pos = self
            .order
            .iter()
            .position(|&v| v == start)
            // lint:allow(panic-site): documented API contract (see `# Panics` above); callers pass tour vertices
            .unwrap_or_else(|| panic!("vertex {start} not on tour"));
        self.order.rotate_left(pos);
    }

    /// True when `v` is visited by the tour.
    pub fn contains(&self, v: usize) -> bool {
        self.order.contains(&v)
    }
}

impl From<Vec<usize>> for Tour {
    fn from(order: Vec<usize>) -> Self {
        Tour::new(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_matrix() -> DistMatrix {
        // Vertices on a line at x = 0, 1, 2, 3.
        DistMatrix::from_euclidean(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0)])
    }

    #[test]
    fn degenerate_tours_have_zero_length() {
        let m = line_matrix();
        assert_eq!(Tour::new(vec![]).length(&m), 0.0);
        assert_eq!(Tour::new(vec![2]).length(&m), 0.0);
    }

    #[test]
    fn two_vertex_tour_is_out_and_back() {
        let m = line_matrix();
        assert_eq!(Tour::new(vec![0, 3]).length(&m), 6.0);
    }

    #[test]
    fn length_counts_closing_edge() {
        let m = line_matrix();
        // 0 -> 1 -> 2 -> 3 -> 0 = 1 + 1 + 1 + 3.
        assert_eq!(Tour::new(vec![0, 1, 2, 3]).length(&m), 6.0);
        // 0 -> 2 -> 1 -> 3 -> 0 = 2 + 1 + 2 + 3.
        assert_eq!(Tour::new(vec![0, 2, 1, 3]).length(&m), 8.0);
    }

    #[test]
    fn rotation_preserves_length_and_cycle() {
        let m = line_matrix();
        let mut t = Tour::new(vec![2, 0, 3, 1]);
        let before = t.length(&m);
        t.rotate_to_start(3);
        assert_eq!(t.order()[0], 3);
        assert_eq!(t.length(&m), before);
        assert_eq!(t.order(), &[3, 1, 2, 0]);
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn duplicate_vertex_rejected() {
        let _ = Tour::new(vec![0, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "not on tour")]
    fn rotate_to_missing_vertex_panics() {
        let mut t = Tour::new(vec![0, 1]);
        t.rotate_to_start(7);
    }

    #[test]
    fn contains_checks_membership() {
        let t = Tour::new(vec![4, 2, 9]);
        assert!(t.contains(9));
        assert!(!t.contains(3));
    }
}
