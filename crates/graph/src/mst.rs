//! Minimum spanning trees on dense matrices (Prim, O(n²)).

use crate::DistMatrix;

/// A spanning tree: its edge list and total weight.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanningTree {
    /// Tree edges as vertex index pairs.
    pub edges: Vec<(usize, usize)>,
    /// Sum of edge weights.
    pub weight: f64,
}

/// Computes a minimum spanning tree of the complete graph described by `m`
/// using Prim's algorithm with a dense O(n²) scan — optimal for the
/// complete graphs this crate works on.
///
/// Returns an empty tree for `n <= 1`.
pub fn prim_mst(m: &DistMatrix) -> SpanningTree {
    let n = m.len();
    if n <= 1 {
        return SpanningTree {
            edges: Vec::new(),
            weight: 0.0,
        };
    }
    let mut in_tree = vec![false; n];
    let mut best_cost = vec![f64::INFINITY; n];
    let mut best_edge = vec![usize::MAX; n];
    in_tree[0] = true;
    for v in 1..n {
        best_cost[v] = m.get(0, v);
        best_edge[v] = 0;
    }
    let mut edges = Vec::with_capacity(n - 1);
    let mut weight = 0.0;
    for _ in 1..n {
        // Cheapest fringe vertex.
        let mut u = usize::MAX;
        let mut uc = f64::INFINITY;
        for v in 0..n {
            if !in_tree[v] && best_cost[v] < uc {
                uc = best_cost[v];
                u = v;
            }
        }
        debug_assert_ne!(
            u,
            usize::MAX,
            "graph is complete; a fringe vertex must exist"
        );
        in_tree[u] = true;
        edges.push((best_edge[u], u));
        weight += uc;
        let row = m.row(u);
        for v in 0..n {
            if !in_tree[v] && row[v] < best_cost[v] {
                best_cost[v] = row[v];
                best_edge[v] = u;
            }
        }
    }
    SpanningTree { edges, weight }
}

/// Vertex degrees induced by an edge list over `n` vertices.
pub fn degrees(n: usize, edges: &[(usize, usize)]) -> Vec<usize> {
    let mut deg = vec![0; n];
    for &(u, v) in edges {
        deg[u] += 1;
        deg[v] += 1;
    }
    deg
}

/// Vertices with odd degree in an edge list — the set Christofides must
/// match (always even in cardinality, by the handshake lemma).
pub fn odd_degree_vertices(n: usize, edges: &[(usize, usize)]) -> Vec<usize> {
    degrees(n, edges)
        .into_iter()
        .enumerate()
        .filter_map(|(v, d)| (d % 2 == 1).then_some(v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn trivial_sizes() {
        assert_eq!(prim_mst(&DistMatrix::zeros(0)).edges.len(), 0);
        assert_eq!(prim_mst(&DistMatrix::zeros(1)).edges.len(), 0);
        let two = DistMatrix::from_euclidean(&[(0.0, 0.0), (5.0, 0.0)]);
        let t = prim_mst(&two);
        assert_eq!(t.edges, vec![(0, 1)]);
        assert_eq!(t.weight, 5.0);
    }

    #[test]
    fn line_graph_mst_is_the_line() {
        let m = DistMatrix::from_euclidean(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (4.0, 0.0)]);
        let t = prim_mst(&m);
        assert_eq!(t.edges.len(), 3);
        assert_eq!(t.weight, 4.0); // 1 + 1 + 2
    }

    #[test]
    fn square_mst_weight() {
        let m = DistMatrix::from_euclidean(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]);
        // Three unit edges.
        assert_eq!(prim_mst(&m).weight, 3.0);
    }

    #[test]
    fn mst_is_spanning_and_acyclic() {
        let pts: Vec<(f64, f64)> = (0..30)
            .map(|i| ((i * 37 % 100) as f64, (i * 59 % 100) as f64))
            .collect();
        let m = DistMatrix::from_euclidean(&pts);
        let t = prim_mst(&m);
        assert_eq!(t.edges.len(), 29);
        // Union-find connectivity check.
        let mut parent: Vec<usize> = (0..30).collect();
        fn find(p: &mut Vec<usize>, x: usize) -> usize {
            if p[x] != x {
                let r = find(p, p[x]);
                p[x] = r;
            }
            p[x]
        }
        for &(u, v) in &t.edges {
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            assert_ne!(ru, rv, "edge ({u},{v}) closes a cycle");
            parent[ru] = rv;
        }
        let root = find(&mut parent, 0);
        for v in 1..30 {
            assert_eq!(find(&mut parent, v), root, "vertex {v} disconnected");
        }
    }

    #[test]
    fn odd_degree_set_is_even() {
        let edges = vec![(0, 1), (1, 2), (2, 3)];
        let odd = odd_degree_vertices(4, &edges);
        assert_eq!(odd, vec![0, 3]);
        assert_eq!(odd.len() % 2, 0);
    }

    #[test]
    fn degrees_count_both_endpoints() {
        let d = degrees(3, &[(0, 1), (0, 2), (0, 1)]);
        assert_eq!(d, vec![3, 2, 1]);
    }

    fn kruskal_weight(m: &DistMatrix) -> f64 {
        let n = m.len();
        let mut es: Vec<(usize, usize)> = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                es.push((i, j));
            }
        }
        es.sort_by(|a, b| uavdc_geom::cmp_f64(m.get(a.0, a.1), m.get(b.0, b.1)));
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(p: &mut Vec<usize>, x: usize) -> usize {
            if p[x] != x {
                let r = find(p, p[x]);
                p[x] = r;
            }
            p[x]
        }
        let mut w = 0.0;
        for (u, v) in es {
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            if ru != rv {
                parent[ru] = rv;
                w += m.get(u, v);
            }
        }
        w
    }

    proptest! {
        #[test]
        fn prop_prim_matches_kruskal(
            pts in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 2..40)
        ) {
            let m = DistMatrix::from_euclidean(&pts);
            let prim = prim_mst(&m);
            let kruskal = kruskal_weight(&m);
            prop_assert!((prim.weight - kruskal).abs() < 1e-6 * (1.0 + kruskal));
            prop_assert_eq!(prim.edges.len(), pts.len() - 1);
        }

        #[test]
        fn prop_odd_vertex_count_is_even(
            edges in proptest::collection::vec((0usize..20, 0usize..20), 0..60)
        ) {
            let odd = odd_degree_vertices(20, &edges);
            prop_assert_eq!(odd.len() % 2, 0);
        }
    }
}
