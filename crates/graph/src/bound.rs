//! Lower bounds for metric TSP: the Held–Karp 1-tree bound.
//!
//! A *1-tree* rooted at vertex `r` is a spanning tree over the other
//! vertices plus the two cheapest edges incident to `r`. Every tour is a
//! 1-tree, so the minimum 1-tree weight lower-bounds the optimal tour.
//! Maximising over roots tightens the bound. Used in tests to certify
//! heuristic tour quality on instances too large for Held–Karp DP, and
//! available to callers for the same purpose.

use crate::mst::prim_mst;
use crate::DistMatrix;

/// The 1-tree lower bound rooted at `root`.
///
/// Returns `0.0` for fewer than three vertices (a "tour" over ≤ 2
/// vertices is degenerate but its length is still ≥ 0).
pub fn one_tree_bound_at(m: &DistMatrix, root: usize) -> f64 {
    let n = m.len();
    assert!(root < n.max(1), "root {root} out of range {n}");
    if n < 3 {
        // The exact optimal length for n == 2 is twice the single edge.
        return if n == 2 { 2.0 * m.get(0, 1) } else { 0.0 };
    }
    // Spanning tree over everything except the root.
    let others: Vec<usize> = (0..n).filter(|&v| v != root).collect();
    let sub = m.submatrix(&others);
    let tree = prim_mst(&sub);
    // Two cheapest edges out of the root.
    let mut best = f64::INFINITY;
    let mut second = f64::INFINITY;
    for &v in &others {
        let w = m.get(root, v);
        if w < best {
            second = best;
            best = w;
        } else if w < second {
            second = w;
        }
    }
    tree.weight + best + second
}

/// The strongest 1-tree bound over all roots — a valid lower bound on the
/// optimal tour length of any symmetric instance. `O(n · n²)`.
pub fn one_tree_bound(m: &DistMatrix) -> f64 {
    let n = m.len();
    if n < 3 {
        return one_tree_bound_at(m, 0);
    }
    (0..n).map(|r| one_tree_bound_at(m, r)).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::christofides::christofides;
    use crate::exact::{brute_force_length, held_karp};
    use proptest::prelude::*;

    #[test]
    fn degenerate_sizes() {
        assert_eq!(one_tree_bound(&DistMatrix::zeros(0)), 0.0);
        assert_eq!(one_tree_bound(&DistMatrix::zeros(1)), 0.0);
        let two = DistMatrix::from_euclidean(&[(0.0, 0.0), (3.0, 0.0)]);
        assert_eq!(one_tree_bound(&two), 6.0);
    }

    #[test]
    fn unit_square_bound_is_tight() {
        let m = DistMatrix::from_euclidean(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]);
        // Optimal tour = 4; the 1-tree bound reaches it on a square.
        let b = one_tree_bound(&m);
        assert!(b <= 4.0 + 1e-12);
        assert!(b >= 4.0 - 1e-9);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_bound_below_optimum(
            pts in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 3..8),
        ) {
            let m = DistMatrix::from_euclidean(&pts);
            let opt = brute_force_length(&m);
            let bound = one_tree_bound(&m);
            prop_assert!(bound <= opt + 1e-9, "bound {bound} exceeds optimum {opt}");
            // On Euclidean instances the bound is reasonably tight.
            prop_assert!(bound >= 0.5 * opt - 1e-9, "bound {bound} uselessly loose vs {opt}");
        }

        #[test]
        fn prop_certifies_christofides_on_larger_instances(
            pts in proptest::collection::vec((0.0f64..500.0, 0.0f64..500.0), 10..35),
        ) {
            // Where Held-Karp is infeasible, the bound still certifies the
            // tour: christofides <= 1.5 * opt <= 1.5 * tour and
            // tour >= bound, so tour / bound <= 1.5 / (bound/opt); on
            // Euclidean instances empirically tour <= 1.6 * bound.
            let m = DistMatrix::from_euclidean(&pts);
            let tour = christofides(&m).length(&m);
            let bound = one_tree_bound(&m);
            prop_assert!(tour >= bound - 1e-6, "tour {tour} below lower bound {bound}");
            prop_assert!(tour <= 1.6 * bound + 1e-6,
                "tour {tour} suspiciously far above bound {bound}");
        }

        #[test]
        fn prop_bound_matches_held_karp_relationship(
            pts in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 4..10),
        ) {
            let m = DistMatrix::from_euclidean(&pts);
            let opt = held_karp(&m).unwrap().length(&m);
            prop_assert!(one_tree_bound(&m) <= opt + 1e-9);
        }
    }
}
