//! Christofides' 1.5-approximation for metric TSP \[Christofides 1976\].
//!
//! The paper's Algorithm 2, Algorithm 3 and benchmark heuristic all invoke
//! `TSP(S)` — a Christofides tour over the current hovering-location set —
//! inside their selection loops, so this implementation is a planner hot
//! path. The matching step dominates; use [`ChristofidesConfig::fast`] to
//! trade the optimal blossom matching for the greedy one when exactness of
//! the matching is not required (ablation benches quantify the gap).

use crate::euler::{euler_circuit, shortcut_circuit};
use crate::improve::two_opt;
use crate::matching::{min_weight_perfect_matching_with, MatchingBackend};
use crate::mst::{odd_degree_vertices, prim_mst};
use crate::{DistMatrix, Tour};

/// Tuning knobs for [`christofides_with`].
#[derive(Clone, Copy, Debug)]
pub struct ChristofidesConfig {
    /// Matching backend for the odd-degree vertices.
    pub matching: MatchingBackend,
    /// Run 2-opt on the shortcut tour. Cheap relative to matching and
    /// usually shaves a few percent.
    pub polish: bool,
}

impl Default for ChristofidesConfig {
    fn default() -> Self {
        ChristofidesConfig {
            matching: MatchingBackend::Auto,
            polish: true,
        }
    }
}

impl ChristofidesConfig {
    /// Greedy matching, no polish: the fast approximate mode.
    pub fn fast() -> Self {
        ChristofidesConfig {
            matching: MatchingBackend::Greedy,
            polish: false,
        }
    }
}

/// Christofides tour over all vertices of `m` with default configuration.
///
/// For a metric `m` (triangle inequality) the result without polishing is
/// within 1.5x of the optimal tour; 2-opt polishing only improves it.
pub fn christofides(m: &DistMatrix) -> Tour {
    christofides_with(m, &ChristofidesConfig::default())
}

/// Christofides tour with explicit configuration.
pub fn christofides_with(m: &DistMatrix, cfg: &ChristofidesConfig) -> Tour {
    christofides_with_obs(m, cfg, &uavdc_obs::NOOP)
}

/// Like [`christofides_with`], reporting per-call size statistics to
/// `rec`: a `christofides.calls` counter plus `christofides.n` and
/// `christofides.odd_vertices` histograms. This function sits inside the
/// planners' selection loops and runs thousands of times per plan, so it
/// deliberately emits no spans — the callers wrap their loops in one span
/// and read the aggregate histograms instead.
pub fn christofides_with_obs(
    m: &DistMatrix,
    cfg: &ChristofidesConfig,
    rec: &dyn uavdc_obs::Recorder,
) -> Tour {
    let n = m.len();
    rec.add("christofides.calls", 1);
    rec.observe("christofides.n", n as u64);
    if n <= 1 {
        return Tour::new((0..n).collect());
    }
    if n == 2 {
        return Tour::new(vec![0, 1]);
    }
    if n == 3 {
        return Tour::new(vec![0, 1, 2]);
    }
    // 1. Minimum spanning tree.
    let mst = prim_mst(m);
    let mut edges = mst.edges.clone();
    // 2. Minimum-weight perfect matching on odd-degree vertices.
    let odd = odd_degree_vertices(n, &edges);
    debug_assert_eq!(odd.len() % 2, 0);
    rec.observe("christofides.odd_vertices", odd.len() as u64);
    if !odd.is_empty() {
        let sub = m.submatrix(&odd);
        let matching = min_weight_perfect_matching_with(&sub, cfg.matching);
        for (a, b) in matching.edges() {
            edges.push((odd[a], odd[b]));
        }
    }
    // 3. Eulerian circuit of MST ∪ matching (all degrees now even, and the
    // union is connected because the MST spans).
    let circuit =
        // lint:allow(panic-site): Euler circuit existence is a theorem here — MST spans and the matching evens all degrees
        euler_circuit(n, &edges, 0).expect("MST ∪ matching is connected with even degrees");
    // 4. Shortcut repeated vertices.
    let order = shortcut_circuit(&circuit);
    debug_assert_eq!(order.len(), n, "shortcut must visit every vertex once");
    let mut tour = Tour::new(order);
    if cfg.polish {
        two_opt(&mut tour, m);
    }
    tour
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::held_karp;
    use proptest::prelude::*;

    #[test]
    fn tiny_instances() {
        for n in 0..4 {
            let pts: Vec<(f64, f64)> = (0..n).map(|i| (i as f64, 0.0)).collect();
            let m = DistMatrix::from_euclidean(&pts);
            let t = christofides(&m);
            assert_eq!(t.len(), n);
        }
    }

    #[test]
    fn unit_square_is_optimal() {
        let m = DistMatrix::from_euclidean(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]);
        let t = christofides(&m);
        assert!((t.length(&m) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn visits_every_vertex_once() {
        let pts: Vec<(f64, f64)> = (0..25)
            .map(|i| ((i * 37 % 100) as f64, (i * 61 % 100) as f64))
            .collect();
        let m = DistMatrix::from_euclidean(&pts);
        let t = christofides(&m);
        let mut order = t.order().to_vec();
        order.sort_unstable();
        assert_eq!(order, (0..25).collect::<Vec<_>>());
    }

    #[test]
    fn within_guarantee_vs_exact_small() {
        let pts = [
            (0.0, 0.0),
            (7.0, 1.0),
            (3.0, 8.0),
            (9.0, 9.0),
            (1.0, 5.0),
            (6.0, 4.0),
            (2.0, 2.0),
        ];
        let m = DistMatrix::from_euclidean(&pts);
        let opt = held_karp(&m).expect("small instance");
        let cfg = ChristofidesConfig {
            matching: MatchingBackend::Auto,
            polish: false,
        };
        let t = christofides_with(&m, &cfg);
        assert!(
            t.length(&m) <= 1.5 * opt.length(&m) + 1e-9,
            "christofides {} vs opt {}",
            t.length(&m),
            opt.length(&m)
        );
    }

    #[test]
    fn polish_never_hurts() {
        let pts: Vec<(f64, f64)> = (0..18)
            .map(|i| ((i * 53 % 97) as f64, (i * 71 % 89) as f64))
            .collect();
        let m = DistMatrix::from_euclidean(&pts);
        let raw = christofides_with(
            &m,
            &ChristofidesConfig {
                matching: MatchingBackend::Auto,
                polish: false,
            },
        );
        let polished = christofides(&m);
        assert!(polished.length(&m) <= raw.length(&m) + 1e-9);
    }

    #[test]
    fn fast_mode_still_valid_tour() {
        let pts: Vec<(f64, f64)> = (0..30)
            .map(|i| ((i * 41 % 100) as f64, (i * 67 % 100) as f64))
            .collect();
        let m = DistMatrix::from_euclidean(&pts);
        let t = christofides_with(&m, &ChristofidesConfig::fast());
        assert_eq!(t.len(), 30);
        let mut order = t.order().to_vec();
        order.sort_unstable();
        assert_eq!(order, (0..30).collect::<Vec<_>>());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_within_1_5_of_held_karp(
            pts in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 4..10)
        ) {
            let m = DistMatrix::from_euclidean(&pts);
            let opt = held_karp(&m).unwrap().length(&m);
            let cfg = ChristofidesConfig { matching: MatchingBackend::ExactDp, polish: false };
            let t = christofides_with(&m, &cfg);
            prop_assert!(t.length(&m) <= 1.5 * opt + 1e-6,
                "christofides {} vs opt {}", t.length(&m), opt);
        }

        #[test]
        fn prop_tour_is_permutation(
            pts in proptest::collection::vec((0.0f64..500.0, 0.0f64..500.0), 1..40)
        ) {
            let m = DistMatrix::from_euclidean(&pts);
            let t = christofides(&m);
            let mut order = t.order().to_vec();
            order.sort_unstable();
            prop_assert_eq!(order, (0..pts.len()).collect::<Vec<_>>());
        }
    }
}
