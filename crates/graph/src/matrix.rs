//! Dense symmetric distance matrices.

/// A dense symmetric matrix of non-negative edge weights over `n` vertices.
///
/// This is the input format for every algorithm in this crate. Weights are
/// energies or metres depending on the caller; algorithms only assume
/// symmetry and non-negativity (Christofides additionally wants the
/// triangle inequality — check with [`DistMatrix::is_metric`]).
#[derive(Clone, Debug, PartialEq)]
pub struct DistMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DistMatrix {
    /// Creates an `n x n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        DistMatrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Builds a matrix by evaluating `f(i, j)` for `i < j` and mirroring.
    ///
    /// The diagonal is fixed at zero regardless of `f`.
    ///
    /// # Panics
    /// Panics when `f` produces a negative or non-finite weight.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = DistMatrix::zeros(n);
        for i in 0..n {
            for j in (i + 1)..n {
                let w = f(i, j);
                assert!(
                    w.is_finite() && w >= 0.0,
                    "edge weight ({i},{j}) must be finite and >= 0, got {w}"
                );
                m.data[i * n + j] = w;
                m.data[j * n + i] = w;
            }
        }
        m
    }

    /// Wraps an existing row-major `n x n` buffer.
    ///
    /// # Panics
    /// Panics when the buffer length is not `n²`, the matrix is not
    /// symmetric, the diagonal is non-zero, or any weight is negative or
    /// non-finite.
    pub fn from_raw(n: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * n, "buffer must hold n*n weights");
        for i in 0..n {
            // lint:allow(float-eq): exact-zero diagonal is the documented storage invariant
            assert_eq!(data[i * n + i], 0.0, "diagonal entry {i} must be zero");
            for j in (i + 1)..n {
                let w = data[i * n + j];
                assert!(w.is_finite() && w >= 0.0, "weight ({i},{j}) invalid: {w}");
                assert!(
                    (w - data[j * n + i]).abs() < 1e-12 * (1.0 + w.abs()),
                    "matrix not symmetric at ({i},{j})"
                );
            }
        }
        DistMatrix { n, data }
    }

    /// Builds the Euclidean distance matrix over planar points given as
    /// `(x, y)` pairs.
    pub fn from_euclidean(points: &[(f64, f64)]) -> Self {
        DistMatrix::from_fn(points.len(), |i, j| {
            let dx = points[i].0 - points[j].0;
            let dy = points[i].1 - points[j].1;
            (dx * dx + dy * dy).sqrt()
        })
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the matrix has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Weight of edge `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.n && j < self.n);
        self.data[i * self.n + j]
    }

    /// Sets the weight of edge `(i, j)` (and its mirror).
    ///
    /// # Panics
    /// Panics on negative/non-finite weights or diagonal writes of
    /// non-zero values.
    pub fn set(&mut self, i: usize, j: usize, w: f64) {
        assert!(
            w.is_finite() && w >= 0.0,
            "weight must be finite and >= 0, got {w}"
        );
        if i == j {
            // lint:allow(float-eq): exact-zero diagonal is the documented storage invariant
            assert_eq!(w, 0.0, "diagonal must stay zero");
            return;
        }
        self.data[i * self.n + j] = w;
        self.data[j * self.n + i] = w;
    }

    /// Row `i` as a slice (`row(i)[j]` is the weight of `(i, j)`).
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Largest edge weight in the matrix (zero for `n < 2`).
    pub fn max_weight(&self) -> f64 {
        self.data.iter().copied().fold(0.0, f64::max)
    }

    /// Checks the triangle inequality `w(i,k) <= w(i,j) + w(j,k)` within
    /// tolerance `tol` for all triples. O(n³) — intended for tests and
    /// debug assertions only.
    pub fn is_metric(&self, tol: f64) -> bool {
        for i in 0..self.n {
            for j in 0..self.n {
                let wij = self.get(i, j);
                for k in 0..self.n {
                    if self.get(i, k) > wij + self.get(j, k) + tol {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Restriction of the matrix to the vertex subset `keep` (in the given
    /// order). Vertex `i` of the result corresponds to `keep[i]`.
    pub fn submatrix(&self, keep: &[usize]) -> DistMatrix {
        DistMatrix::from_fn(keep.len(), |i, j| self.get(keep[i], keep[j]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_symmetric_zero_diagonal() {
        let m = DistMatrix::from_fn(4, |i, j| (i + j) as f64);
        for i in 0..4 {
            assert_eq!(m.get(i, i), 0.0);
            for j in 0..4 {
                assert_eq!(m.get(i, j), m.get(j, i));
            }
        }
        assert_eq!(m.get(1, 3), 4.0);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn from_fn_rejects_negative() {
        let _ = DistMatrix::from_fn(3, |_, _| -1.0);
    }

    #[test]
    fn from_raw_validates() {
        let ok = DistMatrix::from_raw(2, vec![0.0, 3.0, 3.0, 0.0]);
        assert_eq!(ok.get(0, 1), 3.0);
    }

    #[test]
    #[should_panic(expected = "not symmetric")]
    fn from_raw_rejects_asymmetry() {
        let _ = DistMatrix::from_raw(2, vec![0.0, 3.0, 4.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn from_raw_rejects_nonzero_diagonal() {
        let _ = DistMatrix::from_raw(2, vec![1.0, 3.0, 3.0, 0.0]);
    }

    #[test]
    fn euclidean_matrix() {
        let m = DistMatrix::from_euclidean(&[(0.0, 0.0), (3.0, 4.0)]);
        assert_eq!(m.get(0, 1), 5.0);
        assert!(m.is_metric(1e-9));
    }

    #[test]
    fn metric_check_catches_violation() {
        let mut m = DistMatrix::from_euclidean(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        assert!(m.is_metric(1e-9));
        m.set(0, 2, 100.0);
        assert!(!m.is_metric(1e-9));
    }

    #[test]
    fn submatrix_preserves_weights() {
        let m = DistMatrix::from_euclidean(&[(0.0, 0.0), (1.0, 0.0), (5.0, 0.0), (9.0, 0.0)]);
        let s = m.submatrix(&[3, 0, 2]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.get(0, 1), 9.0); // (3,0)
        assert_eq!(s.get(0, 2), 4.0); // (3,2)
        assert_eq!(s.get(1, 2), 5.0); // (0,2)
    }

    #[test]
    fn max_weight_and_rows() {
        let m = DistMatrix::from_euclidean(&[(0.0, 0.0), (0.0, 2.0), (0.0, 7.0)]);
        assert_eq!(m.max_weight(), 7.0);
        assert_eq!(m.row(0), &[0.0, 2.0, 7.0]);
    }

    #[test]
    fn empty_and_single_vertex() {
        let e = DistMatrix::zeros(0);
        assert!(e.is_empty());
        assert_eq!(e.max_weight(), 0.0);
        let s = DistMatrix::zeros(1);
        assert_eq!(s.len(), 1);
        assert!(s.is_metric(0.0));
    }
}
