//! Minimum-weight perfect matching on complete graphs.
//!
//! Christofides' heuristic needs a minimum-weight perfect matching over the
//! odd-degree vertices of the MST. Three backends are provided:
//!
//! * [`MatchingBackend::ExactDp`] — bitmask dynamic programming,
//!   `O(2^n · n)`; exact, for `n <= ~20`. Used as ground truth in tests.
//! * [`MatchingBackend::Blossom`] — an `O(n³)` primal–dual blossom
//!   algorithm (maximum-weight matching on transformed weights); exact for
//!   any size this crate encounters.
//! * [`MatchingBackend::Greedy`] — greedy edge selection plus pairwise
//!   2-exchange improvement; fast approximation used in the ablation
//!   benches and as a fallback.
//!
//! [`MatchingBackend::Auto`] picks DP for tiny inputs and blossom
//! otherwise.

mod blossom;

use crate::DistMatrix;

/// Which matching algorithm to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MatchingBackend {
    /// DP for `n <= 16`, blossom otherwise.
    #[default]
    Auto,
    /// Exact bitmask dynamic programming (`n <= 20` practical).
    ExactDp,
    /// Exact O(n³) blossom algorithm.
    Blossom,
    /// Greedy construction + 2-exchange improvement (approximate).
    Greedy,
}

/// A perfect matching: `mates[v]` is the vertex matched to `v`.
#[derive(Clone, Debug, PartialEq)]
pub struct Matching {
    /// Partner of each vertex; an involution without fixed points.
    pub mates: Vec<usize>,
    /// Total weight of the matched edges.
    pub weight: f64,
}

impl Matching {
    /// The matched edges with `u < v`, in vertex order.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        self.mates
            .iter()
            .enumerate()
            .filter(|&(v, &m)| v < m)
            .map(|(v, &m)| (v, m))
            .collect()
    }

    /// Debug validation: every vertex matched, symmetric, no self-loops.
    pub fn is_perfect(&self) -> bool {
        self.mates
            .iter()
            .enumerate()
            .all(|(v, &m)| m < self.mates.len() && m != v && self.mates[m] == v)
    }
}

/// Minimum-weight perfect matching with the default backend.
///
/// # Panics
/// Panics when the vertex count is odd (no perfect matching exists).
pub fn min_weight_perfect_matching(m: &DistMatrix) -> Matching {
    min_weight_perfect_matching_with(m, MatchingBackend::Auto)
}

/// Minimum-weight perfect matching with an explicit backend.
///
/// # Panics
/// Panics when the vertex count is odd.
pub fn min_weight_perfect_matching_with(m: &DistMatrix, backend: MatchingBackend) -> Matching {
    let n = m.len();
    assert!(
        n.is_multiple_of(2),
        "perfect matching needs an even vertex count, got {n}"
    );
    if n == 0 {
        return Matching {
            mates: Vec::new(),
            weight: 0.0,
        };
    }
    let mut result = match backend {
        MatchingBackend::Auto => {
            if n <= 16 {
                exact_dp(m)
            } else {
                blossom::min_weight_perfect_matching_blossom(m)
            }
        }
        MatchingBackend::ExactDp => exact_dp(m),
        MatchingBackend::Blossom => blossom::min_weight_perfect_matching_blossom(m),
        MatchingBackend::Greedy => greedy_improved(m),
    };
    // Recompute the weight in f64 from the mates to avoid scaling error.
    result.weight = matching_weight(m, &result.mates);
    debug_assert!(result.is_perfect());
    result
}

fn matching_weight(m: &DistMatrix, mates: &[usize]) -> f64 {
    mates
        .iter()
        .enumerate()
        .filter(|&(v, &p)| v < p)
        .map(|(v, &p)| m.get(v, p))
        .sum()
}

/// Exact `O(2^n · n)` bitmask DP.
fn exact_dp(m: &DistMatrix) -> Matching {
    let n = m.len();
    assert!(n <= 22, "exact DP matching limited to n <= 22, got {n}");
    let full: usize = (1usize << n) - 1;
    let mut dp = vec![f64::INFINITY; full + 1];
    let mut choice = vec![usize::MAX; full + 1];
    dp[0] = 0.0;
    for mask in 1..=full {
        if mask.count_ones() % 2 == 1 {
            continue;
        }
        let i = mask.trailing_zeros() as usize;
        let rest = mask & !(1 << i);
        let mut best = f64::INFINITY;
        let mut best_j = usize::MAX;
        let mut bits = rest;
        while bits != 0 {
            let j = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let prev = dp[rest & !(1 << j)];
            let cand = prev + m.get(i, j);
            if cand < best {
                best = cand;
                best_j = j;
            }
        }
        dp[mask] = best;
        choice[mask] = best_j;
    }
    // Reconstruct mates.
    let mut mates = vec![usize::MAX; n];
    let mut mask = full;
    while mask != 0 {
        let i = mask.trailing_zeros() as usize;
        let j = choice[mask];
        mates[i] = j;
        mates[j] = i;
        mask &= !(1 << i);
        mask &= !(1 << j);
    }
    Matching {
        weight: dp[full],
        mates,
    }
}

/// Greedy matching (cheapest edges first) followed by repeated 2-exchange
/// improvement until a local optimum.
fn greedy_improved(m: &DistMatrix) -> Matching {
    let n = m.len();
    let mut pairs: Vec<(usize, usize)> = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            pairs.push((i, j));
        }
    }
    pairs.sort_by(|a, b| uavdc_geom::cmp_f64(m.get(a.0, a.1), m.get(b.0, b.1)));
    let mut mates = vec![usize::MAX; n];
    for (i, j) in pairs {
        if mates[i] == usize::MAX && mates[j] == usize::MAX {
            mates[i] = j;
            mates[j] = i;
        }
    }
    // 2-exchange: for matched edges (a,b), (c,d) try (a,c)(b,d) and (a,d)(b,c).
    let mut improved = true;
    let mut rounds = 0;
    while improved && rounds < 64 {
        improved = false;
        rounds += 1;
        let edges: Vec<(usize, usize)> = mates
            .iter()
            .enumerate()
            .filter(|&(v, &p)| v < p)
            .map(|(v, &p)| (v, p))
            .collect();
        for x in 0..edges.len() {
            for y in (x + 1)..edges.len() {
                let (a, b) = edges[x];
                let (c, d) = edges[y];
                // Skip pairs already rewired this round.
                if mates[a] != b || mates[c] != d {
                    continue;
                }
                let cur = m.get(a, b) + m.get(c, d);
                let alt1 = m.get(a, c) + m.get(b, d);
                let alt2 = m.get(a, d) + m.get(b, c);
                if alt1 < cur - 1e-12 && alt1 <= alt2 {
                    mates[a] = c;
                    mates[c] = a;
                    mates[b] = d;
                    mates[d] = b;
                    improved = true;
                } else if alt2 < cur - 1e-12 {
                    mates[a] = d;
                    mates[d] = a;
                    mates[b] = c;
                    mates[c] = b;
                    improved = true;
                }
            }
        }
    }
    Matching {
        weight: matching_weight(m, &mates),
        mates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn euclid(pts: &[(f64, f64)]) -> DistMatrix {
        DistMatrix::from_euclidean(pts)
    }

    #[test]
    fn empty_matching() {
        let m = DistMatrix::zeros(0);
        let r = min_weight_perfect_matching(&m);
        assert!(r.mates.is_empty());
        assert_eq!(r.weight, 0.0);
    }

    #[test]
    #[should_panic(expected = "even vertex count")]
    fn odd_count_panics() {
        let m = DistMatrix::zeros(3);
        let _ = min_weight_perfect_matching(&m);
    }

    #[test]
    fn two_vertices_match_each_other() {
        let m = euclid(&[(0.0, 0.0), (3.0, 4.0)]);
        for backend in [
            MatchingBackend::ExactDp,
            MatchingBackend::Blossom,
            MatchingBackend::Greedy,
        ] {
            let r = min_weight_perfect_matching_with(&m, backend);
            assert_eq!(r.mates, vec![1, 0], "{backend:?}");
            assert_eq!(r.weight, 5.0, "{backend:?}");
        }
    }

    #[test]
    fn four_on_a_line_pairs_neighbors() {
        // 0-1 and 2-3 (cost 2) beats 0-2/1-3 (cost 4) and 0-3/1-2 (cost 4).
        let m = euclid(&[(0.0, 0.0), (1.0, 0.0), (10.0, 0.0), (11.0, 0.0)]);
        for backend in [
            MatchingBackend::ExactDp,
            MatchingBackend::Blossom,
            MatchingBackend::Greedy,
        ] {
            let r = min_weight_perfect_matching_with(&m, backend);
            assert!(r.is_perfect());
            assert_eq!(r.weight, 2.0, "{backend:?}");
            assert_eq!(r.mates[0], 1);
            assert_eq!(r.mates[2], 3);
        }
    }

    #[test]
    fn greedy_trap_instance_blossom_still_optimal() {
        // Greedy takes the cheapest edge (1,2) first and is forced into
        // expensive leftovers; the optimum avoids it.
        let mut m = DistMatrix::zeros(4);
        m.set(1, 2, 1.0);
        m.set(0, 1, 2.0);
        m.set(2, 3, 2.0);
        m.set(0, 3, 100.0);
        m.set(0, 2, 100.0);
        m.set(1, 3, 100.0);
        let exact = min_weight_perfect_matching_with(&m, MatchingBackend::ExactDp);
        let blossom = min_weight_perfect_matching_with(&m, MatchingBackend::Blossom);
        assert_eq!(exact.weight, 4.0);
        assert!((blossom.weight - exact.weight).abs() < 1e-9);
        // Greedy-with-improvement also escapes this particular trap via
        // 2-exchange, ending perfect regardless.
        let greedy = min_weight_perfect_matching_with(&m, MatchingBackend::Greedy);
        assert!(greedy.is_perfect());
        assert!(greedy.weight <= 103.0);
    }

    #[test]
    fn blossom_matches_dp_on_fixed_grid() {
        let pts: Vec<(f64, f64)> = (0..12)
            .map(|i| ((i * 29 % 17) as f64, (i * 43 % 19) as f64))
            .collect();
        let m = euclid(&pts);
        let dp = min_weight_perfect_matching_with(&m, MatchingBackend::ExactDp);
        let bl = min_weight_perfect_matching_with(&m, MatchingBackend::Blossom);
        assert!(bl.is_perfect());
        assert!(
            (bl.weight - dp.weight).abs() < 1e-6 * (1.0 + dp.weight),
            "blossom {} vs dp {}",
            bl.weight,
            dp.weight
        );
    }

    #[test]
    fn blossom_handles_larger_instance() {
        // 60 vertices: too big for DP; check perfectness and that blossom
        // is no worse than greedy.
        let pts: Vec<(f64, f64)> = (0..60)
            .map(|i| ((i * 37 % 100) as f64, (i * 61 % 100) as f64))
            .collect();
        let m = euclid(&pts);
        let bl = min_weight_perfect_matching_with(&m, MatchingBackend::Blossom);
        let gr = min_weight_perfect_matching_with(&m, MatchingBackend::Greedy);
        assert!(bl.is_perfect());
        assert!(gr.is_perfect());
        assert!(bl.weight <= gr.weight + 1e-6);
    }

    #[test]
    fn edges_listing_is_consistent() {
        let m = euclid(&[(0.0, 0.0), (1.0, 0.0), (5.0, 0.0), (6.0, 0.0)]);
        let r = min_weight_perfect_matching(&m);
        let es = r.edges();
        assert_eq!(es.len(), 2);
        for (u, v) in es {
            assert_eq!(r.mates[u], v);
            assert_eq!(r.mates[v], u);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_blossom_matches_exact_dp(
            pts in proptest::collection::vec((0.0f64..1000.0, 0.0f64..1000.0), 1..7)
                .prop_map(|half| {
                    // Build an even-sized instance by mirroring points.
                    let mut v = half.clone();
                    for &(x, y) in &half { v.push((1000.0 - x, y + 13.0)); }
                    v
                })
        ) {
            let m = euclid(&pts);
            let dp = min_weight_perfect_matching_with(&m, MatchingBackend::ExactDp);
            let bl = min_weight_perfect_matching_with(&m, MatchingBackend::Blossom);
            prop_assert!(bl.is_perfect());
            prop_assert!((bl.weight - dp.weight).abs() < 1e-5 * (1.0 + dp.weight),
                "blossom {} vs dp {}", bl.weight, dp.weight);
        }

        #[test]
        fn prop_greedy_is_perfect_and_bounded(
            pts in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 2..15)
                .prop_map(|mut v| { if v.len() % 2 == 1 { v.pop(); } v })
        ) {
            prop_assume!(!pts.is_empty());
            let m = euclid(&pts);
            let gr = min_weight_perfect_matching_with(&m, MatchingBackend::Greedy);
            prop_assert!(gr.is_perfect());
            if pts.len() <= 14 {
                let dp = min_weight_perfect_matching_with(&m, MatchingBackend::ExactDp);
                // Greedy is approximate but never better than exact.
                prop_assert!(gr.weight >= dp.weight - 1e-9);
            }
        }
    }
}
