//! O(n³) primal–dual blossom algorithm for maximum-weight matching,
//! specialised here to *minimum-weight perfect* matching on complete
//! graphs.
//!
//! The implementation follows the classic O(n³) multiple-tree primal–dual
//! scheme (Galil's presentation): maintain dual labels on vertices and
//! blossoms, grow alternating forests from free vertices, shrink odd
//! cycles into blossoms, expand blossoms whose dual reaches zero, and
//! adjust duals by the minimum slack. Weights are scaled to integers so
//! the `/2` dual arithmetic stays exact.
//!
//! Minimum-weight perfect matching is obtained by running maximum-weight
//! matching on transformed weights `w'(u,v) = C - w(u,v)` with
//! `C > max w`: every transformed weight is strictly positive, so on a
//! complete graph with an even vertex count the maximum matching is
//! perfect, and maximising `Σ(C - w)` minimises `Σw`.
//!
//! Correctness is established in the parent module's tests by comparison
//! against exact bitmask DP over thousands of random instances.

use super::Matching;
use crate::DistMatrix;
use std::collections::VecDeque;

const INF: i64 = i64::MAX / 4;

/// Entry point: minimum-weight perfect matching via blossom.
///
/// # Panics
/// Panics when `m.len()` is odd (checked by the caller as well).
pub fn min_weight_perfect_matching_blossom(m: &DistMatrix) -> Matching {
    let n = m.len();
    assert!(n.is_multiple_of(2));
    if n == 0 {
        return Matching {
            mates: Vec::new(),
            weight: 0.0,
        };
    }
    // Scale distances to integers: up to ~2^30 of resolution.
    let dmax = m.max_weight();
    let scale = if dmax > 0.0 {
        (1u64 << 30) as f64 / dmax
    } else {
        1.0
    };
    let to_int = |d: f64| -> i64 { (d * scale).round() as i64 };
    let c = to_int(dmax) + 1;
    let mut solver = Solver::new(n);
    for u in 1..=n {
        for v in 1..=n {
            if u != v {
                // Strictly positive transformed weight.
                let w = c - to_int(m.get(u - 1, v - 1)) + 1;
                solver.set_weight(u, v, w);
            }
        }
    }
    let mates1 = solver.solve();
    let mut mates = vec![usize::MAX; n];
    for u in 1..=n {
        assert!(
            mates1[u] != 0,
            "blossom failed to produce a perfect matching"
        );
        mates[u - 1] = mates1[u] - 1;
    }
    let weight = mates
        .iter()
        .enumerate()
        .filter(|&(v, &p)| v < p)
        .map(|(v, &p)| m.get(v, p))
        .sum();
    Matching { mates, weight }
}

/// The solver state. All arrays are 1-indexed like the classical
/// presentation; index 0 is a sentinel meaning "none". Vertices are
/// `1..=n`; blossoms get ids `n+1..=2n`.
struct Solver {
    n: usize,
    n_x: usize,
    dim: usize,
    /// Edge store: for pair (u,v) of *node ids* (vertex or blossom), the
    /// underlying real-vertex edge (eu, ev) and weight w. Flattened dim².
    eu: Vec<u32>,
    ev: Vec<u32>,
    ew: Vec<i64>,
    lab: Vec<i64>,
    mate: Vec<usize>,
    slack: Vec<usize>,
    st: Vec<usize>,
    pa: Vec<usize>,
    /// flower_from[b * (n+1) + x]: which sub-blossom of b contains real
    /// vertex x.
    flower_from: Vec<usize>,
    s: Vec<i8>,
    vis: Vec<usize>,
    vis_t: usize,
    flower: Vec<Vec<usize>>,
    q: VecDeque<usize>,
}

impl Solver {
    fn new(n: usize) -> Self {
        let dim = 2 * n + 1;
        Solver {
            n,
            n_x: n,
            dim,
            eu: vec![0; dim * dim],
            ev: vec![0; dim * dim],
            ew: vec![0; dim * dim],
            lab: vec![0; dim],
            mate: vec![0; dim],
            slack: vec![0; dim],
            st: vec![0; dim],
            pa: vec![0; dim],
            flower_from: vec![0; dim * (n + 1)],
            s: vec![-1; dim],
            vis: vec![0; dim],
            vis_t: 0,
            flower: vec![Vec::new(); dim],
            q: VecDeque::new(),
        }
    }

    #[inline]
    fn idx(&self, u: usize, v: usize) -> usize {
        u * self.dim + v
    }

    fn set_weight(&mut self, u: usize, v: usize, w: i64) {
        let i = self.idx(u, v);
        self.eu[i] = u as u32;
        self.ev[i] = v as u32;
        self.ew[i] = w;
    }

    #[inline]
    fn e_delta(&self, u: usize, v: usize) -> i64 {
        let i = self.idx(u, v);
        self.lab[self.eu[i] as usize] + self.lab[self.ev[i] as usize] - self.ew[i] * 2
    }

    #[inline]
    fn ff(&self, b: usize, x: usize) -> usize {
        self.flower_from[b * (self.n + 1) + x]
    }

    #[inline]
    fn set_ff(&mut self, b: usize, x: usize, val: usize) {
        self.flower_from[b * (self.n + 1) + x] = val;
    }

    fn update_slack(&mut self, u: usize, x: usize) {
        if self.slack[x] == 0 || self.e_delta(u, x) < self.e_delta(self.slack[x], x) {
            self.slack[x] = u;
        }
    }

    fn set_slack(&mut self, x: usize) {
        self.slack[x] = 0;
        for u in 1..=self.n {
            if self.ew[self.idx(u, x)] > 0 && self.st[u] != x && self.s[self.st[u]] == 0 {
                self.update_slack(u, x);
            }
        }
    }

    fn q_push(&mut self, x: usize) {
        if x <= self.n {
            self.q.push_back(x);
        } else {
            for i in 0..self.flower[x].len() {
                let f = self.flower[x][i];
                self.q_push(f);
            }
        }
    }

    fn set_st(&mut self, x: usize, b: usize) {
        self.st[x] = b;
        if x > self.n {
            for i in 0..self.flower[x].len() {
                let f = self.flower[x][i];
                self.set_st(f, b);
            }
        }
    }

    /// Position of sub-blossom `xr` within blossom `b`'s cycle, with the
    /// cycle re-oriented so the position is even (so the alternating path
    /// inside the blossom pairs up correctly).
    fn get_pr(&mut self, b: usize, xr: usize) -> usize {
        let pr = self.flower[b]
            .iter()
            .position(|&f| f == xr)
            // lint:allow(panic-site): blossom structure invariant — callers pass a sub-blossom of b
            .expect("xr must be in flower");
        if pr % 2 == 1 {
            self.flower[b][1..].reverse();
            self.flower[b].len() - pr
        } else {
            pr
        }
    }

    fn set_match(&mut self, u: usize, v: usize) {
        let i = self.idx(u, v);
        self.mate[u] = self.ev[i] as usize;
        if u > self.n {
            let eu = self.eu[i] as usize;
            let xr = self.ff(u, eu);
            let pr = self.get_pr(u, xr);
            for k in 0..pr {
                let a = self.flower[u][k];
                let b = self.flower[u][k ^ 1];
                self.set_match(a, b);
            }
            self.set_match(xr, v);
            self.flower[u].rotate_left(pr);
        }
    }

    fn augment(&mut self, u: usize, v: usize) {
        let mut u = u;
        let mut v = v;
        loop {
            let xnv = self.st[self.mate[u]];
            self.set_match(u, v);
            if xnv == 0 {
                return;
            }
            let pa_xnv = self.pa[xnv];
            let next_u = self.st[pa_xnv];
            self.set_match(xnv, next_u);
            v = xnv;
            u = next_u;
        }
    }

    fn get_lca(&mut self, mut u: usize, mut v: usize) -> usize {
        self.vis_t += 1;
        let t = self.vis_t;
        while u != 0 || v != 0 {
            if u != 0 {
                if self.vis[u] == t {
                    return u;
                }
                self.vis[u] = t;
                u = self.st[self.mate[u]];
                if u != 0 {
                    u = self.st[self.pa[u]];
                }
            }
            std::mem::swap(&mut u, &mut v);
        }
        0
    }

    fn add_blossom(&mut self, u: usize, lca: usize, v: usize) {
        let mut b = self.n + 1;
        while b <= self.n_x && self.st[b] != 0 {
            b += 1;
        }
        if b > self.n_x {
            self.n_x += 1;
        }
        self.lab[b] = 0;
        self.s[b] = 0;
        self.mate[b] = self.mate[lca];
        self.flower[b].clear();
        self.flower[b].push(lca);
        // Walk u-side up to the lca.
        let mut x = u;
        while x != lca {
            self.flower[b].push(x);
            let y = self.st[self.mate[x]];
            self.flower[b].push(y);
            self.q_push(y);
            x = self.st[self.pa[y]];
        }
        self.flower[b][1..].reverse();
        // Walk v-side up to the lca.
        let mut x = v;
        while x != lca {
            self.flower[b].push(x);
            let y = self.st[self.mate[x]];
            self.flower[b].push(y);
            self.q_push(y);
            x = self.st[self.pa[y]];
        }
        self.set_st(b, b);
        for x in 1..=self.n_x {
            let i = self.idx(b, x);
            let j = self.idx(x, b);
            self.ew[i] = 0;
            self.ew[j] = 0;
        }
        for x in 1..=self.n {
            self.set_ff(b, x, 0);
        }
        for k in 0..self.flower[b].len() {
            let xs = self.flower[b][k];
            for x in 1..=self.n_x {
                let bx = self.idx(b, x);
                if self.ew[bx] == 0 || self.e_delta(xs, x) < self.e_delta(b, x) {
                    let sx = self.idx(xs, x);
                    let xs_rev = self.idx(x, xs);
                    let xb = self.idx(x, b);
                    self.eu[bx] = self.eu[sx];
                    self.ev[bx] = self.ev[sx];
                    self.ew[bx] = self.ew[sx];
                    self.eu[xb] = self.eu[xs_rev];
                    self.ev[xb] = self.ev[xs_rev];
                    self.ew[xb] = self.ew[xs_rev];
                }
            }
            for x in 1..=self.n {
                if xs <= self.n {
                    if xs == x {
                        self.set_ff(b, x, xs);
                    }
                } else if self.ff(xs, x) != 0 {
                    self.set_ff(b, x, xs);
                }
            }
        }
        self.set_slack(b);
    }

    fn expand_blossom(&mut self, b: usize) {
        for i in 0..self.flower[b].len() {
            let f = self.flower[b][i];
            self.set_st(f, f);
        }
        let pa_b = self.pa[b];
        let eu_pa = self.eu[self.idx(b, pa_b)] as usize;
        let xr = self.ff(b, eu_pa);
        let pr = self.get_pr(b, xr);
        let mut i = 0;
        while i < pr {
            let xs = self.flower[b][i];
            let xns = self.flower[b][i + 1];
            self.pa[xs] = self.eu[self.idx(xns, xs)] as usize;
            self.s[xs] = 1;
            self.s[xns] = 0;
            self.slack[xs] = 0;
            self.set_slack(xns);
            self.q_push(xns);
            i += 2;
        }
        self.s[xr] = 1;
        self.pa[xr] = self.pa[b];
        for i in (pr + 1)..self.flower[b].len() {
            let xs = self.flower[b][i];
            self.s[xs] = -1;
            self.set_slack(xs);
        }
        self.st[b] = 0;
    }

    /// Processes a tight edge found between trees/vertices. Returns true
    /// when an augmenting path was applied.
    fn on_found_edge(&mut self, eu: usize, ev: usize) -> bool {
        let u = self.st[eu];
        let v = self.st[ev];
        if self.s[v] == -1 {
            self.pa[v] = eu;
            self.s[v] = 1;
            let nu = self.st[self.mate[v]];
            self.slack[v] = 0;
            self.slack[nu] = 0;
            self.s[nu] = 0;
            self.q_push(nu);
        } else if self.s[v] == 0 {
            let lca = self.get_lca(u, v);
            if lca == 0 {
                self.augment(u, v);
                self.augment(v, u);
                return true;
            }
            self.add_blossom(u, lca, v);
        }
        false
    }

    /// One phase: grow forests until an augmentation happens (true) or the
    /// duals prove no further augmentation exists (false).
    fn matching_phase(&mut self) -> bool {
        for x in 1..=self.n_x {
            self.s[x] = -1;
            self.slack[x] = 0;
        }
        self.q.clear();
        for x in 1..=self.n_x {
            if self.st[x] == x && self.mate[x] == 0 {
                self.pa[x] = 0;
                self.s[x] = 0;
                self.q_push(x);
            }
        }
        if self.q.is_empty() {
            return false;
        }
        loop {
            while let Some(u) = self.q.pop_front() {
                if self.s[self.st[u]] == 1 {
                    continue;
                }
                for v in 1..=self.n {
                    if self.ew[self.idx(u, v)] > 0 && self.st[u] != self.st[v] {
                        if self.e_delta(u, v) == 0 {
                            if self.on_found_edge(u, v) {
                                return true;
                            }
                        } else {
                            let stv = self.st[v];
                            self.update_slack(u, stv);
                        }
                    }
                }
            }
            // Dual adjustment.
            let mut d = INF;
            for b in (self.n + 1)..=self.n_x {
                if self.st[b] == b && self.s[b] == 1 {
                    d = d.min(self.lab[b] / 2);
                }
            }
            for x in 1..=self.n_x {
                if self.st[x] == x && self.slack[x] != 0 {
                    let delta = self.e_delta(self.slack[x], x);
                    if self.s[x] == -1 {
                        d = d.min(delta);
                    } else if self.s[x] == 0 {
                        d = d.min(delta / 2);
                    }
                }
            }
            for u in 1..=self.n {
                match self.s[self.st[u]] {
                    0 => {
                        if self.lab[u] <= d {
                            return false;
                        }
                        self.lab[u] -= d;
                    }
                    1 => self.lab[u] += d,
                    _ => {}
                }
            }
            for b in (self.n + 1)..=self.n_x {
                if self.st[b] == b {
                    match self.s[b] {
                        0 => self.lab[b] += d * 2,
                        1 => self.lab[b] -= d * 2,
                        _ => {}
                    }
                }
            }
            self.q.clear();
            for x in 1..=self.n_x {
                if self.st[x] == x
                    && self.slack[x] != 0
                    && self.st[self.slack[x]] != x
                    && self.e_delta(self.slack[x], x) == 0
                {
                    let (eu, ev) = (self.slack[x], x);
                    let i = self.idx(eu, ev);
                    let (reu, rev) = (self.eu[i] as usize, self.ev[i] as usize);
                    if self.on_found_edge(reu, rev) {
                        return true;
                    }
                }
            }
            for b in (self.n + 1)..=self.n_x {
                if self.st[b] == b && self.s[b] == 1 && self.lab[b] == 0 {
                    self.expand_blossom(b);
                }
            }
        }
    }

    /// Runs the full algorithm and returns the 1-indexed mate array.
    fn solve(&mut self) -> Vec<usize> {
        for u in 0..=self.n {
            self.st[u] = u;
            self.flower[u].clear();
        }
        let mut w_max = 0;
        for u in 1..=self.n {
            for v in 1..=self.n {
                if u == v {
                    self.set_ff(u, v, u);
                } else {
                    self.set_ff(u, v, 0);
                }
                w_max = w_max.max(self.ew[self.idx(u, v)]);
            }
        }
        for u in 1..=self.n {
            self.lab[u] = w_max;
        }
        while self.matching_phase() {}
        self.mate[..=self.n].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_vertex_instance() {
        let m = DistMatrix::from_euclidean(&[(0.0, 0.0), (1.0, 1.0)]);
        let r = min_weight_perfect_matching_blossom(&m);
        assert_eq!(r.mates, vec![1, 0]);
    }

    #[test]
    fn blossom_forcing_instance() {
        // A 5-cycle with one pendant forces blossom shrinking in the
        // search. Build 6 points where an odd cycle of tight edges forms.
        let pts = [
            (0.0, 0.0),
            (2.0, 0.0),
            (3.0, 1.8),
            (1.0, 3.0),
            (-1.0, 1.8),
            (10.0, 0.0),
        ];
        let m = DistMatrix::from_euclidean(&pts);
        let r = min_weight_perfect_matching_blossom(&m);
        assert!(r.is_perfect());
        // Compare with DP ground truth computed by hand enumeration: use
        // crate-internal DP via public API in parent tests; here just
        // sanity-bound the weight (3 edges, each <= 10.3).
        assert!(r.weight > 0.0 && r.weight < 31.0);
    }

    #[test]
    fn equal_weights_degenerate() {
        // All pairwise distances equal: any perfect matching is optimal.
        let mut m = DistMatrix::zeros(6);
        for i in 0..6 {
            for j in (i + 1)..6 {
                m.set(i, j, 5.0);
            }
        }
        let r = min_weight_perfect_matching_blossom(&m);
        assert!(r.is_perfect());
        assert!((r.weight - 15.0).abs() < 1e-9);
    }

    #[test]
    fn coincident_points_zero_weight() {
        let m = DistMatrix::from_euclidean(&[(1.0, 1.0); 4]);
        let r = min_weight_perfect_matching_blossom(&m);
        assert!(r.is_perfect());
        assert_eq!(r.weight, 0.0);
    }
}
