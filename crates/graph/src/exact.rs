//! Exact TSP via Held–Karp dynamic programming (`O(2^n · n²)`).

use crate::{DistMatrix, Tour};

/// Practical vertex limit for [`held_karp`]; beyond this the table exceeds
/// a gigabyte.
pub const HELD_KARP_MAX_N: usize = 20;

/// Optimal closed tour by Held–Karp DP, or `None` when `n` exceeds
/// [`HELD_KARP_MAX_N`].
///
/// Used as ground truth in tests and for exact re-touring of very small
/// hovering-location sets inside the planners.
pub fn held_karp(m: &DistMatrix) -> Option<Tour> {
    let n = m.len();
    if n > HELD_KARP_MAX_N {
        return None;
    }
    if n <= 2 {
        return Some(Tour::new((0..n).collect()));
    }
    // dp[mask][v]: min cost path starting at 0, visiting exactly the
    // vertices of mask (vertex 0 excluded from the mask encoding; bit i
    // represents vertex i+1), ending at v+1.
    let k = n - 1;
    let full: usize = (1 << k) - 1;
    let mut dp = vec![f64::INFINITY; (full + 1) * k];
    let mut parent = vec![usize::MAX; (full + 1) * k];
    for v in 0..k {
        dp[(1 << v) * k + v] = m.get(0, v + 1);
    }
    for mask in 1..=full {
        for last in 0..k {
            if mask & (1 << last) == 0 {
                continue;
            }
            let cur = dp[mask * k + last];
            if !cur.is_finite() {
                continue;
            }
            let rest = full & !mask;
            let mut bits = rest;
            while bits != 0 {
                let nxt = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let nm = mask | (1 << nxt);
                let cand = cur + m.get(last + 1, nxt + 1);
                if cand < dp[nm * k + nxt] {
                    dp[nm * k + nxt] = cand;
                    parent[nm * k + nxt] = last;
                }
            }
        }
    }
    // Close the tour back to 0.
    let mut best = f64::INFINITY;
    let mut best_last = 0;
    for v in 0..k {
        let cand = dp[full * k + v] + m.get(v + 1, 0);
        if cand < best {
            best = cand;
            best_last = v;
        }
    }
    // Reconstruct.
    let mut order = Vec::with_capacity(n);
    let mut mask = full;
    let mut v = best_last;
    while v != usize::MAX {
        order.push(v + 1);
        let p = parent[mask * k + v];
        mask &= !(1 << v);
        v = p;
    }
    order.push(0);
    order.reverse();
    debug_assert_eq!(order.len(), n);
    Some(Tour::new(order))
}

/// Optimal tour *length* by brute force permutation — `O(n!)`, for tests
/// against Held–Karp on very small instances only.
#[doc(hidden)]
// lint:allow(raw-quantity): DistMatrix weights are dimension-generic; uavdc-core assigns joules at the AuxGraph boundary
pub fn brute_force_length(m: &DistMatrix) -> f64 {
    let n = m.len();
    if n < 2 {
        return 0.0;
    }
    let mut rest: Vec<usize> = (1..n).collect();
    let mut best = f64::INFINITY;
    permute(&mut rest, 0, &mut |perm| {
        let mut len = m.get(0, perm[0]);
        for w in perm.windows(2) {
            len += m.get(w[0], w[1]);
        }
        // lint:allow(panic-site): perm is (1..n) with n >= 2, never empty
        len += m.get(*perm.last().unwrap(), 0);
        if len < best {
            best = len;
        }
    });
    best
}

fn permute(v: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
    if k == v.len() {
        f(v);
        return;
    }
    for i in k..v.len() {
        v.swap(k, i);
        permute(v, k + 1, f);
        v.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn trivial_sizes() {
        assert_eq!(held_karp(&DistMatrix::zeros(0)).unwrap().len(), 0);
        assert_eq!(held_karp(&DistMatrix::zeros(1)).unwrap().len(), 1);
        assert_eq!(held_karp(&DistMatrix::zeros(2)).unwrap().len(), 2);
    }

    #[test]
    fn too_large_returns_none() {
        assert!(held_karp(&DistMatrix::zeros(HELD_KARP_MAX_N + 1)).is_none());
    }

    #[test]
    fn square_optimal() {
        let m = DistMatrix::from_euclidean(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]);
        let t = held_karp(&m).unwrap();
        assert!((t.length(&m) - 4.0).abs() < 1e-12);
        assert_eq!(t.order()[0], 0);
    }

    #[test]
    fn line_optimal_is_out_and_back() {
        let m = DistMatrix::from_euclidean(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (5.0, 0.0)]);
        let t = held_karp(&m).unwrap();
        assert!((t.length(&m) - 10.0).abs() < 1e-12);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_matches_brute_force(
            pts in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 3..8),
        ) {
            let m = DistMatrix::from_euclidean(&pts);
            let hk = held_karp(&m).unwrap().length(&m);
            let bf = brute_force_length(&m);
            prop_assert!((hk - bf).abs() < 1e-9, "held-karp {} vs brute {}", hk, bf);
        }

        #[test]
        fn prop_tour_is_permutation_starting_at_zero(
            pts in proptest::collection::vec((0.0f64..50.0, 0.0f64..50.0), 3..10),
        ) {
            let m = DistMatrix::from_euclidean(&pts);
            let t = held_karp(&m).unwrap();
            prop_assert_eq!(t.order()[0], 0);
            let mut order = t.order().to_vec();
            order.sort_unstable();
            prop_assert_eq!(order, (0..pts.len()).collect::<Vec<_>>());
        }
    }
}
