//! Dense metric graph algorithms for UAV tour planning.
//!
//! The planners in `uavdc-core` repeatedly need classic combinatorial
//! machinery over complete Euclidean/metric graphs:
//!
//! * **Christofides' TSP heuristic** \[Christofides 1976\] — the tour
//!   subroutine of the paper's Algorithm 2, Algorithm 3, and benchmark
//!   heuristic. Built here from its three ingredients:
//!   [`mst::prim_mst`], a minimum-weight perfect matching
//!   ([`matching::min_weight_perfect_matching`], exact DP for small
//!   instances, an O(n³) blossom algorithm in general, plus a fast greedy
//!   mode), and a Hierholzer Euler circuit ([`euler::euler_circuit`]).
//! * **Tour construction heuristics** — nearest neighbour and cheapest
//!   insertion ([`construction`]), the latter also exposing the O(n)
//!   *insertion delta* used by the fast candidate-ranking mode of
//!   Algorithm 2.
//! * **Tour improvement** — 2-opt and Or-opt local search ([`improve`]).
//! * **Exact TSP** — Held–Karp dynamic programming for small instances
//!   ([`exact::held_karp`]), used as ground truth in tests and for tiny
//!   tours inside the planners.
//!
//! All algorithms operate on a [`DistMatrix`], a dense symmetric matrix of
//! non-negative edge weights; tours are permutations of `0..n` wrapped in
//! [`Tour`].
//!
//! # Example
//!
//! ```
//! use uavdc_graph::{DistMatrix, christofides::christofides};
//!
//! // Four corners of a unit square: optimal tour length 4.
//! let pts = [(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)];
//! let m = DistMatrix::from_euclidean(&pts);
//! let tour = christofides(&m);
//! assert!(tour.length(&m) <= 1.5 * 4.0 + 1e-9);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bound;
pub mod christofides;
pub mod construction;
pub mod euler;
pub mod exact;
pub mod improve;
pub mod incremental;
pub mod matching;
mod matrix;
pub mod mst;
mod tour;

pub use matrix::DistMatrix;
pub use tour::Tour;
