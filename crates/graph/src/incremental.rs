//! Incremental Christofides tour maintenance (DESIGN.md §16).
//!
//! The paper's Algorithm 2 grows its hovering-stop set one candidate at a
//! time; re-running Christofides from scratch after every acceptance costs
//! `O(n³)` in the blossom matching alone. [`IncrementalTour`] maintains a
//! closed tour (depot fixed at stop id 0) *incrementally* under
//! single-stop insertion and removal:
//!
//! * **Patching** — cheapest-insertion splices ([`IncrementalTour::insert`]),
//!   removal splices ([`IncrementalTour::remove`]) and Or-opt / 2-opt local
//!   repair ([`IncrementalTour::or_opt_pass`],
//!   [`IncrementalTour::two_opt_compact`]) adjust the tour in `O(n)`–`O(n²)`
//!   per patch without touching the matching.
//! * **Cached structures** — every pairwise distance ever needed is kept in
//!   a growable triangular matrix. Each cached entry is the pure function
//!   value `((dx·dx + dy·dy)).sqrt()` of the two stop coordinates — exactly
//!   what `Point2::distance` computes — so a cached read is bit-identical
//!   to a fresh evaluation. This is the keystone of the patched ≡ rebuilt
//!   equivalence argument: rebuilds that consume the cache produce the same
//!   bits as rebuilds that recompute.
//! * **Re-tour with matching reuse** — a full Christofides rebuild
//!   ([`IncrementalTour::retour`]) drives the standard pipeline
//!   ([`crate::mst::prim_mst`] → odd vertices → perfect matching → Euler
//!   circuit → shortcut → 2-opt polish) over the cached matrix, memoising
//!   the odd-vertex perfect matching keyed by the odd stop-id list:
//!   rebuilds whose odd sets coincide skip the `O(n³)` matching entirely.
//!   Speculative scoring ([`IncrementalTour::speculative_order`]) rebuilds
//!   with one extra phantom stop — Algorithm 2's per-candidate `TSP(S ∪
//!   {s})` — sharing the same matrix cache and matching memo.
//! * **Re-tour policy** — [`RetourPolicy`] optionally schedules a full
//!   rebuild every K patches; [`RetourPolicy::PatchOnly`] leaves compaction
//!   entirely to the caller (Algorithm 2's fast-insertion mode, whose
//!   committed plans are hash-frozen, uses this).
//!
//! Because rebuilds read only cached (≡ recomputed) distances and run the
//! deterministic pipeline, a patched-then-rebuilt tour is bit-identical —
//! same stop order, same length — to a from-scratch Christofides over the
//! same stop set. `tests/incremental_props.rs` drives randomized
//! insert/remove sequences through both paths and asserts exactly that.
//!
//! The module also hosts the two branch-predictable batch kernels the lazy
//! engine of `uavdc-core::alg2` uses to make its (operation-count-frozen)
//! rescans cheap: [`distances_to_point`] and [`InsertionKernel`]. Both are
//! specified — and property-tested — to be bit-identical per lane to their
//! scalar `Point2` counterparts.

use std::collections::BTreeMap;

use crate::christofides::{christofides_with_obs, ChristofidesConfig};
use crate::euler::{euler_circuit, shortcut_circuit};
use crate::improve::{or_opt, two_opt};
use crate::matching::min_weight_perfect_matching_with;
use crate::mst::{odd_degree_vertices, prim_mst};
use crate::{DistMatrix, Tour};
use uavdc_obs::Recorder;

/// Deterministic counters of incremental-tour maintenance work.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TourCounters {
    /// Incremental patches applied: insertion splices, removal splices,
    /// Or-opt relocations and 2-opt compactions that changed the tour.
    pub tour_patches: u64,
    /// Full Christofides rebuilds, including speculative scoring runs and
    /// trivial `n <= 3` identity rebuilds.
    pub full_retours: u64,
}

/// When [`IncrementalTour`] schedules a full Christofides rebuild on its
/// own. Only [`IncrementalTour::insert`], [`IncrementalTour::insert_id_at`]
/// and [`IncrementalTour::remove`] consult the policy; the local-search
/// patches never trigger a rebuild.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum RetourPolicy {
    /// Never rebuild automatically; the caller compacts (or calls
    /// [`IncrementalTour::retour`]) when it wants to.
    #[default]
    PatchOnly,
    /// Rebuild after every `K > 0` patches.
    EveryKPatches(u32),
}

/// A closed tour over appendable stops with cached distances, patch-based
/// maintenance and memoised Christofides rebuilds. See the module docs.
///
/// Stop id 0 is the depot: it is created by [`IncrementalTour::new`],
/// always stays in the tour, and every produced order starts with it.
#[derive(Clone, Debug)]
pub struct IncrementalTour {
    /// Stop coordinates by id (structure-of-arrays for the kernels).
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// Is the stop currently part of the tour?
    in_tour: Vec<bool>,
    /// Lower-triangular pairwise distances: entry `(i, j)` with `i > j`
    /// lives at `i*(i-1)/2 + j`. Grown by one row per appended stop.
    dist: Vec<f64>,
    /// Tour as stop ids; `order[0] == 0`.
    order: Vec<usize>,
    /// `edge_len[k]` = distance between `order[k]` and
    /// `order[(k+1) % len]`; empty while the tour has fewer than 2 stops.
    edge_len: Vec<f64>,
    policy: RetourPolicy,
    patches_since_retour: u32,
    counters: TourCounters,
    config: ChristofidesConfig,
    /// Odd stop-id list → perfect-matching pairs (odd-list index space).
    matching_memo: BTreeMap<Vec<usize>, Vec<(usize, usize)>>,
}

impl IncrementalTour {
    /// A depot-only tour. The depot becomes stop id 0.
    pub fn new(depot: (f64, f64), policy: RetourPolicy) -> Self {
        if let RetourPolicy::EveryKPatches(k) = policy {
            assert!(k > 0, "EveryKPatches period must be positive");
        }
        IncrementalTour {
            xs: vec![depot.0],
            ys: vec![depot.1],
            in_tour: vec![true],
            dist: Vec::new(),
            order: vec![0],
            edge_len: Vec::new(),
            policy,
            patches_since_retour: 0,
            counters: TourCounters::default(),
            config: ChristofidesConfig::default(),
            matching_memo: BTreeMap::new(),
        }
    }

    /// Number of stops currently in the tour.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` when only the depot remains (the tour is never fully empty).
    pub fn is_empty(&self) -> bool {
        self.order.len() <= 1
    }

    /// The current tour as stop ids, depot first.
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Cached closing-edge-inclusive edge lengths, `edge_lengths()[k]`
    /// spanning `order()[k] → order()[(k+1) % len]`. Empty below 2 stops.
    pub fn edge_costs(&self) -> &[f64] {
        &self.edge_len
    }

    /// Coordinates of stop `id`.
    pub fn point(&self, id: usize) -> (f64, f64) {
        (self.xs[id], self.ys[id])
    }

    /// Is stop `id` currently part of the tour?
    pub fn contains(&self, id: usize) -> bool {
        self.in_tour[id]
    }

    /// Maintenance-work counters accumulated so far.
    pub fn counters(&self) -> TourCounters {
        self.counters
    }

    /// Patches applied since the last full rebuild.
    pub fn patches_since_retour(&self) -> u32 {
        self.patches_since_retour
    }

    /// Cached distance between stops `i` and `j` (0 when `i == j`).
    /// Bit-identical to recomputing `Point2::distance` on their
    /// coordinates: the cache stores exactly that value.
    pub fn cost(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 0.0;
        }
        let (hi, lo) = if i > j { (i, j) } else { (j, i) };
        self.dist[hi * (hi - 1) / 2 + lo]
    }

    /// Length of the current closed tour: the left-to-right sum of the
    /// cached edge lengths, matching `uavdc_geom::tour_length`'s
    /// summation order bit for bit.
    pub fn total_cost(&self) -> f64 {
        self.edge_len.iter().sum()
    }

    /// Allocates a stop id for `p` and fills its distance row (one fused
    /// multiply-sqrt per existing stop), without splicing it into the
    /// tour. Pair with [`IncrementalTour::insert_id_at`].
    pub fn append_point(&mut self, p: (f64, f64)) -> usize {
        let id = self.xs.len();
        self.dist.reserve(id);
        for k in 0..id {
            let dx = self.xs[k] - p.0;
            let dy = self.ys[k] - p.1;
            self.dist.push((dx * dx + dy * dy).sqrt());
        }
        self.xs.push(p.0);
        self.ys.push(p.1);
        self.in_tour.push(false);
        id
    }

    /// Cheapest insertion of appended stop `id` into the current tour,
    /// as `(delta, pos)` with `pos >= 1` (`pos == len()` uses the closing
    /// edge). First-strict argmin over edges in tour order — the same
    /// scan, on the same cached operands, as a fresh
    /// `cheapest_insertion_point` over the tour's points.
    pub fn cheapest_insertion_of(&self, id: usize) -> (f64, usize) {
        let n = self.order.len();
        match n {
            0 => (0.0, 1),
            1 => (2.0 * self.cost(self.order[0], id), 1),
            _ => {
                let mut best = f64::INFINITY;
                let mut pos = 1;
                for i in 0..n {
                    let a = self.order[i];
                    let delta = self.cost(a, id) + self.cost(id, self.order[(i + 1) % n])
                        - self.edge_len[i];
                    if delta < best {
                        best = delta;
                        pos = i + 1;
                    }
                }
                (best, pos)
            }
        }
    }

    /// Splices appended stop `id` into the tour at position `pos`
    /// (`1 <= pos <= len()`), patching the two affected edges from the
    /// cache. Counts one patch; returns the re-tour permutation when the
    /// policy triggered a rebuild (see [`IncrementalTour::retour`]).
    pub fn insert_id_at(&mut self, id: usize, pos: usize) -> Option<Vec<usize>> {
        assert!(!self.in_tour[id], "stop {id} is already in the tour");
        let n = self.order.len();
        assert!(
            pos >= 1 && pos <= n,
            "insertion position {pos} out of 1..={n}"
        );
        self.order.insert(pos, id);
        self.in_tour[id] = true;
        if n == 1 {
            let d = self.cost(self.order[0], id);
            self.edge_len = vec![d, d];
        } else {
            let m = n + 1;
            self.edge_len[pos - 1] = self.cost(self.order[pos - 1], id);
            self.edge_len
                .insert(pos, self.cost(id, self.order[(pos + 1) % m]));
        }
        self.record_patch()
    }

    /// Appends `p` and splices it at its cheapest-insertion position.
    /// Returns the new stop id and, when the policy triggered a rebuild,
    /// the re-tour permutation.
    pub fn insert(&mut self, p: (f64, f64)) -> (usize, Option<Vec<usize>>) {
        let id = self.append_point(p);
        let (_, pos) = self.cheapest_insertion_of(id);
        let perm = self.insert_id_at(id, pos);
        (id, perm)
    }

    /// Removes stop `id` (never the depot) from the tour, patching the
    /// surrounding edges from the cache. The id and its distance row stay
    /// allocated, so the stop can be re-inserted later. Counts one patch;
    /// returns the re-tour permutation when the policy triggered one.
    pub fn remove(&mut self, id: usize) -> Option<Vec<usize>> {
        assert!(id != 0, "the depot cannot be removed");
        assert!(self.in_tour[id], "stop {id} is not in the tour");
        // The depot occupies position 0, so `id` sits at some pos >= 1.
        let pos = self.order.iter().position(|&s| s == id).unwrap_or_default();
        self.order.remove(pos);
        self.in_tour[id] = false;
        let n = self.order.len();
        if n <= 1 {
            self.edge_len.clear();
        } else {
            self.edge_len.remove(pos);
            self.edge_len[pos - 1] = self.cost(self.order[pos - 1], self.order[pos % n]);
        }
        self.record_patch()
    }

    /// 2-opt compaction over the cached matrix: same sweep schedule,
    /// improvement threshold (`delta < -1e-10`), 100-sweep cap and
    /// depot-anchored edge skip as the planners' paired 2-opt, with every
    /// distance read from the cache. Returns `Some(perm)` — `perm[k]` is
    /// the previous position of the stop now at `k` — when the tour
    /// changed (counted as one patch), `None` otherwise.
    pub fn two_opt_compact(&mut self) -> Option<Vec<usize>> {
        let n = self.order.len();
        if n < 4 {
            return None;
        }
        let mut perm: Vec<usize> = (0..n).collect();
        let mut changed = false;
        let mut improved = true;
        let mut sweeps = 0;
        while improved && sweeps < 100 {
            improved = false;
            sweeps += 1;
            for i in 0..n - 1 {
                for j in (i + 2)..n {
                    if i == 0 && j == n - 1 {
                        continue;
                    }
                    let (a, b) = (self.order[i], self.order[i + 1]);
                    let (c, d) = (self.order[j], self.order[(j + 1) % n]);
                    let delta =
                        self.cost(a, c) + self.cost(b, d) - self.cost(a, b) - self.cost(c, d);
                    if delta < -1e-10 {
                        self.order[i + 1..=j].reverse();
                        perm[i + 1..=j].reverse();
                        improved = true;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            return None;
        }
        self.rebuild_edges();
        self.counters.tour_patches += 1;
        self.patches_since_retour = self.patches_since_retour.saturating_add(1);
        Some(perm)
    }

    /// One Or-opt pass (segment relocation, lengths 1–3) over the cached
    /// matrix, re-anchoring the depot afterwards. Returns `Some(perm)`
    /// when the tour changed (counted as one patch), `None` otherwise.
    pub fn or_opt_pass(&mut self) -> Option<Vec<usize>> {
        let n = self.order.len();
        if n < 4 {
            return None;
        }
        let m = DistMatrix::from_fn(n, |i, j| self.cost(self.order[i], self.order[j]));
        let mut tour = Tour::new((0..n).collect());
        let saved = or_opt(&mut tour, &m);
        if saved <= 0.0 {
            return None;
        }
        tour.rotate_to_start(0);
        let perm = tour.order().to_vec();
        self.order = perm.iter().map(|&k| self.order[k]).collect();
        self.rebuild_edges();
        self.counters.tour_patches += 1;
        self.patches_since_retour = self.patches_since_retour.saturating_add(1);
        Some(perm)
    }

    /// Full Christofides rebuild over the current stops, through the
    /// cached matrix and the odd-vertex matching memo. Applies the result
    /// and returns the permutation (`perm[k]` = previous position of the
    /// stop now at position `k`). Bit-identical to a from-scratch
    /// Christofides over the same points: the matrix entries are pure
    /// recomputations and the pipeline is deterministic, memo hits
    /// included (`tests/incremental_props.rs` proves this per seed).
    pub fn retour(&mut self) -> Vec<usize> {
        self.retour_obs(&uavdc_obs::NOOP)
    }

    /// Like [`IncrementalTour::retour`], forwarding the Christofides call
    /// statistics (`christofides.*`) to `rec`.
    pub fn retour_obs(&mut self, rec: &dyn Recorder) -> Vec<usize> {
        self.counters.full_retours += 1;
        self.patches_since_retour = 0;
        let n = self.order.len();
        if n <= 3 {
            return (0..n).collect();
        }
        let m = DistMatrix::from_fn(n, |i, j| self.cost(self.order[i], self.order[j]));
        let ids: Vec<Option<usize>> = self.order.iter().map(|&id| Some(id)).collect();
        let perm = christofides_order_cached(&m, &ids, &mut self.matching_memo, &self.config, rec);
        self.order = perm.iter().map(|&k| self.order[k]).collect();
        self.rebuild_edges();
        perm
    }

    /// Speculative Christofides order for the tour plus one phantom stop
    /// at `p` — Algorithm 2's `TSP(S ∪ {s})` scoring — without modifying
    /// the tour. The returned permutation is over positions `0..len()+1`
    /// where position `len()` is the phantom stop; it is bit-identical to
    /// a from-scratch Christofides over the same point sequence. The base
    /// distance block comes from the cache and the odd-vertex matching
    /// memo is consulted whenever the odd set avoids the phantom stop.
    pub fn speculative_order(&mut self, p: (f64, f64)) -> Vec<usize> {
        self.speculative_order_obs(p, &uavdc_obs::NOOP)
    }

    /// Like [`IncrementalTour::speculative_order`], forwarding the
    /// Christofides call statistics to `rec`.
    pub fn speculative_order_obs(&mut self, p: (f64, f64), rec: &dyn Recorder) -> Vec<usize> {
        self.counters.full_retours += 1;
        let n = self.order.len();
        let n1 = n + 1;
        if n1 <= 3 {
            return (0..n1).collect();
        }
        let m = DistMatrix::from_fn(n1, |i, j| {
            if i == n || j == n {
                // A diagonal (i == j == n) read never reaches here:
                // from_fn only asks for i != j off-diagonal pairs via
                // symmetry… but guard anyway through the max/min split.
                let k = if i == n { j } else { i };
                if k == n {
                    0.0
                } else {
                    let dx = self.xs[self.order[k]] - p.0;
                    let dy = self.ys[self.order[k]] - p.1;
                    (dx * dx + dy * dy).sqrt()
                }
            } else {
                self.cost(self.order[i], self.order[j])
            }
        });
        let mut ids: Vec<Option<usize>> = self.order.iter().map(|&id| Some(id)).collect();
        ids.push(None); // the phantom stop is never memo-keyed
        christofides_order_cached(&m, &ids, &mut self.matching_memo, &self.config, rec)
    }

    /// Applies a position permutation produced by an external re-tour
    /// (e.g. Algorithm 2's PaperChristofides commit): `perm[k]` is the
    /// previous position of the stop now at position `k`. `perm[0]` must
    /// keep the depot first.
    pub fn apply_permutation(&mut self, perm: &[usize]) {
        assert_eq!(perm.len(), self.order.len(), "permutation length mismatch");
        assert_eq!(
            perm.first().copied(),
            Some(0),
            "depot must stay at position 0"
        );
        self.order = perm.iter().map(|&k| self.order[k]).collect();
        self.rebuild_edges();
    }

    /// Rebuilds the edge cache from the triangular matrix.
    fn rebuild_edges(&mut self) {
        let n = self.order.len();
        self.edge_len.clear();
        if n < 2 {
            return;
        }
        for k in 0..n {
            self.edge_len
                .push(self.cost(self.order[k], self.order[(k + 1) % n]));
        }
    }

    /// Counts a patch and runs the policy; `Some(perm)` when it rebuilt.
    fn record_patch(&mut self) -> Option<Vec<usize>> {
        self.counters.tour_patches += 1;
        self.patches_since_retour = self.patches_since_retour.saturating_add(1);
        match self.policy {
            RetourPolicy::PatchOnly => None,
            RetourPolicy::EveryKPatches(k) => {
                if self.patches_since_retour >= k {
                    Some(self.retour())
                } else {
                    None
                }
            }
        }
    }
}

/// Christofides order (depot-rotated position permutation) over `m`,
/// memoising the odd-vertex matching. `ids[v]` is the memo identity of
/// matrix vertex `v` (`None` = never memoise through this vertex).
fn christofides_order_cached(
    m: &DistMatrix,
    ids: &[Option<usize>],
    memo: &mut BTreeMap<Vec<usize>, Vec<(usize, usize)>>,
    cfg: &ChristofidesConfig,
    rec: &dyn Recorder,
) -> Vec<usize> {
    let n = m.len();
    debug_assert!(n >= 4, "trivial sizes are handled by the callers");
    rec.add("christofides.calls", 1);
    rec.observe("christofides.n", n as u64);
    let mst = prim_mst(m);
    let mut edges = mst.edges.clone();
    let odd = odd_degree_vertices(n, &edges);
    debug_assert_eq!(odd.len() % 2, 0);
    rec.observe("christofides.odd_vertices", odd.len() as u64);
    if !odd.is_empty() {
        let key: Option<Vec<usize>> = odd.iter().map(|&v| ids[v]).collect();
        let cached = key.as_ref().and_then(|k| memo.get(k).cloned());
        let pairs = match cached {
            Some(pairs) => pairs,
            None => {
                let sub = m.submatrix(&odd);
                let matching = min_weight_perfect_matching_with(&sub, cfg.matching);
                let pairs = matching.edges();
                if let Some(k) = key {
                    memo.insert(k, pairs.clone());
                }
                pairs
            }
        };
        for &(a, b) in &pairs {
            edges.push((odd[a], odd[b]));
        }
    }
    let Some(circuit) = euler_circuit(n, &edges, 0) else {
        // Unreachable: the MST spans and the matching evens every degree,
        // so an Euler circuit exists. Route through the reference
        // implementation rather than panicking so this module needs no
        // panic sites.
        let mut tour = christofides_with_obs(m, cfg, rec);
        tour.rotate_to_start(0);
        return tour.order().to_vec();
    };
    let order = shortcut_circuit(&circuit);
    debug_assert_eq!(order.len(), n, "shortcut must visit every vertex once");
    let mut tour = Tour::new(order);
    if cfg.polish {
        two_opt(&mut tour, m);
    }
    tour.rotate_to_start(0);
    tour.order().to_vec()
}

// ---------------------------------------------------------------------------
// Batch kernels (bit-identical per lane to their scalar counterparts)
// ---------------------------------------------------------------------------

/// Writes the Euclidean distance from `(px, py)` to every `(xs[i],
/// ys[i])` into `out` (cleared and resized to match). Each lane computes
/// `((x - px)² + (y - py)²).sqrt()` — bit-identical to `Point2::distance`
/// of the same pair in either argument order, since negating both
/// differences leaves the squares unchanged — and the loop body is
/// branch-free so it auto-vectorises.
pub fn distances_to_point(xs: &[f64], ys: &[f64], px: f64, py: f64, out: &mut Vec<f64>) {
    debug_assert_eq!(xs.len(), ys.len());
    out.clear();
    out.resize(xs.len(), 0.0);
    for ((o, &x), &y) in out.iter_mut().zip(xs).zip(ys) {
        let dx = x - px;
        let dy = y - py;
        *o = (dx * dx + dy * dy).sqrt();
    }
}

/// Cheapest-insertion scan of one satellite against a closed tour using
/// *cached* satellite→tour-point distances instead of recomputing them.
///
/// `row[id]` must hold the satellite's distance to the tour point with
/// stable id `id` (as produced by [`distances_to_point`] when that point
/// entered the tour), `order` the tour's visiting order as point ids, and
/// `edge_costs` the cached edge costs (`edge_costs[i]` spans positions
/// `i → (i+1) % n`). Because the cached distances are bit-identical to a
/// fresh recomputation, the result `(delta, pos)` is specified to be
/// bit-identical to [`InsertionKernel::run`] / the scalar
/// first-strict-argmin edge scan: same `(d(a,p) + d(p,b)) - d(a,b)`
/// association, same strict-`<` update, same position numbering.
pub fn cheapest_insertion_cached(row: &[f64], order: &[usize], edge_costs: &[f64]) -> (f64, u32) {
    let n = order.len();
    if n == 0 {
        return (0.0, 1);
    }
    if n == 1 {
        return (2.0 * row[order[0]], 1);
    }
    debug_assert_eq!(edge_costs.len(), n);
    let mut best = f64::INFINITY;
    let mut pos = 1u32;
    let mut pv = row[order[0]];
    for (i, &e) in edge_costs.iter().enumerate() {
        let nx = row[order[(i + 1) % n]];
        let delta = pv + nx - e;
        if delta < best {
            best = delta;
            pos = (i + 1) as u32;
        }
        pv = nx;
    }
    (best, pos)
}

/// Four-lane twin of [`cheapest_insertion_cached`]: scans four banked
/// rows against the same tour in lockstep. The lanes are fully
/// independent and each performs exactly the scalar scan's arithmetic,
/// comparisons and first-strict-argmin update, so every returned pair is
/// specified to be bit-identical to a scalar call on that row. The
/// interleaving exists purely to pipeline the compare chains: one
/// scalar scan is latency-bound on its `cmp → select` dependency, and
/// four independent chains fill those stalls (this is what makes a
/// rescan *batch* cheap, the same way [`InsertionKernel`] batches the
/// uncached scan).
pub fn cheapest_insertion_cached4(
    rows: [&[f64]; 4],
    order: &[usize],
    edge_costs: &[f64],
) -> [(f64, u32); 4] {
    let n = order.len();
    if n <= 1 {
        return [0, 1, 2, 3].map(|k| cheapest_insertion_cached(rows[k], order, edge_costs));
    }
    debug_assert_eq!(edge_costs.len(), n);
    let mut best = [f64::INFINITY; 4];
    let mut pos = [1u32; 4];
    let mut pv = rows.map(|r| r[order[0]]);
    for (i, &e) in edge_costs.iter().enumerate() {
        let o = order[(i + 1) % n];
        for k in 0..4 {
            let nx = rows[k][o];
            let delta = pv[k] + nx - e;
            let hit = delta < best[k];
            best[k] = if hit { delta } else { best[k] };
            pos[k] = if hit { (i + 1) as u32 } else { pos[k] };
            pv[k] = nx;
        }
    }
    [
        (best[0], pos[0]),
        (best[1], pos[1]),
        (best[2], pos[2]),
        (best[3], pos[3]),
    ]
}

/// Batched cheapest-insertion scorer: evaluates a packed set of satellite
/// points against every edge of one closed tour in a cache-friendly,
/// auto-vectorisable edge-major sweep.
///
/// Per satellite the result is specified to be bit-identical to the
/// scalar first-strict-argmin edge scan (`cheapest_insertion_point` in
/// `uavdc-core`): same `(d(a,p) + d(p,b)) - d(a,b)` association, same
/// strict-`<` update, same position numbering (`pos >= 1`, closing edge =
/// tour length), with `d(a,b)` read from the caller's cached edge
/// lengths. Scratch buffers persist across calls to avoid reallocation.
#[derive(Clone, Debug, Default)]
pub struct InsertionKernel {
    prev: Vec<f64>,
    next: Vec<f64>,
    best: Vec<f64>,
    pos: Vec<u32>,
}

impl InsertionKernel {
    /// An empty kernel (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Scores every satellite `(sat_xs[j], sat_ys[j])` against the closed
    /// tour given by coordinates in visiting order plus its cached edge
    /// costs (`edge_costs[i]` spans tour points `i → (i+1) % n`; required
    /// length `n` when `n >= 2`). Results are read back through
    /// [`InsertionKernel::delta`] / [`InsertionKernel::pos`].
    pub fn run(
        &mut self,
        tour_xs: &[f64],
        tour_ys: &[f64],
        edge_costs: &[f64],
        sat_xs: &[f64],
        sat_ys: &[f64],
    ) {
        let n = tour_xs.len();
        let s = sat_xs.len();
        debug_assert_eq!(tour_ys.len(), n);
        debug_assert_eq!(sat_ys.len(), s);
        self.best.clear();
        self.pos.clear();
        if n == 0 {
            self.best.resize(s, 0.0);
            self.pos.resize(s, 1);
            return;
        }
        if n == 1 {
            distances_to_point(sat_xs, sat_ys, tour_xs[0], tour_ys[0], &mut self.best);
            for b in &mut self.best {
                *b *= 2.0;
            }
            self.pos.resize(s, 1);
            return;
        }
        debug_assert_eq!(edge_costs.len(), n);
        self.best.resize(s, f64::INFINITY);
        self.pos.resize(s, 1);
        distances_to_point(sat_xs, sat_ys, tour_xs[0], tour_ys[0], &mut self.prev);
        for (i, &e) in edge_costs.iter().enumerate() {
            let bi = (i + 1) % n;
            distances_to_point(sat_xs, sat_ys, tour_xs[bi], tour_ys[bi], &mut self.next);
            let p = (i + 1) as u32;
            for ((b, q), (&pv, &nx)) in self
                .best
                .iter_mut()
                .zip(self.pos.iter_mut())
                .zip(self.prev.iter().zip(self.next.iter()))
            {
                let delta = pv + nx - e;
                if delta < *b {
                    *b = delta;
                    *q = p;
                }
            }
            std::mem::swap(&mut self.prev, &mut self.next);
        }
    }

    /// Cheapest-insertion deltas of the last [`InsertionKernel::run`].
    pub fn delta(&self) -> &[f64] {
        &self.best
    }

    /// Insertion positions of the last [`InsertionKernel::run`].
    pub fn pos(&self) -> &[u32] {
        &self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uavdc_geom::Point2;

    fn pts_of(t: &IncrementalTour) -> Vec<Point2> {
        t.order()
            .iter()
            .map(|&id| {
                let (x, y) = t.point(id);
                Point2::new(x, y)
            })
            .collect()
    }

    /// Scalar reference: cheapest insertion over a point tour.
    fn reference_cheapest(pts: &[Point2], p: Point2) -> (f64, usize) {
        match pts.len() {
            0 => (0.0, 1),
            1 => (2.0 * pts[0].distance(p), 1),
            n => {
                let mut best = f64::INFINITY;
                let mut pos = 1;
                for i in 0..n {
                    let a = pts[i];
                    let b = pts[(i + 1) % n];
                    let delta = a.distance(p) + p.distance(b) - a.distance(b);
                    if delta < best {
                        best = delta;
                        pos = i + 1;
                    }
                }
                (best, pos)
            }
        }
    }

    fn closed_len(pts: &[Point2]) -> f64 {
        uavdc_geom::tour_length(pts)
    }

    fn seeded_points(n: usize, mul: usize, add: usize) -> Vec<(f64, f64)> {
        (0..n)
            .map(|i| (((i * mul + add) % 97) as f64, ((i * 31 + add) % 89) as f64))
            .collect()
    }

    #[test]
    fn insert_matches_scalar_reference_bitwise() {
        let mut t = IncrementalTour::new((50.0, 50.0), RetourPolicy::PatchOnly);
        for (i, p) in seeded_points(24, 37, 13).into_iter().enumerate() {
            let before = pts_of(&t);
            let (want_d, want_pos) = reference_cheapest(&before, Point2::new(p.0, p.1));
            let id = t.append_point(p);
            let (got_d, got_pos) = t.cheapest_insertion_of(id);
            assert_eq!(got_d.to_bits(), want_d.to_bits(), "delta diverged at {i}");
            assert_eq!(got_pos, want_pos, "position diverged at {i}");
            t.insert_id_at(id, got_pos);
            let after = pts_of(&t);
            assert_eq!(t.total_cost().to_bits(), closed_len(&after).to_bits());
        }
    }

    #[test]
    fn edge_cache_stays_consistent_under_removal() {
        let mut t = IncrementalTour::new((0.0, 0.0), RetourPolicy::PatchOnly);
        let ids: Vec<usize> = seeded_points(12, 41, 7)
            .into_iter()
            .map(|p| t.insert(p).0)
            .collect();
        for &id in ids.iter().step_by(3) {
            t.remove(id);
            let pts = pts_of(&t);
            assert_eq!(t.total_cost().to_bits(), closed_len(&pts).to_bits());
            assert!(!t.contains(id));
        }
        // Removed stops can come back.
        let (_, pos) = t.cheapest_insertion_of(ids[0]);
        t.insert_id_at(ids[0], pos);
        let pts = pts_of(&t);
        assert_eq!(t.total_cost().to_bits(), closed_len(&pts).to_bits());
    }

    #[test]
    fn two_opt_compact_matches_paired_reference() {
        // Reference: the planners' paired 2-opt over (point, tag) pairs.
        fn two_opt_paired(mut paired: Vec<(Point2, usize)>) -> (Vec<(Point2, usize)>, bool) {
            let n = paired.len();
            if n < 4 {
                return (paired, false);
            }
            let mut changed = false;
            let mut improved = true;
            let mut sweeps = 0;
            while improved && sweeps < 100 {
                improved = false;
                sweeps += 1;
                for i in 0..n - 1 {
                    for j in (i + 2)..n {
                        if i == 0 && j == n - 1 {
                            continue;
                        }
                        let (a, b) = (paired[i].0, paired[i + 1].0);
                        let (c, d) = (paired[j].0, paired[(j + 1) % n].0);
                        let delta = a.distance(c) + b.distance(d) - a.distance(b) - c.distance(d);
                        if delta < -1e-10 {
                            paired[i + 1..=j].reverse();
                            improved = true;
                            changed = true;
                        }
                    }
                }
            }
            (paired, changed)
        }

        let mut t = IncrementalTour::new((50.0, 50.0), RetourPolicy::PatchOnly);
        for p in seeded_points(20, 61, 3) {
            t.insert(p);
        }
        let before: Vec<(Point2, usize)> = pts_of(&t)
            .into_iter()
            .zip(t.order().iter().copied())
            .collect();
        let (want, want_changed) = two_opt_paired(before);
        let got_perm = t.two_opt_compact();
        assert_eq!(got_perm.is_some(), want_changed);
        let got: Vec<usize> = t.order().to_vec();
        let want_ids: Vec<usize> = want.iter().map(|e| e.1).collect();
        assert_eq!(got, want_ids, "2-opt result order diverged");
        assert_eq!(
            t.total_cost().to_bits(),
            closed_len(&pts_of(&t)).to_bits(),
            "edge cache inconsistent after 2-opt"
        );
    }

    #[test]
    fn or_opt_never_lengthens_and_keeps_depot() {
        let mut t = IncrementalTour::new((1.0, 2.0), RetourPolicy::PatchOnly);
        for p in seeded_points(16, 53, 11) {
            t.insert(p);
        }
        let before = t.total_cost();
        let _ = t.or_opt_pass();
        assert!(t.total_cost() <= before + 1e-9);
        assert_eq!(t.order()[0], 0, "depot must stay first");
        assert_eq!(t.total_cost().to_bits(), closed_len(&pts_of(&t)).to_bits());
    }

    #[test]
    fn retour_matches_from_scratch_christofides() {
        let mut t = IncrementalTour::new((50.0, 50.0), RetourPolicy::PatchOnly);
        for p in seeded_points(18, 29, 5) {
            t.insert(p);
        }
        let pts = pts_of(&t);
        let ids_before: Vec<usize> = t.order().to_vec();
        let perm = t.retour();
        // From-scratch reference over the same pre-retour point order.
        let m = DistMatrix::from_fn(pts.len(), |i, j| pts[i].distance(pts[j]));
        let mut tour = christofides_with_obs(&m, &ChristofidesConfig::default(), &uavdc_obs::NOOP);
        tour.rotate_to_start(0);
        assert_eq!(perm, tour.order().to_vec(), "retour permutation diverged");
        let want_ids: Vec<usize> = tour.order().iter().map(|&k| ids_before[k]).collect();
        assert_eq!(t.order(), &want_ids[..]);
        assert_eq!(t.total_cost().to_bits(), closed_len(&pts_of(&t)).to_bits());
        assert_eq!(t.counters().full_retours, 1);
    }

    #[test]
    fn matching_memo_reuse_is_bit_identical() {
        let mut a = IncrementalTour::new((50.0, 50.0), RetourPolicy::PatchOnly);
        let mut b = IncrementalTour::new((50.0, 50.0), RetourPolicy::PatchOnly);
        for p in seeded_points(14, 43, 9) {
            a.insert(p);
            b.insert(p);
        }
        // Warm `a`'s memo with an identical speculative run, then compare
        // a memo-hit retour against `b`'s cold retour.
        let spec = a.speculative_order((60.0, 60.0));
        let spec2 = a.speculative_order((60.0, 60.0));
        assert_eq!(spec, spec2, "speculative scoring must be deterministic");
        let pa = a.retour();
        let pb = b.retour();
        assert_eq!(pa, pb, "memo-warm and cold retours diverged");
        assert_eq!(a.order(), b.order());
        assert_eq!(a.total_cost().to_bits(), b.total_cost().to_bits());
    }

    #[test]
    fn every_k_policy_triggers_retour() {
        let mut t = IncrementalTour::new((0.0, 0.0), RetourPolicy::EveryKPatches(4));
        let mut retours = 0;
        for p in seeded_points(12, 67, 1) {
            if t.insert(p).1.is_some() {
                retours += 1;
            }
        }
        assert_eq!(retours, 3, "12 patches at K=4 must rebuild 3 times");
        assert_eq!(t.counters().full_retours, 3);
        assert_eq!(t.total_cost().to_bits(), closed_len(&pts_of(&t)).to_bits());
    }

    #[test]
    fn distances_to_point_matches_point2() {
        let pts = seeded_points(33, 59, 21);
        let xs: Vec<f64> = pts.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pts.iter().map(|p| p.1).collect();
        let q = Point2::new(17.5, 42.25);
        let mut out = Vec::new();
        distances_to_point(&xs, &ys, q.x, q.y, &mut out);
        for (i, &d) in out.iter().enumerate() {
            let want = Point2::new(xs[i], ys[i]).distance(q);
            assert_eq!(d.to_bits(), want.to_bits(), "lane {i} diverged");
        }
    }

    #[test]
    fn insertion_kernel_matches_scalar_reference() {
        for n in [0usize, 1, 2, 3, 7, 19] {
            let tour_pts: Vec<Point2> = seeded_points(n, 37, 2)
                .into_iter()
                .map(|p| Point2::new(p.0, p.1))
                .collect();
            let tour_xs: Vec<f64> = tour_pts.iter().map(|p| p.x).collect();
            let tour_ys: Vec<f64> = tour_pts.iter().map(|p| p.y).collect();
            let edge_len: Vec<f64> = if n >= 2 {
                (0..n)
                    .map(|i| tour_pts[i].distance(tour_pts[(i + 1) % n]))
                    .collect()
            } else {
                Vec::new()
            };
            let sats = seeded_points(25, 71, 5);
            let sat_xs: Vec<f64> = sats.iter().map(|p| p.0).collect();
            let sat_ys: Vec<f64> = sats.iter().map(|p| p.1).collect();
            let mut kernel = InsertionKernel::new();
            kernel.run(&tour_xs, &tour_ys, &edge_len, &sat_xs, &sat_ys);
            for (j, &(sx, sy)) in sats.iter().enumerate() {
                let (want_d, want_pos) = reference_cheapest(&tour_pts, Point2::new(sx, sy));
                assert_eq!(
                    kernel.delta()[j].to_bits(),
                    want_d.to_bits(),
                    "n={n} sat {j} delta diverged"
                );
                assert_eq!(
                    kernel.pos()[j] as usize,
                    want_pos,
                    "n={n} sat {j} pos diverged"
                );
            }
        }
    }
}
