//! Eulerian circuits on multigraphs (Hierholzer's algorithm).

/// Finds an Eulerian circuit of the multigraph on `n` vertices given by
/// `edges`, starting from `start`.
///
/// Returns the circuit as a vertex sequence whose first and last entries
/// are `start` (length `|E| + 1`), or `None` when the graph has a vertex
/// of odd degree, is disconnected (ignoring isolated vertices), or `start`
/// has no incident edge while edges exist.
///
/// The multigraph may contain parallel edges (Christofides unions the MST
/// and matching, which can duplicate an edge) and self-loops.
pub fn euler_circuit(n: usize, edges: &[(usize, usize)], start: usize) -> Option<Vec<usize>> {
    if edges.is_empty() {
        return Some(vec![start]);
    }
    assert!(start < n, "start vertex {start} out of range {n}");
    // Adjacency as (neighbor, edge id) lists; each undirected edge gets one id.
    let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
    for (id, &(u, v)) in edges.iter().enumerate() {
        assert!(u < n && v < n, "edge ({u},{v}) out of range {n}");
        adj[u].push((v, id));
        if u != v {
            adj[v].push((u, id));
        }
    }
    // Degree check: self-loops add 2 to the degree so don't affect parity.
    for (v, a) in adj.iter().enumerate() {
        let loops = a.iter().filter(|&&(w, _)| w == v).count();
        if (a.len() + loops) % 2 == 1 {
            return None;
        }
    }
    if adj[start].is_empty() {
        return None;
    }

    // Hierholzer with explicit stack.
    let mut used = vec![false; edges.len()];
    let mut iter_pos = vec![0usize; n];
    let mut stack = vec![start];
    let mut circuit = Vec::with_capacity(edges.len() + 1);
    while let Some(&v) = stack.last() {
        let mut advanced = false;
        while iter_pos[v] < adj[v].len() {
            let (to, id) = adj[v][iter_pos[v]];
            iter_pos[v] += 1;
            if !used[id] {
                used[id] = true;
                stack.push(to);
                advanced = true;
                break;
            }
        }
        if !advanced {
            circuit.push(v);
            stack.pop();
        }
    }
    // All edges must be used, otherwise the graph was disconnected.
    if used.iter().all(|&u| u) {
        circuit.reverse();
        Some(circuit)
    } else {
        None
    }
}

/// Shortcuts an Eulerian circuit into a Hamiltonian-style tour: keeps the
/// first occurrence of each vertex, preserving order. The closing edge back
/// to the start is implicit in the returned order.
pub fn shortcut_circuit(circuit: &[usize]) -> Vec<usize> {
    let max_v = circuit.iter().copied().max().map_or(0, |m| m + 1);
    let mut seen = vec![false; max_v];
    let mut tour = Vec::new();
    for &v in circuit {
        if !seen[v] {
            seen[v] = true;
            tour.push(v);
        }
    }
    tour
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_circuit(n: usize, edges: &[(usize, usize)], start: usize) {
        let c = euler_circuit(n, edges, start).expect("circuit should exist");
        assert_eq!(c.len(), edges.len() + 1);
        assert_eq!(c[0], start);
        assert_eq!(*c.last().unwrap(), start);
        // Multiset of traversed edges equals the input multiset.
        let mut want: Vec<(usize, usize)> =
            edges.iter().map(|&(u, v)| (u.min(v), u.max(v))).collect();
        let mut got: Vec<(usize, usize)> = c
            .windows(2)
            .map(|w| (w[0].min(w[1]), w[0].max(w[1])))
            .collect();
        want.sort_unstable();
        got.sort_unstable();
        assert_eq!(want, got);
    }

    #[test]
    fn empty_graph_is_trivial_circuit() {
        assert_eq!(euler_circuit(3, &[], 1), Some(vec![1]));
    }

    #[test]
    fn triangle() {
        check_circuit(3, &[(0, 1), (1, 2), (2, 0)], 0);
    }

    #[test]
    fn parallel_edges() {
        // Two copies of edge (0,1): circuit 0-1-0.
        check_circuit(2, &[(0, 1), (0, 1)], 0);
    }

    #[test]
    fn self_loop_in_circuit() {
        check_circuit(2, &[(0, 1), (1, 1), (1, 0)], 0);
    }

    #[test]
    fn figure_eight() {
        // Two triangles sharing vertex 0.
        check_circuit(5, &[(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0)], 0);
    }

    #[test]
    fn odd_degree_returns_none() {
        assert_eq!(euler_circuit(3, &[(0, 1), (1, 2)], 0), None);
    }

    #[test]
    fn disconnected_edges_return_none() {
        // Two disjoint 2-cycles; starting in one cannot reach the other.
        let edges = [(0, 1), (0, 1), (2, 3), (2, 3)];
        assert_eq!(euler_circuit(4, &edges, 0), None);
    }

    #[test]
    fn start_with_no_edges_returns_none() {
        assert_eq!(euler_circuit(3, &[(1, 2), (2, 1)], 0), None);
    }

    #[test]
    fn shortcut_keeps_first_occurrences() {
        let circuit = vec![0, 1, 2, 0, 3, 4, 0];
        assert_eq!(shortcut_circuit(&circuit), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn shortcut_of_empty_is_empty() {
        assert!(shortcut_circuit(&[]).is_empty());
    }
}
