//! Local-search tour improvement: 2-opt and Or-opt.

use crate::{DistMatrix, Tour};

/// Maximum number of full improvement sweeps before giving up; local search
/// converges long before this on the instance sizes this crate targets.
const MAX_SWEEPS: usize = 200;

/// 2-opt: repeatedly reverse tour segments while that shortens the tour.
/// Returns the total length reduction achieved.
pub fn two_opt(tour: &mut Tour, m: &DistMatrix) -> f64 {
    let n = tour.len();
    if n < 4 {
        return 0.0;
    }
    let mut saved = 0.0;
    for _ in 0..MAX_SWEEPS {
        let mut improved = false;
        for i in 0..n - 1 {
            for j in (i + 2)..n {
                // Reversing order[i+1..=j] replaces edges (i, i+1) and
                // (j, j+1) with (i, j) and (i+1, j+1).
                if i == 0 && j == n - 1 {
                    continue; // same edge pair, no-op
                }
                let order = tour.order();
                let a = order[i];
                let b = order[i + 1];
                let c = order[j];
                let d = order[(j + 1) % n];
                let delta = m.get(a, c) + m.get(b, d) - m.get(a, b) - m.get(c, d);
                if delta < -1e-10 {
                    tour.order_mut()[i + 1..=j].reverse();
                    saved -= delta;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
    saved
}

/// Or-opt: relocate segments of 1–3 consecutive vertices to a better
/// position. Returns the total length reduction achieved.
pub fn or_opt(tour: &mut Tour, m: &DistMatrix) -> f64 {
    let n = tour.len();
    if n < 4 {
        return 0.0;
    }
    let mut saved = 0.0;
    for _ in 0..MAX_SWEEPS {
        let mut improved = false;
        for seg_len in 1..=3usize.min(n - 2) {
            for start in 0..n {
                let order = tour.order().to_vec();
                // Segment [start .. start+seg_len) cyclically.
                if seg_len >= n - 1 {
                    continue;
                }
                let seg: Vec<usize> = (0..seg_len).map(|k| order[(start + k) % n]).collect();
                let prev = order[(start + n - 1) % n];
                let next = order[(start + seg_len) % n];
                let seg_first = seg[0];
                let seg_last = seg[seg_len - 1];
                let removal_gain =
                    m.get(prev, seg_first) + m.get(seg_last, next) - m.get(prev, next);
                if removal_gain <= 1e-10 {
                    continue;
                }
                // Remaining cycle after removing the segment.
                let rest: Vec<usize> = (0..n - seg_len)
                    .map(|k| order[(start + seg_len + k) % n])
                    .collect();
                // Best re-insertion point in the remaining cycle.
                let mut best_cost = f64::INFINITY;
                let mut best_pos = 0;
                let mut best_rev = false;
                for i in 0..rest.len() {
                    let a = rest[i];
                    let b = rest[(i + 1) % rest.len()];
                    let fwd = m.get(a, seg_first) + m.get(seg_last, b) - m.get(a, b);
                    let rev = m.get(a, seg_last) + m.get(seg_first, b) - m.get(a, b);
                    if fwd < best_cost {
                        best_cost = fwd;
                        best_pos = i + 1;
                        best_rev = false;
                    }
                    if rev < best_cost {
                        best_cost = rev;
                        best_pos = i + 1;
                        best_rev = true;
                    }
                }
                if best_cost < removal_gain - 1e-10 {
                    let mut new_order = rest;
                    let mut seg = seg;
                    if best_rev {
                        seg.reverse();
                    }
                    for (k, v) in seg.into_iter().enumerate() {
                        new_order.insert(best_pos + k, v);
                    }
                    saved += removal_gain - best_cost;
                    *tour.order_mut() = new_order;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
    saved
}

/// 3-opt (restricted): tries the pure-reconnection 3-opt moves that 2-opt
/// cannot reach — segment exchanges with reversals across three cut
/// edges. Runs after [`two_opt`] for a tighter local optimum; costs
/// O(n³) per sweep, so intended for tours up to a few hundred stops.
/// Returns the total length reduction achieved.
pub fn three_opt(tour: &mut Tour, m: &DistMatrix) -> f64 {
    let n = tour.len();
    if n < 6 {
        return two_opt(tour, m);
    }
    let mut saved = 0.0;
    for _ in 0..MAX_SWEEPS {
        let mut improved = false;
        // Cut edges after positions i, j, k (i < j < k).
        'search: for i in 0..n - 2 {
            for j in (i + 1)..n - 1 {
                for k in (j + 1)..n {
                    let order = tour.order();
                    let a = order[i];
                    let b = order[(i + 1) % n];
                    let c = order[j];
                    let d = order[(j + 1) % n];
                    let e = order[k];
                    let f = order[(k + 1) % n];
                    let base = m.get(a, b) + m.get(c, d) + m.get(e, f);
                    // The "or-3" reconnection: a-d ... e-b ... c-f
                    // (segment exchange, both kept forward).
                    let alt = m.get(a, d) + m.get(e, b) + m.get(c, f);
                    if alt < base - 1e-10 {
                        // new order: order[..=i] ++ order[j+1..=k] ++
                        //            order[i+1..=j] ++ order[k+1..]
                        let mut next = Vec::with_capacity(n);
                        next.extend_from_slice(&order[..=i]);
                        next.extend_from_slice(&order[j + 1..=k]);
                        next.extend_from_slice(&order[i + 1..=j]);
                        next.extend_from_slice(&order[k + 1..]);
                        saved += base - alt;
                        *tour.order_mut() = next;
                        improved = true;
                        continue 'search;
                    }
                }
            }
        }
        // Interleave 2-opt (covers the reversal-type 3-opt moves cheaply).
        let s2 = two_opt(tour, m);
        saved += s2;
        if !improved && s2 <= 0.0 {
            break;
        }
    }
    saved
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::held_karp;
    use proptest::prelude::*;

    #[test]
    fn two_opt_untangles_crossing() {
        // Square visited in crossing order 0,2,1,3.
        let m = DistMatrix::from_euclidean(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]);
        let mut t = Tour::new(vec![0, 2, 1, 3]);
        let before = t.length(&m);
        let saved = two_opt(&mut t, &m);
        assert!((t.length(&m) - 4.0).abs() < 1e-9);
        assert!((before - t.length(&m) - saved).abs() < 1e-9);
    }

    #[test]
    fn two_opt_noop_on_tiny_tours() {
        let m = DistMatrix::from_euclidean(&[(0.0, 0.0), (1.0, 0.0), (0.5, 1.0)]);
        let mut t = Tour::new(vec![0, 1, 2]);
        assert_eq!(two_opt(&mut t, &m), 0.0);
    }

    #[test]
    fn or_opt_relocates_outlier() {
        // Points on a line, but 3 visited out of order.
        let m = DistMatrix::from_euclidean(&[
            (0.0, 0.0),
            (1.0, 0.0),
            (2.0, 0.0),
            (3.0, 0.0),
            (4.0, 0.0),
        ]);
        let mut t = Tour::new(vec![0, 3, 1, 2, 4]);
        or_opt(&mut t, &m);
        // Optimal closed tour over a line is out-and-back: length 8.
        assert!((t.length(&m) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn improvements_preserve_permutation() {
        let pts: Vec<(f64, f64)> = (0..12)
            .map(|i| ((i * 29 % 40) as f64, (i * 17 % 40) as f64))
            .collect();
        let m = DistMatrix::from_euclidean(&pts);
        let mut t = Tour::new((0..12).collect());
        two_opt(&mut t, &m);
        or_opt(&mut t, &m);
        let mut order = t.order().to_vec();
        order.sort_unstable();
        assert_eq!(order, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn three_opt_fixes_segment_exchange() {
        // An instance where the optimal fix is exchanging two segments —
        // exactly the move 2-opt cannot express without worsening first.
        let pts = [
            (0.0, 0.0),
            (10.0, 0.0),
            (20.0, 0.0),
            (20.0, 10.0),
            (10.0, 10.0),
            (0.0, 10.0),
            (0.0, 5.0),
            (20.0, 5.0),
        ];
        let m = DistMatrix::from_euclidean(&pts);
        let mut t = Tour::new(vec![0, 3, 2, 7, 1, 4, 5, 6]);
        let before = t.length(&m);
        let saved = three_opt(&mut t, &m);
        assert!(saved > 0.0);
        assert!((t.length(&m) - (before - saved)).abs() < 1e-9);
        let mut order = t.order().to_vec();
        order.sort_unstable();
        assert_eq!(order, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn three_opt_small_tours_delegate_to_two_opt() {
        let m = DistMatrix::from_euclidean(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]);
        let mut t = Tour::new(vec![0, 2, 1, 3]);
        three_opt(&mut t, &m);
        assert!((t.length(&m) - 4.0).abs() < 1e-9);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_three_opt_refines_two_opt_optimum(
            pts in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 6..18),
        ) {
            // Starting from a 2-opt local optimum, 3-opt can only improve
            // (each accepted move strictly shortens the tour). Note the
            // two searches are NOT comparable from a *common* start: they
            // follow different trajectories to different local optima.
            let m = DistMatrix::from_euclidean(&pts);
            let mut t = Tour::new((0..pts.len()).collect());
            two_opt(&mut t, &m);
            let two_opt_len = t.length(&m);
            let saved = three_opt(&mut t, &m);
            prop_assert!(t.length(&m) <= two_opt_len + 1e-9,
                "3-opt {} worse than its 2-opt start {}", t.length(&m), two_opt_len);
            prop_assert!((two_opt_len - t.length(&m) - saved).abs() < 1e-6);
            let mut order = t.order().to_vec();
            order.sort_unstable();
            prop_assert_eq!(order, (0..pts.len()).collect::<Vec<_>>());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_two_opt_never_lengthens(
            pts in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 4..25),
        ) {
            let m = DistMatrix::from_euclidean(&pts);
            let mut t = Tour::new((0..pts.len()).collect());
            let before = t.length(&m);
            let saved = two_opt(&mut t, &m);
            prop_assert!(t.length(&m) <= before + 1e-9);
            prop_assert!((before - t.length(&m) - saved).abs() < 1e-6);
        }

        #[test]
        fn prop_or_opt_never_lengthens(
            pts in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 4..20),
        ) {
            let m = DistMatrix::from_euclidean(&pts);
            let mut t = Tour::new((0..pts.len()).collect());
            let before = t.length(&m);
            or_opt(&mut t, &m);
            prop_assert!(t.length(&m) <= before + 1e-9);
        }

        #[test]
        fn prop_polished_close_to_optimal_small(
            pts in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 4..9),
        ) {
            let m = DistMatrix::from_euclidean(&pts);
            let opt = held_karp(&m).unwrap().length(&m);
            let mut t = Tour::new((0..pts.len()).collect());
            two_opt(&mut t, &m);
            or_opt(&mut t, &m);
            two_opt(&mut t, &m);
            // 2-opt+or-opt local optima on tiny Euclidean instances are
            // empirically within ~25% of optimal.
            prop_assert!(t.length(&m) <= 1.25 * opt + 1e-6,
                "polished {} vs opt {}", t.length(&m), opt);
        }
    }
}
