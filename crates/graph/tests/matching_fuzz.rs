//! Fuzz harness for minimum-weight perfect matching: every backend is
//! compared against an *independent* brute-force oracle on all instances
//! with `n <= 10` vertices.
//!
//! The oracle enumerates every perfect matching recursively (always
//! pairing the lowest-index unmatched vertex, `(n-1)!! = 945` matchings
//! at `n = 10`), so it shares no code — and no failure mode — with the
//! bitmask-DP backend the unit tests lean on. Instances mix quantized
//! Euclidean points (duplicate points, collinear runs and mirrored pairs
//! make ties the norm) with arbitrary symmetric weight matrices, which
//! Euclidean generators can never produce (triangle-inequality
//! violations, zero rows, near-degenerate weights).
//!
//! Run with `--features validate` to widen to >= 1024 seeded cases.

use proptest::collection::vec;
use proptest::prelude::*;
use uavdc_graph::matching::{min_weight_perfect_matching_with, MatchingBackend};
use uavdc_graph::DistMatrix;

fn cases() -> u32 {
    if cfg!(feature = "validate") {
        1100
    } else {
        64
    }
}

/// Minimum matching weight by exhaustive recursion: pair the lowest
/// unmatched vertex with every candidate partner and recurse.
fn brute_force_min_weight(m: &DistMatrix) -> f64 {
    fn go(m: &DistMatrix, used: &mut [bool]) -> f64 {
        let Some(i) = used.iter().position(|&u| !u) else {
            return 0.0;
        };
        used[i] = true;
        let mut best = f64::INFINITY;
        for j in (i + 1)..used.len() {
            if used[j] {
                continue;
            }
            used[j] = true;
            let w = m.get(i, j) + go(m, used);
            if w < best {
                best = w;
            }
            used[j] = false;
        }
        used[i] = false;
        best
    }
    let mut used = vec![false; m.len()];
    go(m, &mut used)
}

/// Weight of a `mates` involution under `m`.
fn weight_of(m: &DistMatrix, mates: &[usize]) -> f64 {
    mates
        .iter()
        .enumerate()
        .filter(|&(v, &p)| v < p)
        .map(|(v, &p)| m.get(v, p))
        .sum()
}

fn check_against_oracle(m: &DistMatrix, tag: &str) {
    let want = brute_force_min_weight(m);
    let tol = 1e-9 * (1.0 + want.abs());
    for backend in [
        MatchingBackend::ExactDp,
        MatchingBackend::Blossom,
        MatchingBackend::Auto,
    ] {
        let got = min_weight_perfect_matching_with(m, backend);
        prop_assert!(
            got.is_perfect(),
            "{}: {:?} matching not perfect",
            tag,
            backend
        );
        prop_assert!(
            (got.weight - want).abs() <= tol,
            "{}: {:?} weight {} vs brute force {}",
            tag,
            backend,
            got.weight,
            want
        );
        // The reported weight must be the f64 sum of the reported edges.
        prop_assert_eq!(
            got.weight.to_bits(),
            weight_of(m, &got.mates).to_bits(),
            "{}: {:?} weight is not the sum of its own edges",
            tag,
            backend
        );
    }
    // Greedy is approximate: perfect and never better than the optimum.
    let greedy = min_weight_perfect_matching_with(m, MatchingBackend::Greedy);
    prop_assert!(greedy.is_perfect(), "{}: greedy matching not perfect", tag);
    prop_assert!(
        greedy.weight >= want - tol,
        "{}: greedy weight {} beats the optimum {}",
        tag,
        greedy.weight,
        want
    );
}

/// Tie-heavy quantized coordinates (duplicates allowed on purpose).
fn qpoint() -> impl Strategy<Value = (f64, f64)> {
    (0u32..8, 0u32..8).prop_map(|(x, y)| (f64::from(x) * 2.5, f64::from(y) * 2.5))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Euclidean instances, n in {2, 4, 6, 8, 10}: every exact backend
    /// hits the brute-force optimum, ties and duplicate points included.
    #[test]
    fn euclidean_backends_match_brute_force(pts in vec(qpoint(), 1..6)) {
        // Mirror each point to force an even count and extra symmetry.
        let mut all = pts.clone();
        for &(x, y) in &pts {
            all.push((17.5 - x, y));
        }
        let m = DistMatrix::from_euclidean(&all);
        check_against_oracle(&m, "euclidean");
    }

    /// Arbitrary symmetric non-negative weights (no triangle inequality):
    /// the blossom dual bounds must still certify the optimum.
    #[test]
    fn arbitrary_weights_match_brute_force(
        half in vec(0u32..100, 1..6),
        weights in vec(0.0f64..50.0, 45..46),
    ) {
        let n = 2 * half.len();
        let mut m = DistMatrix::zeros(n);
        let mut w = weights.iter().cycle();
        for i in 0..n {
            for j in (i + 1)..n {
                // Quantize to make exactly-equal weights common.
                let q = (w.next().unwrap() * 2.0).round() / 2.0;
                m.set(i, j, q);
            }
        }
        check_against_oracle(&m, "arbitrary");
    }

    /// Greedy-trap shapes: one ultra-cheap central edge whose endpoints
    /// are the only cheap partners of everyone else. Exact backends must
    /// not take the bait.
    #[test]
    fn trap_instances_match_brute_force(
        k in 1usize..5,
        cheap in 0.0f64..1.0,
        far in 50.0f64..100.0,
    ) {
        let n = 2 * k + 2;
        let mut m = DistMatrix::zeros(n);
        for i in 0..n {
            for j in (i + 1)..n {
                m.set(i, j, far);
            }
        }
        // Vertices 0 and 1 are mutually cheap and cheap-ish to everyone,
        // so pairing them strands the rest on expensive edges.
        m.set(0, 1, cheap);
        for v in 2..n {
            m.set(0, v, cheap + 1.0);
            m.set(1, v, cheap + 1.0);
        }
        check_against_oracle(&m, "trap");
    }
}
