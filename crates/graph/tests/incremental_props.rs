//! Differential property harness for incremental Christofides tour
//! maintenance (`uavdc_graph::incremental`, DESIGN.md §16).
//!
//! Every property drives randomized insert / remove / local-repair /
//! checkpoint sequences through an [`IncrementalTour`] and proves the
//! patched state **bit-identical** to a from-scratch rebuild over the
//! same stops: same order, same length bits, same kernels lane for lane.
//! Coordinates are quantized to a coarse grid on purpose — axis-aligned
//! and mirrored point pairs produce many exactly-equal distances, so the
//! argmin tie-breaking rules (first-strict-`<`) are exercised constantly
//! rather than almost never.
//!
//! Run with `--features validate` to widen every property to >= 1024
//! seeded cases (the CI equivalence gate); the default is a quick 64.

use proptest::collection::vec;
use proptest::prelude::*;
use uavdc_geom::Point2;
use uavdc_graph::christofides::{christofides_with_obs, ChristofidesConfig};
use uavdc_graph::incremental::{
    cheapest_insertion_cached, cheapest_insertion_cached4, distances_to_point, IncrementalTour,
    InsertionKernel, RetourPolicy,
};
use uavdc_graph::DistMatrix;

fn cases() -> u32 {
    if cfg!(feature = "validate") {
        1100
    } else {
        64
    }
}

/// Tie-heavy quantized coordinates: a 13x13 grid with spacing 7.5 m.
fn qpoint() -> impl Strategy<Value = (f64, f64)> {
    (0u32..13, 0u32..13).prop_map(|(x, y)| (f64::from(x) * 7.5, f64::from(y) * 7.5))
}

/// One step of a randomized tour-maintenance history.
#[derive(Clone, Debug)]
enum Op {
    /// Cheapest-insertion splice of a fresh stop.
    Insert((f64, f64)),
    /// Removal splice of a pseudo-randomly selected non-depot stop
    /// (skipped while fewer than 5 removable stops remain, keeping the
    /// tour at n >= 4 so Christofides stays non-trivial).
    Remove(usize),
    /// 2-opt compaction patch.
    TwoOpt,
    /// Or-opt relocation patch.
    OrOpt,
    /// Mid-sequence full rebuild — exercises the matching memo across
    /// checkpoints, not just at the final comparison.
    Checkpoint,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => qpoint().prop_map(Op::Insert),
        2 => (0usize..1_000_000).prop_map(Op::Remove),
        1 => Just(Op::TwoOpt),
        1 => Just(Op::OrOpt),
        1 => Just(Op::Checkpoint),
    ]
}

/// A generated test case: depot, seed stops, op tail.
type History = ((f64, f64), Vec<(f64, f64)>, Vec<Op>);

/// Depot + seed stops (guaranteeing n >= 5) + a free-form op tail.
/// Tours stay within the paper-relevant n in 4..=64 band.
fn history() -> impl Strategy<Value = History> {
    (qpoint(), vec(qpoint(), 4..16), vec(op(), 0..48))
}

/// Replays a history on a fresh tour; returns the tour and the ids of
/// stops currently spliced in (depot excluded).
fn drive(depot: (f64, f64), seed: &[(f64, f64)], ops: &[Op]) -> (IncrementalTour, Vec<usize>) {
    let mut t = IncrementalTour::new(depot, RetourPolicy::PatchOnly);
    let mut live: Vec<usize> = seed.iter().map(|&p| t.insert(p).0).collect();
    for op in ops {
        match *op {
            Op::Insert(p) => live.push(t.insert(p).0),
            Op::Remove(sel) => {
                if live.len() >= 5 {
                    let id = live.swap_remove(sel % live.len());
                    t.remove(id);
                }
            }
            Op::TwoOpt => {
                t.two_opt_compact();
            }
            Op::OrOpt => {
                t.or_opt_pass();
            }
            Op::Checkpoint => {
                if t.len() >= 4 {
                    t.retour();
                }
            }
        }
    }
    (t, live)
}

fn pts_of(t: &IncrementalTour) -> Vec<Point2> {
    t.order()
        .iter()
        .map(|&id| {
            let (x, y) = t.point(id);
            Point2::new(x, y)
        })
        .collect()
}

/// From-scratch Christofides over a point sequence, as the depot-rotated
/// position permutation — the reference for [`IncrementalTour::retour`].
fn scratch_order(pts: &[Point2]) -> Vec<usize> {
    let m = DistMatrix::from_fn(pts.len(), |i, j| pts[i].distance(pts[j]));
    let mut tour = christofides_with_obs(&m, &ChristofidesConfig::default(), &uavdc_obs::NOOP);
    tour.rotate_to_start(0);
    tour.order().to_vec()
}

/// Scalar reference: first-strict-argmin cheapest insertion, distances
/// recomputed from coordinates (no cache involved).
fn reference_cheapest(pts: &[Point2], p: Point2) -> (f64, usize) {
    match pts.len() {
        0 => (0.0, 1),
        1 => (2.0 * pts[0].distance(p), 1),
        n => {
            let mut best = f64::INFINITY;
            let mut pos = 1;
            for i in 0..n {
                let a = pts[i];
                let b = pts[(i + 1) % n];
                let delta = a.distance(p) + p.distance(b) - a.distance(b);
                if delta < best {
                    best = delta;
                    pos = i + 1;
                }
            }
            (best, pos)
        }
    }
}

/// Asserts the cached edge lengths are exactly the cached pairwise
/// distances of consecutive stops and that their sum is bit-identical to
/// `tour_length` over freshly-recomputed coordinates.
fn assert_edge_cache_exact(t: &IncrementalTour) {
    let n = t.len();
    let pts = pts_of(t);
    if n >= 2 {
        prop_assert_eq!(t.edge_costs().len(), n);
        for k in 0..n {
            let want = t.cost(t.order()[k], t.order()[(k + 1) % n]);
            prop_assert_eq!(
                t.edge_costs()[k].to_bits(),
                want.to_bits(),
                "edge {} diverged from the distance cache",
                k
            );
        }
    } else {
        prop_assert!(t.edge_costs().is_empty());
    }
    prop_assert_eq!(
        t.total_cost().to_bits(),
        uavdc_geom::tour_length(&pts).to_bits(),
        "cached length diverged from a fresh recomputation"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// **Tentpole**: after an arbitrary patch history, a full rebuild of
    /// the patched tour is bit-identical — same permutation, same stop
    /// order, same length bits — to a from-scratch Christofides over the
    /// same (pre-rebuild) point sequence, and the edge cache survives
    /// exact.
    #[test]
    fn patched_then_retoured_matches_from_scratch(h in history()) {
        let (depot, seed, ops) = h;
        let (mut t, _) = drive(depot, &seed, &ops);
        assert_edge_cache_exact(&t);
        let pts = pts_of(&t);
        let ids_before: Vec<usize> = t.order().to_vec();
        let retours_before = t.counters().full_retours;
        let perm = t.retour();
        let want = scratch_order(&pts);
        prop_assert_eq!(&perm, &want, "retour permutation diverged from scratch");
        let want_ids: Vec<usize> = want.iter().map(|&k| ids_before[k]).collect();
        prop_assert_eq!(t.order(), &want_ids[..]);
        prop_assert_eq!(t.counters().full_retours, retours_before + 1);
        prop_assert_eq!(t.patches_since_retour(), 0);
        assert_edge_cache_exact(&t);
    }

    /// The matching memo and the patch history are invisible: a
    /// memo-warmed clone, the cold original and a history-free fresh tour
    /// over the same point sequence all rebuild to the same bits.
    #[test]
    fn retour_ignores_memo_warmth_and_history(h in history(), phantom in qpoint()) {
        let (depot, seed, ops) = h;
        let (mut t, _) = drive(depot, &seed, &ops);
        // Memo-warmed twin: speculative scoring fills the matching memo
        // (and must itself be deterministic).
        let mut warm = t.clone();
        let s1 = warm.speculative_order(phantom);
        let s2 = warm.speculative_order(phantom);
        prop_assert_eq!(&s1, &s2, "speculative scoring must be deterministic");
        // History-free twin: same point sequence, contiguous ids, no
        // removed-stop ghosts, cold memo.
        let mut fresh = IncrementalTour::new(t.point(0), RetourPolicy::PatchOnly);
        for &id in &t.order()[1..] {
            let fid = fresh.append_point(t.point(id));
            let end = fresh.len();
            fresh.insert_id_at(fid, end);
        }
        prop_assert_eq!(
            &pts_of(&fresh), &pts_of(&t),
            "fresh twin must start from the same point sequence"
        );
        let pw = warm.retour();
        let pc = t.retour();
        let pf = fresh.retour();
        prop_assert_eq!(&pw, &pc, "memo-warm and cold retours diverged");
        prop_assert_eq!(&pc, &pf, "patch history leaked into the rebuild");
        prop_assert_eq!(warm.order(), t.order());
        prop_assert_eq!(warm.total_cost().to_bits(), t.total_cost().to_bits());
        prop_assert_eq!(&pts_of(&fresh), &pts_of(&t));
        prop_assert_eq!(fresh.total_cost().to_bits(), t.total_cost().to_bits());
    }

    /// Speculative scoring equals commitment: `speculative_order(p)` is
    /// bit-identical to a from-scratch Christofides over the tour's
    /// points plus the phantom, and to actually appending the phantom at
    /// the end and rebuilding — memo state included.
    #[test]
    fn speculative_order_matches_commit(h in history(), phantom in qpoint()) {
        let (depot, seed, ops) = h;
        let (mut t, _) = drive(depot, &seed, &ops);
        let spec = t.speculative_order(phantom);
        let mut all = pts_of(&t);
        all.push(Point2::new(phantom.0, phantom.1));
        prop_assert_eq!(&spec, &scratch_order(&all), "speculative vs scratch diverged");
        // Commit the phantom at the end so the rebuild sees the same
        // matrix vertex order the speculation used.
        let id = t.append_point(phantom);
        let end = t.len();
        t.insert_id_at(id, end);
        let perm = t.retour();
        prop_assert_eq!(&spec, &perm, "speculation diverged from its own commit");
        assert_edge_cache_exact(&t);
    }

    /// All four insertion paths agree lane for lane and bit for bit:
    /// the scalar recomputing reference, the cached scan, the 4-lane
    /// cached scan, the batch kernel, and the tour's own
    /// `cheapest_insertion_of`.
    #[test]
    fn insertion_kernels_agree_bitwise(
        depot in qpoint(),
        stops in vec(qpoint(), 0..32),
        sats in vec(qpoint(), 4..24),
    ) {
        let mut t = IncrementalTour::new(depot, RetourPolicy::PatchOnly);
        for &p in &stops {
            t.insert(p);
        }
        let pts = pts_of(&t);
        // Stop coordinates indexed by stable id (ids are contiguous here).
        let nid = t.len();
        let xs: Vec<f64> = (0..nid).map(|id| t.point(id).0).collect();
        let ys: Vec<f64> = (0..nid).map(|id| t.point(id).1).collect();
        let tour_xs: Vec<f64> = pts.iter().map(|p| p.x).collect();
        let tour_ys: Vec<f64> = pts.iter().map(|p| p.y).collect();
        let sat_xs: Vec<f64> = sats.iter().map(|p| p.0).collect();
        let sat_ys: Vec<f64> = sats.iter().map(|p| p.1).collect();

        // Banked rows: cached satellite -> stop-id distances.
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(sats.len());
        for &(sx, sy) in &sats {
            let mut row = Vec::new();
            distances_to_point(&xs, &ys, sx, sy, &mut row);
            rows.push(row);
        }

        let mut kernel = InsertionKernel::new();
        kernel.run(&tour_xs, &tour_ys, t.edge_costs(), &sat_xs, &sat_ys);

        let mut scalar = Vec::with_capacity(sats.len());
        for (j, &(sx, sy)) in sats.iter().enumerate() {
            let (want_d, want_pos) = reference_cheapest(&pts, Point2::new(sx, sy));
            let (got_d, got_pos) = cheapest_insertion_cached(&rows[j], t.order(), t.edge_costs());
            prop_assert_eq!(got_d.to_bits(), want_d.to_bits(), "cached delta, sat {}", j);
            prop_assert_eq!(got_pos as usize, want_pos, "cached pos, sat {}", j);
            prop_assert_eq!(kernel.delta()[j].to_bits(), want_d.to_bits(), "kernel delta, sat {}", j);
            prop_assert_eq!(kernel.pos()[j] as usize, want_pos, "kernel pos, sat {}", j);
            scalar.push((got_d, got_pos));
        }
        for (c, chunk) in rows.chunks_exact(4).enumerate() {
            let got4 = cheapest_insertion_cached4(
                [&chunk[0], &chunk[1], &chunk[2], &chunk[3]],
                t.order(),
                t.edge_costs(),
            );
            for k in 0..4 {
                let (want_d, want_pos) = scalar[c * 4 + k];
                prop_assert_eq!(got4[k].0.to_bits(), want_d.to_bits(), "4-lane delta, lane {}", k);
                prop_assert_eq!(got4[k].1, want_pos, "4-lane pos, lane {}", k);
            }
        }
        // The tour's own cached scan on an appended (not yet spliced) id.
        let (sx, sy) = sats[0];
        let id = t.append_point((sx, sy));
        let (d, pos) = t.cheapest_insertion_of(id);
        prop_assert_eq!(d.to_bits(), scalar[0].0.to_bits());
        prop_assert_eq!(pos, scalar[0].1 as usize);
    }

    /// `EveryKPatches` is exactly "PatchOnly plus a retour every K
    /// patches": the policy fires on schedule, the counters account every
    /// patch, and the resulting tour is bit-identical to a manually
    /// scheduled twin.
    #[test]
    fn every_k_policy_matches_manual_schedule(
        depot in qpoint(),
        stops in vec(qpoint(), 4..24),
        k in 1u32..6,
    ) {
        let mut auto = IncrementalTour::new(depot, RetourPolicy::EveryKPatches(k));
        let mut fired = 0u32;
        for &p in &stops {
            if auto.insert(p).1.is_some() {
                fired += 1;
            }
        }
        prop_assert_eq!(fired, stops.len() as u32 / k, "policy fired off schedule");
        prop_assert_eq!(auto.counters().full_retours, u64::from(fired));
        prop_assert_eq!(auto.counters().tour_patches, stops.len() as u64);
        prop_assert_eq!(auto.patches_since_retour(), stops.len() as u32 % k);

        let mut manual = IncrementalTour::new(depot, RetourPolicy::PatchOnly);
        let mut since = 0;
        for &p in &stops {
            manual.insert(p);
            since += 1;
            if since == k {
                manual.retour();
                since = 0;
            }
        }
        // Ids were allocated in the same sequence, so orders compare 1:1.
        prop_assert_eq!(auto.order(), manual.order(), "policy tour diverged from manual twin");
        prop_assert_eq!(auto.total_cost().to_bits(), manual.total_cost().to_bits());
    }
}
