//! Aggregate-node election and data forwarding.
//!
//! The paper's system model (§III.A) starts from a dense deployment of
//! IoT devices, of which some are elected as *aggregate sensor nodes*;
//! every non-aggregate device forwards its sensing data to a neighbouring
//! aggregate node (choosing one when several are in range), and the UAV
//! only ever visits aggregate nodes. This module implements that
//! pre-processing step so scenarios can be generated from raw
//! deployments, not just from hand-placed aggregates.

use crate::scenario::IotDevice;
use crate::units::{MegaBytes, Meters};
use uavdc_geom::{cmp_f64, cmp_f64_desc, Point2, SpatialGrid};

/// A raw (pre-aggregation) IoT device.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RawDevice {
    /// Ground position.
    pub pos: Point2,
    /// Sensing data generated over the collection period.
    pub data: MegaBytes,
}

/// Result of aggregation: the aggregate devices plus bookkeeping about
/// what was forwarded where.
#[derive(Clone, Debug)]
pub struct AggregationOutcome {
    /// The aggregate sensor nodes, each holding its own data plus all the
    /// data forwarded to it.
    pub aggregates: Vec<IotDevice>,
    /// For every raw device, the index (into `aggregates`) it forwards to;
    /// aggregate devices forward to themselves.
    pub assignment: Vec<usize>,
    /// Raw devices with no aggregate within communication range; their
    /// data is stranded and will not be collected (counted so experiments
    /// can report coverage).
    pub stranded: Vec<usize>,
}

impl AggregationOutcome {
    /// Total data volume held by aggregates (collectable).
    pub fn aggregated_data(&self) -> MegaBytes {
        self.aggregates.iter().map(|a| a.data).sum()
    }
}

/// Elects aggregates greedily and forwards data.
///
/// Election: scan devices in order of decreasing data volume; a device
/// becomes an aggregate unless it is already within `comm_range` of an
/// existing aggregate (a classic greedy dominating-set construction —
/// aggregates end up pairwise farther than `comm_range` apart, matching
/// the paper's "sparsely distributed" premise). Forwarding: every
/// non-aggregate sends its data to the *nearest* aggregate within
/// `comm_range`; devices with none in range are reported as stranded.
pub fn aggregate_network(raw: &[RawDevice], comm_range: Meters) -> AggregationOutcome {
    assert!(
        comm_range.is_finite() && comm_range.value() > 0.0,
        "comm_range must be positive"
    );
    let n = raw.len();
    if n == 0 {
        return AggregationOutcome {
            aggregates: Vec::new(),
            assignment: Vec::new(),
            stranded: Vec::new(),
        };
    }
    // Order by decreasing data volume so heavy producers become
    // aggregates and avoid forwarding cost.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| cmp_f64_desc(raw[a].data.value(), raw[b].data.value()));

    let positions: Vec<Point2> = raw.iter().map(|d| d.pos).collect();
    let index = SpatialGrid::build(&positions, comm_range.value().max(1.0));

    let mut is_aggregate = vec![false; n];
    let mut chosen: Vec<usize> = Vec::new();
    for &i in &order {
        let near = index.query_radius(raw[i].pos, comm_range.value());
        if !near.iter().any(|&j| is_aggregate[j]) {
            is_aggregate[i] = true;
            chosen.push(i);
        }
    }
    chosen.sort_unstable();
    let agg_index_of: Vec<Option<usize>> = {
        let mut v = vec![None; n];
        for (k, &i) in chosen.iter().enumerate() {
            v[i] = Some(k);
        }
        v
    };

    let agg_positions: Vec<Point2> = chosen.iter().map(|&i| raw[i].pos).collect();
    let agg_grid = SpatialGrid::build(&agg_positions, comm_range.value().max(1.0));

    let mut volumes: Vec<MegaBytes> = chosen.iter().map(|&i| raw[i].data).collect();
    let mut assignment = vec![usize::MAX; n];
    let mut stranded = Vec::new();
    for i in 0..n {
        if let Some(k) = agg_index_of[i] {
            assignment[i] = k;
            continue;
        }
        // Nearest aggregate within range.
        let near = agg_grid.query_radius(raw[i].pos, comm_range.value());
        if let Some(&k) = near.iter().min_by(|&&a, &&b| {
            cmp_f64(
                agg_positions[a].distance_sq(raw[i].pos),
                agg_positions[b].distance_sq(raw[i].pos),
            )
        }) {
            assignment[i] = k;
            volumes[k] += raw[i].data;
        } else {
            stranded.push(i);
        }
    }

    let aggregates = chosen
        .iter()
        .zip(&volumes)
        .map(|(&i, &data)| IotDevice {
            pos: raw[i].pos,
            data,
        })
        .collect();
    AggregationOutcome {
        aggregates,
        assignment,
        stranded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn raw(x: f64, y: f64, mb: f64) -> RawDevice {
        RawDevice {
            pos: Point2::new(x, y),
            data: MegaBytes(mb),
        }
    }

    #[test]
    fn empty_input() {
        let out = aggregate_network(&[], Meters(10.0));
        assert!(out.aggregates.is_empty());
        assert!(out.stranded.is_empty());
    }

    #[test]
    fn single_device_is_its_own_aggregate() {
        let out = aggregate_network(&[raw(5.0, 5.0, 42.0)], Meters(10.0));
        assert_eq!(out.aggregates.len(), 1);
        assert_eq!(out.aggregates[0].data, MegaBytes(42.0));
        assert_eq!(out.assignment, vec![0]);
    }

    #[test]
    fn close_cluster_collapses_to_heaviest() {
        // Three devices within range: the heaviest becomes the aggregate,
        // the others forward to it.
        let out = aggregate_network(
            &[
                raw(0.0, 0.0, 10.0),
                raw(1.0, 0.0, 99.0),
                raw(0.0, 1.0, 20.0),
            ],
            Meters(5.0),
        );
        assert_eq!(out.aggregates.len(), 1);
        assert_eq!(out.aggregates[0].data, MegaBytes(129.0));
        assert_eq!(out.aggregates[0].pos, Point2::new(1.0, 0.0));
        assert!(out.stranded.is_empty());
    }

    #[test]
    fn far_devices_stay_separate() {
        let out = aggregate_network(&[raw(0.0, 0.0, 10.0), raw(100.0, 0.0, 20.0)], Meters(5.0));
        assert_eq!(out.aggregates.len(), 2);
        assert_eq!(out.aggregated_data(), MegaBytes(30.0));
    }

    #[test]
    fn stranded_device_reported() {
        // Device 2 is out of range of both others AND cannot be an
        // aggregate itself... actually any device with no aggregate in
        // range becomes one, so stranding requires being non-aggregate.
        // With the greedy rule a device is stranded only if an aggregate
        // is within range at election time but not the nearest... which
        // cannot happen. Stranded stays empty by construction here.
        let out = aggregate_network(
            &[raw(0.0, 0.0, 10.0), raw(3.0, 0.0, 5.0), raw(50.0, 0.0, 7.0)],
            Meters(5.0),
        );
        assert!(out.stranded.is_empty());
        assert_eq!(out.aggregates.len(), 2);
    }

    #[test]
    fn forwarding_picks_nearest_aggregate() {
        // Two aggregates far apart; a light device near the second.
        let out = aggregate_network(
            &[
                raw(0.0, 0.0, 100.0),
                raw(30.0, 0.0, 90.0),
                raw(28.0, 0.0, 1.0),
            ],
            Meters(6.0),
        );
        assert_eq!(out.aggregates.len(), 2);
        // Device at 28 forwards to aggregate at 30 (distance 2 < 6).
        let a30 = out
            .aggregates
            .iter()
            .position(|a| (a.pos.x - 30.0).abs() < 1e-9)
            .unwrap();
        assert_eq!(out.assignment[2], a30);
        assert_eq!(out.aggregates[a30].data, MegaBytes(91.0));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_aggregation_conserves_data(
            devices in proptest::collection::vec(
                ((0.0f64..500.0), (0.0f64..500.0), (1.0f64..100.0)), 1..80),
            range in 10.0f64..120.0,
        ) {
            let raw: Vec<RawDevice> = devices.iter().map(|&(x, y, d)| raw_dev(x, y, d)).collect();
            let total: f64 = raw.iter().map(|d| d.data.value()).sum();
            let out = aggregate_network(&raw, Meters(range));
            let stranded: f64 = out.stranded.iter().map(|&i| raw[i].data.value()).sum();
            let aggregated = out.aggregated_data().value();
            prop_assert!((aggregated + stranded - total).abs() < 1e-6 * (1.0 + total));
            // Aggregates are pairwise farther apart than the range.
            for i in 0..out.aggregates.len() {
                for j in (i + 1)..out.aggregates.len() {
                    prop_assert!(
                        out.aggregates[i].pos.distance(out.aggregates[j].pos) > range - 1e-9
                    );
                }
            }
            // Every non-stranded device is assigned to an in-range aggregate.
            for (i, &a) in out.assignment.iter().enumerate() {
                if a != usize::MAX {
                    prop_assert!(raw[i].pos.distance(out.aggregates[a].pos) <= range + 1e-9);
                }
            }
        }
    }

    fn raw_dev(x: f64, y: f64, mb: f64) -> RawDevice {
        RawDevice {
            pos: Point2::new(x, y),
            data: MegaBytes(mb),
        }
    }
}
